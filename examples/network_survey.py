#!/usr/bin/env python3
"""Table 1 in miniature: measure (gamma, delta) on real packet routing.

For each topology of the paper's Table 1, routes balanced h-relations on
the synchronous store-and-forward simulator, fits ``T(h) = gamma h +
delta``, and prints the measured values next to the table's asymptotic
forms.  Growth across ``p`` (not absolute constants) is the claim.

Run:  python examples/network_survey.py  [--size 64]
"""

import argparse

from repro.models.cost import TABLE1
from repro.networks.params import TOPOLOGY_BUILDERS, measure_network_params
from repro.util.tables import render_table


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--size", type=int, default=64, help="target processor count")
    args = ap.parse_args()

    rows = []
    for name, builder in TOPOLOGY_BUILDERS.items():
        topo, config = builder(args.size)
        meas = measure_network_params(
            topo, table_name=name, hs=(1, 2, 4, 8), seeds=(0, 1), config=config
        )
        th_gamma, th_delta = meas.theory()
        costs = TABLE1[name]
        rows.append(
            (
                name,
                meas.p,
                f"{meas.gamma:.2f}",
                f"{th_gamma:.1f} ({costs.gamma_expr})",
                f"{meas.delta:.2f}",
                f"{th_delta:.1f} ({costs.delta_expr})",
                f"{meas.r2:.3f}",
            )
        )
    print(
        render_table(
            ["topology", "p", "gamma (fit)", "gamma (Table 1)", "delta (fit)", "delta (Table 1)", "R^2"],
            rows,
            title=f"Table 1 survey at ~{args.size} processors (store-and-forward routing)",
        )
    )


if __name__ == "__main__":
    main()
