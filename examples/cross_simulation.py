#!/usr/bin/env python3
"""The paper's headline results, end to end.

1. Theorem 1 — a stall-free LogP program (all-to-all exchange) executed
   through the BSP cycle simulation; measured slowdown vs the predicted
   ``O(1 + g/G + l/L)``.
2. Theorem 2 — a BSP program (parallel radix sort, the paper's own
   "capacity-constraint trouble" example) executed on the LogP machine
   via barrier (CB) + the deterministic Section 4.2 routing protocol,
   and via the Theorem 3 randomized protocol.

Both directions are expressed through the public Stack API — the same
chains the CLI's ``inspect``, campaign targets, and the service build
from a :class:`~repro.engine.request.RunRequest`.

Run:  python examples/cross_simulation.py
"""

from repro import BSPParams, LogPParams, Stack
from repro.programs import bsp_radix_sort_program, logp_alltoall_program
from repro.util.tables import render_table


def theorem1_demo() -> None:
    logp = LogPParams(p=8, L=8, o=1, G=2)
    rows = []
    for g_scale, l_scale in [(1, 1), (4, 1), (1, 4), (4, 4)]:
        bsp = BSPParams(p=8, g=logp.G * g_scale, l=logp.L * l_scale)
        rep = (
            Stack(logp_alltoall_program(), model="logp", params=logp)
            .on_bsp(bsp)
            .run()
        )
        assert rep.outputs_match
        rows.append(
            (
                f"g={bsp.g}, l={bsp.l}",
                rep.windows,
                rep.max_window_h,
                logp.capacity,
                f"{rep.slowdown:.2f}",
                f"{rep.predicted_slowdown:.2f}",
            )
        )
    print(
        render_table(
            ["BSP machine", "cycles", "max h", "ceil(L/G)", "slowdown", "predicted"],
            rows,
            title="Theorem 1: stall-free LogP (all-to-all) on BSP  [LogP: L=8, o=1, G=2]",
        )
    )


def theorem2_demo() -> None:
    logp = LogPParams(p=8, L=16, o=1, G=2)
    prog = bsp_radix_sort_program(keys_per_proc=8, key_bits=8, seed=42)
    rows = []
    for mode in ["deterministic", "randomized", "offline"]:
        rep = Stack(prog).on_logp(logp, routing=mode, seed=3).run()
        flat = [k for slice_ in rep.results for k in slice_]
        assert flat == sorted(flat), "radix sort output must be globally sorted"
        rows.append(
            (
                mode,
                rep.bsp_cost,
                rep.total_logp_time,
                f"{rep.slowdown:.2f}",
                f"{rep.predicted_slowdown:.2f}",
                len(rep.logp.stalls),
            )
        )
    print()
    print(
        render_table(
            ["routing", "BSP cost", "LogP time", "slowdown S", "paper S(L,G,p,h)", "stalls"],
            rows,
            title=(
                "Theorem 2/3: BSP radix sort on LogP  [L=16, o=1, G=2; "
                "slowdown vs the matched BSP machine g=G, l=L]"
            ),
        )
    )


if __name__ == "__main__":
    theorem1_demo()
    theorem2_demo()
