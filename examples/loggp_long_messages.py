#!/usr/bin/env python3
"""LogGP long messages (the paper's reference [18], Alexandrov et al.).

LogP charges every message the same; LogGP adds a per-word gap ``Gb``
(much smaller than the per-message gap ``G``), so bulk transfers
amortize overhead.  This example measures the classic crossover: sending
``n`` words as ``n`` unit messages vs one ``n``-word bulk message.

Run:  python examples/loggp_long_messages.py
"""

from repro import LogPMachine, LogPParams
from repro.logp import Recv, Send
from repro.models.cost import loggp_end_to_end
from repro.util.tables import render_table

PARAMS = LogPParams(p=2, L=16, o=4, G=8, Gb=1)


def singles(n):
    def prog(ctx):
        if ctx.pid == 0:
            for i in range(n):
                yield Send(1, i)
        else:
            for _ in range(n):
                yield Recv()
            return ctx.clock

    return prog


def bulk(n):
    def prog(ctx):
        if ctx.pid == 0:
            yield Send(1, list(range(n)), size=n)
        else:
            yield Recv()
            return ctx.clock

    return prog


def main() -> None:
    rows = []
    for n in (1, 4, 16, 64, 256):
        t_singles = LogPMachine(PARAMS).run(singles(n)).results[1]
        t_bulk = LogPMachine(PARAMS).run(bulk(n)).results[1]
        rows.append(
            (
                n,
                t_singles,
                t_bulk,
                loggp_end_to_end(n, PARAMS),
                f"{t_singles / t_bulk:.1f}x",
            )
        )
    print(
        render_table(
            ["n words", "n unit messages", "one bulk message", "2(o+(n-1)Gb)+L", "speedup"],
            rows,
            title=f"LogGP bulk transfers  [L={PARAMS.L}, o={PARAMS.o}, G={PARAMS.G}, Gb={PARAMS.Gb}]",
        )
    )
    print(
        "\nThe bulk column tracks the LogGP end-to-end formula exactly; the"
        " unit-message column pays G per word — the gap LogGP was invented"
        " to model away for long messages."
    )


if __name__ == "__main__":
    main()
