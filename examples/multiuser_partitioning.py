#!/usr/bin/env python3
"""Partitionability & multiuser operation — the models' asymmetry.

Paper §2.2: LogP programs on disjoint processor sets "do not interfere",
which "nicely supports partitioning ... as well as multiuser modes of
operation".  Paper §2.1: in BSP "all synchronizations are essentially
global so that two programs cannot run independently on two disjoint
sets of processors".

This example co-schedules a *light* job and a *heavy* job on one machine
of each model and reports what each job pays, next to its standalone
cost.

Run:  python examples/multiuser_partitioning.py
"""

from repro import BSPMachine, BSPParams, LogPMachine, LogPParams
from repro.bsp import partition as bsp_partition
from repro.bsp.program import Compute as BCompute, Sync
from repro.logp.partition import combine_partitions
from repro.logp.instructions import Compute as LCompute, Recv, Send
from repro.util.tables import render_table

P = 8
HEAVY_ROUNDS = 12


# -- the two "users": a quick ping job and a long iterative job ------------

def logp_light(ctx):
    if ctx.pid == 0:
        yield Send(1, "ping")
    elif ctx.pid == 1:
        yield Recv()
    return ctx.clock


def logp_heavy(ctx):
    right = (ctx.pid + 1) % ctx.p
    token = ctx.pid
    for _ in range(HEAVY_ROUNDS):
        yield LCompute(20)
        yield Send(right, token)
        msg = yield Recv()
        token = msg.payload
    return ctx.clock


def bsp_light(ctx):
    yield BCompute(1)
    yield Sync()
    return ctx.superstep


def bsp_heavy(ctx):
    for _ in range(HEAVY_ROUNDS):
        yield BCompute(20)
        yield Sync()
    return ctx.superstep


def main() -> None:
    half = P // 2
    groups = [list(range(half)), list(range(half, P))]

    # --- LogP: no interference ---------------------------------------------
    lp_small = LogPParams(p=half, L=8, o=1, G=2)
    lp_big = LogPParams(p=P, L=8, o=1, G=2)
    light_alone = LogPMachine(lp_small).run(logp_light).makespan
    heavy_alone = LogPMachine(lp_small).run(logp_heavy).makespan
    shared = LogPMachine(lp_big).run(
        combine_partitions(groups, [logp_light, logp_heavy], p=P)
    )
    light_shared = max(shared.results[:half])
    heavy_shared = max(shared.results[half:])

    # --- BSP: the global barrier couples the jobs ---------------------------
    bp_small = BSPParams(p=half, g=2, l=32)
    bp_big = BSPParams(p=P, g=2, l=32)
    light_alone_bsp = BSPMachine(bp_small).run(bsp_light).total_cost
    heavy_alone_bsp = BSPMachine(bp_small).run(bsp_heavy).total_cost
    out = BSPMachine(bp_big).run(
        bsp_partition.combine_partitions(groups, [bsp_light, bsp_heavy], p=P)
    )
    # in BSP the machine-wide run cost is what both user groups experience
    coupled_cost = out.total_cost

    print(
        render_table(
            ["model", "job", "standalone", "co-scheduled", "interference"],
            [
                ("LogP", "light (ping)", light_alone, light_shared,
                 "none" if light_shared == light_alone else "PERTURBED"),
                ("LogP", f"heavy ({HEAVY_ROUNDS} ring rounds)", heavy_alone,
                 heavy_shared,
                 "none" if heavy_shared == heavy_alone else "PERTURBED"),
                ("BSP", "light (1 superstep)", light_alone_bsp, coupled_cost,
                 f"pays the heavy job's {out.num_supersteps} barriers"),
                ("BSP", f"heavy ({HEAVY_ROUNDS} supersteps)", heavy_alone_bsp,
                 coupled_cost, "dominates the machine"),
            ],
            title="Co-scheduling two jobs on disjoint halves of one machine",
        )
    )
    print(
        "\nLogP times are per-job completion clocks; BSP costs are machine-"
        "wide (the global barrier makes per-group cost inseparable — the "
        "paper's multiuser argument, Section 6)."
    )


if __name__ == "__main__":
    main()
