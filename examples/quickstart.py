#!/usr/bin/env python3
"""Quickstart: write and run a program on each machine model.

* BSP (paper §2.1): generator programs yield ``Compute`` / ``Send`` /
  ``Sync``; the machine charges ``w + g*h + l`` per superstep.
* LogP (paper §2.2): generator programs yield ``Compute`` / ``Send`` /
  ``Recv``; the machine enforces overhead ``o``, gap ``G``, latency
  ``<= L`` and the capacity constraint ``ceil(L/G)``.

Run:  python examples/quickstart.py
"""

from repro import BSPMachine, BSPParams, LogPMachine, LogPParams
from repro.bsp import Compute, Send, Sync
from repro.logp import Recv
from repro.logp import Send as LSend
from repro.logp.collectives import recv_n_tagged

P = 8


# --- a BSP program: odd/even neighbor averaging over two supersteps -------

def bsp_neighbor_average(ctx):
    """Each processor averages its value with both ring neighbors."""
    value = float(ctx.pid)
    left, right = (ctx.pid - 1) % ctx.p, (ctx.pid + 1) % ctx.p
    yield Send(left, value)
    yield Send(right, value)
    yield Compute(2)
    yield Sync()
    neighbors = [m.payload for m in ctx.inbox]
    return (value + sum(neighbors)) / (1 + len(neighbors))


# --- a LogP program: request/response with a server processor -------------

def logp_request_response(ctx):
    """Processor 0 serves squares; everyone else asks for one."""
    if ctx.pid == 0:
        replies = 0
        msgs = yield from recv_n_tagged(ctx, tag=1, n=ctx.p - 1)
        for m in msgs:
            yield LSend(m.src, m.payload**2, tag=2)
            replies += 1
        return replies
    yield LSend(0, ctx.pid, tag=1)
    msg = yield Recv()
    return msg.payload


def main() -> None:
    bsp = BSPMachine(BSPParams(p=P, g=2, l=16))
    out = bsp.run(bsp_neighbor_average)
    print("== BSP ==")
    print("results:       ", [round(v, 2) for v in out.results])
    print("supersteps:    ", out.num_supersteps)
    print("cost ledger:   ", [(r.w, r.h, r.cost) for r in out.ledger])
    print("total BSP cost:", out.total_cost)

    logp = LogPMachine(LogPParams(p=P, L=8, o=1, G=2))
    res = logp.run(logp_request_response)
    print("\n== LogP ==")
    print("results:   ", res.results)
    print("makespan:  ", res.makespan)
    print("messages:  ", res.total_messages)
    print("stall-free:", res.stall_free)


if __name__ == "__main__":
    main()
