#!/usr/bin/env python3
"""The Section 4.2 sorting regimes: small-r network sort vs large-r
Columnsort (our AKS / Cubesort stand-ins).

The paper: the AKS-based scheme wins for ``r <= 2^sqrt(log p)``; the
Cubesort-based scheme wins for large ``r`` (e.g. ``r = p^eps``), where it
costs ``O(G r + L)``.  We print the analytic costs of both schemes across
``r`` (locating the crossover) and validate the executable substitutes by
actually sorting with them.

Run:  python examples/sorting_showdown.py
"""

import random

from repro.models.cost import t_sort_aks, t_sort_cubesort
from repro.models.params import LogPParams
from repro.sorting import bitonic_schedule, columnsort, run_schedule_locally
from repro.util.tables import render_table


def analytic_crossover() -> None:
    params = LogPParams(p=256, L=16, o=1, G=2)
    rows = []
    for r in [1, 4, 16, 64, 256, 1024, 4096, 65536]:
        aks = t_sort_aks(r, params.p, params)
        cube = t_sort_cubesort(r, params.p, params, include_log_star_term=False)
        rows.append(
            (
                r,
                f"{aks:.3g}",
                f"{cube:.3g}",
                "AKS" if aks <= cube else "Cubesort",
            )
        )
    print(
        render_table(
            ["r (keys/proc)", "T_AKS = O((Gr+L)log p)", "T_Cubesort (asympt.)", "winner"],
            rows,
            title="Paper cost model: sorting-scheme crossover  [p=256, L=16, o=1, G=2]",
        )
    )


def executable_substitutes() -> None:
    rng = random.Random(7)

    # Small r: Batcher bitonic network with merge-split (AKS stand-in).
    p, r = 16, 4
    blocks = [[rng.randrange(1000) for _ in range(r)] for _ in range(p)]
    want = sorted(x for b in blocks for x in b)
    out = run_schedule_locally(bitonic_schedule(p), blocks)
    got = [x for b in out for x in b]
    assert got == want
    print(f"\nbitonic merge-split: sorted {p * r} keys over p={p} procs, "
          f"{len(bitonic_schedule(p))} rounds (O(log^2 p))")

    # Large r: Columnsort (Cubesort stand-in), valid for r >= 2(s-1)^2.
    s, r = 8, 2 * 49
    blocks = [[rng.randrange(10_000) for _ in range(r)] for _ in range(s)]
    want = sorted(x for b in blocks for x in b)
    out = columnsort(blocks)
    got = [x for b in out for x in b]
    assert got == want
    print(f"columnsort: sorted {s * r} keys over p={s} procs in 8 fixed rounds "
          f"(O(Gr + L) on LogP, the large-r regime)")


if __name__ == "__main__":
    analytic_crossover()
    executable_substitutes()
