#!/usr/bin/env python3
"""The paper's architecture as one runnable tower of models.

BSP vs LogP is an argument about *layers*: a routed point-to-point
network supports a LogP abstraction (Section 5), and LogP and BSP
simulate each other with bounded slowdown (Theorems 1-3).  The
:class:`repro.engine.Stack` API composes those layers declaratively;
this example runs the same BSP program

1. natively, on the matched abstract BSP machine,
2. on the LogP machine via the Theorem 2 deterministic simulation,
3. on LogP whose deliveries are routed hop-by-hop over a hypercube —
   the full three-layer tower (BSP -> LogP -> network), and
4. directly network-backed (Section 5's measured-cost pricing),

then compares costs: each layer of realism you add shows up as
measured slowdown on top of the abstract cost.

Run:  python examples/layer_stack.py
"""

from repro import LogPParams
from repro.engine import Stack
from repro.networks import Hypercube
from repro.programs import bsp_prefix_program
from repro.util.tables import render_table

P = 8
# Generous L so the hypercube's store-and-forward latencies stay
# admissible (every delivery within L) under the LogP layer.
HOST = LogPParams(p=P, L=64, o=2, G=2)


def main() -> None:
    prog = bsp_prefix_program

    # 1. Native BSP on the machine matched to the LogP host (g=G, l=L).
    native = Stack(prog()).on_bsp(HOST.matching_bsp()).run()

    # 2. Two layers: BSP simulated on LogP (Theorem 2, deterministic).
    two = Stack(prog()).on_logp(HOST).run()
    assert two.outputs_match

    # 3. Three layers: the LogP host's deliveries are themselves routed
    #    on a hypercube, edge contention and all.
    topo = Hypercube(P)
    three = Stack(prog()).on_logp(HOST).on_network(topo).run()
    assert three.outputs_match
    assert three.results == two.results  # semantics survive every layer

    # 4. Network-backed BSP: Section 5's measured superstep pricing.
    backed = Stack(prog()).on_network(topo).run()

    rows = [
        ("bsp", native.total_cost, "abstract w + g h + l"),
        (
            "bsp -> logp",
            two.total_logp_time,
            f"Theorem 2 slowdown {two.slowdown:.2f} (predicted {two.predicted_slowdown:.2f})",
        ),
        (
            "bsp -> logp -> network",
            three.total_logp_time,
            f"+ hop-by-hop routing on {topo.name}",
        ),
        (
            "bsp -> network",
            backed.network_cost,
            "measured route + barrier charges",
        ),
    ]
    print(
        render_table(
            ["stack", "cost", "what the number is"],
            rows,
            title=f"One prefix-sum program, every layer of the tower (p={P})",
        )
    )
    print(f"results, identical at every layer: {two.results}")


if __name__ == "__main__":
    main()
