#!/usr/bin/env python3
"""Anatomy of LogP stalling (paper Section 2.2).

Demonstrates, on the executable model:

1. the formalized stalling rule — a hot spot keeps draining at full rate
   (one message per ``G``), so all-to-one completes in ``Theta(Gk + L)``
   even while senders stall ("the performance model would actually
   encourage the use of stalling");
2. the adversarial convoy h-relation vs the ``O(Gh^2)`` worst case;
3. why the paper imposes ``G <= L``: with ``G > L`` (constructed with the
   validation off) the input buffer of a receiver grows without bound.

Run:  python examples/stalling_anatomy.py
"""

from repro import LogPMachine, LogPParams
from repro.core.stalling import measure_hotspot, measure_stall_storm
from repro.logp import Recv, WaitUntil
from repro.logp import Send as LSend
from repro.util.tables import render_table


def hotspot_table() -> None:
    params = LogPParams(p=32, L=8, o=1, G=2)  # capacity ceil(L/G) = 4
    rows = []
    for k in [2, 4, 8, 16, 31]:
        rep = measure_hotspot(params, k)
        rows.append(
            (
                k,
                rep.makespan,
                rep.predicted,
                rep.num_stalls,
                rep.total_stall_time,
            )
        )
    print(
        render_table(
            ["senders k", "makespan", "G(k-1)+L+2o", "stalls", "stall steps"],
            rows,
            title="All-to-one hot spot  [p=32, L=8, o=1, G=2 -> capacity 4]",
        )
    )


def storm_table() -> None:
    params = LogPParams(p=32, L=8, o=1, G=2)
    rows = []
    for h in [2, 4, 8, 16]:
        rep = measure_stall_storm(params, h)
        rows.append((h, rep.makespan, rep.optimal, rep.worst_case_bound))
    print()
    print(
        render_table(
            ["h", "makespan", "optimal 2o+G(h-1)+L", "paper bound O(Gh^2)"],
            rows,
            title="Adversarial convoy h-relation under the stalling rule",
        )
    )


def buffer_growth() -> None:
    """The paper's G > L example: processors 0 and 1 alternately send to
    processor 2 at a rate the receiver cannot legally acquire."""
    G, L = 8, 3  # violates G <= L on purpose (unchecked=True)
    params = LogPParams(p=3, L=L, o=1, G=G, unchecked=True)
    shots = 24

    def prog(ctx):
        if ctx.pid in (0, 1):
            for k in range(shots):
                yield WaitUntil(max(G, 2 * L) * k + L * ctx.pid)
                yield LSend(2, (ctx.pid, k))
        else:
            for _ in range(2 * shots):
                yield Recv()

    res = LogPMachine(params).run(prog)
    print()
    print(
        f"G={G} > L={L} (paper's anomaly): receiver buffer high-water mark = "
        f"{res.buffer_highwater[2]} after {2 * shots} messages "
        f"(grows linearly with message count; with G <= L it stays bounded)"
    )
    params_ok = LogPParams(p=3, L=8, o=1, G=2)

    def prog_ok(ctx):
        if ctx.pid in (0, 1):
            for k in range(shots):
                yield LSend(2, (ctx.pid, k))
        else:
            for _ in range(2 * shots):
                yield Recv()

    res_ok = LogPMachine(params_ok).run(prog_ok)
    print(
        f"G=2 <= L=8 control: buffer high-water mark = {res_ok.buffer_highwater[2]} "
        f"for the same message count"
    )


if __name__ == "__main__":
    hotspot_table()
    storm_table()
    buffer_growth()
