"""Measure the dist backend's real machine: L, o, g, and run overhead.

Three measurements, all against real processes on localhost TCP:

* **LogP fit** — :func:`repro.dist.measure.fit_logp` microbenchmarks
  send overhead (``o``), ping-pong latency (``L``), and saturation gap
  (``g``) through an echo subprocess, then
  :func:`~repro.dist.measure.fit_logp_params` rounds them onto LogP's
  integer-microsecond grid (respecting ``max(2, o) <= G <= L``).  The
  resulting ``LogPParams`` is the bridge from the measured machine back
  into the paper's simulators.

* **Clean end-to-end runs** — wall clock of ``run_dist`` per program on
  a clean wire, with per-round cost (supervision + barrier + relay
  overhead the microbenchmarks cannot see).

* **Faulty end-to-end run** — the same ring under a seeded kill plus
  drops, reporting the recovery multiplier (faulty wall / clean wall).

Usage::

    PYTHONPATH=src python benchmarks/bench_dist.py            # full
    PYTHONPATH=src python benchmarks/bench_dist.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/bench_dist.py --json     # machine-readable
    PYTHONPATH=src python benchmarks/bench_dist.py --out fit.json

This file is importable under pytest's ``bench_*.py`` collection but
defines no tests; it is an argparse CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.dist import DistParams, run_dist, run_reference  # noqa: E402
from repro.dist.measure import fit_logp, fit_logp_params  # noqa: E402
from repro.faults.plan import FaultPlan  # noqa: E402

#: End-to-end workloads: (name, program, p, kwargs).
RUNS = [
    ("ring_p3_r4", "ring", 3, {"rounds": 4}),
    ("alltoall_p3_r3", "alltoall", 3, {"rounds": 3}),
    ("flood_p2_r3", "flood", 2, {"rounds": 3, "burst": 8}),
]

FAULTY_PLAN = dict(seed=7, crash={1: 2}, drop_rate=0.2)


def _timed_run(program: str, p: int, kwargs: dict, plan=None) -> dict:
    params = DistParams(run_timeout_s=60.0, hb_timeout_s=1.0)
    with tempfile.TemporaryDirectory(prefix="repro-bench-dist-") as log_dir:
        t0 = time.perf_counter()
        result = run_dist(program, p, kwargs=kwargs, params=params,
                          plan=plan, log_dir=log_dir)
        wall = time.perf_counter() - t0
        correct = result.results == run_reference(program, p, kwargs)
        return {
            "wall_s": round(wall, 4),
            "wall_per_round_ms": round(wall / result.rounds * 1e3, 3),
            "rounds": result.rounds,
            "restarts": result.restarts,
            "wire_faults": dict(result.wire_faults),
            "retransmits": result.channel_stats["retransmits"],
            "correct": correct,
        }


def run_bench(quick: bool) -> dict:
    fit = fit_logp(quick=quick)
    logp = fit_logp_params(fit, p=2)
    runs = {}
    for name, program, p, kwargs in RUNS:
        runs[name] = _timed_run(program, p, kwargs)
    clean_ring = runs["ring_p3_r4"]["wall_s"]
    faulty = _timed_run("ring", 3, {"rounds": 4},
                        plan=FaultPlan(**FAULTY_PLAN))
    faulty["recovery_multiplier"] = (
        round(faulty["wall_s"] / clean_ring, 2) if clean_ring else None
    )
    return {
        "fit": fit,
        "logp_params": {"p": logp.p, "L": logp.L, "o": logp.o, "G": logp.G},
        "runs": runs,
        "faulty_ring": faulty,
    }


def print_report(report: dict) -> None:
    fit, lp = report["fit"], report["logp_params"]
    print("measured machine (localhost TCP, real processes):")
    print(f"  o = {fit['o_us']:8.1f} us   (send overhead, "
          f"p90 {fit['spread']['o_p90_us']:.1f})")
    print(f"  L = {fit['L_us']:8.1f} us   (one-way latency, "
          f"rtt {fit['rtt_us']:.1f})")
    print(f"  g = {fit['g_us']:8.1f} us   (gap at saturation, "
          f"p90 {fit['spread']['gap_p90_us']:.1f})")
    print(f"  LogP grid: p={lp['p']} L={lp['L']} o={lp['o']} G={lp['G']}")
    print()
    print(f"{'end-to-end run':18s} {'wall_s':>8s} {'ms/round':>9s} "
          f"{'restarts':>8s} {'ok':>3s}")
    for name, r in report["runs"].items():
        print(f"{name:18s} {r['wall_s']:>8.3f} {r['wall_per_round_ms']:>9.2f} "
              f"{r['restarts']:>8d} {'yes' if r['correct'] else 'NO':>3s}")
    f = report["faulty_ring"]
    print(f"{'ring+kill+drops':18s} {f['wall_s']:>8.3f} "
          f"{f['wall_per_round_ms']:>9.2f} {f['restarts']:>8d} "
          f"{'yes' if f['correct'] else 'NO':>3s}"
          f"   ({f['recovery_multiplier']}x clean, "
          f"{f['retransmits']} retransmits)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sample counts")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report to this path")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print_report(report)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    bad = [n for n, r in report["runs"].items() if not r["correct"]]
    if not report["faulty_ring"]["correct"]:
        bad.append("faulty_ring")
    if bad:
        print(f"FAIL  incorrect results: {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
