"""Experiment P1 — **Propositions 1/2**: Combine-and-Broadcast cost.

Measures T_CB (from the latest join, as Prop. 2 defines T_synch) across
machine sizes and capacities, against the paper's explicit upper bound
``3 (L+o) log p / log(1 + ceil(L/G))`` and the Prop. 1 lower bound.
"""

import operator

import pytest

from repro.core.cb import measure_cb
from repro.models.cost import cb_time_lower, cb_time_upper
from repro.models.params import LogPParams
from repro.util.tables import render_table

GRID = [
    LogPParams(p=p, L=L, o=1, G=G)
    for p in (8, 32, 128, 512)
    for (L, G) in ((8, 8), (8, 4), (8, 2), (16, 2))  # capacities 1, 2, 4, 8
]


@pytest.fixture(scope="module")
def sweep():
    out = []
    for params in GRID:
        m = measure_cb(params, [1] * params.p, operator.add, op_cost=0)
        assert m.result.results == [params.p] * params.p
        assert m.result.stall_free
        out.append((params, m))
    return out


def test_cb_report(sweep, publish, benchmark):
    benchmark.pedantic(
        lambda: measure_cb(LogPParams(p=128, L=8, o=1, G=2), [1] * 128, operator.add),
        rounds=1,
        iterations=1,
    )
    rows = []
    for params, m in sweep:
        upper = cb_time_upper(params)
        lower = cb_time_lower(params)
        rows.append(
            (
                params.p,
                params.L,
                params.G,
                params.capacity,
                m.t_cb,
                f"{lower:.0f}",
                f"{upper:.0f}",
                f"{m.t_cb / upper:.2f}" if upper else "-",
            )
        )
    publish(
        "cb_synchronization",
        render_table(
            ["p", "L", "G", "ceil(L/G)", "T_CB meas", "Prop1 lower", "3(L+o)logp/log(1+C)", "meas/upper"],
            rows,
            title="Combine-and-Broadcast: measured vs paper bounds (o=1)",
        ),
    )


def test_within_constant_of_bounds(sweep):
    for params, m in sweep:
        assert m.t_cb <= 2.2 * cb_time_upper(params), params
        assert m.t_cb >= 0.4 * cb_time_lower(params), params


def test_logarithmic_scaling_in_p(sweep):
    """Equal multiplicative steps in p add roughly equal time."""
    by_cfg = {}
    for params, m in sweep:
        by_cfg.setdefault((params.L, params.G), {})[params.p] = m.t_cb
    for cfg, times in by_cfg.items():
        d1 = times[32] - times[8]
        d2 = times[128] - times[32]
        d3 = times[512] - times[128]
        assert d3 <= 2.0 * max(d1, 1), cfg
        assert d2 <= 2.0 * max(d1, 1), cfg


def test_capacity_speeds_synchronization(sweep):
    """Prop 1's log(1 + ceil(L/G)) denominator: higher capacity, faster CB."""
    at_p = {
        params.capacity: m.t_cb for params, m in sweep if params.p == 512 and params.L == 8
    }
    assert at_p[4] <= at_p[2] <= at_p[1]


def test_staggered_joins_measured_from_last(publish):
    params = LogPParams(p=64, L=8, o=1, G=2)
    joins = [(i * 17) % 300 for i in range(params.p)]
    m = measure_cb(params, [1] * params.p, operator.add, joins=joins, op_cost=0)
    assert m.latest_join == max(joins)
    assert m.t_cb <= 2.2 * cb_time_upper(params)
