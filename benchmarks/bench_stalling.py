"""Experiment ST — the stalling analyses of Sections 2.2 and 3.

Three tables: the hot-spot drain rate (stalling keeps the destination at
full bandwidth), the adversarial convoy vs the ``O(G h^2)`` worst case,
and the BSP simulation of *stalling* cycles via sorting (the end-of-§3
technique), whose per-cycle cost exhibits the ``O(((l+g)/G) log p)``
flavour (log^2 with our Batcher network).
"""

from repro.core.stalling import (
    measure_hotspot,
    measure_stall_storm,
    simulate_stalling_cycle_on_bsp,
)
from repro.models.params import BSPParams, LogPParams
from repro.routing.workloads import random_destinations
from repro.util.tables import render_table

PARAMS = LogPParams(p=32, L=8, o=1, G=2)  # capacity 4


def test_hotspot_report(publish, benchmark):
    benchmark.pedantic(lambda: measure_hotspot(PARAMS, 16), rounds=1, iterations=1)
    rows = []
    for k in (2, 4, 8, 16, 31):
        rep = measure_hotspot(PARAMS, k)
        rows.append(
            (k, rep.makespan, rep.predicted, rep.num_stalls, rep.total_stall_time)
        )
        assert rep.makespan <= rep.predicted + PARAMS.G
    publish(
        "stalling_hotspot",
        render_table(
            ["senders k", "makespan", "G(k-1)+L+2o", "stalls", "stall steps"],
            rows,
            title=f"Hot spot under the stalling rule (p={PARAMS.p}, L={PARAMS.L}, o=1, G=2)",
        ),
    )


def test_storm_report(publish, benchmark):
    benchmark.pedantic(lambda: measure_stall_storm(PARAMS, 8), rounds=1, iterations=1)
    rows = []
    for h in (2, 4, 8, 16):
        rep = measure_stall_storm(PARAMS, h)
        rows.append(
            (h, rep.makespan, rep.optimal, rep.worst_case_bound, len(rep.result.stalls))
        )
        assert rep.makespan <= rep.worst_case_bound
    publish(
        "stalling_storm",
        render_table(
            ["h", "makespan", "optimal", "O(Gh^2) bound", "stall episodes"],
            rows,
            title="Adversarial convoy h-relation (all senders walk the same destinations)",
        ),
    )


def test_stalling_cycle_on_bsp_report(publish, benchmark):
    logp = LogPParams(p=8, L=8, o=1, G=2)
    bsp = BSPParams(p=8, g=2, l=8)
    pairs = random_destinations(8, 6, seed=7)
    benchmark.pedantic(
        lambda: simulate_stalling_cycle_on_bsp(bsp, logp, pairs), rounds=1, iterations=1
    )
    rows = []
    for p in (4, 8, 16):
        lp = LogPParams(p=p, L=8, o=1, G=2)
        bp = BSPParams(p=p, g=2, l=8)
        prs = random_destinations(p, 6, seed=p)
        res = simulate_stalling_cycle_on_bsp(bp, lp, prs)
        cycle = lp.L // 2
        rows.append((p, res.num_supersteps, res.total_cost, f"{res.total_cost / cycle:.1f}"))
    publish(
        "stalling_cycle_on_bsp",
        render_table(
            ["p", "BSP supersteps", "BSP cost", "slowdown vs L/2 cycle"],
            rows,
            title=(
                "Simulating a *stalling* LogP cycle on BSP via sorting "
                "(end of Section 3; growth ~ polylog p, not poly p)"
            ),
        ),
    )


def test_stalling_program_on_bsp_naive_vs_sorted(publish):
    """End of §3: simulating *stalling* LogP programs on BSP.

    The naive Theorem-1 window simulation still executes a stalling
    program (BSP routes any h-relation), but its per-cycle h blows past
    ceil(L/G) and the superstep cost with it; the sorting/prefix
    technique decomposes each over-capacity cycle into
    ceil(h/ceil(L/G)) capacity-bounded sub-supersteps at polylog cost."""
    from repro.core.logp_on_bsp import simulate_logp_on_bsp
    from repro.core.stalling import simulate_stalling_cycle_on_bsp
    from repro.logp import Recv, Send as LSend
    from repro.logp.collectives import recv_n_tagged

    logp = LogPParams(p=16, L=8, o=1, G=2)  # capacity 4
    k = 12  # hot-spot fan-in > capacity: a stalling program

    def hot_prog(ctx):
        if ctx.pid == 0:
            msgs = yield from recv_n_tagged(ctx, 5, k)
            return len(msgs)
        if ctx.pid <= k:
            yield LSend(0, ctx.pid, tag=5)
        return None

    naive = simulate_logp_on_bsp(logp, hot_prog, compare_native=False)
    assert naive.bsp.results[0] == k  # delivered despite "stalling"
    assert naive.max_window_h > logp.capacity

    pairs = [(s, 0) for s in range(1, k + 1)]
    sorted_cycle = simulate_stalling_cycle_on_bsp(
        BSPParams(p=16, g=logp.G, l=logp.L), logp, pairs
    )
    publish(
        "stalling_program_on_bsp",
        render_table(
            ["approach", "window h vs ceil(L/G)", "BSP cost", "note"],
            [
                (
                    "naive Theorem-1 windows",
                    f"{naive.max_window_h} > {logp.capacity}",
                    naive.bsp.total_cost,
                    "one big superstep per cycle",
                ),
                (
                    "sorted decomposition",
                    f"<= {logp.capacity} per sub-superstep",
                    sorted_cycle.total_cost,
                    f"{sorted_cycle.num_supersteps} supersteps (sort + ceil(h/C) cycles)",
                ),
            ],
            title=(
                f"Simulating a stalling LogP program on BSP "
                f"(hot spot k={k}, p={logp.p}, L={logp.L}, G={logp.G})"
            ),
        ),
    )
    tail = sorted_cycle.ledger[-3:]
    assert all(rec.h_recv <= logp.capacity for rec in tail)


def test_buffer_growth_anomaly(publish):
    """Section 2.2's G > L buffer argument, as numbers."""
    from repro.logp import DeliverEager, LogPMachine, Recv, Send, WaitUntil

    rows = []
    for shots in (8, 16, 32):
        params = LogPParams(p=3, L=3, o=1, G=8, unchecked=True)

        def prog(ctx):
            if ctx.pid in (0, 1):
                for k in range(shots):
                    yield WaitUntil(max(8, 6) * k + 3 * ctx.pid)
                    yield Send(2, k)
            else:
                for _ in range(2 * shots):
                    yield Recv()

        res = LogPMachine(params, delivery=DeliverEager()).run(prog)
        rows.append((shots * 2, res.buffer_highwater[2]))
    publish(
        "buffer_growth",
        render_table(
            ["messages", "receiver buffer high-water"],
            rows,
            title="G > L anomaly: unbounded input buffers (G=8, L=3)",
        ),
    )
    # growth is linear in the message count
    assert rows[2][1] >= rows[0][1] + (rows[2][0] - rows[0][0]) // 3
