"""Experiment BF (extension of §5) — bridging-model fidelity.

The point of a bridging model: two parameters (g, l) should predict a
program's cost on a real network.  For each Table 1 topology we run a
real BSP application (the paper's radix-sort example), price every
superstep with *measured* packet routing + a tree barrier, and compare
against the abstract machine priced at the topology's best attainable
(g*, l*).  A bounded prediction ratio across topologies is the §5 claim
made executable.
"""

import pytest

from repro.core.network_support import derive_model_support
from repro.models.params import BSPParams
from repro.networks.backed import run_on_network
from repro.networks.params import make_topology
from repro.programs import bsp_radix_sort_program
from repro.util.tables import render_table

NAMES = (
    "d-dim array",
    "hypercube (multi-port)",
    "hypercube (single-port)",
    "butterfly",
    "ccc",
    "shuffle-exchange",
    "mesh-of-trees",
)


def _app(p):
    return bsp_radix_sort_program(keys_per_proc=4, key_bits=8, seed=11)


@pytest.fixture(scope="module")
def survey():
    rows = []
    for name in NAMES:
        topo, config = make_topology(name, 16)
        support = derive_model_support(topo, table_name=name, config=config)
        backed = run_on_network(topo, _app(topo.p), config=config)
        flat = [k for block in backed.results for k in block]
        assert flat == sorted(flat)
        predicted = backed.abstract_cost(
            BSPParams(p=topo.p, g=support.g_star, l=support.l_star)
        )
        rows.append((name, topo.p, support, backed, predicted))
    return rows


def test_bridging_fidelity_report(survey, publish, benchmark):
    topo, config = make_topology("d-dim array", 16)
    benchmark.pedantic(
        lambda: run_on_network(topo, _app(topo.p), config=config), rounds=1, iterations=1
    )
    table = []
    for name, p, support, backed, predicted in survey:
        table.append(
            (
                name,
                p,
                support.g_star,
                support.l_star,
                backed.network_cost,
                predicted,
                f"{backed.network_cost / predicted:.2f}",
            )
        )
    publish(
        "bridging_fidelity",
        render_table(
            ["topology", "p", "g*", "l*", "measured cost", "w + g*h + l* cost", "ratio"],
            table,
            title=(
                "Bridging-model fidelity: BSP radix sort priced by real packet "
                "routing vs the abstract (g*, l*) machine"
            ),
        ),
    )


def test_prediction_ratio_bounded(survey):
    for name, _p, _s, backed, predicted in survey:
        ratio = backed.network_cost / predicted
        assert 0.2 <= ratio <= 5.0, (name, ratio)


def test_results_identical_across_topologies(survey):
    """§2.1 portability, network edition: the same program computes the
    same answer on every network of the same size (only cost differs;
    butterfly/CCC round to their structural sizes and sort fewer keys)."""
    by_p: dict[int, list] = {}
    for _name, p, _s, backed, _pred in survey:
        flat = [k for block in backed.results for k in block]
        by_p.setdefault(p, []).append(flat)
    assert len(by_p[16]) >= 4
    for p, runs in by_p.items():
        assert all(r == runs[0] for r in runs), p
