"""Experiment SRT — the Section 4.2 sorting regimes.

Two artifacts: (a) the analytic AKS-vs-Cubesort crossover in the paper's
cost model, and (b) the *executable* substitutes — the bitonic merge-split
network (small r) and Columnsort (large r) — actually sorting on the LogP
cost scale, showing the same who-wins structure.
"""

import random

from repro.models.cost import t_seq_sort, t_sort_aks, t_sort_cubesort
from repro.models.params import LogPParams
from repro.sorting import bitonic_schedule, columnsort, run_schedule_locally
from repro.sorting.columnsort import columnsort_valid
from repro.util.tables import render_table

PARAMS = LogPParams(p=256, L=16, o=1, G=2)


def test_analytic_crossover_report(publish, benchmark):
    benchmark.pedantic(
        lambda: [t_sort_cubesort(r, PARAMS.p, PARAMS) for r in (1, 64, 4096)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for r in (1, 4, 16, 64, 256, 1024, 4096, 65536):
        aks = t_sort_aks(r, PARAMS.p, PARAMS)
        cube = t_sort_cubesort(r, PARAMS.p, PARAMS, include_log_star_term=False)
        rows.append((r, f"{aks:.3g}", f"{cube:.3g}", "AKS" if aks <= cube else "Cubesort"))
    publish(
        "sorting_analytic_crossover",
        render_table(
            ["r", "T_AKS", "T_Cubesort (asymptotic)", "winner"],
            rows,
            title=f"Paper cost model: sorting crossover at p={PARAMS.p}, L={PARAMS.L}, G={PARAMS.G}",
        ),
    )
    # the crossover exists and sits in the large-r region
    winners = [row[3] for row in rows]
    assert winners[0] == "AKS" and winners[-1] == "Cubesort"


def _logp_cost_of_bitonic(p, r, params):
    """Charged LogP cost of the schedule: per round, r paced 1-relations
    (2o + G(r-1) + L) + merge O(r); plus the initial local sort."""
    rounds = len(bitonic_schedule(p))
    per_round = 2 * params.o + params.G * max(0, r - 1) + params.L + r
    return t_seq_sort(r, p) + rounds * per_round


def _logp_cost_of_columnsort(s, r, params):
    """8 fixed steps: 4 local sorts + 4 r-relations routed as r paced
    1-relations."""
    per_perm = 2 * params.o + params.G * max(0, r - 1) + params.L
    return 4 * t_seq_sort(r, s) + 4 * per_perm


def test_executable_schemes_report(publish, benchmark):
    rng = random.Random(3)
    p = 16
    params = LogPParams(p=p, L=16, o=1, G=2)

    def run_both(r):
        blocks = [[rng.randrange(10**6) for _ in range(r)] for _ in range(p)]
        want = sorted(x for b in blocks for x in b)
        out_b = run_schedule_locally(bitonic_schedule(p), blocks)
        assert [x for b in out_b for x in b] == want
        costs = [_logp_cost_of_bitonic(p, r, params)]
        if columnsort_valid(r, p):
            out_c = columnsort(blocks)
            assert [x for b in out_c for x in b] == want
            costs.append(_logp_cost_of_columnsort(p, r, params))
        else:
            costs.append(None)
        return costs

    benchmark.pedantic(lambda: run_both(8), rounds=1, iterations=1)
    rows = []
    for r in (1, 8, 64, 512, 4096):
        bitonic_cost, column_cost = run_both(r)
        winner = (
            "bitonic"
            if column_cost is None or bitonic_cost <= column_cost
            else "columnsort"
        )
        rows.append(
            (
                r,
                bitonic_cost,
                column_cost if column_cost is not None else "invalid (r < 2(s-1)^2)",
                winner,
            )
        )
    publish(
        "sorting_executable_schemes",
        render_table(
            ["r", "bitonic LogP cost", "columnsort LogP cost", "winner"],
            rows,
            title=(
                f"Executable substitutes at p={p}: charged LogP cost of actually "
                f"sorting r keys/processor (both verified correct)"
            ),
        ),
    )
    # Shape check: columnsort wins in its validity regime (large r).
    assert rows[-1][3] == "columnsort"
    assert rows[0][3] == "bitonic"
