"""Experiment TH1 — **Theorem 1**: stall-free LogP on BSP.

Regenerates the theorem's quantitative content as a **campaign**: the
(kernel, g/G, l/L) grid is a declarative
:class:`~repro.campaign.CampaignSpec` run through
:func:`~repro.campaign.run_campaign` (worker pool + content-addressed
result store), and every assertion below consumes the JSON records the
campaign target emitted — the same records ``python -m repro.experiments
campaign th1-grid`` caches on disk.  The claims: across the grid the
measured slowdown of the cycle simulation tracks ``O(1 + g/G + l/L)``
and per-cycle h-relations stay within the capacity ``ceil(L/G)``.
"""

import pytest

from repro.campaign import CampaignSpec, run_campaign, run_point
from repro.models.params import LogPParams
from repro.util.tables import render_table

LOGP = LogPParams(p=16, L=8, o=1, G=2)
KERNELS = ("ring", "sum", "alltoall")
SCALES = (1, 4, 8)

SPEC = CampaignSpec(
    name="bench-theorem1",
    target="theorem1",
    grid=(("kernel", KERNELS), ("gs", SCALES), ("ls", SCALES)),
    base={"p": LOGP.p, "L": LOGP.L, "o": LOGP.o, "G": LOGP.G},
    description="Theorem 1 slowdown grid: LogP kernels on scaled BSP hosts",
)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    report = run_campaign(
        SPEC,
        store_dir=tmp_path_factory.mktemp("bench-theorem1"),
        parallel=2,
    )
    assert report.failed == 0 and not report.interrupted
    records = report.records()
    assert len(records) == len(SPEC)
    out = {}
    for point, rec in zip(SPEC.points(), records):
        assert rec["outputs_match"], point
        out[(point["kernel"], point["gs"], point["ls"])] = rec
    return out


def test_theorem1_report(sweep, publish, publish_json, benchmark):
    benchmark.pedantic(
        lambda: run_point("theorem1", {**dict(SPEC.base), "kernel": "sum"}),
        rounds=1,
        iterations=1,
    )
    rows = []
    for (kname, gs, ls), rec in sweep.items():
        rows.append(
            (
                kname,
                f"g={rec['g']}",
                f"l={rec['l']}",
                rec["windows"],
                rec["max_window_h"],
                rec["capacity"],
                f"{rec['slowdown']:.2f}",
                f"{rec['predicted_slowdown']:.2f}",
            )
        )
    publish(
        "theorem1_logp_on_bsp",
        render_table(
            ["kernel", "BSP g", "BSP l", "cycles", "max h", "ceil(L/G)", "slowdown", "O(1+g/G+l/L)"],
            rows,
            title=f"Theorem 1: LogP(p={LOGP.p}, L={LOGP.L}, o={LOGP.o}, G={LOGP.G}) simulated on BSP",
        ),
    )
    publish_json(
        "theorem1_logp_on_bsp",
        {"campaign": SPEC.as_dict(), "records": list(sweep.values())},
    )


def test_slowdown_below_prediction(sweep):
    for key, rec in sweep.items():
        assert rec["slowdown"] <= rec["predicted_slowdown"] * 1.05, key


def test_capacity_bound_holds(sweep):
    for key, rec in sweep.items():
        assert rec["max_window_h"] <= LOGP.capacity, key


def test_matched_machine_constant_slowdown(sweep):
    """On the matched machine the slowdown is a small constant (<= the
    predicted 1 + g/G + l/L = 5 here)."""
    for kname in KERNELS:
        assert sweep[(kname, 1, 1)]["slowdown"] <= 5.0


def test_slowdown_monotone_in_g_and_l(sweep):
    for kname in KERNELS:
        base = sweep[(kname, 1, 1)]["slowdown"]
        assert sweep[(kname, 4, 1)]["slowdown"] >= base
        assert sweep[(kname, 1, 4)]["slowdown"] >= base
        assert sweep[(kname, 8, 8)]["slowdown"] >= sweep[(kname, 4, 4)]["slowdown"]


def test_rerun_is_fully_cached(sweep, tmp_path):
    """A second run over the same spec against a warm store computes
    nothing — every record is served from the content-addressed cache,
    byte-identical to the first run's."""
    store = tmp_path / "store"
    first = run_campaign(SPEC, store_dir=store)
    second = run_campaign(SPEC, store_dir=store)
    assert first.ran == len(SPEC) and first.cached == 0
    assert second.ran == 0 and second.cached == len(SPEC)
    assert second.records() == first.records()
