"""Experiment TH1 — **Theorem 1**: stall-free LogP on BSP.

Regenerates the theorem's quantitative content: across a grid of BSP
machines (scaling g/G and l/L), the measured slowdown of the cycle
simulation tracks ``O(1 + g/G + l/L)`` and per-cycle h-relations stay
within the capacity ``ceil(L/G)``.
"""

import pytest

from repro.core.logp_on_bsp import simulate_logp_on_bsp
from repro.models.params import BSPParams, LogPParams
from repro.programs import (
    logp_alltoall_program,
    logp_ring_program,
    logp_sum_program,
)
from repro.util.tables import render_table

LOGP = LogPParams(p=16, L=8, o=1, G=2)
SCALES = [(1, 1), (4, 1), (1, 4), (4, 4), (8, 8)]
KERNELS = {
    "ring": logp_ring_program,
    "sum": logp_sum_program,
    "alltoall": logp_alltoall_program,
}


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for kname, factory in KERNELS.items():
        for gs, ls in SCALES:
            bsp = BSPParams(p=LOGP.p, g=LOGP.G * gs, l=LOGP.L * ls)
            rep = simulate_logp_on_bsp(LOGP, factory(), bsp_params=bsp)
            assert rep.outputs_match
            out[(kname, gs, ls)] = rep
    return out


def test_theorem1_report(sweep, publish, benchmark):
    benchmark.pedantic(
        lambda: simulate_logp_on_bsp(LOGP, logp_sum_program()), rounds=1, iterations=1
    )
    rows = []
    for (kname, gs, ls), rep in sweep.items():
        rows.append(
            (
                kname,
                f"g={LOGP.G * gs}",
                f"l={LOGP.L * ls}",
                rep.windows,
                rep.max_window_h,
                LOGP.capacity,
                f"{rep.slowdown:.2f}",
                f"{rep.predicted_slowdown:.2f}",
            )
        )
    publish(
        "theorem1_logp_on_bsp",
        render_table(
            ["kernel", "BSP g", "BSP l", "cycles", "max h", "ceil(L/G)", "slowdown", "O(1+g/G+l/L)"],
            rows,
            title=f"Theorem 1: LogP(p={LOGP.p}, L={LOGP.L}, o={LOGP.o}, G={LOGP.G}) simulated on BSP",
        ),
    )


def test_slowdown_below_prediction(sweep):
    for key, rep in sweep.items():
        assert rep.slowdown <= rep.predicted_slowdown * 1.05, key


def test_capacity_bound_holds(sweep):
    for key, rep in sweep.items():
        assert rep.max_window_h <= LOGP.capacity, key


def test_matched_machine_constant_slowdown(sweep):
    """On the matched machine the slowdown is a small constant (<= the
    predicted 1 + g/G + l/L = 5 here)."""
    for kname in KERNELS:
        rep = sweep[(kname, 1, 1)]
        assert rep.slowdown <= 5.0


def test_slowdown_monotone_in_g_and_l(sweep):
    for kname in KERNELS:
        base = sweep[(kname, 1, 1)].slowdown
        assert sweep[(kname, 4, 1)].slowdown >= base
        assert sweep[(kname, 1, 4)].slowdown >= base
        assert sweep[(kname, 8, 8)].slowdown >= sweep[(kname, 4, 4)].slowdown
