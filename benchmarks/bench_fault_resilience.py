"""Experiment FR — resilience cost over a misbehaving substrate.

Neither machine model prices failure: every admissible LogP execution
delivers every message exactly once, and the BSP exchange is an oracle.
This bench measures what resilience *costs* once the substrate misbehaves
(seeded :class:`~repro.faults.plan.FaultPlan`), as slowdown versus the
fault-free run:

* LogP kernels under the ack/retransmit transport
  (:func:`repro.faults.protocol.reliable`) over a ``FaultyMedium`` that
  drops / duplicates / delays / reorders — makespan inflation and
  retransmission counts, with results asserted equal to the clean run;
* BSP kernels under superstep checkpoint-and-retry — cost-ledger
  inflation and recovery-round counts, results bit-identical;
* store-and-forward routing over lossy links with link-level
  retransmission — h-relation routing-time inflation.

Set ``FAULT_BENCH_SMOKE=1`` (the ``make faults`` target does) for a
reduced grid that finishes in seconds.
"""

from __future__ import annotations

import os


from repro.bsp import BSPMachine
from repro.faults import FaultPlan, reliable
from repro.logp.machine import LogPMachine
from repro.models.params import BSPParams, LogPParams
from repro.networks.hypercube import Hypercube
from repro.networks.routing_sim import RoutingConfig, route_h_relation
from repro.programs import (
    bsp_prefix_program,
    bsp_sample_sort_program,
    logp_alltoall_program,
    logp_ring_program,
    logp_sum_program,
)
from repro.util.tables import render_table

SMOKE = bool(os.environ.get("FAULT_BENCH_SMOKE"))

LOGP_PARAMS = LogPParams(p=8, L=8, o=1, G=2)
BSP_PARAMS = BSPParams(p=8, g=2, l=10)
RATES = (0.0, 0.05, 0.1, 0.2) if SMOKE else (0.0, 0.02, 0.05, 0.1, 0.2, 0.3)
SEED = 1996


def _logp_kernels():
    return {
        "ring": logp_ring_program(),
        "sum": logp_sum_program(),
        "alltoall": logp_alltoall_program(),
    }


def _run_reliable(prog, rate: float):
    plan = FaultPlan(
        seed=SEED,
        drop_rate=rate,
        dup_rate=rate / 2,
        delay_rate=rate,
        max_extra_delay=LOGP_PARAMS.L,
        reorder_rate=rate,
    )
    machine = LogPMachine(LOGP_PARAMS, faults=plan, check_invariants=True)
    return machine.run(reliable(prog))


def test_logp_ack_retransmit_slowdown(publish, benchmark):
    kernels = _logp_kernels()
    clean = {
        name: LogPMachine(LOGP_PARAMS).run(prog) for name, prog in kernels.items()
    }
    benchmark.pedantic(
        lambda: _run_reliable(kernels["sum"], 0.1), rounds=1, iterations=1
    )
    rows = []
    for rate in RATES:
        for name, prog in kernels.items():
            plan = FaultPlan(
                seed=SEED,
                drop_rate=rate,
                dup_rate=rate / 2,
                delay_rate=rate,
                max_extra_delay=LOGP_PARAMS.L,
                reorder_rate=rate,
            )
            res = LogPMachine(
                LOGP_PARAMS, faults=plan, check_invariants=True
            ).run(reliable(prog))
            assert res.results == clean[name].results, (
                f"{name} corrupted at rate {rate}"
            )
            slow = res.makespan / clean[name].makespan
            rows.append(
                (rate, name, clean[name].makespan, res.makespan, f"{slow:.2f}",
                 res.total_messages)
            )
    publish(
        "fault_resilience_logp",
        render_table(
            ["fault rate", "kernel", "clean makespan", "faulty makespan",
             "slowdown", "messages (incl. acks/retx)"],
            rows,
            title=(
                f"Ack/retransmit LogP transport over a lossy medium "
                f"(p={LOGP_PARAMS.p}, L={LOGP_PARAMS.L}, o=1, G=2; "
                f"drop=delay=reorder=rate, dup=rate/2, seed={SEED})"
            ),
        ),
    )


def test_bsp_checkpoint_retry_slowdown(publish, benchmark):
    keys = 8 if SMOKE else 16
    kernels = {
        "prefix": bsp_prefix_program(),
        "sample-sort": bsp_sample_sort_program(keys_per_proc=keys, seed=9),
    }
    clean = {name: BSPMachine(BSP_PARAMS).run(prog) for name, prog in kernels.items()}
    benchmark.pedantic(
        lambda: BSPMachine(
            BSP_PARAMS, faults=FaultPlan(seed=SEED, drop_rate=0.1)
        ).run(kernels["prefix"]),
        rounds=1,
        iterations=1,
    )
    rows = []
    for rate in RATES:
        for name, prog in kernels.items():
            plan = FaultPlan(seed=SEED, drop_rate=rate)
            res = BSPMachine(BSP_PARAMS, faults=plan).run(prog)
            assert res.results == clean[name].results, (
                f"{name} corrupted at rate {rate}"
            )
            slow = res.total_cost / clean[name].total_cost
            rows.append(
                (rate, name, clean[name].total_cost, res.total_cost,
                 f"{slow:.2f}", res.total_retries)
            )
    publish(
        "fault_resilience_bsp",
        render_table(
            ["drop rate", "kernel", "clean cost", "faulty cost", "slowdown",
             "retry rounds"],
            rows,
            title=(
                f"BSP checkpoint-and-retry over a lossy exchange "
                f"(p={BSP_PARAMS.p}, g={BSP_PARAMS.g}, l={BSP_PARAMS.l}, "
                f"seed={SEED})"
            ),
        ),
    )


def test_routing_link_faults_slowdown(publish, benchmark):
    topo = Hypercube(16 if SMOKE else 64)
    h = 4
    clean = route_h_relation(topo, h, seed=2)
    benchmark.pedantic(
        lambda: route_h_relation(
            topo, h, seed=2,
            config=RoutingConfig(link_fault_rate=0.1, seed=SEED),
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for rate in RATES:
        out = route_h_relation(
            topo, h, seed=2,
            config=RoutingConfig(link_fault_rate=rate, seed=SEED),
        )
        assert out.packets == clean.packets
        rows.append(
            (rate, clean.time, out.time, f"{out.time / clean.time:.2f}",
             out.retransmissions)
        )
    publish(
        "fault_resilience_routing",
        render_table(
            ["link fault rate", "clean steps", "faulty steps", "slowdown",
             "retransmissions"],
            rows,
            title=(
                f"Lossy-link store-and-forward routing of a balanced "
                f"{h}-relation on the {topo.p}-node hypercube"
            ),
        ),
    )
