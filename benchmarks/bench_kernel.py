"""Kernel throughput benchmark + CI regression gate.

Measures events/second of the production kernels (``kernel="event"``
skip-ahead and ``kernel="adaptive"`` density-switched vectorized) against
the per-tick scanning reference (``kernel="tick"``) on fixed workloads,
and records all of them into ``BENCH_kernel.json`` at the repo root
(schema v2, one entry per measured kernel)::

    "workloads": {
      "<name>": {
        "floor": 1.0,                # absolute speedup floor (gated kernel)
        "baseline": {...tick...},
        "kernels": {
          "event":    {..., "speedup": <vs tick>},
          "adaptive": {..., "speedup": <vs tick>}
        }
      }
    }

The gate (``--check``) is per-workload and two-sided:

* the **gated kernel** (``adaptive`` — what the experiments run) must
  beat the tick reference on *every* workload: ``speedup >= floor``
  (1.0) absolutely, regardless of what the committed file says.  This is
  the rule that would have rejected the event kernel's 0.7x on
  ``routing_multiport_dense``.
* every measured kernel must also stay within ``gate_ratio`` (0.8) of
  its own committed speedup — the machine-speed-robust regression check
  (ratios of ratios cancel the host's absolute speed).

The ``event`` kernel keeps only the ratio gate: its dense-workload
slowdown is the documented reason the adaptive kernel exists.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # measure
    PYTHONPATH=src python benchmarks/bench_kernel.py --update   # rewrite json
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --check  # CI
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --out b.json

``--quick`` runs one repetition per measurement instead of three (same
workload sizes, so speedups stay comparable to the committed file).
``--out`` writes the measured report to a path of your choice (the CI
artifact) without touching the committed baseline.

The routing workloads pre-build their packet paths outside the timed
region: the benchmark gates the *kernels*, and workload generation
(h-relation sampling, path routing) is identical constant work for every
kernel that would only dilute the ratios.

This file is importable under pytest's ``bench_*.py`` collection but
defines no tests; it is an argparse CLI.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.campaign.io import dump_json, load_json  # noqa: E402
from repro.core.bsp_on_logp import simulate_bsp_on_logp  # noqa: E402
from repro.logp.machine import LogPMachine  # noqa: E402
from repro.models.params import LogPParams  # noqa: E402
from repro.networks import Hypercube  # noqa: E402
from repro.networks.routing_sim import (  # noqa: E402
    RoutingConfig,
    build_paths,
    route_h_relation,
    route_packets,
)
from repro.perf import clear_plan_caches  # noqa: E402
from repro.programs import logp_broadcast_program, logp_sum_program  # noqa: E402
from repro.routing.workloads import balanced_h_relation  # noqa: E402

BENCH_FILE = _REPO_ROOT / "BENCH_kernel.json"

#: Schema stamp of the committed benchmark file (see repro.campaign.io).
BENCH_KIND = "repro.bench.kernel"

#: Schema version of the per-kernel layout this module writes and reads.
BENCH_VERSION = 2

#: Regression tolerance: fail when measured speedup < RATIO * committed.
GATE_RATIO = 0.8

#: Absolute per-workload speedup floor for the gated kernel: the
#: production kernel must never lose to the tick reference.
FLOOR = 1.0

#: The kernel the floor applies to — what experiments actually run.
GATED_KERNEL = "adaptive"

#: Kernels measured against the tick baseline, in report order.
MEASURED_KERNELS = ("event", "adaptive")


def _run_bsp_on_logp_sweep(kernel: str, obs=None) -> int:
    """The acceptance workload: 64-processor BSP-on-LogP over an (L, G)
    sweep in the latency-dominated regime (offline Hall routing, so the
    h-relations ride pinned slots and the clock is mostly idle air the
    tick kernel has to scan through).  Returns events processed."""
    events = 0
    from repro.programs import bsp_prefix_program

    for L, G in ((128, 8), (256, 8), (512, 8)):
        params = LogPParams(p=64, L=L, o=2, G=G)
        rep = simulate_bsp_on_logp(
            params,
            bsp_prefix_program(),
            routing="offline",
            machine_kwargs={"kernel": kernel},
            obs=obs,
        )
        events += rep.logp.kernel.events
    return events


def _run_logp_machine(kernel: str) -> int:
    """Raw LogP machine: collectives at p=64 with large L."""
    events = 0
    for prog, params in (
        (logp_sum_program(), LogPParams(p=64, L=64, o=2, G=2)),
        (logp_broadcast_program(), LogPParams(p=64, L=96, o=2, G=3)),
    ):
        res = LogPMachine(params, kernel=kernel).run(prog)
        events += res.kernel.events
    return events


def _run_routing_singleport_faulty(kernel: str) -> int:
    """Single-port routing with a 0.9 link-fault rate: the long-tail
    regime (most packets delivered, a few retried for hundreds of steps)
    where the active-node set shrinks far below the node count."""
    cfg = RoutingConfig(
        single_port=True, link_fault_rate=0.9, seed=9, kernel=kernel
    )
    out = route_h_relation(Hypercube(256), 8, seed=1, config=cfg)
    return out.kernel.events


#: Pre-built routing inputs, keyed by (p, h, seed): path construction is
#: kernel-independent setup, kept outside the timed region.
_ROUTING_INPUTS: dict = {}


def _routing_inputs(p: int, h: int, seed: int):
    key = (p, h, seed)
    if key not in _ROUTING_INPUTS:
        topo = Hypercube(p)
        pairs = balanced_h_relation(topo.p, h, seed=seed)
        _ROUTING_INPUTS[key] = (topo, build_paths(topo, pairs, seed=seed + 1))
    return _ROUTING_INPUTS[key]


def _run_routing_multiport_dense(kernel: str) -> int:
    """Dense multi-port routing — the tick scan's best case (every
    created edge stays busy) and the event kernel's worst; the workload
    the adaptive kernel's vectorized dense scanner exists for."""
    topo, paths = _routing_inputs(64, 256, 1)
    out = route_packets(topo, paths, RoutingConfig(kernel=kernel))
    return out.kernel.events


def _run_routing_multiport_dense_xl(kernel: str) -> int:
    """The dense regime at ROADMAP scale: a 512-relation on the
    256-node hypercube (~half a million transmissions, ~2k live links
    per step) — large enough that per-step array passes amortize and the
    vectorized scanner pulls away from both scalar kernels."""
    topo, paths = _routing_inputs(256, 512, 1)
    out = route_packets(topo, paths, RoutingConfig(kernel=kernel))
    return out.kernel.events


WORKLOADS = {
    "bsp_on_logp_p64": _run_bsp_on_logp_sweep,
    "logp_machine_p64": _run_logp_machine,
    "routing_singleport_faulty": _run_routing_singleport_faulty,
    "routing_multiport_dense": _run_routing_multiport_dense,
    "routing_multiport_dense_xl": _run_routing_multiport_dense_xl,
}


def measure(fn, kernel: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for one workload on one kernel."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        clear_plan_caches()
        t0 = time.perf_counter()
        events = fn(kernel)
        best = min(best, time.perf_counter() - t0)
    return {
        "kernel": kernel,
        "events": events,
        "wall_s": round(best, 4),
        "events_per_s": round(events / best) if best else 0,
    }


def measure_interleaved(fn, kernels: tuple, repeats: int) -> dict:
    """Best-of-``repeats`` per kernel, with repetitions round-robined
    across the kernels instead of measured back-to-back.

    Back-to-back measurement carries a systematic ordering bias: host
    frequency scaling and cache state drift over the seconds a slow
    kernel occupies, so whichever kernel is measured last inherits the
    worst conditions — easily a 10%+ skew between kernels whose true
    difference is a few percent.  Round-robin repetitions spread that
    drift evenly, so the per-kernel bests are taken under comparable
    host conditions.
    """
    results = {k: {"best": float("inf"), "events": 0} for k in kernels}
    for _ in range(repeats):
        for kernel in kernels:
            clear_plan_caches()
            t0 = time.perf_counter()
            events = fn(kernel)
            wall = time.perf_counter() - t0
            slot = results[kernel]
            slot["events"] = events
            if wall < slot["best"]:
                slot["best"] = wall
    return {
        kernel: {
            "kernel": kernel,
            "events": slot["events"],
            "wall_s": round(slot["best"], 4),
            "events_per_s": (
                round(slot["events"] / slot["best"]) if slot["best"] else 0
            ),
        }
        for kernel, slot in results.items()
    }


def run_all(repeats: int) -> dict:
    workloads = {}
    for name, fn in WORKLOADS.items():
        measured = measure_interleaved(
            fn, ("tick", *MEASURED_KERNELS), repeats
        )
        baseline = measured["tick"]
        kernels = {}
        for kernel in MEASURED_KERNELS:
            current = measured[kernel]
            if current["events"] != baseline["events"]:
                raise AssertionError(
                    f"{name}: kernels diverged — {kernel} processed "
                    f"{current['events']} events, tick {baseline['events']}"
                )
            current["speedup"] = (
                round(baseline["wall_s"] / current["wall_s"], 2)
                if current["wall_s"]
                else 0.0
            )
            kernels[kernel] = current
        workloads[name] = {
            "floor": FLOOR,
            "baseline": baseline,
            "kernels": kernels,
        }
    return {
        "updated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "gate_ratio": GATE_RATIO,
        "gated_kernel": GATED_KERNEL,
        "workloads": workloads,
    }


def print_report(report: dict) -> None:
    print(
        f"{'workload':28s} {'tick ev/s':>12s} "
        + " ".join(f"{k + ' ev/s':>14s} {'x':>6s}" for k in MEASURED_KERNELS)
    )
    total = {k: 0 for k in ("tick", *MEASURED_KERNELS)}
    for name, entry in report["workloads"].items():
        total["tick"] += entry["baseline"]["events_per_s"]
        cols = []
        for k in MEASURED_KERNELS:
            cur = entry["kernels"][k]
            total[k] += cur["events_per_s"]
            cols.append(f"{cur['events_per_s']:>14,d} {cur['speedup']:>5.2f}x")
        print(
            f"{name:28s} {entry['baseline']['events_per_s']:>12,d} "
            + " ".join(cols)
        )
    print(
        f"{'aggregate':28s} {total['tick']:>12,d} "
        + " ".join(f"{total[k]:>14,d} {'':>6s}" for k in MEASURED_KERNELS)
    )


#: Disabled-instrumentation overhead gate (--obs-check): running with
#: ``Observation(enabled=False)`` must cost < 5% extra wall clock vs no
#: observation at all — a disabled observation is normalized to ``None``
#: at every constructor boundary, so the hot loops are byte-identical.
OBS_OVERHEAD_LIMIT = 0.05


def obs_check(repeats: int) -> int:
    from repro.obs import Observation

    repeats = max(repeats, 3)  # wall-clock ratio: keep jitter down
    base = measure(_run_bsp_on_logp_sweep, "event", repeats)
    disabled = measure(
        lambda kernel: _run_bsp_on_logp_sweep(
            kernel, obs=Observation(enabled=False)
        ),
        "event",
        repeats,
    )
    if disabled["events"] != base["events"]:
        print(
            f"FAIL  obs-check: event counts diverged "
            f"({disabled['events']} with disabled obs vs {base['events']})"
        )
        return 1
    overhead = (
        disabled["wall_s"] / base["wall_s"] - 1.0 if base["wall_s"] else 0.0
    )
    ok = overhead < OBS_OVERHEAD_LIMIT
    print(
        f"{'ok  ' if ok else 'FAIL'}  obs-check: bsp_on_logp_p64 disabled-"
        f"instrumentation overhead {overhead * 100:+.1f}% "
        f"(limit {OBS_OVERHEAD_LIMIT * 100:.0f}%)"
    )
    return 0 if ok else 1


def _committed_speedup(committed_entry: dict | None, kernel: str) -> float | None:
    """The committed speedup for ``kernel``, reading both the v2 layout
    (``kernels.<name>.speedup``) and the legacy v1 one (a single
    event-kernel ``speedup``)."""
    if committed_entry is None:
        return None
    ref = committed_entry.get("kernels", {}).get(kernel)
    if ref is not None:
        return ref.get("speedup")
    if kernel == "event":  # v1 files measured only the event kernel
        return committed_entry.get("speedup")
    return None


def check(report: dict, committed: dict | None) -> int:
    """Per-workload gate; returns the number of failures.

    Two conditions per workload (see module docstring): the gated
    kernel's absolute ``floor``, and each kernel's ``gate_ratio`` of its
    committed speedup.  The floor binds even when the workload has no
    committed entry yet — a brand-new workload cannot ship below 1.0x.
    """
    failures = 0
    committed_workloads = (committed or {}).get("workloads", {})
    gate_ratio = (committed or {}).get("gate_ratio", GATE_RATIO)
    for name, entry in report["workloads"].items():
        ref_entry = committed_workloads.get(name)
        if ref_entry is None and committed is not None:
            print(f"WARN  {name}: not in committed {BENCH_FILE.name}")
        for kernel, current in entry["kernels"].items():
            threshold = 0.0
            reasons = []
            if kernel == GATED_KERNEL:
                floor = entry.get("floor", FLOOR)
                threshold = max(threshold, floor)
                reasons.append(f"floor {floor:.2f}x")
            ref_speedup = _committed_speedup(ref_entry, kernel)
            if ref_speedup is not None:
                ratio_floor = gate_ratio * ref_speedup
                threshold = max(threshold, ratio_floor)
                reasons.append(
                    f"{gate_ratio:.2f} x committed {ref_speedup:.2f}x"
                )
            if not reasons:
                continue
            ok = current["speedup"] >= threshold
            if not ok:
                failures += 1
            print(
                f"{'ok  ' if ok else 'FAIL'}  {name} [{kernel}]: speedup "
                f"{current['speedup']:.2f}x (gate {threshold:.2f}x = "
                f"max of {', '.join(reasons)})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="one repetition per measurement"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when any workload's gated-kernel speedup drops below "
        f"{FLOOR}x, or any kernel regresses >"
        f"{round((1 - GATE_RATIO) * 100)}%% vs the committed "
        f"{BENCH_FILE.name}",
    )
    parser.add_argument(
        "--update", action="store_true", help=f"rewrite {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="also write the measured report to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--obs-check",
        action="store_true",
        help=f"fail when a disabled Observation adds >="
        f"{round(OBS_OVERHEAD_LIMIT * 100)}%% wall clock on bsp_on_logp_p64",
    )
    args = parser.parse_args(argv)

    if args.obs_check and not (args.check or args.update or args.out):
        return obs_check(repeats=1 if args.quick else 3)

    report = run_all(repeats=1 if args.quick else 3)
    print_report(report)

    rc = 0
    if args.obs_check:
        rc = max(rc, obs_check(repeats=1 if args.quick else 3))
    if args.check:
        if not BENCH_FILE.exists():
            print(f"FAIL  committed {BENCH_FILE.name} missing")
            rc = 1
        else:
            committed = load_json(
                BENCH_FILE,
                kind=BENCH_KIND,
                allow_legacy=True,
                max_version=BENCH_VERSION,
            )
            rc = max(rc, 1 if check(report, committed) else 0)
    if args.update:
        dump_json(BENCH_FILE, BENCH_KIND, report, version=BENCH_VERSION)
        print(f"wrote {BENCH_FILE}")
    if args.out:
        out = dump_json(args.out, BENCH_KIND, report, version=BENCH_VERSION)
        print(f"wrote {out}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
