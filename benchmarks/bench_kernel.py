"""Kernel throughput benchmark + CI regression gate.

Measures events/second of the event-driven kernel (``kernel="event"``)
against the per-tick scanning reference (``kernel="tick"``) on fixed
workloads, and records both into ``BENCH_kernel.json`` at the repo root:

* ``baseline`` — the tick kernel's numbers (the pre-event-queue loop);
* ``current`` — the event kernel's numbers;
* ``speedup`` — ``baseline.wall_s / current.wall_s`` (equivalently the
  events/sec ratio: both kernels process the *same* events).

The gate compares speedups, not absolute wall-clock, so it is robust to
CI machines being faster or slower than the machine that produced the
committed file: ``--check`` fails when any workload's measured speedup
falls below ``0.8 x`` the committed speedup (a >20% events/sec
regression of the event kernel relative to its own baseline).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # measure
    PYTHONPATH=src python benchmarks/bench_kernel.py --update   # rewrite json
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --check  # CI

``--quick`` runs one repetition per measurement instead of three (same
workload sizes, so speedups stay comparable to the committed file).

This file is importable under pytest's ``bench_*.py`` collection but
defines no tests; it is an argparse CLI.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.campaign.io import dump_json, load_json  # noqa: E402
from repro.core.bsp_on_logp import simulate_bsp_on_logp  # noqa: E402
from repro.logp.machine import LogPMachine  # noqa: E402
from repro.models.params import LogPParams  # noqa: E402
from repro.networks import Hypercube  # noqa: E402
from repro.networks.routing_sim import RoutingConfig, route_h_relation  # noqa: E402
from repro.perf import clear_plan_caches  # noqa: E402
from repro.programs import logp_broadcast_program, logp_sum_program  # noqa: E402

BENCH_FILE = _REPO_ROOT / "BENCH_kernel.json"

#: Schema stamp of the committed benchmark file (see repro.campaign.io).
BENCH_KIND = "repro.bench.kernel"

#: Regression tolerance: fail when measured speedup < RATIO * committed.
GATE_RATIO = 0.8


def _run_bsp_on_logp_sweep(kernel: str, obs=None) -> int:
    """The acceptance workload: 64-processor BSP-on-LogP over an (L, G)
    sweep in the latency-dominated regime (offline Hall routing, so the
    h-relations ride pinned slots and the clock is mostly idle air the
    tick kernel has to scan through).  Returns events processed."""
    events = 0
    from repro.programs import bsp_prefix_program

    for L, G in ((128, 8), (256, 8), (512, 8)):
        params = LogPParams(p=64, L=L, o=2, G=G)
        rep = simulate_bsp_on_logp(
            params,
            bsp_prefix_program(),
            routing="offline",
            machine_kwargs={"kernel": kernel},
            obs=obs,
        )
        events += rep.logp.kernel.events
    return events


def _run_logp_machine(kernel: str) -> int:
    """Raw LogP machine: collectives at p=64 with large L."""
    events = 0
    for prog, params in (
        (logp_sum_program(), LogPParams(p=64, L=64, o=2, G=2)),
        (logp_broadcast_program(), LogPParams(p=64, L=96, o=2, G=3)),
    ):
        res = LogPMachine(params, kernel=kernel).run(prog)
        events += res.kernel.events
    return events


def _run_routing_singleport_faulty(kernel: str) -> int:
    """Single-port routing with a 0.9 link-fault rate: the long-tail
    regime (most packets delivered, a few retried for hundreds of steps)
    where the active-node set shrinks far below the node count."""
    cfg = RoutingConfig(
        single_port=True, link_fault_rate=0.9, seed=9, kernel=kernel
    )
    out = route_h_relation(Hypercube(256), 8, seed=1, config=cfg)
    return out.kernel.events


def _run_routing_multiport_dense(kernel: str) -> int:
    """Dense multi-port routing — the tick scan's best case (every
    created edge stays busy); tracked to ensure the event kernel stays
    within a constant factor where it has nothing to skip."""
    cfg = RoutingConfig(kernel=kernel)
    out = route_h_relation(Hypercube(64), 256, seed=1, config=cfg)
    return out.kernel.events


WORKLOADS = {
    "bsp_on_logp_p64": _run_bsp_on_logp_sweep,
    "logp_machine_p64": _run_logp_machine,
    "routing_singleport_faulty": _run_routing_singleport_faulty,
    "routing_multiport_dense": _run_routing_multiport_dense,
}


def measure(fn, kernel: str, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for one workload on one kernel."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        clear_plan_caches()
        t0 = time.perf_counter()
        events = fn(kernel)
        best = min(best, time.perf_counter() - t0)
    return {
        "kernel": kernel,
        "events": events,
        "wall_s": round(best, 4),
        "events_per_s": round(events / best) if best else 0,
    }


def run_all(repeats: int) -> dict:
    workloads = {}
    for name, fn in WORKLOADS.items():
        baseline = measure(fn, "tick", repeats)
        current = measure(fn, "event", repeats)
        if current["events"] != baseline["events"]:
            raise AssertionError(
                f"{name}: kernels diverged — event processed "
                f"{current['events']} events, tick {baseline['events']}"
            )
        workloads[name] = {
            "baseline": baseline,
            "current": current,
            "speedup": round(baseline["wall_s"] / current["wall_s"], 2)
            if current["wall_s"]
            else 0.0,
        }
    return {
        "updated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "gate_ratio": GATE_RATIO,
        "workloads": workloads,
    }


def print_report(report: dict) -> None:
    print(f"{'workload':24s} {'tick ev/s':>12s} {'event ev/s':>12s} {'speedup':>8s}")
    for name, entry in report["workloads"].items():
        print(
            f"{name:24s} {entry['baseline']['events_per_s']:>12,d} "
            f"{entry['current']['events_per_s']:>12,d} "
            f"{entry['speedup']:>7.2f}x"
        )


#: Disabled-instrumentation overhead gate (--obs-check): running with
#: ``Observation(enabled=False)`` must cost < 5% extra wall clock vs no
#: observation at all — a disabled observation is normalized to ``None``
#: at every constructor boundary, so the hot loops are byte-identical.
OBS_OVERHEAD_LIMIT = 0.05


def obs_check(repeats: int) -> int:
    from repro.obs import Observation

    repeats = max(repeats, 3)  # wall-clock ratio: keep jitter down
    base = measure(_run_bsp_on_logp_sweep, "event", repeats)
    disabled = measure(
        lambda kernel: _run_bsp_on_logp_sweep(
            kernel, obs=Observation(enabled=False)
        ),
        "event",
        repeats,
    )
    if disabled["events"] != base["events"]:
        print(
            f"FAIL  obs-check: event counts diverged "
            f"({disabled['events']} with disabled obs vs {base['events']})"
        )
        return 1
    overhead = (
        disabled["wall_s"] / base["wall_s"] - 1.0 if base["wall_s"] else 0.0
    )
    ok = overhead < OBS_OVERHEAD_LIMIT
    print(
        f"{'ok  ' if ok else 'FAIL'}  obs-check: bsp_on_logp_p64 disabled-"
        f"instrumentation overhead {overhead * 100:+.1f}% "
        f"(limit {OBS_OVERHEAD_LIMIT * 100:.0f}%)"
    )
    return 0 if ok else 1


def check(report: dict, committed: dict) -> int:
    """Gate: measured speedup must stay within GATE_RATIO of committed."""
    failures = 0
    for name, entry in report["workloads"].items():
        ref = committed.get("workloads", {}).get(name)
        if ref is None:
            print(f"WARN  {name}: not in committed {BENCH_FILE.name}, skipping")
            continue
        floor = GATE_RATIO * ref["speedup"]
        status = "ok  " if entry["speedup"] >= floor else "FAIL"
        if status == "FAIL":
            failures += 1
        print(
            f"{status}  {name}: speedup {entry['speedup']:.2f}x "
            f"(committed {ref['speedup']:.2f}x, floor {floor:.2f}x)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="one repetition per measurement"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail on >{round((1 - GATE_RATIO) * 100)}%% speedup regression "
        f"vs the committed {BENCH_FILE.name}",
    )
    parser.add_argument(
        "--update", action="store_true", help=f"rewrite {BENCH_FILE.name}"
    )
    parser.add_argument(
        "--obs-check",
        action="store_true",
        help=f"fail when a disabled Observation adds >="
        f"{round(OBS_OVERHEAD_LIMIT * 100)}%% wall clock on bsp_on_logp_p64",
    )
    args = parser.parse_args(argv)

    if args.obs_check and not (args.check or args.update):
        return obs_check(repeats=1 if args.quick else 3)

    report = run_all(repeats=1 if args.quick else 3)
    print_report(report)

    rc = 0
    if args.obs_check:
        rc = max(rc, obs_check(repeats=1 if args.quick else 3))
    if args.check:
        if not BENCH_FILE.exists():
            print(f"FAIL  committed {BENCH_FILE.name} missing")
            rc = 1
        else:
            committed = load_json(BENCH_FILE, kind=BENCH_KIND, allow_legacy=True)
            rc = max(rc, 1 if check(report, committed) else 0)
    if args.update:
        dump_json(BENCH_FILE, BENCH_KIND, report)
        print(f"wrote {BENCH_FILE}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
