"""Service throughput benchmark: served-requests/sec vs cache hit rate.

Drives an in-process :class:`~repro.service.SimulationService` through
three phases at target hit rates **0% / 50% / 95%** and reports
served-requests/sec for each — the served-throughput-vs-hit-rate curve
that characterizes the serving tier the way slowdown curves characterize
the simulators.

Per phase, a request population is built so that the chosen fraction of
submissions repeats already-cached points (prewarmed before the timed
region) while the rest are distinct cold misses.  The service runs with
``workers=0`` — misses compute *in the dispatcher's thread*, no pool
worker process is ever spawned — so the phase results double as the
acceptance proof for the hit path:

* at every hit rate the stats must **reconcile exactly**:
  ``requests == served == hit + dedup + miss``;
* ``pool_points`` must equal the number of *distinct* cold points — at
  95% hit rate the cache-hit majority is served without the pool seeing
  a single extra point.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

The JSON artifact goes through the schema-versioned
:func:`repro.campaign.io.dump_json` emitter (kind ``bench_service``).

This file is importable under pytest's ``bench_*.py`` collection but
defines no tests; it is an argparse CLI.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.campaign.io import dump_json  # noqa: E402
from repro.service import ServiceConfig, SimulationService  # noqa: E402
from repro.util.tables import render_table  # noqa: E402

#: (label, target hit fraction) — the acceptance criteria's three points.
HIT_RATES = (("cold", 0.0), ("warm", 0.5), ("hot", 0.95))


def _doc(i: int, *, seed: int = 0) -> dict:
    """The i-th distinct request: same tiny chain, distinct seed axis —
    distinct content-addressed keys, near-identical compute cost."""
    return {"chain": "bsp", "program": "prefix", "p": 4, "seed": seed + i}


def _phase_population(label: str, hit_fraction: float, total: int) -> tuple:
    """Build (prewarm_docs, request_docs): ``hit_fraction`` of the
    requests cycle over the prewarmed keys, the rest are distinct cold
    points.  Seeds are namespaced per phase so phases never share keys."""
    base = [lbl for lbl, _ in HIT_RATES].index(label) * 1_000_000
    hits = round(total * hit_fraction)
    misses = total - hits
    warm_pool = max(1, min(hits, max(1, misses // 2))) if hits else 0
    prewarm = [_doc(i, seed=base) for i in range(warm_pool)]
    requests = [_doc(warm_pool + i, seed=base) for i in range(misses)]
    requests += [prewarm[i % warm_pool] for i in range(hits)]
    # Interleave hits and misses so the served mix is steady, not phased.
    requests.sort(key=lambda d: d["seed"] % 7)
    return prewarm, requests


async def _run_phase(svc: SimulationService, label: str,
                     hit_fraction: float, total: int) -> dict:
    prewarm, requests = _phase_population(label, hit_fraction, total)
    for doc in prewarm:  # sequential: these are the cache's warm set
        resp = await svc.submit(doc)
        assert resp["ok"], f"prewarm failed: {resp}"
    svc.stats.reset()
    t0 = time.perf_counter()
    responses = await asyncio.gather(*(svc.submit(d) for d in requests))
    wall_s = time.perf_counter() - t0
    assert all(r["ok"] for r in responses), "phase had failing responses"

    stats = svc.stats
    distinct_misses = len({r["key"] for r in responses
                           if r["outcome"] in ("miss", "dedup")})
    issued = len(requests)
    # -- acceptance: counters reconcile exactly with requests issued --
    assert stats.reconciled(), stats.as_dict()
    assert stats.requests == issued, (stats.requests, issued)
    served_sum = sum(stats.counts.values())
    assert served_sum == issued, (served_sum, issued)
    # -- acceptance: the pool saw only the distinct cold points --
    assert stats.pool_points == distinct_misses, (
        stats.pool_points, distinct_misses)
    return {
        "label": label,
        "target_hit_rate": hit_fraction,
        "requests": issued,
        "wall_s": round(wall_s, 6),
        "served_per_s": round(issued / wall_s, 2) if wall_s else None,
        "observed_hit_rate": round(stats.hit_rate(), 6),
        "hit": stats.counts["hit"],
        "dedup": stats.counts["dedup"],
        "miss": stats.counts["miss"],
        "pool_jobs": stats.pool_jobs,
        "pool_points": stats.pool_points,
        "reconciled": stats.reconciled(),
        "latency_ms": {
            outcome: {
                "mean": round(h.mean * 1000, 4) if h.count else None,
                "max": round(h.max * 1000, 4) if h.count else None,
                "count": h.count,
            }
            for outcome, h in stats.latency.items()
        },
    }


def measure(total: int) -> dict:
    async def _main() -> list[dict]:
        out = []
        with tempfile.TemporaryDirectory(prefix="bench-service-") as d:
            cfg = ServiceConfig(
                store_dir=d, shards=8, workers=0,
                batch_window_s=0.0,  # throughput, not coalescing latency
            )
            async with SimulationService(cfg) as svc:
                for label, rate in HIT_RATES:
                    out.append(await _run_phase(svc, label, rate, total))
        return out

    phases = asyncio.run(_main())
    return {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "requests_per_phase": total,
        "workers": 0,
        "phases": phases,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small request population (CI smoke)",
    )
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="requests per phase (default 200, or 60 with --quick)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the report JSON (schema kind 'bench_service')",
    )
    args = parser.parse_args(argv)
    total = args.requests or (60 if args.quick else 200)

    report = measure(total)
    rows = [
        (
            ph["label"],
            f"{ph['target_hit_rate']:.0%}",
            f"{ph['observed_hit_rate']:.0%}",
            ph["requests"],
            ph["served_per_s"],
            ph["hit"],
            ph["dedup"],
            ph["miss"],
            ph["pool_points"],
            "yes" if ph["reconciled"] else "NO",
        )
        for ph in report["phases"]
    ]
    print(render_table(
        ["phase", "target hit", "observed", "requests", "served/s",
         "hit", "dedup", "miss", "pool pts", "reconciled"],
        rows,
        title=f"service throughput vs hit rate ({total} requests/phase, "
        f"workers=0: misses compute in-process, no pool worker spawned)",
    ))
    if args.out:
        path = dump_json(args.out, "bench_service", report)
        print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
