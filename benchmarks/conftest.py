"""Benchmark-harness plumbing.

Every bench regenerates one of the paper's quantitative artifacts (see
the experiment index in DESIGN.md), prints it as a table, and appends it
to ``benchmarks/results/<name>.txt`` so the numbers survive the run.
pytest-benchmark wraps a representative kernel of each experiment so the
suite also tracks wall-clock performance of the simulators themselves.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir, capsys):
    """Print a table and persist it under benchmarks/results/."""

    def _publish(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish


@pytest.fixture
def publish_json(results_dir):
    """Persist a schema-versioned JSON artifact under benchmarks/results/.

    Stamped via :func:`repro.campaign.io.dump_json`, so downstream
    consumers can validate ``{"schema": {"name", "version"}}`` with
    :func:`repro.campaign.io.load_json` instead of sniffing shapes.
    """

    def _publish(name: str, payload: dict, *, kind: str | None = None):
        from repro.campaign.io import dump_json

        return dump_json(
            results_dir / f"{name}.json", kind or f"repro.bench.{name}", payload
        )

    return _publish
