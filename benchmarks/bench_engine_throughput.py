"""Simulator performance: events/second of the three engines.

Not a paper experiment — housekeeping numbers so regressions in the
simulators themselves are visible.  Reported via pytest-benchmark.
"""

from repro.bsp.machine import BSPMachine
from repro.logp import LogPMachine
from repro.models.params import BSPParams, LogPParams
from repro.networks import Hypercube
from repro.networks.routing_sim import route_h_relation
from repro.programs import logp_alltoall_program, bsp_radix_sort_program


def test_logp_engine_throughput(benchmark):
    """p=64 all-to-all: ~4k messages through the event engine."""
    params = LogPParams(p=64, L=16, o=1, G=2)

    def run():
        res = LogPMachine(params).run(logp_alltoall_program())
        assert res.total_messages == 64 * 63
        return res

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bsp_engine_throughput(benchmark):
    """p=16 radix sort: a few thousand messages across ~10 supersteps."""
    params = BSPParams(p=16, g=2, l=16)
    prog = bsp_radix_sort_program(keys_per_proc=32, key_bits=16, seed=1)

    def run():
        out = BSPMachine(params).run(prog)
        flat = [k for block in out.results for k in block]
        assert flat == sorted(flat)
        return out

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_packet_router_throughput(benchmark):
    """1024-node hypercube, 8-relation: ~8k packets, ~10 hops each."""
    topo = Hypercube(1024)

    def run():
        return route_h_relation(topo, 8, seed=0)

    benchmark.pedantic(run, rounds=3, iterations=1)
