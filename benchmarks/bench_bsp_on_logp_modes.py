"""Experiments TH2/TH3 (application level) — a full BSP application
(the paper's §6 radix-sort example) executed on LogP under all three
routing modes, with per-phase timing.

The qualitative shape the paper predicts: the on-line deterministic
protocol pays a large constant (its sorting phase), the randomized
protocol with known h is near the off-line optimum, and all three agree
with the native BSP results exactly.
"""

import pytest

from repro.core.bsp_on_logp import simulate_bsp_on_logp
from repro.models.params import LogPParams
from repro.programs import bsp_prefix_program, bsp_radix_sort_program
from repro.util.tables import render_table

PARAMS = LogPParams(p=16, L=16, o=1, G=2)
MODES = ("deterministic", "randomized", "offline")


@pytest.fixture(scope="module")
def runs():
    def prog():
        return bsp_radix_sort_program(keys_per_proc=8, key_bits=8, seed=17)

    out = {}
    for mode in MODES:
        out[mode] = simulate_bsp_on_logp(PARAMS, prog(), routing=mode, seed=29)
    return out


def test_modes_report(runs, publish, benchmark):
    benchmark.pedantic(
        lambda: simulate_bsp_on_logp(
            LogPParams(p=8, L=16, o=1, G=2), bsp_prefix_program(), routing="offline"
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for mode, rep in runs.items():
        sync = sum(t.t_sync for t in rep.timings)
        route = sum(t.t_route for t in rep.timings)
        rows.append(
            (
                mode,
                rep.bsp_cost,
                rep.total_logp_time,
                sync,
                route,
                f"{rep.slowdown:.2f}",
                f"{rep.predicted_slowdown:.2f}",
                len(rep.logp.stalls),
            )
        )
    publish(
        "bsp_on_logp_modes",
        render_table(
            ["routing", "BSP cost", "LogP time", "sum T_sync", "sum T_rout", "S meas", "S paper", "stalls"],
            rows,
            title=(
                f"BSP radix sort on LogP (p={PARAMS.p}, L={PARAMS.L}, o=1, G=2): "
                f"all three Section 4 routing modes"
            ),
        ),
    )


def test_all_modes_sort_correctly(runs):
    for mode, rep in runs.items():
        flat = [k for block in rep.results for k in block]
        assert flat == sorted(flat), mode


def test_expected_ordering_of_modes(runs):
    """offline <= randomized < deterministic in total time."""
    assert runs["offline"].total_logp_time <= runs["randomized"].total_logp_time * 1.2
    assert runs["randomized"].total_logp_time < runs["deterministic"].total_logp_time


def test_offline_near_paper_S(runs):
    rep = runs["offline"]
    assert rep.slowdown <= 3.0 * rep.predicted_slowdown


def test_multi_superstep_routing_linear_in_sum_h(runs):
    """Section 4.3's sequence claim: the communication phases of T
    supersteps cost O(G * sum h_i) under the known-h protocols."""
    for mode in ("offline", "randomized"):
        rep = runs[mode]
        sum_h = sum(rec.h for rec in rep.bsp_native.ledger)
        sum_route = sum(t.t_route for t in rep.timings)
        budget = 4 * PARAMS.G * sum_h + len(rep.timings) * 6 * PARAMS.L
        assert sum_route <= budget, (mode, sum_route, budget)
