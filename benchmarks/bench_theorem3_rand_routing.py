"""Experiment TH3 — **Theorem 3**: randomized routing of known-degree
h-relations.

Regenerates the theorem's trade-off: with ``R = (1 + beta) h / ceil(L/G)``
batches the protocol is stall-free w.h.p. and finishes in ``O(G h)``;
shrinking R accelerates the round phase but raises the stall probability.
Also reports the paper's own (astronomically conservative) constants.
"""

import pytest

from repro.core.rand_routing import measure_rand_routing
from repro.models.cost import theorem3_failure_bound
from repro.models.params import LogPParams
from repro.routing.workloads import balanced_h_relation
from repro.util.tables import render_table

# Theorem hypothesis: ceil(L/G) >= c1 log p -> capacity 8 = 2 log2(16).
PARAMS = LogPParams(p=16, L=16, o=1, G=2)
H = 16
R_GRID = (2, 4, 8, 16)
SEEDS = tuple(range(10))


@pytest.fixture(scope="module")
def sweep():
    pairs = balanced_h_relation(PARAMS.p, H, seed=123)
    out = {}
    for R in R_GRID:
        runs = [measure_rand_routing(PARAMS, pairs, seed=s, R=R) for s in SEEDS]
        out[R] = runs
    return out


def test_theorem3_report(sweep, publish, benchmark):
    pairs = balanced_h_relation(PARAMS.p, H, seed=123)
    benchmark.pedantic(
        lambda: measure_rand_routing(PARAMS, pairs, seed=0, R=8), rounds=1, iterations=1
    )
    rows = []
    for R, runs in sweep.items():
        stalled = sum(r.stalled for r in runs)
        clean = sum(r.clean for r in runs)
        tmax = max(r.total_time for r in runs)
        rows.append(
            (
                R,
                f"{R * PARAMS.capacity / H:.1f}",
                f"{stalled}/{len(runs)}",
                f"{clean}/{len(runs)}",
                tmax,
                2 * (PARAMS.L + PARAMS.o) * R,
                PARAMS.G * H,
            )
        )
    # The paper's constants for reference (c1 = c2 = 1).
    m_paper = measure_rand_routing(PARAMS, pairs, seed=0)
    rows.append(
        (
            m_paper.plan.R,
            f"{m_paper.plan.R * PARAMS.capacity / H:.0f}",
            "0/1",
            "1/1",
            m_paper.total_time,
            int(m_paper.time_bound),
            PARAMS.G * H,
        )
    )
    publish(
        "theorem3_rand_routing",
        render_table(
            ["R", "(1+beta)", "stalled", "clean", "T max", "2(L+o)R bound", "G h"],
            rows,
            title=(
                f"Theorem 3: randomized h-relation routing "
                f"(p={PARAMS.p}, h={H}, capacity={PARAMS.capacity}, {len(SEEDS)} seeds; "
                f"last row = paper's c1=c2=1 constants)"
            ),
        ),
    )
    assert m_paper.clean  # paper constants: overwhelming success probability


def test_stall_probability_monotone_in_R(sweep):
    stall_counts = {R: sum(r.stalled for r in runs) for R, runs in sweep.items()}
    assert stall_counts[16] <= stall_counts[8] <= stall_counts[4] <= stall_counts[2]


def test_adequate_R_mostly_clean(sweep):
    assert sum(r.clean for r in sweep[16]) >= 9


def test_time_linear_in_R_when_clean(sweep):
    for R, runs in sweep.items():
        for r in runs:
            if r.clean:
                assert r.total_time <= 2 * (PARAMS.L + PARAMS.o) * R + 8 * PARAMS.L


def test_chernoff_bound_conservative(sweep):
    """Empirical stall frequency must not exceed the analytic bound
    (evaluated at the effective beta of each R)."""
    for R, runs in sweep.items():
        beta_hat = R * PARAMS.capacity / H - 1.0
        if beta_hat <= 0:
            continue  # bound vacuous
        bound = theorem3_failure_bound(H, PARAMS, beta_hat)
        freq = sum(r.stalled for r in runs) / len(runs)
        assert freq <= bound + 0.35  # finite-sample slack
