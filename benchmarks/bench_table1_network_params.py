"""Experiment T1 — regenerate **Table 1** of the paper.

For every topology row, route balanced h-relations on the packet
simulator at two machine sizes, fit ``T(h) = gamma h + delta``, and
check the *growth* of the fitted parameters against the table's
asymptotic forms (constants depend on our store-and-forward substrate;
the paper's claim is the asymptotic class).
"""


import pytest

from repro.models.cost import TABLE1
from repro.networks.params import TOPOLOGY_BUILDERS, measure_network_params
from repro.networks.routing_sim import route_h_relation
from repro.util.tables import render_table

SIZES = (16, 64)
HS = (1, 2, 4, 8)
SEEDS = (0, 1)


def _measure(name, p):
    topo, config = TOPOLOGY_BUILDERS[name](p)
    return measure_network_params(
        topo, table_name=name, hs=HS, seeds=SEEDS, config=config
    )


@pytest.fixture(scope="module")
def survey():
    return {
        name: {p: _measure(name, p) for p in SIZES} for name in TOPOLOGY_BUILDERS
    }


def test_table1_report(survey, publish, benchmark):
    benchmark.pedantic(
        lambda: _measure("hypercube (single-port)", 16), rounds=1, iterations=1
    )
    rows = []
    for name, by_p in survey.items():
        costs = TABLE1[name]
        for p, meas in by_p.items():
            th_g, th_d = meas.theory()
            rows.append(
                (
                    name,
                    meas.p,
                    f"{meas.gamma:.2f}",
                    f"{th_g:.1f} ~ {costs.gamma_expr}",
                    f"{meas.delta:.2f}",
                    f"{th_d:.1f} ~ {costs.delta_expr}",
                    f"{meas.r2:.3f}",
                )
            )
    publish(
        "table1_network_params",
        render_table(
            ["topology", "p", "gamma fit", "gamma Table 1", "delta fit", "delta Table 1", "R^2"],
            rows,
            title="Table 1 reproduction: fitted T(h) = gamma h + delta per topology",
        ),
    )


def test_gamma_growth_classes(survey):
    """gamma growth from p=16 to p=64 must follow the Table 1 class:
    sqrt growth for array/mesh-of-trees, flat for multi-port hypercube,
    log growth for the log p rows."""

    def growth(name):
        g16 = max(survey[name][16].gamma, 0.3)
        g64 = max(survey[name][64].gamma, 0.3)
        return g64 / g16

    # sqrt(p): x4 in p -> x2 in gamma (allow wide tolerance)
    assert 1.4 <= growth("d-dim array") <= 3.0
    assert 1.3 <= growth("mesh-of-trees") <= 3.2
    # Theta(1): flat-ish
    assert growth("hypercube (multi-port)") <= 1.6
    # Theta(log p): between flat and sqrt
    assert 1.0 <= growth("hypercube (single-port)") <= 2.2
    assert 1.0 <= growth("butterfly") <= 2.6
    assert 1.0 <= growth("shuffle-exchange") <= 2.6


def test_delta_tracks_diameter(survey):
    for name, by_p in survey.items():
        for p, meas in by_p.items():
            assert meas.delta <= 4.0 * meas.diameter + 4.0


def test_fit_quality(survey):
    for name, by_p in survey.items():
        for meas in by_p.values():
            assert meas.r2 >= 0.75, f"{name}: poor affine fit (r2={meas.r2})"


def test_d3_array_dimension_dependence(publish):
    """Table 1's array row is parameterized by d: for d=3,
    gamma = delta = Theta(p^{1/3}).  Octupling p (side 4 -> 8) must double
    gamma, unlike the d=2 quadrupling."""
    from repro.networks.array_nd import ArrayND
    from repro.networks.routing_sim import RoutingConfig

    rows = []
    gammas = {}
    for side in (4, 8):
        topo = ArrayND((side, side, side))
        meas = measure_network_params(
            topo,
            table_name="d-dim array",
            hs=HS,
            seeds=SEEDS,
            config=RoutingConfig(priority="farthest"),
        )
        gammas[side] = max(meas.gamma, 0.3)
        rows.append((side**3, f"{meas.gamma:.2f}", f"{float(side):.1f}", f"{meas.delta:.2f}"))
    publish(
        "table1_d3_array",
        render_table(
            ["p", "gamma fit", "p^(1/3)", "delta fit"],
            rows,
            title="Table 1, d=3 array: gamma tracks p^(1/3) (x2 per x8 in p)",
        ),
    )
    assert 1.3 <= gammas[8] / gammas[4] <= 3.2


def test_bench_hypercube_routing_kernel(benchmark):
    topo, config = TOPOLOGY_BUILDERS["hypercube (single-port)"](64)
    benchmark.pedantic(
        lambda: route_h_relation(topo, 8, seed=0, config=config),
        rounds=3,
        iterations=1,
    )


def test_bench_mesh_of_trees_routing_kernel(benchmark):
    topo, config = TOPOLOGY_BUILDERS["mesh-of-trees"](64)
    benchmark.pedantic(
        lambda: route_h_relation(topo, 8, seed=0, config=config),
        rounds=3,
        iterations=1,
    )
