"""Experiment AB-NET / AB-COST (ablations).

1. **Routing strategy on networks**: direct oblivious routing vs
   Valiant's two-phase randomization, FIFO vs farthest-first queues, on
   an adversarial permutation (the classic bad case for deterministic
   oblivious routing) and on random h-relations.  The Table 1 results
   the paper cites rely on randomization for worst-case inputs; the
   ablation shows why.

2. **BSP cost conventions**: the paper charges ``g * max(h_in, h_out)``;
   model-variant studies (paper ref. [12]) also use the sum or the
   send-only degree.  The ablation shows the conventions differ by at
   most 2x on real programs and never change program results — model
   robustness.
"""

from repro.bsp.machine import BSPMachine
from repro.models.params import BSPParams
from repro.networks import Hypercube
from repro.networks.routing_sim import RoutingConfig, build_paths, route_packets
from repro.programs import bsp_prefix_program, bsp_radix_sort_program, bsp_sample_sort_program
from repro.util.tables import render_table


def bit_reversal_permutation(p):
    k = p.bit_length() - 1
    out = []
    for u in range(p):
        v = int(format(u, f"0{k}b")[::-1], 2)
        if v != u:
            out.append((u, v))
    return out


def test_routing_strategy_report(publish, benchmark):
    """Adversarial permutations need randomization (Valiant); random
    traffic does not — at a scale where e-cube congestion actually bites
    (bit reversal on the single-port 1024-hypercube)."""
    big = Hypercube(1024)
    adversarial = bit_reversal_permutation(1024)
    small = Hypercube(64)
    from repro.routing.workloads import balanced_h_relation

    random_rel = balanced_h_relation(64, 4, seed=1)

    def measure(topo, pairs, valiant, single_port, priority="fifo", seed=0):
        cfg = RoutingConfig(valiant=valiant, single_port=single_port, priority=priority)
        paths = build_paths(topo, pairs, valiant=valiant, seed=seed)
        return route_packets(topo, paths, cfg).time

    benchmark.pedantic(
        lambda: measure(small, random_rel, True, False), rounds=2, iterations=1
    )
    rows = []
    for valiant in (False, True):
        for sp in (False, True):
            t = measure(big, adversarial, valiant, sp)
            rows.append(
                ("bit-reversal, p=1024", "valiant" if valiant else "direct",
                 "single" if sp else "multi", t)
            )
    for valiant in (False, True):
        for priority in ("fifo", "farthest"):
            t = measure(small, random_rel, valiant, False, priority)
            rows.append(
                (f"random 4-rel, p=64 ({priority})",
                 "valiant" if valiant else "direct", "multi", t)
            )
    publish(
        "ablation_routing",
        render_table(
            ["workload", "strategy", "ports", "time"],
            rows,
            title="Ablation: direct vs Valiant routing on hypercubes",
        ),
    )
    # Valiant must tame the adversarial permutation's congestion where it
    # is worst (single-port).
    direct_sp = next(t for (n, s, q, t) in rows if n.startswith("bit") and s == "direct" and q == "single")
    valiant_sp = next(t for (n, s, q, t) in rows if n.startswith("bit") and s == "valiant" and q == "single")
    assert valiant_sp < direct_sp


PROGRAMS = {
    "prefix": bsp_prefix_program,
    "radix sort": lambda: bsp_radix_sort_program(keys_per_proc=8, key_bits=8, seed=2),
    "sample sort": lambda: bsp_sample_sort_program(keys_per_proc=16, seed=2),
}


def test_cost_convention_report(publish, benchmark):
    params = BSPParams(p=8, g=2, l=16)
    benchmark.pedantic(
        lambda: BSPMachine(params).run(bsp_prefix_program()), rounds=2, iterations=1
    )
    costs = {}
    results = {}
    for conv in ("max", "sum", "send-only"):
        for pname, factory in PROGRAMS.items():
            out = BSPMachine(params, h_convention=conv).run(factory())
            costs[(conv, pname)] = out.total_cost
            results[(conv, pname)] = out.results
    rows = [
        (pname, costs[("max", pname)], costs[("sum", pname)], costs[("send-only", pname)])
        for pname in PROGRAMS
    ]
    publish(
        "ablation_cost_conventions",
        render_table(
            ["program", "g*max(in,out) (paper)", "g*(in+out)", "g*out"],
            rows,
            title="Ablation: BSP h-relation cost conventions (p=8, g=2, l=16)",
        ),
    )
    for pname in PROGRAMS:
        # results never depend on the convention
        assert results[("max", pname)] == results[("sum", pname)] == results[("send-only", pname)]
        # the conventions bracket each other: out <= max <= sum <= 2 max
        assert (
            costs[("send-only", pname)]
            <= costs[("max", pname)]
            <= costs[("sum", pname)]
        )
        assert costs[("sum", pname)] <= 2 * costs[("max", pname)]
