"""Experiment WP (extension, paper footnote 1) — the work-preserving
Theorem 1 simulation.

Ramachandran et al. observed that the stall-free-LogP-on-BSP simulation
"can be immediately made work-preserving while maintaining the same
slowdown": host p/p' LogP processors per BSP processor.  The table shows
the processor-time product p' * T_BSP falling toward the sequential work
as p' shrinks, while per-host slowdown follows (p/p') * O(1 + g/G + l/L).
"""

import pytest

from repro import Stack
from repro.models.params import LogPParams
from repro.programs import logp_alltoall_program, logp_sum_program
from repro.util.tables import render_table

PARAMS = LogPParams(p=16, L=8, o=1, G=2)
HOSTS = (16, 8, 4, 2, 1)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for kernel_name, kernel in (("sum", logp_sum_program), ("alltoall", logp_alltoall_program)):
        for bsp_p in HOSTS:
            rep = Stack(kernel(), model="logp", params=PARAMS).on_bsp(p=bsp_p).run()
            assert rep.outputs_match
            out[(kernel_name, bsp_p)] = rep
    return out


def test_workpreserving_report(sweep, publish, benchmark):
    benchmark.pedantic(
        lambda: Stack(logp_sum_program(), model="logp", params=PARAMS)
        .on_bsp(p=4)
        .run(),
        rounds=1,
        iterations=1,
    )
    rows = []
    for (kernel, bsp_p), rep in sweep.items():
        rows.append(
            (
                kernel,
                bsp_p,
                PARAMS.p // bsp_p,
                rep.bsp.total_cost,
                rep.work,
                f"{rep.slowdown:.1f}",
                f"{rep.predicted_slowdown:.1f}",
            )
        )
    publish(
        "workpreserving",
        render_table(
            ["kernel", "p'", "charges/host", "T_BSP", "work p'*T", "slowdown", "(p/p')(1+g/G+l/L)"],
            rows,
            title=f"Work-preserving Theorem 1 (footnote 1): LogP p={PARAMS.p} on p' BSP processors",
        ),
    )


def test_work_monotone(sweep):
    for kernel in ("sum", "alltoall"):
        works = [sweep[(kernel, b)].work for b in HOSTS]
        assert all(a >= b for a, b in zip(works, works[1:])), kernel


def test_slowdown_under_scaled_prediction(sweep):
    for key, rep in sweep.items():
        assert rep.slowdown <= rep.predicted_slowdown * 1.05, key
