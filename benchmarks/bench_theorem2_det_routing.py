"""Experiment TH2 — **Theorem 2**: deterministic BSP-on-LogP routing.

Sweeps the relation degree ``h`` through the Section 4.2 protocol and
compares the measured slowdown against the paper's ``S(L, G, p, h)``:
``O(log p)`` for small ``h``, approaching ``O(1)`` as ``h`` grows (the
``h = Omega(p^eps + L log p)`` regime), with the sorting phase dominating
exactly where the paper says it does.
"""

import pytest

from repro.core.det_routing import measure_det_routing
from repro.models.cost import slowdown_S, t_route_small
from repro.models.params import LogPParams
from repro.routing.workloads import balanced_h_relation
from repro.util.tables import render_table

PARAMS = LogPParams(p=16, L=8, o=1, G=2)
# The sweep crosses the scheme boundary: for r >= 2(p-1)^2 = 450 the
# protocol switches from the bitonic network (AKS stand-in, O(log^2 p)
# rounds) to Columnsort (Cubesort stand-in, constant rounds) — the
# paper's small-r/large-r regime change.
HS = (1, 2, 4, 8, 16, 32, 64, 256, 512)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for h in HS:
        pairs = balanced_h_relation(PARAMS.p, h, seed=h)
        out[h] = measure_det_routing(PARAMS, pairs)
    return out


def test_theorem2_report(sweep, publish, benchmark):
    benchmark.pedantic(
        lambda: measure_det_routing(
            PARAMS, balanced_h_relation(PARAMS.p, 8, seed=99)
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for h, m in sweep.items():
        ideal = t_route_small(h, PARAMS)  # 2o + G(h-1) + L: the optimum
        s_meas = m.total_time / max(1, PARAMS.G * h + PARAMS.L)
        rows.append(
            (
                h,
                m.outcomes[0].sort_scheme,
                m.total_time,
                m.phase_time("sorted") - m.phase_time("r_known"),
                m.phase_time("done") - m.phase_time("s_known"),
                ideal,
                f"{s_meas:.1f}",
                f"{slowdown_S(PARAMS, h):.1f}",
            )
        )
    publish(
        "theorem2_det_routing",
        render_table(
            ["h", "scheme", "T total", "T sort", "T cycles", "2o+G(h-1)+L", "T/(Gh+L)", "paper S"],
            rows,
            title=(
                f"Theorem 2: deterministic h-relation routing on LogP "
                f"(p={PARAMS.p}, L={PARAMS.L}, o={PARAMS.o}, G={PARAMS.G}); stall-free"
            ),
        ),
    )


def test_slowdown_decreases_with_h(sweep):
    """The crossover shape: per-unit cost falls as h grows, with a
    visible drop when the large-r scheme (Columnsort) takes over."""
    ratios = [sweep[h].total_time / (PARAMS.G * h + PARAMS.L) for h in HS]
    assert ratios[-1] < 0.65 * ratios[0]
    # the scheme switch happens inside the sweep
    schemes = [sweep[h].outcomes[0].sort_scheme for h in HS]
    assert "bitonic" in schemes and "columnsort" in schemes


def test_protocol_discovers_degree(sweep):
    for h, m in sweep.items():
        assert m.h == h


def test_sort_dominates_small_h_cycles_dominate_large_h(sweep):
    small = sweep[1]
    large = sweep[64]
    sort_small = small.phase_time("sorted") - small.phase_time("r_known")
    cyc_small = small.phase_time("done") - small.phase_time("s_known")
    assert sort_small > cyc_small
    cyc_large = large.phase_time("done") - large.phase_time("s_known")
    assert cyc_large >= 0.5 * (PARAMS.G * 64)


def test_small_h_slowdown_grows_polylog_in_p(publish):
    """The S = O(log p) regime (O(log^2 p) with our Batcher substitute):
    the per-unit cost of routing a fixed small h grows polylogarithmically
    as p quadruples — nowhere near linearly."""
    h = 4
    rows = []
    ratios = {}
    for p in (4, 16, 64):
        params = LogPParams(p=p, L=8, o=1, G=2)
        m = measure_det_routing(params, balanced_h_relation(p, h, seed=1))
        ratios[p] = m.total_time / (params.G * h + params.L)
        rows.append((p, m.total_time, f"{ratios[p]:.1f}", f"{slowdown_S(params, h):.1f}"))
    publish(
        "theorem2_p_growth",
        render_table(
            ["p", "T total", "T/(Gh+L)", "paper S"],
            rows,
            title=f"Theorem 2 small-h regime: slowdown growth across p (h={h})",
        ),
    )
    # quadrupling p: polylog growth (< 3x per step), far below linear (4x)
    assert ratios[16] / ratios[4] < 3.0
    assert ratios[64] / ratios[16] < 3.0
    assert ratios[64] / ratios[4] < 16 / 2  # << the linear ratio 16


def test_large_h_within_constant_of_optimal(sweep):
    """For h large the protocol's time approaches O(Gh + L): the
    measured/optimal ratio must be bounded (paper: S = O(1) there;
    Columnsort's 4 half-again-sized rounds put the constant near ~15)."""
    h = HS[-1]
    ratio = sweep[h].total_time / t_route_small(h, PARAMS)
    assert ratio <= 20.0
    # and strictly better than what the log^2 p network scheme gives at
    # the largest h it is still selected for
    h_bitonic = max(h for h in HS if sweep[h].outcomes[0].sort_scheme == "bitonic")
    assert (
        sweep[HS[-1]].total_time / (PARAMS.G * HS[-1] + PARAMS.L)
        < sweep[h_bitonic].total_time / (PARAMS.G * h_bitonic + PARAMS.L)
    )
