"""Experiment TH2 — **Theorem 2**: deterministic BSP-on-LogP routing.

Sweeps the relation degree ``h`` through the Section 4.2 protocol as a
:class:`~repro.campaign.CampaignSpec` (the ``theorem2`` campaign target;
records flow out of :func:`~repro.campaign.run_campaign`'s result
store) and compares the measured slowdown against the paper's
``S(L, G, p, h)``: ``O(log p)`` for small ``h``, approaching ``O(1)``
as ``h`` grows (the ``h = Omega(p^eps + L log p)`` regime), with the
sorting phase dominating exactly where the paper says it does.
"""

import pytest

from repro.campaign import CampaignSpec, run_campaign, run_point
from repro.models.params import LogPParams
from repro.util.tables import render_table

PARAMS = LogPParams(p=16, L=8, o=1, G=2)
# The sweep crosses the scheme boundary: for r >= 2(p-1)^2 = 450 the
# protocol switches from the bitonic network (AKS stand-in, O(log^2 p)
# rounds) to Columnsort (Cubesort stand-in, constant rounds) — the
# paper's small-r/large-r regime change.
HS = (1, 2, 4, 8, 16, 32, 64, 256, 512)

SPEC = CampaignSpec(
    name="bench-theorem2",
    target="theorem2",
    grid=(("h", HS),),
    base={"p": PARAMS.p, "L": PARAMS.L, "o": PARAMS.o, "G": PARAMS.G},
    seeds=(1,),
    description="Theorem 2 h-sweep: deterministic routing slowdown vs S(L,G,p,h)",
)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    report = run_campaign(
        SPEC, store_dir=tmp_path_factory.mktemp("bench-theorem2"), parallel=2
    )
    assert report.failed == 0 and not report.interrupted
    records = report.records()
    assert len(records) == len(SPEC)
    return {point["h"]: rec for point, rec in zip(SPEC.points(), records)}


def test_theorem2_report(sweep, publish, publish_json, benchmark):
    benchmark.pedantic(
        lambda: run_point("theorem2", {**dict(SPEC.base), "h": 8, "seed": 99}),
        rounds=1,
        iterations=1,
    )
    rows = []
    for h, rec in sweep.items():
        rows.append(
            (
                h,
                rec["scheme"],
                rec["total_time"],
                rec["t_sort"],
                rec["t_cycles"],
                rec["ideal"],
                f"{rec['observed_slowdown']:.1f}",
                f"{rec['predicted_slowdown']:.1f}",
            )
        )
    publish(
        "theorem2_det_routing",
        render_table(
            ["h", "scheme", "T total", "T sort", "T cycles", "2o+G(h-1)+L", "T/(Gh+L)", "paper S"],
            rows,
            title=(
                f"Theorem 2: deterministic h-relation routing on LogP "
                f"(p={PARAMS.p}, L={PARAMS.L}, o={PARAMS.o}, G={PARAMS.G}); stall-free"
            ),
        ),
    )
    publish_json(
        "theorem2_det_routing",
        {"campaign": SPEC.as_dict(), "records": list(sweep.values())},
    )


def test_slowdown_decreases_with_h(sweep):
    """The crossover shape: per-unit cost falls as h grows, with a
    visible drop when the large-r scheme (Columnsort) takes over."""
    ratios = [sweep[h]["observed_slowdown"] for h in HS]
    assert ratios[-1] < 0.65 * ratios[0]
    # the scheme switch happens inside the sweep
    schemes = [sweep[h]["scheme"] for h in HS]
    assert "bitonic" in schemes and "columnsort" in schemes


def test_protocol_discovers_degree(sweep):
    for h, rec in sweep.items():
        assert rec["h_discovered"] == h


def test_sort_dominates_small_h_cycles_dominate_large_h(sweep):
    assert sweep[1]["t_sort"] > sweep[1]["t_cycles"]
    assert sweep[64]["t_cycles"] >= 0.5 * (PARAMS.G * 64)


def test_small_h_slowdown_grows_polylog_in_p(publish):
    """The S = O(log p) regime (O(log^2 p) with our Batcher substitute):
    the per-unit cost of routing a fixed small h grows polylogarithmically
    as p quadruples — nowhere near linearly."""
    h = 4
    rows = []
    ratios = {}
    for p in (4, 16, 64):
        rec = run_point("theorem2", {"p": p, "L": 8, "o": 1, "G": 2, "h": h, "seed": 1})
        ratios[p] = rec["observed_slowdown"]
        rows.append(
            (p, rec["total_time"], f"{ratios[p]:.1f}", f"{rec['predicted_slowdown']:.1f}")
        )
    publish(
        "theorem2_p_growth",
        render_table(
            ["p", "T total", "T/(Gh+L)", "paper S"],
            rows,
            title=f"Theorem 2 small-h regime: slowdown growth across p (h={h})",
        ),
    )
    # quadrupling p: polylog growth (< 3x per step), far below linear (4x)
    assert ratios[16] / ratios[4] < 3.0
    assert ratios[64] / ratios[16] < 3.0
    assert ratios[64] / ratios[4] < 16 / 2  # << the linear ratio 16


def test_large_h_within_constant_of_optimal(sweep):
    """For h large the protocol's time approaches O(Gh + L): the
    measured/optimal ratio must be bounded (paper: S = O(1) there;
    Columnsort's 4 half-again-sized rounds put the constant near ~15)."""
    h = HS[-1]
    assert sweep[h]["total_time"] / sweep[h]["ideal"] <= 20.0
    # and strictly better than what the log^2 p network scheme gives at
    # the largest h it is still selected for
    h_bitonic = max(h for h in HS if sweep[h]["scheme"] == "bitonic")
    assert sweep[HS[-1]]["observed_slowdown"] < sweep[h_bitonic]["observed_slowdown"]
