"""Experiment OB1 — **Observation 1** (Section 5).

For each Table 1 topology, measure the best attainable BSP parameters
(g* = gamma, l* ~ diameter) and LogP parameters (G*, and the fixed point
L* such that a ceil(L*/G*)-relation actually routes within L* on the
packet simulator).  Observation 1: ``G* = Theta(g*)`` and
``L* = Theta(l* + g*)`` — the ratio columns must stay bounded across p.
"""

import pytest

from repro.core.network_support import derive_model_support
from repro.networks.params import make_topology
from repro.util.tables import render_table

NAMES = (
    "d-dim array",
    "hypercube (multi-port)",
    "hypercube (single-port)",
    "butterfly",
    "ccc",
    "shuffle-exchange",
    "mesh-of-trees",
)
SIZES = (16, 64)


@pytest.fixture(scope="module")
def survey():
    rows = []
    for name in NAMES:
        for p in SIZES:
            topo, config = make_topology(name, p)
            rows.append(derive_model_support(topo, table_name=name, config=config))
    return rows


def test_observation1_report(survey, publish, benchmark):
    topo, config = make_topology("d-dim array", 16)
    benchmark.pedantic(
        lambda: derive_model_support(topo, table_name="d-dim array", config=config),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r.name,
            r.p,
            r.g_star,
            r.l_star,
            r.G_star,
            r.L_star,
            f"{r.G_over_g:.2f}",
            f"{r.L_over_lg:.2f}",
        )
        for r in survey
    ]
    publish(
        "observation1_direct",
        render_table(
            ["topology", "p", "g*", "l*", "G*", "L*", "G*/g*", "L*/(l*+g*)"],
            rows,
            title="Observation 1: best attainable BSP vs LogP parameters per network",
        ),
    )


def test_ratios_bounded(survey):
    for r in survey:
        assert 0.8 <= r.G_over_g <= 4.5, r
        assert 0.25 <= r.L_over_lg <= 5.0, r


def test_ratios_stable_across_p(survey):
    """Theta(1) means the ratio must not blow up as p quadruples.

    (Indexing is by position: some builders round to their structure's
    natural size, so the realized p differs from the requested one.)
    """
    by_name = {}
    for r in survey:
        by_name.setdefault(r.name, []).append(r)
    for name, rows in by_name.items():
        small, large = sorted(rows, key=lambda r: r.p)
        assert large.G_over_g <= 2.5 * small.G_over_g + 0.5, name
        assert large.L_over_lg <= 2.5 * small.L_over_lg + 0.5, name
