"""Experiment AB-SCHED (ablation) — LogP's nondeterminism knobs.

The paper identifies two sources of nondeterminism (§2.2) and defines
correctness as invariance under both.  This ablation quantifies how much
the *performance* (not the results — those are asserted invariant) of
representative kernels depends on each policy, and how the pinned-slot
protocols are insensitive by construction.
"""

import pytest

from repro.core.det_routing import measure_det_routing
from repro.logp import (
    AcceptFIFO,
    AcceptLIFO,
    AcceptRandom,
    DeliverEager,
    DeliverMaxLatency,
    DeliverRandom,
    LogPMachine,
)
from repro.models.params import LogPParams
from repro.programs import logp_alltoall_program, logp_sum_program
from repro.routing.workloads import balanced_h_relation, hotspot_relation
from repro.util.tables import render_table

PARAMS = LogPParams(p=16, L=8, o=1, G=2)

DELIVERIES = {
    "max-latency": DeliverMaxLatency,
    "eager": DeliverEager,
    "random": lambda: DeliverRandom(seed=5),
}
ACCEPTANCES = {
    "fifo": AcceptFIFO,
    "lifo": AcceptLIFO,
    "random": lambda: AcceptRandom(seed=6),
}


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for dname, dfac in DELIVERIES.items():
        # kernels: results asserted invariant, makespans recorded
        sum_res = LogPMachine(PARAMS, delivery=dfac()).run(logp_sum_program())
        assert sum_res.results == [sum(range(16))] * 16
        a2a_res = LogPMachine(PARAMS, delivery=dfac()).run(logp_alltoall_program())
        det = measure_det_routing(
            PARAMS,
            balanced_h_relation(16, 8, seed=3),
            machine_kwargs={"delivery": dfac()},
        )
        out[dname] = (sum_res.makespan, a2a_res.makespan, det.total_time)
    return out


def test_scheduler_ablation_report(sweep, publish, benchmark):
    benchmark.pedantic(
        lambda: LogPMachine(PARAMS, delivery=DeliverRandom(seed=1)).run(
            logp_sum_program()
        ),
        rounds=2,
        iterations=1,
    )
    rows = [
        (name, t_sum, t_a2a, t_det) for name, (t_sum, t_a2a, t_det) in sweep.items()
    ]
    publish(
        "ablation_schedulers",
        render_table(
            ["delivery policy", "sum makespan", "all-to-all makespan", "det-routing T"],
            rows,
            title=(
                "Ablation: delivery-policy sensitivity (p=16, L=8, o=1, G=2); "
                "results are policy-invariant, only timing moves"
            ),
        ),
    )


def test_kernels_sensitive_protocol_insensitive(sweep):
    """Ad-hoc kernels speed up under eager delivery; the pinned-slot
    deterministic protocol's makespan barely moves (it is schedule-driven
    end to end)."""
    sums = {k: v[0] for k, v in sweep.items()}
    dets = {k: v[2] for k, v in sweep.items()}
    assert sums["eager"] < sums["max-latency"]
    spread = max(dets.values()) - min(dets.values())
    assert spread <= 0.05 * max(dets.values())


def test_acceptance_order_affects_stalling_runs_only(publish):
    rows = []
    pairs = hotspot_relation(16, 15, dest=0)
    for aname, afac in ACCEPTANCES.items():
        from repro.core.rand_routing import measure_rand_routing

        m = measure_rand_routing(
            PARAMS, pairs, seed=2, R=1, machine_kwargs={"acceptance": afac()}
        )
        rows.append((aname, m.total_time, len(m.result.stalls)))
    publish(
        "ablation_acceptance",
        render_table(
            ["acceptance policy", "hot-spot burst T", "stalls"],
            rows,
            title="Ablation: acceptance order under stalling (15 -> 1 burst, R=1)",
        ),
    )
    # all orders drain the hot spot in the same Theta(Gk + L) envelope
    times = [r[1] for r in rows]
    assert max(times) - min(times) <= PARAMS.L + 2 * PARAMS.G
