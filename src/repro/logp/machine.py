"""Event-driven LogP machine engine.

Drives one generator coroutine per processor under the timing semantics
documented in :mod:`repro.logp.instructions`, with the communication
medium of :mod:`repro.logp.network` enforcing the capacity constraint and
the stalling rule.

Event ordering within a time step: deliveries are processed before
submissions, which are processed before processor resumptions.  This makes
the stalling rule's "messages in transit at time t" well defined — a
message delivered at ``t`` is no longer in transit at ``t``.

The drive loop itself — queue construction, fault activation, the
``max_events`` guard, quiescence release, layer-labelled diagnostics —
is the shared :class:`~repro.engine.core.Engine`; this module supplies
only the LogP *dispatch* (the model semantics for deliver/submit/resume
events).  The engine is generic over the event queue (``kernel=``): the
production ``"event"`` kernel skips ahead to the next actionable
timestamp and drains it as one batch, while the ``"tick"`` kernel is the
per-tick scanning reference whose event order — and therefore every
simulated clock, message order, and cost ledger — is identical by
construction (see :mod:`repro.perf.event_queue` and ``docs/PERF.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from repro.engine.core import Engine, coerce_programs, spawn_generator
from repro.engine.result import MachineResult, TraceEvent
from repro.errors import (
    InvariantViolationError,
    ProgramError,
    SimulationLimitError,
    StallError,
)
from repro.faults.medium import FaultyMedium
from repro.faults.plan import CRASHED, FaultLog, FaultPlan
from repro.models.message import Message
from repro.models.params import LogPParams
from repro.logp.instructions import (
    Compute,
    Linger,
    LogPContext,
    LogPProgram,
    Recv,
    Send,
    TryRecv,
    WaitUntil,
)
from repro.logp.network import Medium, StallRecord
from repro.perf.counters import KernelCounters
from repro.logp.scheduler import (
    AcceptancePolicy,
    AcceptFIFO,
    DeliverMaxLatency,
    DeliveryScheduler,
)
from repro.logp.trace import Trace

__all__ = ["LogPMachine", "LogPResult"]

# Event kinds, in intra-step processing order (crashes take effect before
# anything else that happens at the same step).
_EV_CRASH = -1
_EV_DELIVER = 0
_EV_SUBMIT = 1
_EV_RESUME = 2

_IDLE = 0
_RUNNING = 1
_BLOCKED_RECV = 2
_STALLING = 3
_DONE = 4
_LINGERING = 5

_STATE_NAMES = {
    _IDLE: "idle",
    _RUNNING: "running",
    _BLOCKED_RECV: "blocked-recv",
    _STALLING: "stalling",
    _DONE: "done",
    _LINGERING: "lingering",
}


@dataclass
class _Proc:
    """Engine-internal processor record."""

    pid: int
    gen: Generator
    ctx: LogPContext
    clock: int = 0
    last_submit: int | None = None
    last_acquire: int | None = None
    state: int = _RUNNING
    # Slow-clock fault: every local busy step takes `scale` steps.
    scale: int = 1
    # Delivered-but-not-acquired messages, FIFO by delivery time.
    buffer: list[tuple[int, Message]] = field(default_factory=list)
    buf_head: int = 0
    buffer_highwater: int = 0
    pending_send: Message | None = None
    result: Any = None

    def buffered(self) -> int:
        return len(self.buffer) - self.buf_head


@dataclass
class LogPResult(MachineResult):
    """Outcome of a LogP run.

    Attributes
    ----------
    results:
        Per-processor generator return values.
    makespan:
        Time at which the last processor finished (the LogP running time).
    stalls:
        Every stall episode (empty iff the execution was stall-free).
    buffer_highwater:
        Per-processor maximum of delivered-but-unacquired messages, used
        by the Section 2.2 buffer-growth experiment.
    total_messages:
        Number of messages accepted by the medium over the run.
    trace:
        Full event trace when the machine was created with
        ``record_trace=True``, else ``None``.
    fault_log:
        Ledger of every fault the run's :class:`~repro.faults.plan.FaultPlan`
        actually injected (``None`` for a fault-free machine).
    kernel:
        :class:`~repro.perf.counters.KernelCounters` for the run: machine
        events processed, distinct timestamps batched, clock ticks the
        kernel skipped, and the event queue's high-water mark.
    """

    params: LogPParams
    results: list[Any]
    makespan: int
    stalls: list[StallRecord]
    buffer_highwater: list[int]
    total_messages: int
    trace: Trace | None = None
    fault_log: "FaultLog | None" = None
    kernel: KernelCounters = field(default_factory=KernelCounters)

    row_fields = ("makespan", "total_messages", "total_stall_time", "buffer_highwater")

    def trace_events(self) -> list[TraceEvent]:
        """The recorded trace in the shared cross-layer vocabulary."""
        if self.trace is None:
            return []
        events = [
            TraceEvent("submit", t, src, {"uid": uid})
            for t, src, uid in self.trace.submissions
        ]
        events += [
            TraceEvent("deliver", t, dest, {"uid": uid})
            for t, dest, uid in self.trace.deliveries
        ]
        events += [
            TraceEvent("acquire", t_start, pid, {"uid": uid, "end": t_end})
            for t_start, t_end, pid, uid in self.trace.acquisitions
        ]
        events.sort(key=lambda ev: ev.time)
        return events

    @property
    def stall_free(self) -> bool:
        return not self.stalls

    @property
    def total_stall_time(self) -> int:
        return sum(s.duration for s in self.stalls)

    def __repr__(self) -> str:
        return (
            f"LogPResult(p={self.params.p}, makespan={self.makespan}, "
            f"messages={self.total_messages}, stalls={len(self.stalls)})"
        )


class LogPMachine:
    """A ``p``-processor LogP machine.

    Parameters
    ----------
    params:
        The machine's :class:`~repro.models.params.LogPParams`.
    delivery, acceptance:
        Nondeterminism policies (defaults: worst-case latency, FIFO
        acceptance).
    forbid_stalling:
        Raise :class:`~repro.errors.StallError` on the first stall.  Used
        when running constructions that are proven stall-free.
    record_trace:
        Record a full event trace (see :mod:`repro.logp.trace`).
    faults:
        A :class:`~repro.faults.plan.FaultPlan`: run over a misbehaving
        substrate (message drop/duplicate/extra-delay/reorder via a
        :class:`~repro.faults.medium.FaultyMedium`, plus crash-stop and
        slow-clock processors).  ``None`` (default) is the pristine
        medium of the paper.
    check_invariants:
        After the run, verify the execution trace against the model
        invariants (message conservation, monotone clocks, capacity
        compliance, buffer high-water consistency — see
        :mod:`repro.faults.invariants`) and raise
        :class:`~repro.errors.InvariantViolationError` on any violation.
        Implies trace recording internally; ``result.trace`` is still
        only populated when ``record_trace=True``.
    kernel:
        Event-queue implementation: ``"event"`` (default; indexed queue
        with skip-ahead and per-timestamp batches) or ``"tick"`` (the
        per-tick scanning reference kernel).  Both produce bit-identical
        executions; ``"tick"`` exists as the equivalence oracle and the
        benchmark baseline.
    layer:
        Name of this machine's position in a simulation stack (e.g.
        ``"guest BSP on host LogP"``).  Deadlock and limit diagnostics
        are prefixed with it, so errors escaping nested engines identify
        their owner.
    obs:
        Optional :class:`~repro.obs.Observation`.  The run's metrics
        (makespan, messages, stalls, kernel work, faults) are published
        under this machine's ``layer`` label; with ``obs.trace`` on, the
        machine records its event trace internally (exactly the
        ``check_invariants`` mechanism, which the golden-trace suite
        proves changes no execution) and emits per-processor
        submit/acquire/stall spans plus one async span per message
        lifetime.  A disabled observation is normalized to ``None`` and
        the machine runs its uninstrumented path.

    Example
    -------
    >>> from repro.models.params import LogPParams
    >>> from repro.logp import LogPMachine, Send, Recv
    >>> def prog(ctx):
    ...     if ctx.pid == 0:
    ...         yield Send(1, "hi")
    ...     elif ctx.pid == 1:
    ...         msg = yield Recv()
    ...         return msg.payload
    >>> machine = LogPMachine(LogPParams(p=2, L=4, o=1, G=2))
    >>> machine.run(prog).results
    [None, 'hi']
    """

    def __init__(
        self,
        params: LogPParams,
        *,
        delivery: DeliveryScheduler | None = None,
        acceptance: AcceptancePolicy | None = None,
        forbid_stalling: bool = False,
        record_trace: bool = False,
        max_events: int = 50_000_000,
        faults: FaultPlan | None = None,
        check_invariants: bool = False,
        kernel: str = "event",
        layer: str = "LogP",
        obs: Any | None = None,
    ) -> None:
        self.params = params
        self.delivery = delivery if delivery is not None else DeliverMaxLatency()
        self.acceptance = acceptance if acceptance is not None else AcceptFIFO()
        self.forbid_stalling = forbid_stalling
        self.record_trace = record_trace
        self.max_events = max_events
        self.faults = faults
        self.check_invariants = check_invariants
        self.kernel = kernel
        self.layer = layer
        self.obs = obs if (obs is not None and obs.enabled) else None

    # ------------------------------------------------------------------

    def run(self, program: LogPProgram | Sequence[LogPProgram]) -> LogPResult:
        """Run ``program`` on every processor (or one per processor when a
        length-``p`` sequence is given) to completion."""
        p = self.params.p
        programs = coerce_programs(program, p)

        engine = Engine(
            kernel=self.kernel,
            p=p,
            max_events=self.max_events,
            layer=self.layer,
            faults=self.faults,
            obs=self.obs,
        )
        active = engine.active

        procs: list[_Proc] = []
        for pid in range(p):
            ctx = LogPContext(pid, p, self.params)
            gen = spawn_generator(programs[pid], ctx, pid, model="LogP")
            scale = active.clock_scale(pid) if active is not None else 1
            procs.append(_Proc(pid=pid, gen=gen, ctx=ctx, scale=scale))

        want_trace = (
            self.record_trace
            or self.check_invariants
            or (self.obs is not None and self.obs.tracing)
        )
        trace = Trace(self.params) if want_trace else None
        queue = engine.queue
        push = engine.push

        def schedule_delivery(msg: Message, t: int) -> None:
            push(t, _EV_DELIVER, msg.dest, msg)
            if trace is not None:
                trace.on_delivery_scheduled(msg, t)

        def on_accept_stalled(sender: int, t: int) -> None:
            # A stalled sender's submission was accepted: resume it.
            proc = procs[sender]
            proc.state = _RUNNING
            push(t, _EV_RESUME, sender, ("sent", t))
            if self.forbid_stalling:
                raise StallError(
                    f"processor {sender} stalled until t={t} "
                    f"(forbid_stalling=True)"
                )

        if active is not None:
            medium: Medium = FaultyMedium(
                self.params,
                delivery=self.delivery,
                acceptance=self.acceptance,
                on_accept=on_accept_stalled,
                on_schedule_delivery=schedule_delivery,
                faults=active,
            )
        else:
            medium = Medium(
                self.params,
                delivery=self.delivery,
                acceptance=self.acceptance,
                on_accept=on_accept_stalled,
                on_schedule_delivery=schedule_delivery,
            )

        for pid in range(p):
            push(0, _EV_RESUME, pid, ("start", None))
        if active is not None:
            for pid in range(p):
                t_crash = active.crash_time(pid)
                if t_crash is not None:
                    push(t_crash, _EV_CRASH, pid, None)

        makespan = 0

        def dispatch(time: int, kind: int, pid: int, data: Any) -> None:
            """LogP model semantics for one popped event.  The intra-step
            phase order (crash < deliver < submit < resume) is encoded in
            the event-kind numbering; the engine's queue delivers it."""
            nonlocal makespan
            if kind == _EV_CRASH:
                proc = procs[pid]
                # proc.clock > time: the engine ran the processor's
                # local computation optimistically past the crash
                # instant, so the "finish" never actually happened.
                if proc.state != _DONE or proc.clock > time:
                    proc.state = _DONE
                    proc.result = CRASHED
                    proc.pending_send = None
                    active.log.crashes.append((pid, time))
            elif kind == _EV_DELIVER:
                msg: Message = data
                proc = procs[pid]
                if not medium.deliverable(msg):
                    # Dropped in flight: free the capacity slot, never
                    # buffer (the fault log already has the record).
                    medium.on_delivered(msg, time)
                    return
                proc.buffer.append((time, msg))
                proc.buffer_highwater = max(proc.buffer_highwater, proc.buffered())
                if trace is not None:
                    trace.on_delivered(msg, time)
                medium.on_delivered(msg, time)
                if proc.state in (_BLOCKED_RECV, _LINGERING):
                    self._start_acquire(proc, time, push, trace)
            elif kind == _EV_SUBMIT:
                proc = procs[pid]
                if proc.state == _DONE or proc.pending_send is None:
                    return  # sender crashed between prepare and submit
                msg = proc.pending_send
                proc.pending_send = None
                if trace is not None:
                    trace.on_submitted(msg, time)
                accepted_at = medium.submit(pid, msg, time)
                if accepted_at is not None:
                    proc.state = _RUNNING
                    push(accepted_at, _EV_RESUME, pid, ("sent", accepted_at))
                else:
                    proc.state = _STALLING
                    if self.forbid_stalling:
                        raise StallError(
                            f"processor {pid} stalled submitting {msg!r} at t={time} "
                            f"(forbid_stalling=True)"
                        )
            else:  # _EV_RESUME
                proc = procs[pid]
                if proc.state == _DONE:
                    return
                tag, value = data
                if tag == "tryrecv":
                    # Deferred poll: the processor's clock ran ahead of
                    # event time; now (time == clock) the buffer reflects
                    # every delivery up to it.
                    if proc.buffered():
                        self._start_acquire(proc, time, push, trace)
                        return
                    proc.clock += 1
                    proc.state = _IDLE
                    push(proc.clock, _EV_RESUME, pid, ("poll", None))
                    return
                result: Any
                if tag == "recv":
                    result = value
                elif tag == "sent":
                    result = value
                else:
                    result = None
                proc.clock = max(proc.clock, time)
                makespan = max(makespan, proc.clock)
                self._step(
                    proc, result, first=(tag == "start"), push=push, trace=trace, now=time
                )
                makespan = max(makespan, proc.clock)

        def release_lingerers(time: int) -> bool:
            # Quiescence: nothing in flight, nobody runnable.  Release
            # lingering processors (Linger resolves to None) and keep
            # draining whatever their final actions generate.
            lingerers = [pr for pr in procs if pr.state == _LINGERING]
            if not lingerers:
                return False
            for pr in lingerers:
                pr.state = _IDLE
                push(pr.clock, _EV_RESUME, pr.pid, ("recv", None))
            return True

        engine.run(dispatch, on_quiescence=release_lingerers)

        blocked = [pr.pid for pr in procs if pr.state in (_BLOCKED_RECV, _STALLING)]
        if blocked:
            raise engine.deadlock_error(
                f"simulation drained with processors {blocked} still blocked "
                f"(waiting on messages that will never arrive)",
                diagnostics=self._deadlock_diagnostics(
                    procs, medium, active, engine.last_time, queue
                ),
            )

        result_obj = LogPResult(
            params=self.params,
            results=[pr.result for pr in procs],
            makespan=makespan,
            stalls=list(medium.stalls),
            buffer_highwater=[pr.buffer_highwater for pr in procs],
            total_messages=medium.total_accepted,
            trace=trace,
            fault_log=active.log if active is not None else None,
            kernel=queue.counters,
        )
        if self.check_invariants:
            from repro.faults.invariants import check_execution

            violations = check_execution(
                result_obj, fault_log=active.log if active is not None else None
            )
            if violations:
                raise InvariantViolationError(
                    f"LogP execution violated {len(violations)} model invariant(s)",
                    violations,
                )
        if self.obs is not None:
            # Publish before the trace is stripped: the observer's spans
            # are derived from it, but result.trace stays contractual —
            # populated only under record_trace=True.
            self.obs.observe_logp(result_obj, layer=self.layer)
        if not self.record_trace:
            result_obj.trace = None
        return result_obj

    @staticmethod
    def _deadlock_diagnostics(procs, medium, active, time, queue) -> dict:
        """Snapshot machine state for a debuggable DeadlockError.

        Centered on the *event queue's view*: the queue front (the next
        pending times the kernel would skip ahead to — empty at a true
        drain deadlock) and, per destination, the submit times still
        pending in the medium, plus a compact record of only the blocked
        processors.  Skip-ahead deadlocks are diagnosed from "what would
        the kernel do next", not from a raw dump of every processor.
        """
        kind_names = {_EV_CRASH: "crash", _EV_DELIVER: "deliver",
                      _EV_SUBMIT: "submit", _EV_RESUME: "resume"}
        front = [
            {"time": ev["time"], "kind": kind_names.get(ev["kind"], str(ev["kind"])),
             "pid": ev["pid"]}
            for ev in queue.front_snapshot(8)
        ]
        return {
            "time": time,
            "kernel": queue.counters.as_dict(),
            "queue_front": front,
            "next_pending_times": {
                d: sorted(t for t, _seq, _sender, _m in q)
                for d, q in enumerate(medium.pending)
                if q
            },
            "blocked": [
                {
                    "pid": pr.pid,
                    "state": _STATE_NAMES.get(pr.state, str(pr.state)),
                    "clock": pr.clock,
                    "buffered": pr.buffered(),
                    "pending_send": pr.pending_send,
                }
                for pr in procs
                if pr.state in (_BLOCKED_RECV, _STALLING)
            ],
            "medium": {
                "in_transit": list(medium.in_transit),
                "pending": {
                    d: [(t, sender) for t, _seq, sender, _m in q]
                    for d, q in enumerate(medium.pending)
                    if q
                },
                "total_accepted": medium.total_accepted,
            },
            "faults": active.log.summary() if active is not None else None,
        }

    # ------------------------------------------------------------------

    def _step(
        self, proc: _Proc, send_value: Any, first: bool, push, trace, now: int = 0
    ) -> None:
        """Advance ``proc``'s generator until it blocks on the network or
        finishes.  Compute/WaitUntil are resolved inline (they only move
        the local clock); Send/Recv hand control back to the event loop."""
        o, G = self.params.o, self.params.G
        gen = proc.gen
        inline = 0
        while True:
            inline += 1
            if inline > self.max_events:
                raise SimulationLimitError(
                    f"[{self.layer}] processor {proc.pid} executed more than "
                    f"max_events={self.max_events} instructions without "
                    f"touching the network (runaway local loop?)"
                )
            proc.ctx.clock = proc.clock
            try:
                instr = gen.send(None if first else send_value)
            except StopIteration as stop:
                proc.state = _DONE
                proc.result = stop.value
                return
            first = False
            send_value = None
            if isinstance(instr, Compute):
                proc.clock += instr.ops * proc.scale
            elif isinstance(instr, WaitUntil):
                proc.clock = max(proc.clock, instr.time)
            elif isinstance(instr, Send):
                if not 0 <= instr.dest < self.params.p:
                    raise ProgramError(
                        f"processor {proc.pid} sent to invalid destination "
                        f"{instr.dest} (p={self.params.p})"
                    )
                if instr.dest == proc.pid:
                    raise ProgramError(
                        f"processor {proc.pid} sent to itself; LogP messages "
                        f"traverse the medium — keep local data local"
                    )
                # LogGP long messages; slow-clock faults scale local overhead.
                prep = (o + (instr.size - 1) * self.params.Gb) * proc.scale
                start = proc.clock
                if proc.last_submit is not None:
                    start = max(start, proc.last_submit + G - prep)
                t_sub = start + prep
                proc.last_submit = t_sub
                proc.clock = t_sub
                proc.pending_send = Message(
                    src=proc.pid,
                    dest=instr.dest,
                    payload=instr.payload,
                    tag=instr.tag,
                    size=instr.size,
                )
                proc.state = _IDLE  # waiting for the SUBMIT event to resolve
                push(t_sub, _EV_SUBMIT, proc.pid, None)
                return
            elif isinstance(instr, Linger):
                # Like Recv, but resolves to None at machine quiescence
                # instead of deadlocking — the distributed-termination
                # primitive for resilient protocol drain phases.
                if not self._start_acquire(proc, proc.clock, push, trace):
                    proc.state = _LINGERING
                return
            elif isinstance(instr, Recv):
                if not self._start_acquire(proc, proc.clock, push, trace):
                    proc.state = _BLOCKED_RECV
                return
            elif isinstance(instr, TryRecv):
                if proc.clock > now:
                    # Local clock ran ahead of processed events (inline
                    # Compute/WaitUntil); deliveries due before `clock`
                    # may still sit in the heap.  Re-attempt the poll as
                    # an event at the local clock time.
                    proc.state = _IDLE
                    push(proc.clock, _EV_RESUME, proc.pid, ("tryrecv", None))
                    return
                if proc.buffered():
                    if not self._start_acquire(proc, proc.clock, push, trace):
                        raise AssertionError("acquirable message vanished")
                    return
                # Polling costs one step, and control must go back to the
                # event loop so deliveries with earlier timestamps are
                # processed before the next poll (a tight in-step loop
                # would race past its own incoming messages).
                proc.clock += 1
                proc.state = _IDLE
                push(proc.clock, _EV_RESUME, proc.pid, ("poll", None))
                return
            else:
                raise ProgramError(
                    f"processor {proc.pid} yielded {instr!r}, which is not a "
                    f"LogP instruction"
                )

    def _start_acquire(self, proc: _Proc, now: int, push, trace) -> bool:
        """If a message is buffered, schedule its acquisition and the
        processor's resumption; returns False when the buffer is empty."""
        if not proc.buffered():
            return False
        o, G = self.params.o, self.params.G
        t_deliver, msg = proc.buffer[proc.buf_head]
        proc.buf_head += 1
        if proc.buf_head > 64 and proc.buf_head * 2 > len(proc.buffer):
            del proc.buffer[: proc.buf_head]
            proc.buf_head = 0
        t_acq = max(now, proc.clock, t_deliver)
        if proc.last_acquire is not None:
            t_acq = max(t_acq, proc.last_acquire + G)
        proc.last_acquire = t_acq
        # LogGP long messages; slow-clock faults scale local overhead.
        cost = (o + (msg.size - 1) * self.params.Gb) * proc.scale
        proc.clock = t_acq + cost
        proc.state = _IDLE
        if trace is not None:
            trace.on_acquired(msg, proc.pid, t_acq, t_acq + cost)
        push(t_acq + cost, _EV_RESUME, proc.pid, ("recv", msg))
        return True
