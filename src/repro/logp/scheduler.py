"""Policy objects for LogP's two sources of nondeterminism.

The paper (Section 2.2) identifies exactly two: (i) the delay between
acceptance and delivery of a message (anywhere in ``[1, L]``), and (ii)
the order in which pending submissions are accepted under congestion
("we assume that any order is possible").  A program is *correct* iff it
computes the same input-output map under all admissible choices; the
validation harness (:mod:`repro.logp.validate`) runs programs under an
ensemble of these policies.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.models.message import Message
from repro.util.rng import make_rng

__all__ = [
    "DeliveryScheduler",
    "DeliverMaxLatency",
    "DeliverEager",
    "DeliverRandom",
    "DeliverHotspotLate",
    "DeliverAlternating",
    "DeliverBimodal",
    "AcceptancePolicy",
    "AcceptFIFO",
    "AcceptLIFO",
    "AcceptRandom",
    "AcceptStarveLowPid",
    "DEFAULT_DELIVERY",
    "DEFAULT_ACCEPTANCE",
    "DELIVERY_REGISTRY",
    "ACCEPTANCE_REGISTRY",
    "make_delivery",
    "make_acceptance",
]


class DeliveryScheduler(Protocol):
    """Chooses the in-network delay of an accepted message.

    ``propose_delay`` returns the *desired* delay in ``[1, L]``; the
    network resolves collisions (at most one delivery per destination per
    step) to the nearest admissible slot, never exceeding ``L``.
    """

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int: ...


class DeliverMaxLatency:
    """Always take the full latency ``L`` (the conservative execution).

    This is the canonical choice for performance analysis: the paper's
    upper bounds are stated against worst-case delivery.
    """

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        return L


class DeliverEager:
    """Deliver as soon as possible (delay 1, pushed later on collision)."""

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        return 1


class DeliverRandom:
    """Uniformly random delay in ``[1, L]`` from a seeded stream."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = make_rng(seed)

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        return int(self._rng.integers(1, L + 1))


class DeliverHotspotLate:
    """Adversarial mix: messages to ``hot`` destinations take the full
    ``L``; everything else is eager.  Stresses receive-order assumptions."""

    def __init__(self, hot: Sequence[int]) -> None:
        self._hot = frozenset(int(h) for h in hot)

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        return L if msg.dest in self._hot else 1


class DeliverAlternating:
    """Maximally reordering adversary: per destination, propose ``L`` and
    ``1`` in alternation, so consecutive messages to the same destination
    arrive in inverted pairs.  Breaks any program that assumes network
    FIFO between a sender/receiver pair."""

    def __init__(self) -> None:
        self._count: dict[int, int] = {}

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        n = self._count.get(msg.dest, 0)
        self._count[msg.dest] = n + 1
        return L if n % 2 == 0 else 1


class DeliverBimodal:
    """Seeded adversary drawing only the extremes: delay ``1`` or ``L``
    with equal probability.  Produces far more reorderings than the
    uniform :class:`DeliverRandom` (mid-range delays rarely invert)."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = make_rng(seed)

    def propose_delay(self, msg: Message, accept_time: int, L: int) -> int:
        return L if self._rng.integers(0, 2) else 1


class AcceptancePolicy(Protocol):
    """Chooses which pending submission a freed slot accepts.

    ``choose`` receives the pending queue for one destination as a
    sequence of ``(submit_time, seq, sender, msg)`` tuples and returns the
    index to accept.
    """

    def choose(self, pending: Sequence[tuple], now: int) -> int: ...


class AcceptFIFO:
    """Accept the oldest submission first (ties by global sequence)."""

    def choose(self, pending: Sequence[tuple], now: int) -> int:
        return min(range(len(pending)), key=lambda i: (pending[i][0], pending[i][1]))


class AcceptLIFO:
    """Accept the newest submission first — the adversarial inversion."""

    def choose(self, pending: Sequence[tuple], now: int) -> int:
        return max(range(len(pending)), key=lambda i: (pending[i][0], pending[i][1]))


class AcceptRandom:
    """Accept a uniformly random pending submission (seeded)."""

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = make_rng(seed)

    def choose(self, pending: Sequence[tuple], now: int) -> int:
        return int(self._rng.integers(0, len(pending)))


class AcceptStarveLowPid:
    """Deterministic starvation adversary: always accept the pending
    submission with the *highest* sender pid, so low-pid senders stall as
    long as the model allows."""

    def choose(self, pending: Sequence[tuple], now: int) -> int:
        return max(range(len(pending)), key=lambda i: pending[i][2])


DEFAULT_DELIVERY = DeliverMaxLatency
DEFAULT_ACCEPTANCE = AcceptFIFO

# ---------------------------------------------------------------------------
# Named registries: every policy the validation harness, the adversarial
# test grid, and the fault benchmarks may instantiate by name.  Factories
# take one keyword, ``seed``, which deterministic policies ignore.
# ---------------------------------------------------------------------------

DELIVERY_REGISTRY: dict[str, "Callable"] = {
    "max-latency": lambda seed=0: DeliverMaxLatency(),
    "eager": lambda seed=0: DeliverEager(),
    "random": lambda seed=0: DeliverRandom(seed=seed),
    "alternating": lambda seed=0: DeliverAlternating(),
    "bimodal": lambda seed=0: DeliverBimodal(seed=seed),
}

ACCEPTANCE_REGISTRY: dict[str, "Callable"] = {
    "fifo": lambda seed=0: AcceptFIFO(),
    "lifo": lambda seed=0: AcceptLIFO(),
    "random": lambda seed=0: AcceptRandom(seed=seed),
    "starve-low-pid": lambda seed=0: AcceptStarveLowPid(),
}


def make_delivery(name: str, seed: int = 0) -> DeliveryScheduler:
    """Instantiate a delivery scheduler from :data:`DELIVERY_REGISTRY`."""
    try:
        return DELIVERY_REGISTRY[name](seed=seed)
    except KeyError:
        raise KeyError(
            f"unknown delivery scheduler {name!r}; "
            f"choose from {sorted(DELIVERY_REGISTRY)}"
        ) from None


def make_acceptance(name: str, seed: int = 0) -> AcceptancePolicy:
    """Instantiate an acceptance policy from :data:`ACCEPTANCE_REGISTRY`."""
    try:
        return ACCEPTANCE_REGISTRY[name](seed=seed)
    except KeyError:
        raise KeyError(
            f"unknown acceptance policy {name!r}; "
            f"choose from {sorted(ACCEPTANCE_REGISTRY)}"
        ) from None
