"""The LogP virtual machine (paper Section 2.2).

An event-driven simulator with integer time implementing the full model:
``o`` overhead per submission/acquisition, ``G`` gap between consecutive
submissions (and between consecutive acquisitions) by the same processor,
delivery at most ``L`` after acceptance, the per-destination capacity
constraint ``ceil(L/G)``, and the paper's formalized *stalling rule*.

Nondeterminism sources (paper Section 2.2) are pluggable policy objects:

* delivery times — :mod:`repro.logp.scheduler` ``DeliveryScheduler``,
* acceptance order under congestion — ``AcceptancePolicy``.
"""

from repro.logp.instructions import Compute, Recv, Send, TryRecv, WaitUntil
from repro.logp.machine import LogPMachine, LogPResult
from repro.logp.scheduler import (
    AcceptFIFO,
    AcceptLIFO,
    AcceptRandom,
    DeliverEager,
    DeliverMaxLatency,
    DeliverRandom,
)

__all__ = [
    "Compute",
    "Send",
    "Recv",
    "TryRecv",
    "WaitUntil",
    "LogPMachine",
    "LogPResult",
    "DeliverMaxLatency",
    "DeliverEager",
    "DeliverRandom",
    "AcceptFIFO",
    "AcceptLIFO",
    "AcceptRandom",
]
