"""Program-level helpers and generic collectives for LogP programs.

Tag dispatch
------------
LogP acquisitions are strictly FIFO in delivery order, so a program that
participates in several protocol phases may acquire a later phase's
message while waiting for an earlier one.  :func:`recv_tag` implements
standard tag matching *at the program level*: mismatching messages are
acquired (paying ``o`` and the gap like any acquisition) and stashed in
the context for whoever asks for them later.  Protocol code built on
``recv_tag`` is therefore robust to arbitrary admissible delivery orders.

Collectives
-----------
Generic k-ary combining/broadcast trees used by example programs and by
tests.  The paper's own Combine-and-Broadcast algorithm of Section 4.1 —
with its specific arity choice and its slotted ``ceil(L/G)=1`` variant —
lives in :mod:`repro.core.cb`; the helpers here are the unopinionated
building blocks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, TypeVar

from repro.logp.instructions import Compute, LogPContext, Recv, Send, WaitUntil
from repro.models.message import Message
from repro.perf.memo import plan_cache

__all__ = [
    "recv_tag",
    "recv_n_tagged",
    "send_paced",
    "binomial_broadcast",
    "optimal_broadcast",
    "optimal_broadcast_schedule",
    "binary_tree_reduce",
    "kary_tree_children",
    "kary_tree_parent",
    "scatter",
    "gather",
    "ring_allgather",
]

T = TypeVar("T")


def recv_tag(ctx: LogPContext, tag: int) -> Generator[Any, Any, Message]:
    """Acquire messages until one carries ``tag``; stash the rest.

    Checks the context stash first, so messages acquired while looking for
    a different tag are not lost.
    """
    for i, msg in enumerate(ctx._stash):
        if msg.tag == tag:
            return ctx._stash.pop(i)
    while True:
        msg = yield Recv()
        if msg.tag == tag:
            return msg
        ctx._stash.append(msg)


def recv_n_tagged(ctx: LogPContext, tag: int, n: int) -> Generator[Any, Any, list[Message]]:
    """Acquire exactly ``n`` messages carrying ``tag`` (stash-aware)."""
    out: list[Message] = []
    for _ in range(n):
        msg = yield from recv_tag(ctx, tag)
        out.append(msg)
    return out


def send_paced(
    ctx: LogPContext, items: Iterable[tuple[int, Any]], tag: int = 0
) -> Generator[Any, Any, int]:
    """Send ``(dest, payload)`` pairs back to back.

    The machine already enforces the gap ``G`` between submissions, so
    back-to-back ``Send`` instructions are automatically paced one
    submission every ``G`` steps — the pattern used throughout Section 4's
    routing cycles.  Returns the number of messages sent.
    """
    n = 0
    for dest, payload in items:
        yield Send(dest, payload, tag=tag)
        n += 1
    return n


# ---------------------------------------------------------------------------
# k-ary tree shape (used by the generic collectives and by core.cb)
# ---------------------------------------------------------------------------

def kary_tree_parent(rank: int, k: int) -> int | None:
    """Parent of ``rank`` in the complete k-ary tree rooted at 0."""
    if rank == 0:
        return None
    return (rank - 1) // k


def kary_tree_children(rank: int, k: int, p: int) -> list[int]:
    """Children of ``rank`` in the complete k-ary tree on ``p`` nodes."""
    first = k * rank + 1
    return [c for c in range(first, min(first + k, p))]


# ---------------------------------------------------------------------------
# Generic collectives
# ---------------------------------------------------------------------------

def binomial_broadcast(
    ctx: LogPContext, value: T | None, root: int = 0, tag: int = 901
) -> Generator[Any, Any, T]:
    """Binomial-tree broadcast: each informed processor keeps forwarding.

    This is the natural LogP broadcast shape (cf. Karp et al.'s optimal
    broadcast tree): an informed processor sends to progressively nearer
    ranks while earlier recipients forward in parallel.  Completes in
    ``O((L + o + G) log p)`` without stalling (every destination receives
    exactly one message).  Returns the value on every processor.
    """
    p = ctx.p
    if p == 1:
        return value  # type: ignore[return-value]
    rank = (ctx.pid - root) % p
    if rank != 0:
        msg = yield from recv_tag(ctx, tag)
        value = msg.payload
    # Highest power of two below p bounds the forwarding rounds.
    span = 1
    while span < p:
        span *= 2
    # rank r was informed at "level" = position of lowest set bit pattern:
    # forward to rank + span/2^j for decreasing spans past our own level.
    stride = span // 2
    while stride >= 1:
        if rank % (2 * stride) == 0 and rank + stride < p:
            dest = (rank + stride + root) % p
            yield Send(dest, value, tag=tag)
        stride //= 2
    return value  # type: ignore[return-value]


def optimal_broadcast_schedule(
    p: int, params, *, delivery_delay: int | None = None
) -> list[list[int]]:
    """The optimal single-item broadcast tree of Karp et al. (the paper's
    reference [17]), built greedily: at every moment, the processor that
    can *complete* a transmission earliest informs the next processor.

    Returns ``children[rank]`` — the ordered list of ranks each rank
    sends to (rank 0 is the root).  The shape depends on (L, o, G): for
    ``L + 2o <= G`` it degenerates to a star, for large ``L`` it
    approaches the binomial tree, and in between it is the skewed tree
    that makes this broadcast strictly faster than binomial.

    The tree is a pure function of ``(p, L, o, G)`` and every processor
    rebuilds it per broadcast, so it is memoized process-wide; treat the
    returned lists as read-only.
    """
    import heapq

    L = params.L if delivery_delay is None else delivery_delay
    o, G = params.o, params.G

    def build() -> list[list[int]]:
        children: list[list[int]] = [[] for _ in range(p)]
        if p <= 1:
            return children
        # heap of (next_submission_completion_time, rank)
        heap = [(o, 0)]
        informed = 1
        while informed < p:
            t_sub, rank = heapq.heappop(heap)
            child = informed
            informed += 1
            children[rank].append(child)
            ready = t_sub + L + o  # delivered by t_sub + L, acquired +o
            heapq.heappush(heap, (ready + o, child))  # child's first submission
            heapq.heappush(heap, (max(t_sub + G, t_sub + o), rank))
        return children

    return _BROADCAST_CACHE.get((p, L, o, G), build)


_BROADCAST_CACHE = plan_cache("broadcast-tree")


def optimal_broadcast(
    ctx: LogPContext, value: T | None, root: int = 0, tag: int = 905
) -> Generator[Any, Any, T]:
    """Broadcast along the Karp et al. optimal tree; returns the value
    everywhere.  Stall-free: every destination receives exactly one
    message."""
    p = ctx.p
    if p == 1:
        return value  # type: ignore[return-value]
    schedule = optimal_broadcast_schedule(p, ctx.params)
    rank = (ctx.pid - root) % p
    if rank != 0:
        msg = yield from recv_tag(ctx, tag)
        value = msg.payload
    for child in schedule[rank]:
        yield Send((child + root) % p, value, tag=tag)
    return value  # type: ignore[return-value]


def binary_tree_reduce(
    ctx: LogPContext,
    value: T,
    op: Callable[[T, T], T],
    root: int = 0,
    tag: int = 902,
    op_cost: int = 1,
    pace_base: int = 0,
) -> Generator[Any, Any, T | None]:
    """Binary-tree reduction to ``root``; returns the total at the root.

    Children are combined in rank order, so ``op`` may be merely
    associative (non-commutative ops are safe).

    When the capacity ``ceil(L/G)`` is 1, sends are paced onto per-level
    time slots (measured from ``pace_base``): in a sparse tree, a node
    with no children sends its high-level message immediately, which
    could otherwise overlap a sibling's level-0 message at the common
    parent and stall the single in-transit slot.
    """
    p = ctx.p
    params = ctx.params
    rank = (ctx.pid - root) % p
    acc = value
    slotted = params.capacity == 1
    level_span = params.L + 2 * params.o + 2 * params.G
    stride = 1
    while stride < p:
        if rank % (2 * stride) == 0:
            partner = rank + stride
            if partner < p:
                msg = yield from recv_tag(ctx, tag + _round_of(stride))
                acc = op(acc, msg.payload)
                if op_cost:
                    yield Compute(op_cost)
        elif rank % (2 * stride) == stride:
            parent = (rank - stride + root) % p
            if slotted:
                yield WaitUntil(pace_base + _round_of(stride) * level_span)
            yield Send(parent, acc, tag=tag + _round_of(stride))
            break
        stride *= 2
    return acc if rank == 0 else None


def _round_of(stride: int) -> int:
    return stride.bit_length() - 1


def scatter(
    ctx: LogPContext, values: list | None, root: int = 0, tag: int = 906
) -> Generator[Any, Any, Any]:
    """Root sends ``values[j]`` to processor ``j``; returns each
    processor's item.  ``p - 1`` paced submissions from the root —
    stall-free (distinct destinations)."""
    p = ctx.p
    if ctx.pid == root:
        if values is None or len(values) != p:
            raise ValueError(f"scatter root needs exactly p={p} values")
        for j in range(p):
            if j != root:
                yield Send(j, values[j], tag=tag)
        return values[root]
    msg = yield from recv_tag(ctx, tag)
    return msg.payload


def gather(
    ctx: LogPContext, value: T, root: int = 0, tag: int = 907
) -> Generator[Any, Any, list[T] | None]:
    """Everyone sends its value to ``root``; the root returns the list
    indexed by pid, others ``None``.

    The root is a deliberate hot spot: with ``p - 1 > ceil(L/G)`` the
    senders stall (by design — gather is inherently all-to-one; use a
    tree reduce when the combine operator allows it)."""
    p = ctx.p
    if ctx.pid != root:
        yield Send(root, (ctx.pid, value), tag=tag)
        return None
    out: list[Any] = [None] * p
    out[root] = value
    msgs = yield from recv_n_tagged(ctx, tag, p - 1)
    for m in msgs:
        pid, v = m.payload
        out[pid] = v
    return out


def ring_allgather(
    ctx: LogPContext, value: T, tag: int = 908
) -> Generator[Any, Any, list[T]]:
    """All-gather by ring rotation: ``p - 1`` rounds, each processor
    forwards the newest item to its right neighbor.  Bandwidth-optimal
    (every processor sends and receives exactly ``p - 1`` items) and
    stall-free (one in-flight message per destination)."""
    p = ctx.p
    out: list[Any] = [None] * p
    out[ctx.pid] = value
    if p == 1:
        return out
    right = (ctx.pid + 1) % p
    carry: tuple[int, Any] = (ctx.pid, value)
    for _ in range(p - 1):
        yield Send(right, carry, tag=tag)
        msg = yield from recv_tag(ctx, tag)
        carry = msg.payload
        out[carry[0]] = carry[1]
    return out
