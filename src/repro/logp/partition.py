"""Running independent LogP programs on disjoint processor groups.

Paper §2.2: "if two programs run on disjoint sets of processors, then
their executions do not interfere.  This is a desirable property, as it
nicely supports partitioning of the computation into independent
subcomputations, as well as multiuser modes of operation."

:func:`combine_partitions` places one program per group on a single
machine, giving each program a *local* view (its own ``pid``/``p`` and
destination space).  Because LogP has no global synchronization, each
group's timing is exactly what it would be on a standalone machine of its
own size — the property the partitioning experiment verifies, and the
contrast with BSP's global barrier (see :mod:`repro.bsp.partition`).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ProgramError
from repro.logp.instructions import LogPContext, LogPProgram, Recv, Send, TryRecv
from repro.models.message import Message

__all__ = ["combine_partitions"]


class _GroupView(LogPContext):
    """A context exposing group-local pid/p over the global machine."""

    __slots__ = ("_group",)

    def __init__(self, global_ctx: LogPContext, group: Sequence[int]) -> None:
        local_pid = list(group).index(global_ctx.pid)
        super().__init__(local_pid, len(group), global_ctx.params)
        self._group = list(group)


def _translate(global_ctx: LogPContext, view: _GroupView, program: LogPProgram):
    """Drive ``program`` against the group-local view, translating
    destinations outward and message sources inward."""
    group = view._group
    to_global = group
    to_local = {g: i for i, g in enumerate(group)}

    def translate_msg(msg: Message) -> Message:
        if msg.src not in to_local:
            raise ProgramError(
                f"group isolation violated: processor {global_ctx.pid} received "
                f"a message from outside its partition (src={msg.src})"
            )
        return Message(
            src=to_local[msg.src], dest=view.pid, payload=msg.payload, tag=msg.tag
        )

    gen = program(view)
    result: Any = None
    try:
        instr = next(gen)
        while True:
            view.clock = global_ctx.clock
            if isinstance(instr, Send):
                if not 0 <= instr.dest < view.p:
                    raise ProgramError(
                        f"group-local destination {instr.dest} out of range "
                        f"(group size {view.p})"
                    )
                out = yield Send(to_global[instr.dest], instr.payload, tag=instr.tag)
            elif isinstance(instr, (Recv, TryRecv)):
                out = yield instr
                if isinstance(out, Message):
                    out = translate_msg(out)
            else:
                out = yield instr
            view.clock = global_ctx.clock
            instr = gen.send(out)
    except StopIteration as stop:
        result = stop.value
    return result


def combine_partitions(
    groups: Sequence[Sequence[int]],
    programs: Sequence[LogPProgram],
    p: int,
) -> list:
    """Build per-processor global programs from per-group programs.

    ``groups`` must partition (a subset of) ``range(p)``; processors not
    covered run an empty program.  Returns the list of ``p`` programs to
    pass to :meth:`~repro.logp.machine.LogPMachine.run`; each group's
    results appear at its members' global indices.
    """
    owner: dict[int, tuple[int, Sequence[int]]] = {}
    for gi, group in enumerate(groups):
        for pid in group:
            if pid in owner or not 0 <= pid < p:
                raise ProgramError(f"groups must be disjoint subsets of range({p})")
            owner[pid] = (gi, group)
    if len(groups) != len(programs):
        raise ProgramError("need exactly one program per group")

    def make(pid: int):
        if pid not in owner:
            def idle(ctx):
                return None
                yield  # pragma: no cover

            return idle
        gi, group = owner[pid]

        def prog(ctx: LogPContext):
            view = _GroupView(ctx, group)
            result = yield from _translate(ctx, view, programs[gi])
            return result

        return prog

    return [make(pid) for pid in range(p)]
