"""The LogP communication medium: capacity constraint and stalling rule.

The medium tracks, per destination ``d``:

* ``in_transit[d]`` — messages accepted but not yet delivered; the
  capacity constraint requires ``in_transit[d] <= C = ceil(L/G)`` at all
  times,
* ``pending[d]`` — submissions not yet accepted (their senders are
  *stalling*),
* the set of occupied delivery steps (the medium delivers at most one
  message per destination per step — see the paper's ``G >= 2``
  discussion).

**Stalling rule** (paper Section 2, formalized): at any time ``t``, with
``s = C - in_transit[d]`` free slots and ``k = len(pending[d])``,
``min{k, s}`` pending submissions are accepted; the acceptance *order* is
unspecified and is delegated to an :class:`~repro.logp.scheduler.AcceptancePolicy`.

Event-driven realization: acceptances can only become possible when (a) a
new submission arrives, or (b) a delivery frees a slot; the machine calls
:meth:`Medium.submit` and :meth:`Medium.on_delivered` at exactly those
moments, and the rule above is enforced at each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CapacityViolationError
from repro.models.message import Message
from repro.models.params import LogPParams
from repro.logp.scheduler import AcceptancePolicy, DeliveryScheduler

__all__ = ["Medium", "StallRecord", "InTransit"]


@dataclass(frozen=True)
class StallRecord:
    """One stall episode: sender blocked from ``submit_time`` to
    ``accept_time`` waiting for destination ``dest``."""

    sender: int
    dest: int
    submit_time: int
    accept_time: int

    @property
    def duration(self) -> int:
        return self.accept_time - self.submit_time


@dataclass
class InTransit:
    """An accepted message on its way to ``msg.dest``."""

    msg: Message
    accept_time: int
    deliver_time: int


class Medium:
    """The communication medium of a ``p``-processor LogP machine.

    Parameters
    ----------
    params:
        Machine parameters (provides ``L`` and the capacity ``C``).
    delivery:
        Policy choosing in-network delays.
    acceptance:
        Policy choosing the acceptance order under congestion.
    on_accept:
        Machine callback ``(sender, accept_time)`` fired when a *pending*
        (stalled) submission is accepted, so the machine can resume the
        sender.  Immediate acceptances return directly from :meth:`submit`.
    on_schedule_delivery:
        Machine callback ``(msg, deliver_time)`` to enqueue the delivery
        event.
    """

    def __init__(
        self,
        params: LogPParams,
        delivery: DeliveryScheduler,
        acceptance: AcceptancePolicy,
        on_accept: Callable[[int, int], None],
        on_schedule_delivery: Callable[[Message, int], None],
    ) -> None:
        self.params = params
        self.capacity = params.capacity
        self.delivery = delivery
        self.acceptance = acceptance
        self._on_accept = on_accept
        self._on_schedule = on_schedule_delivery
        p = params.p
        self.in_transit: list[int] = [0] * p
        # pending[d]: list of (submit_time, seq, sender, msg)
        self.pending: list[list[tuple[int, int, int, Message]]] = [[] for _ in range(p)]
        self._occupied: list[set[int]] = [set() for _ in range(p)]
        self._seq = 0
        self.stalls: list[StallRecord] = []
        self.total_accepted = 0

    # ------------------------------------------------------------------

    def submit(self, sender: int, msg: Message, t: int) -> int | None:
        """Register a submission at time ``t``.

        Returns the acceptance time (== ``t``) if the message is accepted
        immediately, else ``None`` (the sender is now stalling and will be
        resumed through the ``on_accept`` callback).
        """
        d = msg.dest
        if not self.pending[d] and self.in_transit[d] < self.capacity:
            self._accept(sender, msg, t, stalled_since=None)
            return t
        self._seq += 1
        self.pending[d].append((t, self._seq, sender, msg))
        return None

    def on_delivered(self, msg: Message, t: int) -> None:
        """A delivery to ``msg.dest`` completed at time ``t``: free the
        slot and apply the stalling rule (accept ``min{k, s}`` pending)."""
        d = msg.dest
        self.in_transit[d] -= 1
        if self.in_transit[d] < 0:
            raise CapacityViolationError(f"negative in-transit count at {d}")
        self._occupied[d].discard(t)
        self._drain_pending(d, t)

    def _drain_pending(self, d: int, t: int) -> None:
        """Accept as many pending submissions for ``d`` as slots allow."""
        while self.pending[d] and self.in_transit[d] < self.capacity:
            idx = self.acceptance.choose(self.pending[d], t)
            submit_time, _seq, sender, msg = self.pending[d].pop(idx)
            self.stalls.append(
                StallRecord(sender=sender, dest=d, submit_time=submit_time, accept_time=t)
            )
            self._accept(sender, msg, t, stalled_since=submit_time)

    def _accept(self, sender: int, msg: Message, t: int, stalled_since: int | None) -> None:
        """Accept ``msg`` at time ``t``: occupy a slot, pick a delivery
        step, schedule the delivery, and (if the sender was stalling)
        notify the machine."""
        d = msg.dest
        self.in_transit[d] += 1
        if self.in_transit[d] > self.capacity:
            raise CapacityViolationError(
                f"in-transit count {self.in_transit[d]} exceeds capacity "
                f"{self.capacity} at destination {d}"
            )
        self.total_accepted += 1
        deliver = self._pick_delivery_step(msg, t)
        self._occupied[d].add(deliver)
        self._on_schedule(msg, deliver)
        if stalled_since is not None:
            self._on_accept(sender, t)

    def _pick_delivery_step(self, msg: Message, t_acc: int) -> int:
        """Choose the delivery step in ``(t_acc, t_acc + L]``.

        The policy proposes a delay; collisions (one delivery per
        destination per step) are resolved to the nearest later free step,
        wrapping to earlier free steps if the window's tail is full.  A
        free step always exists: at most ``C - 1`` other messages are in
        transit to ``msg.dest`` and all of their delivery steps lie in
        ``(t_acc, t_acc + L]`` (earlier deliveries already happened),
        while the window has ``L >= C`` steps.
        """
        L = self.params.L
        delay = self.delivery.propose_delay(msg, t_acc, L)
        delay = min(max(int(delay), 1), L)
        return self._free_step(msg.dest, t_acc + delay, t_acc, t_acc + L)

    def _free_step(
        self, d: int, preferred: int, lo: int, hi: int, *, overflow: bool = False
    ) -> int:
        """Nearest step >= ``preferred`` (then < preferred, > ``lo``) with
        no delivery to ``d`` scheduled.  With ``overflow=True`` the search
        continues past ``hi`` instead of failing — used only by the fault
        injector, whose extra-delay faults deliberately leave the model's
        ``(t_acc, t_acc + L]`` window."""
        occupied = self._occupied[d]
        for step in range(preferred, hi + 1):
            if step not in occupied:
                return step
        for step in range(min(preferred, hi + 1) - 1, lo, -1):
            if step not in occupied:
                return step
        if overflow:
            step = hi + 1
            while step in occupied:
                step += 1
            return step
        raise CapacityViolationError(
            f"no free delivery step for destination {d} in ({lo}, {hi}]"
        )

    def deliverable(self, msg: Message) -> bool:
        """Whether a delivery event for ``msg`` should reach the processor
        buffer.  The base medium delivers everything; the fault injector's
        :class:`~repro.faults.medium.FaultyMedium` returns ``False`` for
        messages its plan drops (the engine still frees the capacity slot
        via :meth:`on_delivered`)."""
        return True

    # ------------------------------------------------------------------

    @property
    def quiescent(self) -> bool:
        """True when nothing is in transit or pending anywhere."""
        return all(c == 0 for c in self.in_transit) and all(
            not q for q in self.pending
        )

    def pending_count(self) -> int:
        return sum(len(q) for q in self.pending)
