"""Execution traces and machine-checkable LogP invariants.

A :class:`Trace` records every submission, acceptance-to-delivery window,
delivery, and acquisition.  :meth:`Trace.check_invariants` then verifies,
from the trace alone, the model rules the engine is supposed to enforce:

* consecutive submissions by one processor are >= G apart,
* consecutive acquisitions by one processor are >= G apart,
* every delivery happens within L of the message's acceptance,
* at most ``ceil(L/G)`` messages are in transit per destination at any time,
* at most one delivery per destination per step.

The property-based tests run random programs and re-validate traces, so an
engine bug cannot hide behind the engine's own bookkeeping.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.models.message import Message
from repro.models.params import LogPParams

__all__ = ["Trace", "TraceViolation"]


@dataclass(frozen=True)
class TraceViolation:
    """One violated invariant, for readable test failures.

    ``uid`` names the implicated message when the rule concerns a single
    message (latency, causality, phantom, premature-acquire); the fault
    checker (:mod:`repro.faults.invariants`) uses it to excuse violations
    the active fault plan deliberately injected.
    """

    rule: str
    detail: str
    uid: int | None = None

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


@dataclass
class Trace:
    """Chronological record of one LogP execution."""

    params: LogPParams
    submissions: list[tuple[int, int, int]] = field(default_factory=list)
    #: (msg_uid, dest, accept_time->delivery window end) — recorded when the
    #: medium schedules the delivery, i.e. at acceptance time.
    windows: list[tuple[int, int, int, int]] = field(default_factory=list)
    deliveries: list[tuple[int, int, int]] = field(default_factory=list)
    acquisitions: list[tuple[int, int, int, int]] = field(default_factory=list)

    # -- machine hooks ------------------------------------------------------

    def on_submitted(self, msg: Message, t: int) -> None:
        self.submissions.append((t, msg.src, msg.uid))

    def on_delivery_scheduled(self, msg: Message, deliver_time: int) -> None:
        # Called at acceptance; we do not know accept time directly here but
        # the engine schedules at acceptance, so record the pair via the
        # delivery event below.  We store (uid, dest, deliver_time) now and
        # match acceptance from the submission/stall ledger at check time.
        self.windows.append((msg.uid, msg.dest, deliver_time, deliver_time))

    def on_delivered(self, msg: Message, t: int) -> None:
        self.deliveries.append((t, msg.dest, msg.uid))

    def on_acquired(self, msg: Message, pid: int, t_start: int, t_end: int) -> None:
        self.acquisitions.append((t_start, t_end, pid, msg.uid))

    # -- validation ----------------------------------------------------------

    def check_invariants(self, accept_times: dict[int, int] | None = None) -> list[TraceViolation]:
        """Validate the trace; returns all violations (empty list == clean).

        ``accept_times`` maps message uid to acceptance time.  When not
        given, acceptance is conservatively taken to equal submission time
        for non-stalled messages (the engine provides exact times via
        :func:`accept_times_from_result`).
        """
        G = self.params.G
        L = self.params.L
        cap = self.params.capacity
        violations: list[TraceViolation] = []

        per_proc_sub: dict[int, list[int]] = defaultdict(list)
        for t, src, _uid in self.submissions:
            per_proc_sub[src].append(t)
        for src, times in per_proc_sub.items():
            times.sort()
            for a, b in zip(times, times[1:]):
                if b - a < G:
                    violations.append(
                        TraceViolation(
                            "submission-gap",
                            f"processor {src} submitted at {a} and {b} (< G={G})",
                        )
                    )

        per_proc_acq: dict[int, list[int]] = defaultdict(list)
        for t_start, _t_end, pid, _uid in self.acquisitions:
            per_proc_acq[pid].append(t_start)
        for pid, times in per_proc_acq.items():
            times.sort()
            for a, b in zip(times, times[1:]):
                if b - a < G:
                    violations.append(
                        TraceViolation(
                            "acquisition-gap",
                            f"processor {pid} acquired at {a} and {b} (< G={G})",
                        )
                    )

        sub_time = {uid: t for t, _src, uid in self.submissions}
        accept = dict(accept_times or {})
        delivered_at = {uid: t for t, _dest, uid in self.deliveries}
        for uid, t_del in delivered_at.items():
            t_acc = accept.get(uid, sub_time.get(uid))
            if t_acc is None:
                violations.append(
                    TraceViolation(
                        "phantom", f"message {uid} delivered but never submitted", uid=uid
                    )
                )
                continue
            if t_del > t_acc + L:
                violations.append(
                    TraceViolation(
                        "latency",
                        f"message {uid} accepted at {t_acc} delivered at {t_del} (> L={L} later)",
                        uid=uid,
                    )
                )
            if t_del <= t_acc:
                violations.append(
                    TraceViolation(
                        "causality",
                        f"message {uid} delivered at {t_del} <= acceptance {t_acc}",
                        uid=uid,
                    )
                )

        # capacity: sweep acceptance/delivery events per destination
        events: dict[int, list[tuple[int, int]]] = defaultdict(list)
        dest_of = {uid: dest for _t, dest, uid in self.deliveries}
        for uid, t_del in delivered_at.items():
            t_acc = accept.get(uid, sub_time.get(uid))
            if t_acc is None:
                continue
            d = dest_of[uid]
            events[d].append((t_acc, +1))
            events[d].append((t_del, -1))
        for d, evs in events.items():
            # deliveries (-1) at a time t free the slot before acceptances
            # (+1) at the same t, matching the engine's intra-step order
            evs.sort(key=lambda e: (e[0], e[1]))
            count = 0
            for t, delta in evs:
                count += delta
                if count > cap:
                    violations.append(
                        TraceViolation(
                            "capacity",
                            f"destination {d} had {count} > ceil(L/G)={cap} "
                            f"messages in transit at t={t}",
                        )
                    )
                    break

        per_dest_step: dict[tuple[int, int], int] = defaultdict(int)
        for t, dest, _uid in self.deliveries:
            per_dest_step[(dest, t)] += 1
        for (dest, t), n in per_dest_step.items():
            if n > 1:
                violations.append(
                    TraceViolation(
                        "delivery-rate",
                        f"{n} messages delivered to {dest} at step {t}",
                    )
                )

        for t_start, t_end, pid, uid in self.acquisitions:
            t_del = delivered_at.get(uid)
            if t_del is None:
                violations.append(
                    TraceViolation(
                        "phantom", f"message {uid} acquired but never delivered", uid=uid
                    )
                )
            elif t_start < t_del:
                violations.append(
                    TraceViolation(
                        "premature-acquire",
                        f"processor {pid} acquired {uid} at {t_start} before "
                        f"its delivery at {t_del}",
                        uid=uid,
                    )
                )

        return violations


def accept_times_from_result(result) -> dict[int, int]:
    """Exact acceptance times: submission time, overridden by the stall
    ledger for messages whose acceptance was delayed.

    ``result`` is a :class:`~repro.logp.machine.LogPResult` whose machine
    ran with ``record_trace=True``.
    """
    trace = result.trace
    if trace is None:
        raise ValueError("result has no trace; run with record_trace=True")
    accept = {uid: t for t, _src, uid in trace.submissions}
    # Stall records do not carry message uids; match each stall to the
    # sender's submission at the stall's submit_time (unique per sender:
    # a processor has at most one outstanding submission).
    by_sender_time = {(src, t): uid for t, src, uid in trace.submissions}
    for stall in result.stalls:
        uid = by_sender_time.get((stall.sender, stall.submit_time))
        if uid is not None:
            accept[uid] = stall.accept_time
    return accept
