"""Approximate stall-freedom / correctness certification for LogP programs.

The paper defines a *stall-free program* as one whose **all admissible
executions** are stall-free, and a *correct program* as one computing the
same input-output map under all admissible executions.  Admissibility has
two degrees of freedom (Section 2.2): delivery delays in ``[1, L]`` and
the acceptance order under congestion.  Exhaustively enumerating
executions is infeasible, so :func:`validate_program` samples an ensemble
of policies — the deterministic extremes (max-latency, eager) crossed
with FIFO/LIFO acceptance, plus seeded random schedules — and reports:

* whether any sampled execution stalled,
* whether all sampled executions produced identical results,
* trace-invariant violations (with ``check_traces=True``).

A ``CertificationReport`` with ``ok`` True is strong evidence, not proof
(the paper's constructions are *proved* stall-free; the engine asserts
that claim at run time via ``forbid_stalling``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.logp.machine import LogPMachine
from repro.logp.scheduler import (
    AcceptFIFO,
    AcceptLIFO,
    AcceptRandom,
    DeliverEager,
    DeliverMaxLatency,
    DeliverRandom,
)
from repro.logp.trace import accept_times_from_result
from repro.models.params import LogPParams

__all__ = ["CertificationReport", "validate_program", "default_ensemble"]


def default_ensemble(seeds: Sequence[int] = (0, 1, 2)) -> list[tuple[str, dict]]:
    """The policy grid: deterministic extremes + seeded random mixes."""
    grid: list[tuple[str, dict]] = [
        ("max-latency/FIFO", dict(delivery=DeliverMaxLatency(), acceptance=AcceptFIFO())),
        ("max-latency/LIFO", dict(delivery=DeliverMaxLatency(), acceptance=AcceptLIFO())),
        ("eager/FIFO", dict(delivery=DeliverEager(), acceptance=AcceptFIFO())),
        ("eager/LIFO", dict(delivery=DeliverEager(), acceptance=AcceptLIFO())),
    ]
    for s in seeds:
        grid.append(
            (
                f"random[{s}]",
                dict(delivery=DeliverRandom(seed=s), acceptance=AcceptRandom(seed=s + 1000)),
            )
        )
    return grid


@dataclass
class CertificationReport:
    """Outcome of ensemble validation."""

    executions: int
    stall_free: bool
    deterministic_result: bool
    results: Any
    violations: list = field(default_factory=list)
    stalling_policies: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.stall_free and self.deterministic_result and not self.violations


def validate_program(
    params: LogPParams,
    program,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    check_traces: bool = True,
    require_stall_free: bool = True,
) -> CertificationReport:
    """Run ``program`` under the policy ensemble and cross-check outcomes.

    With ``require_stall_free=False`` the stall check is skipped (useful
    for certifying result-determinism of programs that legitimately
    stall, e.g. hot-spot kernels).
    """
    ensemble = default_ensemble(seeds)
    baseline: Any = None
    stall_free = True
    deterministic = True
    violations: list = []
    stalling_policies: list[str] = []
    for i, (name, kwargs) in enumerate(ensemble):
        machine = LogPMachine(params, record_trace=check_traces, **kwargs)
        result = machine.run(program)
        if not result.stall_free:
            stall_free = False
            stalling_policies.append(name)
        if check_traces and result.trace is not None:
            found = result.trace.check_invariants(accept_times_from_result(result))
            violations.extend((name, v) for v in found)
        if i == 0:
            baseline = result.results
        elif result.results != baseline:
            deterministic = False
    return CertificationReport(
        executions=len(ensemble),
        stall_free=stall_free or not require_stall_free,
        deterministic_result=deterministic,
        results=baseline,
        violations=violations,
        stalling_policies=stalling_policies,
    )
