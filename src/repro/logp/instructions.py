"""LogP program API: instructions and the per-processor context.

A LogP program is a generator function ``prog(ctx)`` run once per
processor.  It yields instruction objects; the machine computes each
instruction's completion time under the model's rules and resumes the
generator with the instruction's result.

Timing semantics (integer steps; see paper Section 2.2):

``Compute(n)``
    The processor is busy for ``n`` steps.  Result: ``None``.

``Send(dest, payload)``
    Preparation costs ``o`` busy steps and ends with the *submission* of
    the message.  Consecutive submissions by the same processor are at
    least ``G`` apart (the processor idle-waits if it issues sends faster;
    interleave ``Compute`` to use that time).  Between submission and
    *acceptance* the processor **stalls**; acceptance is governed by the
    capacity constraint and the stalling rule in
    :mod:`repro.logp.network`.  Result: the acceptance time.

``Recv()``
    Acquires the earliest-delivered buffered message.  Acquisition starts
    no earlier than ``G`` after the previous acquisition and costs ``o``
    busy steps; blocks while the buffer is empty.  Result: the
    :class:`~repro.models.message.Message`.

``TryRecv()``
    If a message is already deliverable under the gap constraint, behaves
    like ``Recv``; otherwise costs one step and results in ``None``
    (polling is not free — this also guarantees simulation progress).

``WaitUntil(t)``
    Idle until absolute time ``t`` (no-op if already past).  Used by
    schedule-driven algorithms such as the slotted CB tree for
    ``ceil(L/G) = 1``.  Result: ``None``.

``Linger()``
    Like ``Recv``, but instead of deadlocking when no message can ever
    arrive, results in ``None`` once the whole machine is quiescent
    (every other processor finished or lingering, nothing in flight).
    This is the graceful-drain primitive the resilient protocol layer
    (:mod:`repro.faults.protocol`) uses to keep re-acknowledging
    retransmissions after its own work is done, without having to guess
    a timeout for distributed termination.  Result: a
    :class:`~repro.models.message.Message` or ``None`` (quiescent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.errors import ProgramError

__all__ = [
    "Compute",
    "Send",
    "Recv",
    "TryRecv",
    "WaitUntil",
    "Linger",
    "LogPContext",
    "LogPProgram",
]


@dataclass(frozen=True)
class Compute:
    """Occupy the processor for ``ops`` steps of local work."""

    ops: int

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ProgramError(f"Compute requires ops >= 0, got {self.ops}")


@dataclass(frozen=True)
class Send:
    """Prepare (cost ``o``) and submit one message to ``dest``.

    ``size`` (in words, >= 1) matters only on LogGP machines
    (``Gb > 0``): preparing a ``size``-word message costs
    ``o + (size - 1) * Gb`` at the sender, and acquiring it the same at
    the receiver.  Classic LogP ignores it.
    """

    dest: int
    payload: Any = None
    tag: int = 0
    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ProgramError(f"Send requires size >= 1, got {self.size}")


@dataclass(frozen=True)
class Recv:
    """Acquire (cost ``o``) the earliest buffered message; blocks if none."""


@dataclass(frozen=True)
class TryRecv:
    """Non-blocking receive; one step if nothing is acquirable."""


@dataclass(frozen=True)
class WaitUntil:
    """Idle until absolute time ``time``."""

    time: int


@dataclass(frozen=True)
class Linger:
    """Receive if anything arrives; resolve to ``None`` at quiescence."""


Instruction = Compute | Send | Recv | TryRecv | WaitUntil | Linger
LogPProgram = Callable[["LogPContext"], Generator[Instruction, Any, Any]]


class LogPContext:
    """Per-processor view of the machine, passed to the program generator.

    Attributes
    ----------
    pid, p:
        This processor's index and the machine size.
    params:
        The machine's :class:`~repro.models.params.LogPParams`.
    clock:
        The processor's local time, updated by the machine before every
        resume.  All clocks run at the same speed (global time).
    """

    __slots__ = ("pid", "p", "params", "clock", "_stash")

    def __init__(self, pid: int, p: int, params) -> None:
        self.pid = pid
        self.p = p
        self.params = params
        self.clock = 0
        # Program-level holding area for messages acquired but not yet
        # consumed by tag-dispatch helpers (see logp.collectives.recv_match).
        self._stash: list = []

    def __repr__(self) -> str:
        return f"LogPContext(pid={self.pid}, p={self.p}, clock={self.clock})"
