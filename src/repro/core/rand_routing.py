"""Randomized routing of h-relations in LogP (paper Section 4.3, Thm 3).

Protocol (verbatim from the paper), for a relation whose degree ``h`` is
known in advance by every processor:

1. Each processor independently assigns each of its messages a uniform
   batch number in ``[1, R]``, with ``R = (1 + beta_hat) h / ceil(L/G)``.
2. ``R`` rounds, each of ``2 (L + o)`` steps: in round ``r`` transmit up
   to ``ceil(L/G)`` messages of batch ``r``, one submission every ``G``.
3. Transmit all remaining messages (batch overflow), one every ``G``.

With ``ceil(L/G) >= c1 log p`` the Chernoff argument shows that w.h.p. no
round directs more than ``ceil(L/G)`` messages at one destination (so the
capacity constraint holds and nothing stalls) and no processor has
leftovers for step 3; the whole relation then completes in
``beta * G * h`` steps.  Our machine *executes* the protocol, stalls and
all: the harness reports whether each run stalled, so the experiment can
estimate the stall probability empirically and compare it with the bound
(:func:`repro.models.cost.theorem3_failure_bound`).

Because a round's submissions all fall inside its window and deliveries
take at most ``L < 2(L+o)``, messages from different rounds are never
simultaneously in transit; in-transit traffic per destination in round
``r`` is exactly that round's ``Y_r(j)``, matching the proof's random
variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

from repro.errors import ProgramError
from repro.logp.collectives import recv_n_tagged
from repro.logp.instructions import LogPContext, Send, WaitUntil
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import theorem3_beta_hat, theorem3_time_bound
from repro.models.params import LogPParams
from repro.routing.hall import relation_degree
from repro.routing.two_phase import BatchPlan, make_batch_plan

__all__ = ["randomized_route", "measure_rand_routing", "RandRoutingMeasurement"]

_PAYLOAD_TAG = 3001


def randomized_route(
    ctx: LogPContext,
    outgoing: Sequence[tuple[int, Any]],
    batches: list[list[int]],
    leftovers: list[int],
    round_length: int,
    expected_in: int,
    *,
    start_time: int = 0,
    tag: int = _PAYLOAD_TAG,
) -> Generator[Any, Any, list]:
    """One processor's side of the Theorem 3 protocol.

    ``batches``/``leftovers`` index into ``outgoing`` (from a
    :class:`~repro.routing.two_phase.BatchPlan`); ``expected_in`` is how
    many messages this processor will receive (harness-level accounting —
    the theorem routes a relation whose degree is known in advance).
    Returns the received payloads.
    """
    # Step 2: R rounds of fixed length.
    for rnd, idxs in enumerate(batches):
        if idxs:
            yield WaitUntil(start_time + rnd * round_length)
            for i in idxs:
                dest, payload = outgoing[i]
                yield Send(dest, (ctx.pid, payload), tag=tag)
    # Step 3: leftovers, paced G by the machine's gap rule.
    if leftovers:
        yield WaitUntil(start_time + len(batches) * round_length)
        for i in leftovers:
            dest, payload = outgoing[i]
            yield Send(dest, (ctx.pid, payload), tag=tag)
    msgs = yield from recv_n_tagged(ctx, tag, expected_in)
    return [m.payload for m in msgs]


@dataclass
class RandRoutingMeasurement:
    """One randomized-routing run vs the Theorem 3 bounds."""

    params: LogPParams
    h: int
    plan: BatchPlan
    result: LogPResult
    beta_hat: float

    @property
    def stalled(self) -> bool:
        return not self.result.stall_free

    @property
    def clean(self) -> bool:
        """The w.h.p. event: no stall and no leftovers for step 3."""
        return self.plan.clean and not self.stalled

    @property
    def total_time(self) -> int:
        return self.result.makespan

    @property
    def time_bound(self) -> float:
        """The paper's round-phase bound ``2 (L + o) R <= beta G h``."""
        return theorem3_time_bound(self.h, self.params, self.beta_hat)


def measure_rand_routing(
    params: LogPParams,
    pairs: Sequence[tuple[int, int]],
    *,
    seed: int = 0,
    c1: float = 1.0,
    c2: float = 1.0,
    R: int | None = None,
    h: int | None = None,
    machine_kwargs: dict | None = None,
) -> RandRoutingMeasurement:
    """Route ``pairs`` with the randomized protocol and verify delivery.

    ``R`` overrides the paper's (very conservative) batch count so the
    benches can chart stall probability against round budget; ``h``
    defaults to the relation's true degree (the "known in advance" value).
    """
    p = params.p
    degree = relation_degree(pairs)
    h_known = degree if h is None else h
    outgoing: list[list[tuple[int, Any]]] = [[] for _ in range(p)]
    expected_in = [0] * p
    for idx, (src, dest) in enumerate(pairs):
        outgoing[src].append((dest, ("pkt", idx)))
        expected_in[dest] += 1

    beta_hat = theorem3_beta_hat(c1, c2)
    plan = make_batch_plan(
        [len(out) for out in outgoing],
        h_known,
        params,
        seed=seed,
        c1=c1,
        c2=c2,
        R=R,
    )

    def make_prog(pid: int):
        def prog(ctx: LogPContext):
            got = yield from randomized_route(
                ctx,
                outgoing[pid],
                plan.batches[pid],
                plan.leftovers[pid],
                plan.round_length,
                expected_in[pid],
            )
            return got

        return prog

    machine = LogPMachine(params, **(machine_kwargs or {}))
    result = machine.run([make_prog(pid) for pid in range(p)])

    for pid in range(p):
        got = {payload[1][1] for payload in result.results[pid]}
        want = {idx for idx, (_s, d) in enumerate(pairs) if d == pid}
        if got != want:
            raise ProgramError(
                f"delivery mismatch at processor {pid}: missing "
                f"{sorted(want - got)[:5]}, spurious {sorted(got - want)[:5]}"
            )
    return RandRoutingMeasurement(
        params=params, h=h_known, plan=plan, result=result, beta_hat=beta_hat
    )
