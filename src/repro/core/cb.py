"""Combine-and-Broadcast (CB) — paper Section 4.1, as a real LogP program.

Given an associative operator ``op`` and one input per processor, CB
returns ``op(x_0, ..., x_{p-1})`` to every processor.  The algorithm is an
ascend/descend pass over a complete ``k``-ary tree with ``k = max{2,
ceil(L/G)}`` whose nodes are the processors themselves:

* a leaf sends its input to its parent;
* an internal node combines the values of its children (in child order,
  after its own value, so ``op`` need only be associative) and forwards
  the result to its parent;
* the root combines and broadcasts the total back down the tree.

Capacity compliance: an internal node has at most ``k`` children.  For
``ceil(L/G) >= 2`` we have ``k = ceil(L/G)``, so even simultaneous child
submissions respect the capacity constraint and no stalling can occur.
For ``ceil(L/G) = 1`` the tree is binary and would overflow the single
slot, so — exactly as the paper prescribes — ascent transmissions are
restricted to time slots that are even multiples of ``L`` for left
children and odd multiples of ``L`` for right children.

The paper proves ``T_CB <= 3 (L + o) log p / log(1 + ceil(L/G))``
(:func:`repro.models.cost.cb_time_upper`) and a matching lower bound
(Proposition 1).  :func:`measure_cb` measures the completion time from the
moment the *last* processor joins, which is also how the barrier cost
``T_synch`` of Proposition 2 is defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Sequence, TypeVar

from repro.logp.collectives import kary_tree_children, recv_n_tagged, recv_tag
from repro.logp.instructions import Compute, LogPContext, Send, WaitUntil
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import cb_tree_arity
from repro.models.params import LogPParams
from repro.perf.memo import plan_cache

__all__ = [
    "cb",
    "cb_with_deadline",
    "cb_barrier",
    "descend_bound",
    "tree_depth",
    "measure_cb",
    "CBMeasurement",
]

T = TypeVar("T")

#: Tag offsets within a CB invocation's tag_base.
_ASCEND = 0
_DESCEND = 1

#: The tree shape and descend bound are pure functions of ``(p, k)`` /
#: the machine parameters, but every processor re-derives them on every
#: CB invocation (one barrier per superstep in the Theorem 2 driver), so
#: both are memoized process-wide.
_TREE_CACHE = plan_cache("cb-tree-shape")
_BOUND_CACHE = plan_cache("cb-descend-bound")


def _tree_shape(p: int, k: int) -> list[list[int]]:
    """``children[rank]`` for the complete k-ary tree on ``p`` nodes."""
    return _TREE_CACHE.get(
        (p, k), lambda: [kary_tree_children(r, k, p) for r in range(p)]
    )


def tree_depth(p: int, k: int) -> int:
    """Depth of the complete k-ary tree on ``p`` nodes (root at depth 0)."""
    depth = 0
    n = p - 1  # deepest rank
    while n > 0:
        n = (n - 1) // k
        depth += 1
    return depth


def descend_bound(params: LogPParams) -> int:
    """Engine-accurate upper bound on the CB descend duration.

    Per level a parent issues ``k`` submissions paced ``G`` (the first at
    most ``G + o`` after it obtains the value), delivery takes at most
    ``L``, and the child's acquisition start can be pushed by at most
    ``G`` by its own gap rule plus ``o`` to complete.  Used by
    :func:`cb_with_deadline` to broadcast a time by which *every*
    processor is guaranteed to have finished the CB.
    """
    def compute() -> int:
        p = params.p
        if p == 1:
            return 0
        k = cb_tree_arity(params)
        per_level = k * params.G + params.L + 3 * params.o + 2 * params.G
        return tree_depth(p, k) * per_level

    return _BOUND_CACHE.get(params, compute)


def _cb_impl(
    ctx: LogPContext,
    value: T,
    op: Callable[[T, T], T],
    tag_base: int,
    op_cost: int,
    want_deadline: bool,
) -> Generator[Any, Any, tuple[T, int]]:
    """Shared ascend/descend; returns ``(result, deadline)`` where
    ``deadline`` is meaningful only when ``want_deadline``."""
    p = ctx.p
    params: LogPParams = ctx.params
    if p == 1:
        return value, ctx.clock
    k = cb_tree_arity(params)
    slotted = params.capacity == 1
    rank = ctx.pid
    children = _tree_shape(p, k)[rank]
    parent = None if rank == 0 else (rank - 1) // k

    # --- ascend -----------------------------------------------------------
    acc = value
    if children:
        msgs = yield from recv_n_tagged(ctx, tag_base + _ASCEND, len(children))
        by_rank = {m.src: m.payload for m in msgs}
        for c in children:
            acc = op(acc, by_rank[c])
        if op_cost:
            yield Compute(op_cost * len(children))
    if parent is not None:
        if slotted:
            # Sibling index 0 => even multiples of L; index 1 => odd.
            parity = (rank - 1) % k
            yield from _wait_for_slot(ctx, parity, params)
        yield Send(parent, acc, tag=tag_base + _ASCEND)

    # --- descend ----------------------------------------------------------
    deadline = 0
    if parent is None:
        deadline = ctx.clock + descend_bound(params) if want_deadline else 0
    else:
        msg = yield from recv_tag(ctx, tag_base + _DESCEND)
        acc, deadline = msg.payload
        if want_deadline and ctx.clock > deadline:
            raise AssertionError(
                f"CB descend bound violated: processor {rank} finished at "
                f"{ctx.clock} > deadline {deadline}"
            )
    for c in children:
        yield Send(c, (acc, deadline), tag=tag_base + _DESCEND)
    return acc, deadline


def cb(
    ctx: LogPContext,
    value: T,
    op: Callable[[T, T], T],
    *,
    tag_base: int = 1000,
    op_cost: int = 1,
) -> Generator[Any, Any, T]:
    """Run one CB: returns ``op`` over all processors' values, everywhere.

    ``tag_base`` must differ between CB invocations that may overlap in
    time (successive protocol phases); it reserves tags ``tag_base`` and
    ``tag_base + 1``.
    """
    acc, _ = yield from _cb_impl(ctx, value, op, tag_base, op_cost, False)
    return acc


def cb_with_deadline(
    ctx: LogPContext,
    value: T,
    op: Callable[[T, T], T],
    *,
    tag_base: int = 1000,
    op_cost: int = 1,
) -> Generator[Any, Any, tuple[T, int]]:
    """Like :func:`cb`, additionally returning a *global deadline*: a time
    (computed by the root, broadcast with the value) by which every
    processor is guaranteed to have completed this CB.  The Section 4.2
    protocol uses it to align its pipelined routing cycles."""
    return (yield from _cb_impl(ctx, value, op, tag_base, op_cost, True))


def _wait_for_slot(ctx: LogPContext, parity: int, params: LogPParams) -> Generator:
    """Delay so the upcoming submission lands on the next time step that is
    an even (parity 0) or odd (parity 1) multiple of ``L``.

    The machine submits ``o`` steps after the processor resumes, but a
    submission within ``G`` of the processor's previous one is pushed
    later by the gap rule; targeting a slot at least ``G`` past the
    current clock makes the submission land *exactly* on the slot
    (``last_submit <= clock`` always holds, so ``slot >= clock + G >=
    last_submit + G``).
    """
    L = params.L
    ready = ctx.clock + max(params.o, params.G)
    period = 2 * L
    offset = parity * L
    # smallest slot = offset + m*period >= ready
    m = max(0, -(-(ready - offset) // period))
    slot = offset + m * period
    yield WaitUntil(slot - params.o)
    return None


def cb_barrier(
    ctx: LogPContext, *, tag_base: int = 1100
) -> Generator[Any, Any, bool]:
    """Barrier synchronization: CB with Boolean AND over ``True`` inputs
    (paper Section 4.1).  Completes only after every processor has joined;
    returns ``True``."""
    out = yield from cb(ctx, True, lambda a, b: a and b, tag_base=tag_base, op_cost=0)
    return out


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CBMeasurement:
    """Measured CB run vs. the paper's bounds."""

    params: LogPParams
    makespan: int
    latest_join: int
    result: LogPResult

    @property
    def t_cb(self) -> int:
        """Completion time measured from the latest join (Prop. 2)."""
        return self.makespan - self.latest_join


def measure_cb(
    params: LogPParams,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
    *,
    joins: Sequence[int] | None = None,
    op_cost: int = 1,
    machine_kwargs: dict | None = None,
) -> CBMeasurement:
    """Run CB on a fresh machine and measure ``T_CB``.

    ``joins[i]`` is the time at which processor ``i`` joins the CB
    (defaults to 0 for everyone); the paper measures ``T_CB`` from the
    latest join.  The run is required to be stall-free — CB is proven
    stall-free, so a stall would be an implementation bug.
    """
    p = params.p
    if len(values) != p:
        raise ValueError(f"need p={p} values, got {len(values)}")
    join_times = list(joins) if joins is not None else [0] * p

    def make_prog(pid: int):
        def prog(ctx: LogPContext):
            if join_times[pid]:
                yield WaitUntil(join_times[pid])
            total = yield from cb(ctx, values[pid], op, op_cost=op_cost)
            return total

        return prog

    machine = LogPMachine(params, forbid_stalling=True, **(machine_kwargs or {}))
    result = machine.run([make_prog(pid) for pid in range(p)])
    return CBMeasurement(
        params=params,
        makespan=result.makespan,
        latest_join=max(join_times),
        result=result,
    )
