"""Stalling analysis (paper Sections 2.2, 3 and 4.3).

Three experiment families:

* **Hot spots** (:func:`measure_hotspot`): ``k > ceil(L/G)`` processors
  simultaneously target one destination.  The paper's observation: under
  the formalized stalling rule the hot spot still *drains at the maximum
  rate* — one message every ``G`` — so the task finishes in
  ``Theta(G k + L)`` despite the stalled senders' lost cycles.  (This is
  the sense in which "the LogP performance model would actually
  encourage the use of stalling".)

* **Stall storms** (:func:`measure_stall_storm`): an adversarial
  ``h``-relation in which every sender walks the same destination
  sequence, maximizing convoying.  The paper's worst-case bound for
  completing any h-relation under stalling is ``O(G h^2)``
  (:func:`repro.models.cost.stalling_worst_case`).

* **Simulating stalling cycles on BSP** (:func:`simulate_stalling_cycle_on_bsp`):
  the end of Section 3 — a LogP cycle that *stalls* may route far more
  than ``ceil(L/G)`` messages per destination, so the Theorem 1 window
  simulation loses its ``h`` bound.  Sorting/prefix preprocessing
  restores structure: sort the cycle's messages by destination (on the
  BSP machine, with the same oblivious merge-split network), then
  deliver them in ``ceil(h / ceil(L/G))`` sub-supersteps, each a
  ``ceil(L/G)``-relation.  The measured cost exhibits the paper's
  ``O(((l + g)/G) log p)``-flavored slowdown (with our Batcher network
  contributing ``log^2 p`` rounds instead of AKS's ``log p``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bsp.machine import BSPMachine, BSPResult
from repro.bsp.program import BSPContext, Compute as BCompute, Send as BSend, Sync
from repro.bsp.collectives import bsp_allreduce
from repro.errors import ProgramError
from repro.logp.collectives import recv_n_tagged
from repro.logp.instructions import LogPContext, Send
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import hotspot_delivery_time, stalling_worst_case
from repro.models.params import BSPParams, LogPParams
from repro.sorting.bitonic import sorting_schedule
from repro.sorting.merge_split import merge_split
from repro.util.intmath import ceil_div

__all__ = [
    "measure_hotspot",
    "HotspotReport",
    "measure_stall_storm",
    "StallStormReport",
    "simulate_stalling_cycle_on_bsp",
]


@dataclass
class HotspotReport:
    """Hot-spot run: k senders, one destination."""

    params: LogPParams
    k: int
    result: LogPResult

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def predicted(self) -> int:
        """``Theta(G (k-1) + L)`` — full drain rate at the hot spot."""
        return hotspot_delivery_time(self.k, self.params) + 2 * self.params.o

    @property
    def total_stall_time(self) -> int:
        return self.result.total_stall_time

    @property
    def num_stalls(self) -> int:
        return len(self.result.stalls)


def measure_hotspot(
    params: LogPParams, k: int, dest: int = 0, *, machine_kwargs: dict | None = None
) -> HotspotReport:
    """``k`` processors send one message each to ``dest`` at time 0; the
    destination acquires all of them.  Stalling occurs iff
    ``k > ceil(L/G)``."""
    if k >= params.p:
        raise ProgramError(f"need k < p, got k={k}, p={params.p}")

    senders = [pid for pid in range(params.p) if pid != dest][:k]

    def prog(ctx: LogPContext):
        if ctx.pid == dest:
            msgs = yield from recv_n_tagged(ctx, 60, k)
            return len(msgs)
        if ctx.pid in senders:
            yield Send(dest, ctx.pid, tag=60)
            return None
        return None
        yield  # pragma: no cover - make this a generator

    machine = LogPMachine(params, **(machine_kwargs or {}))
    result = machine.run([prog] * params.p)
    return HotspotReport(params=params, k=k, result=result)


@dataclass
class StallStormReport:
    """Adversarial h-relation under the stalling rule."""

    params: LogPParams
    h: int
    result: LogPResult

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def worst_case_bound(self) -> int:
        """The paper's ``O(G h^2)`` completion bound."""
        return stalling_worst_case(self.h, self.params) + 2 * self.params.L

    @property
    def optimal(self) -> int:
        """Off-line optimum ``2o + G(h-1) + L`` for any h-relation."""
        return 2 * self.params.o + self.params.G * (self.h - 1) + self.params.L


def measure_stall_storm(
    params: LogPParams, h: int, *, machine_kwargs: dict | None = None
) -> StallStormReport:
    """An h-relation built to convoy: senders ``0..h-1`` all send their
    ``h`` messages to destinations ``p-h..p-1`` *in the same order*, so
    every destination is hammered by all senders at once."""
    p = params.p
    if 2 * h > p:
        raise ProgramError(f"need 2h <= p, got h={h}, p={p}")
    senders = list(range(h))
    dests = list(range(p - h, p))

    def prog(ctx: LogPContext):
        if ctx.pid in senders:
            for d in dests:
                yield Send(d, ctx.pid, tag=61)
            return None
        if ctx.pid in dests:
            msgs = yield from recv_n_tagged(ctx, 61, h)
            return len(msgs)
        return None
        yield  # pragma: no cover

    machine = LogPMachine(params, **(machine_kwargs or {}))
    result = machine.run([prog] * p)
    return StallStormReport(params=params, h=h, result=result)


# ---------------------------------------------------------------------------
# BSP simulation of a stalling LogP cycle (end of Section 3)
# ---------------------------------------------------------------------------

def simulate_stalling_cycle_on_bsp(
    bsp_params: BSPParams,
    logp_params: LogPParams,
    pairs: list[tuple[int, int]],
) -> BSPResult:
    """Simulate one (potentially stalling) LogP cycle's message set on BSP
    via the sorting/prefix technique, and return the BSP run.

    The message set ``pairs`` may exceed the capacity ``C = ceil(L/G)``
    per destination.  The BSP program: balance to ``r`` messages per
    processor, merge-split sort by destination, compute ``h`` by a
    commutative destination-count allreduce, then deliver rank ``q`` in
    sub-superstep ``q mod ceil(h/C)`` — each sub-superstep is a
    ``<= C``-relation, so the cycle costs
    ``O((sort rounds) * (l + g C) + ceil(h/C)(l + g C))``.
    """
    p = bsp_params.p
    C = logp_params.capacity
    outgoing: list[list[tuple[int, int]]] = [[] for _ in range(p)]
    for idx, (src, dest) in enumerate(pairs):
        if not (0 <= src < p and 0 <= dest < p):
            raise ProgramError(f"invalid pair ({src}, {dest})")
        outgoing[src].append((dest, idx))
    dummy = p

    def make_prog(pid: int):
        def prog(ctx: BSPContext):
            r = yield from bsp_allreduce(ctx, len(outgoing[pid]), max, op_cost=1)
            if r == 0:
                return []
            block = [(dest, idx) for dest, idx in outgoing[pid]]
            block += [(dummy, -1)] * (r - len(block))
            block.sort()
            yield BCompute(r)
            for rnd in sorting_schedule(p) if p > 1 else []:
                action = rnd[ctx.pid]
                if action is not None:
                    partner, keep_low = action
                    for rec in block:
                        yield BSend(partner, rec, tag=70)
                    yield Sync()
                    theirs = sorted(m.payload for m in ctx.recv_all(70))
                    block = merge_split(block, theirs, keep_low)
                    yield BCompute(r)
                else:
                    yield Sync()
            # Commutative destination-count merge (tree reductions combine
            # in a permuted order, so the order-sensitive run monoid would
            # undercount runs spanning non-adjacent processors).
            counts: dict[int, int] = {}
            for d, _ in block:
                if d != dummy:
                    counts[d] = counts.get(d, 0) + 1

            def merge(a: dict, b: dict) -> dict:
                out = dict(a)
                for k, v in b.items():
                    out[k] = out.get(k, 0) + v
                return out

            all_counts = yield from bsp_allreduce(ctx, counts, merge, op_cost=1)
            h = max([r] + list(all_counts.values()))
            m_sub = ceil_div(h, C) if h else 1
            received: list[int] = []
            for sub in range(m_sub):
                for q, (dest, idx) in enumerate(block):
                    if dest == dummy or (pid * r + q) % m_sub != sub:
                        continue
                    if dest == pid:
                        received.append(idx)
                    else:
                        yield BSend(dest, idx, tag=71)
                yield Sync()
                received.extend(m.payload for m in ctx.recv_all(71))
            return sorted(received)

        return prog

    machine = BSPMachine(bsp_params)
    result = machine.run([make_prog(pid) for pid in range(p)])
    # Verify delivery.
    for pid in range(p):
        want = sorted(idx for idx, (_s, d) in enumerate(pairs) if d == pid)
        if result.results[pid] != want:
            raise ProgramError(f"stalling-cycle BSP sim misdelivered at {pid}")
    return result
