"""Theorems 2/3: executing BSP programs on the LogP machine (paper §4).

Every BSP superstep becomes, on LogP (the paper's three-part structure):

1. the superstep's local computation,
2. a synchronization activity — CB with Boolean AND (Section 4.1), which
   here also carries each processor's *done* flag, so termination
   detection rides the barrier for free ("making each processor aware of
   termination, so that no further synchronization is needed"),
3. the routing of the superstep's h-relation, by one of three protocols:

   * ``"deterministic"`` — Section 4.2 (on-line: CB(max r), sort, CB(s),
     pipelined cycles); degree discovered at run time; stall-free.
   * ``"randomized"`` — Section 4.3 (Theorem 3): batch rounds; requires
     the degree ``h`` known in advance, which the driver obtains from a
     *native BSP pre-run* (the theorem's "provided that the h_i's are
     known" hypothesis); may stall with small probability.
   * ``"offline"`` — the Hall/König baseline the paper credits to Hall's
     theorem: the relation is decomposed into 1-relations in advance and
     routed in optimal ``2o + G(h-1) + L``; input-independent relations
     only (the driver checks the runtime relation matches the pre-run).
   * ``"resilient"`` — a count-announce exchange (each processor first
     tells every other how many payload messages to expect, then sends
     them) running entirely over the ack/retransmit transport of
     :mod:`repro.faults.protocol`.  Unlike the three model-optimal
     protocols above, it assumes *nothing* about delivery timing, so it
     is the one mode that stays correct over a lossy
     :class:`~repro.faults.medium.FaultyMedium` (``faults=``) — the
     price is ``O(p)`` extra count messages per superstep and the
     protocol's retransmission slowdown.

The driver always runs the program natively on a matched BSP machine
(``g = G, l = L``) first — for output comparison, for the cost ledger the
slowdown is measured against, and for the advance knowledge the last two
modes require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

import numpy as np

from repro.bsp.machine import BSPMachine, BSPResult
from repro.bsp.program import BSPContext, BSPProgram, Compute as BCompute, Send as BSend, Sync
from repro.core.cb import cb, cb_with_deadline
from repro.core.det_routing import TAG_STRIDE, deterministic_route, _pinned_send
from repro.engine.core import coerce_programs
from repro.engine.result import MachineResult
from repro.errors import ProgramError
from repro.faults.plan import FaultPlan
from repro.faults.protocol import reliable
from repro.logp.collectives import recv_n_tagged
from repro.logp.instructions import Compute, LogPContext, Send, WaitUntil
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import slowdown_S, theorem3_beta_hat, theorem3_num_batches
from repro.models.message import Message
from repro.models.params import LogPParams
from repro.perf.memo import plan_cache
from repro.routing.hall import decompose_h_relation, relation_degree
from repro.util.rng import derive_seed

__all__ = ["simulate_bsp_on_logp", "Theorem2Report", "SuperstepTiming"]

_BARRIER_TAG = 8192
_PAYLOAD_TAG = 8200
_COUNT_TAG = 8201


@dataclass(frozen=True)
class SuperstepTiming:
    """Per-superstep LogP phase boundary clocks (max over processors)."""

    index: int
    local_end: int
    sync_end: int
    route_end: int

    @property
    def t_sync(self) -> int:
        return self.sync_end - self.local_end

    @property
    def t_route(self) -> int:
        return self.route_end - self.sync_end


@dataclass
class Theorem2Report(MachineResult):
    """Outcome of one BSP-on-LogP simulation."""

    row_fields = (
        "routing",
        "total_logp_time",
        "bsp_cost",
        "slowdown",
        "predicted_slowdown",
        "outputs_match",
    )

    logp_params: LogPParams
    routing: str
    logp: LogPResult
    bsp_native: BSPResult
    timings: list[SuperstepTiming] = field(default_factory=list)

    @property
    def results(self) -> list[Any]:
        return [entry["result"] for entry in self.logp.results]

    @property
    def outputs_match(self) -> bool:
        return list(self.bsp_native.results) == self.results

    @property
    def total_logp_time(self) -> int:
        return self.logp.makespan

    @property
    def bsp_cost(self) -> int:
        """Native BSP cost on the matched machine (g = G, l = L)."""
        return self.bsp_native.total_cost

    @property
    def slowdown(self) -> float:
        """Measured slowdown of the simulation (Theorem 2's ``S``)."""
        if self.bsp_cost == 0:
            return 1.0
        return self.total_logp_time / self.bsp_cost

    @property
    def predicted_slowdown(self) -> float:
        """Cost-weighted prediction from the paper's ``S(L, G, p, h)``."""
        num = 0.0
        den = 0.0
        params = self.logp_params
        for rec in self.bsp_native.ledger:
            base = rec.w + params.G * rec.h + params.L
            num += base * slowdown_S(params, rec.h)
            den += base
        return num / den if den else 1.0


def _gather_timings(results: list[dict]) -> list[SuperstepTiming]:
    n = max((len(entry["timeline"]) for entry in results), default=0)
    out = []
    for i in range(n):
        rows = [entry["timeline"][i] for entry in results if i < len(entry["timeline"])]
        out.append(
            SuperstepTiming(
                index=i,
                local_end=max(r[0] for r in rows),
                sync_end=max(r[1] for r in rows),
                route_end=max(r[2] for r in rows),
            )
        )
    return out


def simulate_bsp_on_logp(
    logp_params: LogPParams,
    program: BSPProgram | Sequence[BSPProgram],
    *,
    routing: str = "deterministic",
    seed: int = 0,
    R_factor: float | None = 4.0,
    c1: float = 1.0,
    c2: float = 1.0,
    faults: FaultPlan | None = None,
    machine_kwargs: dict | None = None,
    obs=None,
) -> Theorem2Report:
    """Run ``program`` on the LogP machine via the Theorem 2/3 simulation.

    See the module docstring for the four ``routing`` modes.  For
    ``"randomized"``, ``R_factor`` overrides the paper's conservative
    batch multiplier ``1 + beta_hat`` (pass ``None`` to use the paper's
    ``c1, c2``-derived value).  ``faults`` makes the LogP substrate lossy
    and requires ``routing="resilient"`` — the model-optimal protocols
    are correct only under admissible (fault-free) semantics.

    ``obs`` (an enabled :class:`~repro.obs.Observation`) is threaded
    into the host LogP machine and additionally receives the native
    reference ledger, the measured/predicted slowdowns, and — when
    tracing — the guest's per-superstep local/sync/route phase spans on
    the host clock.
    """
    if routing not in ("deterministic", "randomized", "offline", "resilient"):
        raise ProgramError(f"unknown routing mode {routing!r}")
    if faults is not None and routing != "resilient":
        raise ProgramError(
            f"routing={routing!r} assumes the paper's admissible delivery "
            f"semantics; running it over a FaultPlan requires "
            f"routing='resilient'"
        )
    p = logp_params.p
    programs = coerce_programs(program, p)

    # Native pre-run: matched BSP machine, with message structure recorded
    # when a routing mode needs advance knowledge.
    need_log = routing in ("randomized", "offline")
    bsp_machine = BSPMachine(
        logp_params.matching_bsp(),
        record_messages=need_log,
        layer="native BSP reference",
    )
    bsp_native = bsp_machine.run(programs)

    advance: list[dict] | None = None
    if need_log:
        # The per-superstep plan (degree, fan-in counts, and for the
        # offline mode the Hall/König edge coloring) is a pure function
        # of the relation; repeated runs of the same program — parameter
        # sweeps, the benchmarks — keep re-deriving the same plans, so
        # they are memoized process-wide.  Entries must be treated as
        # read-only by the routing protocols.
        advance = [
            _ADVANCE_CACHE.get(
                (routing, p, tuple(step_msgs)),
                lambda msgs=step_msgs: _advance_plan(routing, p, msgs),
            )
            for step_msgs in bsp_native.message_log or []
        ]

    def make_prog(pid: int):
        def prog(ctx: LogPContext):
            bsp_ctx = BSPContext(pid, p)
            gen = programs[pid](bsp_ctx)
            inbox: list[Message] = []
            superstep = 0
            done = False
            result: Any = None
            timeline: list[tuple[int, int, int]] = []
            while True:
                bsp_ctx._begin_superstep(superstep, inbox)
                inbox = []
                outgoing: list[tuple[int, Any]] = []
                w = 0
                while not done:
                    try:
                        instr = next(gen)
                    except StopIteration as stop:
                        done = True
                        result = stop.value
                        break
                    if isinstance(instr, Sync):
                        break
                    if isinstance(instr, BCompute):
                        w += instr.ops
                    elif isinstance(instr, BSend):
                        if not 0 <= instr.dest < p:
                            raise ProgramError(
                                f"processor {pid}: invalid BSP destination {instr.dest}"
                            )
                        outgoing.append((instr.dest, (instr.tag, instr.payload)))
                    else:
                        raise ProgramError(
                            f"processor {pid} yielded {instr!r}, not a BSP instruction"
                        )
                if w:
                    yield Compute(w)
                t_local = ctx.clock
                tag_ns = (superstep + 1) * TAG_STRIDE

                # --- synchronization: CB(AND) carrying done flags --------
                if routing == "resilient":
                    # The deadline variant asserts the model's descend
                    # bound, which retransmission delays legitimately
                    # exceed; the resilient exchange never uses deadlines.
                    all_done = yield from cb(
                        ctx,
                        done,
                        lambda a, b: a and b,
                        tag_base=tag_ns + _BARRIER_TAG,
                        op_cost=0,
                    )
                    t0 = ctx.clock
                else:
                    all_done, t0 = yield from cb_with_deadline(
                        ctx,
                        done,
                        lambda a, b: a and b,
                        tag_base=tag_ns + _BARRIER_TAG,
                        op_cost=0,
                    )
                t_sync = ctx.clock
                if all_done:
                    timeline.append((t_local, t_sync, t_sync))
                    return {"result": result, "timeline": timeline}

                # --- routing ---------------------------------------------
                if routing == "resilient":
                    received = yield from _route_resilient(ctx, outgoing, tag_ns)
                elif routing == "deterministic":
                    outcome = yield from deterministic_route(
                        ctx, outgoing, tag_ns=tag_ns
                    )
                    # Unwrap the (bsp_tag, payload) envelope into the
                    # messages the BSP program expects in its input pool.
                    received = [
                        Message(src=m.src, dest=pid, payload=m.payload[1], tag=m.payload[0])
                        for m in outcome.received
                    ]
                else:
                    info = advance[superstep] if superstep < len(advance) else None
                    if info is None or info["out_counts"][pid] != len(outgoing):
                        raise ProgramError(
                            f"superstep {superstep}: runtime relation deviates "
                            f"from the pre-run (non-deterministic program?)"
                        )
                    received = yield from _route_known(
                        ctx,
                        routing,
                        outgoing,
                        info,
                        t0,
                        tag_ns + _PAYLOAD_TAG,
                        seed,
                        superstep,
                        R_factor,
                        c1,
                        c2,
                    )
                inbox = received
                timeline.append((t_local, t_sync, ctx.clock))
                superstep += 1

        return prog

    forbid = routing in ("deterministic", "offline")
    if obs is not None and not obs.enabled:
        obs = None
    mkwargs = {"layer": "guest BSP on host LogP", **(machine_kwargs or {})}
    mkwargs.setdefault("obs", obs)
    machine = LogPMachine(
        logp_params, forbid_stalling=forbid, faults=faults, **mkwargs
    )
    progs = [make_prog(pid) for pid in range(p)]
    if routing == "resilient":
        progs = [reliable(pr) for pr in progs]
    logp_result = machine.run(progs)

    report = Theorem2Report(
        logp_params=logp_params,
        routing=routing,
        logp=logp_result,
        bsp_native=bsp_native,
        timings=_gather_timings(logp_result.results),
    )
    if not report.outputs_match:
        raise ProgramError(
            "BSP-on-LogP simulation produced different results than the "
            "native BSP run"
        )
    if obs is not None:
        obs.observe_theorem2(report)
    return report


_ADVANCE_CACHE = plan_cache("bsp-advance-plan")


def _advance_plan(routing: str, p: int, step_msgs: Sequence[tuple[int, int]]) -> dict:
    """Advance knowledge for one superstep's relation: degree, per-
    processor fan-in/fan-out, and (offline mode) the Hall coloring."""
    h = relation_degree(step_msgs)
    expected_in = [0] * p
    out_counts = [0] * p
    for src, dest in step_msgs:
        expected_in[dest] += 1
        out_counts[src] += 1
    entry: dict = {
        "h": h,
        "expected_in": expected_in,
        "out_counts": out_counts,
    }
    if routing == "offline":
        classes = decompose_h_relation(step_msgs)
        color_of = [0] * len(step_msgs)
        for c, cls in enumerate(classes):
            for idx in cls:
                color_of[idx] = c
        # Per-processor colors in the sender's issue order.
        per_proc: list[list[int]] = [[] for _ in range(p)]
        for idx, (src, _dest) in enumerate(step_msgs):
            per_proc[src].append(color_of[idx])
        entry["colors"] = per_proc
    return entry


def _route_resilient(ctx: LogPContext, outgoing, tag_ns: int):
    """Count-announce exchange for the ``"resilient"`` mode.

    Every processor tells every other how many payload messages to expect
    (``p - 1`` count messages), then sends the payloads; the receive loop
    blocks until all counts and all announced payloads arrived.  The only
    assumption is that every sent message is *eventually* received — which
    the ack/retransmit transport guarantees even over a lossy medium — so
    unlike the slot-pinned protocols this exchange needs no latency bound
    and tolerates arbitrary reordering and retransmission delays.
    """
    p, pid = ctx.p, ctx.pid
    counts = [0] * p
    for dest, _envelope in outgoing:
        counts[dest] += 1
    for q in range(p):
        if q != pid:
            yield Send(q, counts[q], tag=tag_ns + _COUNT_TAG)
    for dest, envelope in outgoing:
        yield Send(dest, envelope, tag=tag_ns + _PAYLOAD_TAG)
    count_msgs = yield from recv_n_tagged(ctx, tag_ns + _COUNT_TAG, p - 1)
    expected = sum(m.payload for m in count_msgs)
    payload_msgs = yield from recv_n_tagged(ctx, tag_ns + _PAYLOAD_TAG, expected)
    return [
        Message(src=m.src, dest=pid, payload=m.payload[1], tag=m.payload[0])
        for m in payload_msgs
    ]


def _route_known(
    ctx: LogPContext,
    routing: str,
    outgoing: list[tuple[int, Any]],
    info: dict,
    t0: int,
    tag: int,
    seed: int,
    superstep: int,
    R_factor: float | None,
    c1: float,
    c2: float,
) -> Generator[Any, Any, list[Message]]:
    """Route one superstep's messages with advance knowledge of the
    relation (Theorem 3 randomized, or the offline Hall baseline)."""
    params: LogPParams = ctx.params
    G, o, L = params.G, params.o, params.L
    h = info["h"]
    start = t0 + G + o

    # BSP permits self-addressed messages (the machine model has no such
    # notion); deliver them locally, like the deterministic protocol does.
    local: list[Message] = []
    remote_idx: list[int] = []
    for i, (dest, payload) in enumerate(outgoing):
        if dest == ctx.pid:
            local.append(
                Message(src=ctx.pid, dest=ctx.pid, payload=payload[1], tag=payload[0])
            )
        else:
            remote_idx.append(i)
    expected = info["expected_in"][ctx.pid] - len(local)

    if routing == "offline":
        colors = info["colors"][ctx.pid]
        for i in sorted(remote_idx, key=lambda i: colors[i]):
            dest, payload = outgoing[i]
            yield from _pinned_send(ctx, start + colors[i] * G, dest, payload, tag)
    else:  # randomized (Theorem 3)
        cap = params.capacity
        if R_factor is not None:
            R = max(1, int(np.ceil(R_factor * h / cap))) if h else 1
        else:
            R = theorem3_num_batches(h, params, theorem3_beta_hat(c1, c2))
        round_length = 2 * (L + o)
        rng = np.random.default_rng(derive_seed(seed, superstep, ctx.pid))
        draws = rng.integers(0, R, size=len(remote_idx))
        rounds: list[list[int]] = [[] for _ in range(R)]
        leftovers: list[int] = []
        for i, b in zip(remote_idx, draws):
            bucket = rounds[int(b)]
            if len(bucket) < cap:
                bucket.append(i)
            else:
                leftovers.append(i)
        for rnd, idxs in enumerate(rounds):
            if idxs:
                yield WaitUntil(start + rnd * round_length)
                for i in idxs:
                    dest, payload = outgoing[i]
                    yield Send(dest, payload, tag=tag)
        if leftovers:
            yield WaitUntil(start + R * round_length)
            for i in leftovers:
                dest, payload = outgoing[i]
                yield Send(dest, payload, tag=tag)

    msgs = yield from recv_n_tagged(ctx, tag, expected)
    received = local + [
        Message(src=m.src, dest=ctx.pid, payload=m.payload[1], tag=m.payload[0])
        for m in msgs
    ]
    # Park until the phase's global end: a processor that received its own
    # messages early must not open the next superstep's barrier while
    # payload traffic is still in transit elsewhere — the extra in-flight
    # messages would overflow the capacity at shared destinations (the CB
    # tree packs its fan-in exactly to ceil(L/G)).
    if routing == "offline":
        t_end = start + max(0, h - 1) * G + L + o
    else:
        R_used = len(rounds)
        t_end = start + R_used * round_length + (h + 1) * G + L + o
    yield WaitUntil(t_end)
    return received
