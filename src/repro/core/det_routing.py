"""Deterministic on-line routing of h-relations in LogP (paper Section 4.2).

The protocol, exactly as the paper structures it:

1. **Compute r** (max messages held by any processor) with CB(max) and
   broadcast it; pad every processor to exactly ``r`` messages with
   *dummies* whose nominal destination is ``p``.
2. **Sort** all ``r * p`` messages by destination with an oblivious
   merge-split network (Batcher bitonic / odd-even transposition — our
   executable stand-in for AKS; see DESIGN.md), giving each message its
   global rank.
3. **Compute s** (max messages destined to one processor) and broadcast
   it, with a single CB over an associative *and commutative* operator —
   destination-count merging — matching the paper's "Step 3 can be
   executed by means of CB in time r + T_CB".  (Commutativity matters:
   CB's tree combines contributions in a permuted order, so the
   order-sensitive run-length monoid, although associative, would
   miscount runs spanning non-adjacent processors; see
   :class:`RunSummary`'s docstring.)
4. **Route in cycles**: with ``h = max(r, s)``, the message of global
   rank ``q`` is transmitted in cycle ``q mod h``; cycles are pipelined
   with period ``G``.  Within a cycle each processor sends at most one
   message and each destination receives at most one (consecutive ranks
   per block / per destination-run), so the pipeline respects the
   capacity constraint and the phase takes ``2o + G(h-1) + L``.

Stall-freedom is obtained the way the paper's analysis implicitly
assumes — by *time-slotting*: every CB returns (via
:func:`repro.core.cb.cb_with_deadline`) a global deadline by which all
processors have finished it, and all subsequent submissions are pinned to
exact global slots with ``WaitUntil``.  The machine runs with
``forbid_stalling=True``; a stall anywhere is an implementation bug, not
a tolerated event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from repro.core.cb import cb_with_deadline
from repro.core.columnsort_logp import columnsort_total_span, logp_columnsort
from repro.errors import ProgramError
from repro.logp.collectives import recv_n_tagged
from repro.logp.instructions import Compute, LogPContext, Send, TryRecv, WaitUntil
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import t_seq_sort
from repro.models.message import Message
from repro.models.params import LogPParams
from repro.sorting.bitonic import sorting_schedule
from repro.sorting.columnsort import columnsort_valid
from repro.sorting.merge_split import merge_split

__all__ = [
    "RunSummary",
    "combine_runs",
    "summarize_block",
    "deterministic_route",
    "RouteOutcome",
    "measure_det_routing",
    "DetRoutingMeasurement",
    "TAG_STRIDE",
]

#: Callers running several protocol instances on one machine must space
#: their tag namespaces by at least this much.
TAG_STRIDE = 1 << 14

# Tag offsets inside a protocol instance's namespace.
_CB_R = 0  # +0, +1
_CB_S = 4  # +4, +5
_PAYLOAD = 8
_SORT0 = 16  # +16 + round

#: Destination key used for dummy (padding) messages: strictly larger than
#: any real destination, so dummies sort to the end.
def _dummy_key(p: int) -> int:
    return p


# ---------------------------------------------------------------------------
# Run-length monoid (Step 3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSummary:
    """Associative summary of a key sequence for longest-equal-run queries.

    ``empty`` summaries are the monoid identity; ``uniform`` marks
    sequences consisting of a single run.

    .. warning::
       The monoid is associative but **not commutative** — combines must
       follow the sequence's concatenation order.  Reductions whose
       combine order is a permutation of the block order (e.g. CB's
       DFS-preorder tree) must not use it for cross-processor runs; the
       routing protocol therefore computes ``s`` with the commutative
       destination-count merge instead.  This type remains available for
       order-respecting scans and is used by the BSP stalling-cycle
       simulation's *ordered* reduction path.
    """

    first: Any = None
    first_len: int = 0
    last: Any = None
    last_len: int = 0
    best: int = 0
    uniform: bool = True
    empty: bool = True


def summarize_block(keys: Sequence[Any]) -> RunSummary:
    """Summary of one processor's (already key-sorted) block."""
    if not keys:
        return RunSummary()
    first = keys[0]
    first_len = 1
    i = 1
    while i < len(keys) and keys[i] == first:
        first_len += 1
        i += 1
    last = keys[-1]
    last_len = 1
    j = len(keys) - 2
    while j >= 0 and keys[j] == last:
        last_len += 1
        j -= 1
    best = 0
    run_val, run_len = first, 0
    for k in keys:
        if k == run_val:
            run_len += 1
        else:
            best = max(best, run_len)
            run_val, run_len = k, 1
    best = max(best, run_len)
    return RunSummary(
        first=first,
        first_len=first_len,
        last=last,
        last_len=min(last_len, len(keys)),
        best=best,
        uniform=(first == last and best == len(keys)),
        empty=False,
    )


def combine_runs(a: RunSummary, b: RunSummary) -> RunSummary:
    """Monoid combine: summary of the concatenation ``a ++ b``."""
    if a.empty:
        return b
    if b.empty:
        return a
    bridge = a.last_len + b.first_len if a.last == b.first else 0
    best = max(a.best, b.best, bridge)
    first_len = a.first_len + (b.first_len if a.uniform and a.last == b.first else 0)
    last_len = b.last_len + (a.last_len if b.uniform and a.last == b.first else 0)
    uniform = a.uniform and b.uniform and a.first == b.last and a.last == b.first
    return RunSummary(
        first=a.first,
        first_len=first_len,
        last=b.last,
        last_len=last_len,
        best=max(best, first_len, last_len),
        uniform=uniform,
        empty=False,
    )


def _merge_counts(a: dict, b: dict) -> dict:
    """Commutative merge of destination-count dictionaries (Step 3)."""
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
    return out


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

@dataclass
class RouteOutcome:
    """Per-processor outcome of one deterministic routing run."""

    received: list[Message]
    r: int
    s: int
    h: int
    phase_clocks: dict[str, int] = field(default_factory=dict)
    sort_scheme: str = "none"


def _pinned_send(
    ctx: LogPContext, slot: int, dest: int, payload: Any, tag: int
) -> Generator:
    """Submit exactly at global time ``slot`` (engine-verified)."""
    o = ctx.params.o
    if ctx.clock > slot - o:
        raise AssertionError(
            f"slot schedule overrun: processor {ctx.pid} at clock "
            f"{ctx.clock} cannot submit at slot {slot}"
        )
    yield WaitUntil(slot - o)
    t_acc = yield Send(dest, payload, tag=tag)
    if t_acc != slot:
        raise AssertionError(
            f"pinned submission drifted: wanted slot {slot}, accepted at {t_acc}"
        )
    return None


def deterministic_route(
    ctx: LogPContext,
    outgoing: Sequence[tuple[int, Any]],
    *,
    tag_ns: int = 1 << 16,
) -> Generator[Any, Any, RouteOutcome]:
    """Route one h-relation; every processor calls this with its own
    ``outgoing`` list of ``(dest, payload)`` pairs.

    Returns a :class:`RouteOutcome` whose ``received`` holds the messages
    addressed to this processor (as :class:`~repro.models.message.Message`
    with original ``src``).  The collective degree ``h`` need *not* be
    known in advance — computing it on-line is the point of the protocol.
    """
    p = ctx.p
    params: LogPParams = ctx.params
    G, o, L = params.G, params.o, params.L
    phases: dict[str, int] = {"start": ctx.clock}
    for dest, _ in outgoing:
        if not 0 <= dest < p:
            raise ProgramError(f"invalid destination {dest} (p={p})")

    # ---- Step 1: r = max messages held, via CB(max) -----------------------
    r_local = len(outgoing)
    r, dl1 = yield from cb_with_deadline(
        ctx, r_local, max, tag_base=tag_ns + _CB_R, op_cost=1
    )
    phases["r_known"] = ctx.clock
    if r == 0:
        return RouteOutcome(received=[], r=0, s=0, h=0, phase_clocks=phases)

    dummy = _dummy_key(p)
    # Records carried through the sort: (dest_key, src, seq, payload).
    # (src, seq) makes the sort key a *total* order — merge-split pairs
    # must agree on the rank of every record, including ties on the
    # destination, no matter in which order the partner's messages
    # happened to arrive (delivery order is nondeterministic).
    block: list[tuple[int, int, int, Any]] = [
        (dest, ctx.pid, seq, payload) for seq, (dest, payload) in enumerate(outgoing)
    ]
    block.extend((dummy, ctx.pid, r_local + i, None) for i in range(r - r_local))

    # ---- Step 2: sort by destination -------------------------------------
    # Two schemes, as in the paper (AKS for small r, Cubesort for large r):
    # the bitonic merge-split network, or Columnsort once its validity
    # regime r >= 2(p-1)^2 makes it the cheaper choice.  The decision is a
    # pure function of (r, p, params), so all processors agree.
    dest_key = lambda rec: (rec[0], rec[1], rec[2])  # total order (see above)
    tsort_local = t_seq_sort(r, p + 1)
    schedule = sorting_schedule(p) if p > 1 else []
    # Per-round budget of the network scheme: r paced sends + r paced
    # acquisitions + latency + the merge's Compute(r) + alignment slack.
    span = 2 * r * G + L + 4 * o + 2 * G + r
    use_columnsort = (
        p > 1
        and columnsort_valid(r, p)
        and columnsort_total_span(r, p, params) < tsort_local + len(schedule) * span
    )
    if use_columnsort:
        block = yield from logp_columnsort(
            ctx,
            block,
            key=dest_key,
            tag_base=tag_ns + _SORT0,
            start_time=dl1 + G,
        )
    else:
        block.sort(key=dest_key)
        yield Compute(tsort_local)
        # Global slotting: round t's j-th submission happens at
        # sort0 + t*span + j*G for every processor, so per-destination
        # traffic is G-paced and the capacity constraint holds stall-free.
        sort0 = dl1 + tsort_local + 2 * (G + o)
        for t, rnd in enumerate(schedule):
            action = rnd[ctx.pid]
            if action is None:
                continue
            partner, keep_low = action
            base = sort0 + t * span
            for j, rec in enumerate(block):
                yield from _pinned_send(
                    ctx, base + j * G, partner, rec, tag=tag_ns + _SORT0 + t
                )
            msgs = yield from recv_n_tagged(ctx, tag_ns + _SORT0 + t, r)
            theirs = sorted((m.payload for m in msgs), key=dest_key)
            block = merge_split(block, theirs, keep_low, key=dest_key)
            yield Compute(r)
    phases["sorted"] = ctx.clock

    # ---- Step 3: s = max messages per destination, via CB -----------------
    # The associative operator must be order-immune: CB's k-ary tree
    # combines the processors' contributions in DFS preorder, which is a
    # *permutation* of the rank order, so a sequence-sensitive operator
    # (e.g. the run-length monoid over the sorted concatenation) silently
    # miscounts runs that span non-adjacent processors.  Destination-count
    # merging is commutative, hence order-proof; each processor scans its
    # r records once (the paper's "Step 3 ... in time r + T_CB").
    local_counts: dict[int, int] = {}
    for rec in block:
        if rec[0] != dummy:
            local_counts[rec[0]] = local_counts.get(rec[0], 0) + 1
    yield Compute(r)
    all_counts, dl3 = yield from cb_with_deadline(
        ctx, local_counts, _merge_counts, tag_base=tag_ns + _CB_S, op_cost=1
    )
    s = max(all_counts.values(), default=0)
    phases["s_known"] = ctx.clock

    # ---- Step 4: h pipelined routing cycles --------------------------------
    h = max(r, s)
    t_start = dl3 + G + o
    received: list[Message] = []
    # Collect any payload messages a previous phase stashed (defensive; the
    # schedule should make this impossible, see module docstring).
    for i in range(len(ctx._stash) - 1, -1, -1):
        if ctx._stash[i].tag == tag_ns + _PAYLOAD:
            received.append(ctx._stash.pop(i))
    if h > 0:
        to_send: list[tuple[int, int, Any]] = []  # (cycle, dest, payload)
        for q, rec in enumerate(block):
            dest_id, src, _seq, payload = rec
            if dest_id == dummy:
                continue
            cycle = (ctx.pid * r + q) % h
            if dest_id == ctx.pid:
                # Local delivery: the model has no self-messages.
                received.append(
                    Message(src=src, dest=ctx.pid, payload=payload, tag=tag_ns + _PAYLOAD)
                )
                continue
            to_send.append((cycle, dest_id, (src, payload)))
        # Ranks mod h wrap within a block, so sort by cycle to issue the
        # pinned submissions in increasing slot order.
        to_send.sort()

        def take(msg) -> None:
            if msg.tag != tag_ns + _PAYLOAD:
                ctx._stash.append(msg)
                return
            m_src, m_payload = msg.payload
            received.append(
                Message(src=m_src, dest=ctx.pid, payload=m_payload, tag=tag_ns + _PAYLOAD)
            )

        # The paper charges this phase 2o + G(h-1) + L with the receiver
        # acquiring *concurrently* with its own sends.  When the model
        # leaves room for an acquisition inside a submission gap, poll
        # between pinned sends; otherwise fall back to a pure post-drain
        # (constant-factor loss only).  ``last_acq`` is a conservative
        # program-side upper bound on the engine's last acquisition start,
        # so a successful poll provably completes by ``slot - o`` and the
        # pinned submission cannot drift.
        interleave = 2 * o + 1 <= G
        last_acq = ctx.clock
        for cycle, dest_id, body in to_send:
            slot = t_start + cycle * G
            if interleave:
                # +1 reserves the cost of a failed poll itself.
                while max(ctx.clock, last_acq + G) + o + 1 <= slot - o:
                    msg = yield TryRecv()
                    if msg is None:
                        continue  # poll again (costs one step each time)
                    last_acq = ctx.clock - o
                    take(msg)
            yield from _pinned_send(ctx, slot, dest_id, body, tag=tag_ns + _PAYLOAD)
        t_end = t_start + (h - 1) * G + L + 1
        # Drain the remainder: the schedule bounds every delivery by
        # t_end, so polling until then provably collects everything
        # ("making each processor aware of termination", as the paper
        # requires of this phase).
        while True:
            msg = yield TryRecv()
            if msg is None:
                if ctx.clock >= t_end:
                    break
                continue
            take(msg)
    phases["done"] = ctx.clock
    return RouteOutcome(
        received=received,
        r=r,
        s=s,
        h=h,
        phase_clocks=phases,
        sort_scheme="columnsort" if use_columnsort else "bitonic",
    )


# ---------------------------------------------------------------------------
# Measurement harness
# ---------------------------------------------------------------------------

@dataclass
class DetRoutingMeasurement:
    """A full deterministic-routing run and its phase timing."""

    params: LogPParams
    outcomes: list[RouteOutcome]
    result: LogPResult

    @property
    def r(self) -> int:
        return self.outcomes[0].r

    @property
    def s(self) -> int:
        return self.outcomes[0].s

    @property
    def h(self) -> int:
        return self.outcomes[0].h

    @property
    def total_time(self) -> int:
        return self.result.makespan

    def phase_time(self, phase: str) -> int:
        """Max over processors of the clock at the end of ``phase``."""
        return max(o.phase_clocks[phase] for o in self.outcomes)


def measure_det_routing(
    params: LogPParams,
    pairs: Sequence[tuple[int, int]],
    *,
    machine_kwargs: dict | None = None,
) -> DetRoutingMeasurement:
    """Route the relation ``pairs`` (list of ``(src, dest)``) and verify
    delivery: every pair must arrive exactly once, payloads intact.

    The machine runs with ``forbid_stalling=True`` — the protocol is
    stall-free by construction and this harness enforces it.
    """
    p = params.p
    outgoing: list[list[tuple[int, Any]]] = [[] for _ in range(p)]
    for idx, (src, dest) in enumerate(pairs):
        outgoing[src].append((dest, ("pkt", idx)))

    def make_prog(pid: int):
        def prog(ctx: LogPContext):
            outcome = yield from deterministic_route(ctx, outgoing[pid])
            return outcome

        return prog

    machine = LogPMachine(params, forbid_stalling=True, **(machine_kwargs or {}))
    result = machine.run([make_prog(pid) for pid in range(p)])
    outcomes: list[RouteOutcome] = list(result.results)

    # Delivery verification.
    expected: dict[int, set[int]] = {}
    for idx, (_src, dest) in enumerate(pairs):
        expected.setdefault(dest, set()).add(idx)
    for pid, outcome in enumerate(outcomes):
        got = {m.payload[1] for m in outcome.received}
        want = expected.get(pid, set())
        if got != want:
            raise ProgramError(
                f"delivery mismatch at processor {pid}: missing "
                f"{sorted(want - got)[:5]}, spurious {sorted(got - want)[:5]}"
            )
    return DetRoutingMeasurement(params=params, outcomes=outcomes, result=result)
