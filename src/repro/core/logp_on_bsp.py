"""Theorem 1: simulating a stall-free LogP program on BSP (paper §3).

The construction: chop LogP time into *cycles* (windows) of ``L/2``
steps; one BSP superstep simulates one cycle.  Within a superstep,
processor ``B_i`` interprets ``L_i``'s instructions under exact LogP
timing rules (overhead ``o``, submission gap ``G``, acquisition gap
``G``) against a *virtual clock*; message submissions go to the BSP
output pool of the superstep containing their submission instant, and
every message becomes available in the receiver's FIFO queue at the
start of the next window.

Faithfulness: a message submitted at ``t`` is received at the start of
window ``t // W + 1``, i.e. with delay at most ``2W <= L`` — an
*admissible* LogP execution (this is why the window is ``floor(L/2)``;
the paper notes the "minor modifications" needed for odd ``L``).
Stall-freedom guarantees at most ``ceil(L/G)`` messages per destination
per cycle, so each superstep routes an ``h``-relation with
``h <= ceil(L/G)`` and costs ``O(L/2 + g ceil(L/G) + l)``, giving the
slowdown ``O(1 + g/G + l/L)`` of Theorem 1.

Two drivers are provided:

* :func:`simulate_logp_on_bsp` — one BSP processor per LogP processor
  (the theorem as stated);
* :func:`simulate_logp_on_bsp_workpreserving` — ``p`` LogP processors on
  ``p' <= p`` BSP processors, each hosting ``p/p'`` interpreters per
  superstep.  Footnote 1 of the paper credits Ramachandran et al. with
  the observation that the simulation becomes *work-preserving* this
  way while keeping the same slowdown per hosted processor.

Both drivers can also run the program natively on the LogP machine and
check that the executions produce identical results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

from repro.bsp.machine import BSPMachine, BSPResult
from repro.bsp.program import Compute as BCompute, Send as BSend, Sync
from repro.engine.core import coerce_programs
from repro.engine.result import MachineResult
from repro.errors import ProgramError
from repro.faults.plan import FaultPlan
from repro.logp.instructions import (
    Compute,
    LogPContext,
    LogPProgram,
    Recv,
    Send,
    TryRecv,
    WaitUntil,
)
from repro.logp.machine import LogPMachine, LogPResult
from repro.models.cost import theorem1_slowdown
from repro.models.message import Message
from repro.models.params import BSPParams, LogPParams

__all__ = [
    "simulate_logp_on_bsp",
    "simulate_logp_on_bsp_workpreserving",
    "Theorem1Report",
    "window_length",
]


def window_length(logp: LogPParams) -> int:
    """The cycle length ``floor(L/2)`` (>= 1 because ``L >= G >= 2``)."""
    return max(1, logp.L // 2)


class CycleInterpreter:
    """Interprets one LogP processor under exact model timing, one window
    at a time.  The host (a BSP program) feeds delivered messages at each
    window start and collects the submissions falling inside the window."""

    def __init__(self, pid: int, p: int, program: LogPProgram, logp: LogPParams) -> None:
        self.pid = pid
        self.p = p
        self.logp = logp
        self.ctx = LogPContext(pid, p, logp)
        self.gen = program(self.ctx)
        self.vclock = 0
        self.last_submit: int | None = None
        self.last_acquire: int | None = None
        self.queue: deque[Message] = deque()
        self.scheduled: list[tuple[int, Send]] = []
        self.blocked_recv = False
        self.finished = False
        self.result: Any = None
        self._send_value: Any = None

    @property
    def done(self) -> bool:
        """Nothing left to execute or to transmit."""
        return self.finished and not self.scheduled

    def deliver(self, messages: Sequence[Message]) -> None:
        """Window start: append last window's deliveries to the FIFO."""
        self.queue.extend(messages)

    def _acquire(self) -> Message:
        t_acq = self.vclock
        if self.last_acquire is not None:
            t_acq = max(t_acq, self.last_acquire + self.logp.G)
        self.last_acquire = t_acq
        self.vclock = t_acq + self.logp.o
        return self.queue.popleft()

    def run_window(self, window_end: int) -> list[Send]:
        """Execute until the virtual clock leaves the window (or the
        program blocks/finishes); returns the ``Send`` instructions whose
        submission instant falls inside this window."""
        G, o = self.logp.G, self.logp.o
        emit: list[Send] = []

        remaining: list[tuple[int, Send]] = []
        for t_sub, instr in self.scheduled:
            if t_sub < window_end:
                emit.append(instr)
            else:
                remaining.append((t_sub, instr))
        self.scheduled = remaining

        if self.blocked_recv and self.queue:
            self.blocked_recv = False
            self._send_value = self._acquire()

        while not self.finished and not self.blocked_recv and self.vclock < window_end:
            self.ctx.clock = self.vclock
            try:
                instr = self.gen.send(self._send_value)
            except StopIteration as stop:
                self.finished = True
                self.result = stop.value
                break
            self._send_value = None
            if isinstance(instr, Compute):
                self.vclock += instr.ops
            elif isinstance(instr, WaitUntil):
                self.vclock = max(self.vclock, instr.time)
            elif isinstance(instr, Send):
                if not 0 <= instr.dest < self.p or instr.dest == self.pid:
                    raise ProgramError(
                        f"processor {self.pid}: invalid LogP destination {instr.dest}"
                    )
                start = self.vclock
                if self.last_submit is not None:
                    start = max(start, self.last_submit + G - o)
                t_sub = start + o
                self.last_submit = t_sub
                self.vclock = t_sub
                self._send_value = t_sub  # stall-free: acceptance == submission
                if t_sub < window_end:
                    emit.append(instr)
                else:
                    self.scheduled.append((t_sub, instr))
            elif isinstance(instr, Recv):
                if self.queue:
                    self._send_value = self._acquire()
                else:
                    self.blocked_recv = True
            elif isinstance(instr, TryRecv):
                if self.queue:
                    self._send_value = self._acquire()
                else:
                    self.vclock += 1
                    self._send_value = None
            else:
                raise ProgramError(
                    f"processor {self.pid} yielded {instr!r}, not a LogP instruction"
                )
        return emit

    def close_window(self, window_end: int) -> None:
        """Advance an idle/blocked interpreter to the window boundary."""
        if self.blocked_recv or self.vclock < window_end:
            self.vclock = window_end


@dataclass
class Theorem1Report(MachineResult):
    """Outcome of one Theorem 1 simulation run."""

    row_fields = (
        "window",
        "windows",
        "virtual_time",
        "slowdown",
        "predicted_slowdown",
        "max_window_h",
        "outputs_match",
    )

    logp_params: LogPParams
    bsp_params: BSPParams
    bsp: BSPResult
    native: LogPResult | None
    window: int
    hosts: int = 0  # BSP processors used (== p for the plain simulation)
    hosted: bool = False  # True for the work-preserving (multi-charge) variant

    @property
    def results(self) -> list[Any]:
        if not self.hosted:
            return self.bsp.results
        return [r for host in self.bsp.results for r in host]

    @property
    def windows(self) -> int:
        """Number of simulated cycles (= BSP supersteps used)."""
        return self.bsp.num_supersteps

    @property
    def virtual_time(self) -> int:
        """LogP time span covered by the simulation (windows * W)."""
        return self.windows * self.window

    @property
    def slowdown(self) -> float:
        """Measured slowdown: BSP cost per simulated LogP step."""
        if self.virtual_time == 0:
            return 1.0
        return self.bsp.total_cost / self.virtual_time

    @property
    def predicted_slowdown(self) -> float:
        """Theorem 1 prediction, scaled by the hosting ratio ``p / p'``
        for the work-preserving variant."""
        k = self.logp_params.p / max(1, self.hosts)
        return k * theorem1_slowdown(self.bsp_params, self.logp_params)

    @property
    def work(self) -> float:
        """Processor-time product of the simulation, ``p' * T_BSP``."""
        return self.hosts * self.bsp.total_cost

    @property
    def max_window_h(self) -> int:
        """Largest h-relation any superstep routed; stall-free programs
        keep this at most ``ceil(L/G)`` per hosted processor."""
        return max((rec.h for rec in self.bsp.ledger), default=0)

    @property
    def outputs_match(self) -> bool:
        """True when the BSP-simulated results equal the native LogP ones
        (vacuously true when the native run was skipped)."""
        return self.native is None or list(self.native.results) == list(self.results)


def _run_native(logp_params, programs, machine_kwargs) -> LogPResult:
    kwargs = {"layer": "native LogP reference", **(machine_kwargs or {})}
    machine = LogPMachine(logp_params, forbid_stalling=True, **kwargs)
    return machine.run(programs)


def simulate_logp_on_bsp(
    logp_params: LogPParams,
    program: LogPProgram | Sequence[LogPProgram],
    *,
    bsp_params: BSPParams | None = None,
    compare_native: bool = True,
    max_supersteps: int = 1_000_000,
    faults: FaultPlan | None = None,
    machine_kwargs: dict | None = None,
    obs=None,
) -> Theorem1Report:
    """Run a stall-free LogP program via the Theorem 1 BSP simulation.

    ``bsp_params`` defaults to the matched machine ``g = G, l = L`` (the
    regime where the theorem's slowdown is constant).  With
    ``compare_native=True`` the program is also executed on the real LogP
    machine (with ``forbid_stalling=True`` — the theorem only covers
    stall-free programs) and the outputs are compared.

    ``faults`` makes the *host* BSP machine's exchanges lossy; its
    checkpoint-and-retry recovery keeps the simulation's results
    identical while the cost ledger absorbs the recovery rounds, so the
    whole Section 3 construction runs end-to-end over a misbehaving
    substrate.  (The native comparison run stays fault-free.)

    ``obs`` (an enabled :class:`~repro.obs.Observation`) instruments the
    *host* BSP machine and receives the window/slowdown summary; the
    native comparison run stays unobserved, contributing only its
    makespan gauge.
    """
    p = logp_params.p
    bsp = bsp_params if bsp_params is not None else logp_params.matching_bsp()
    if bsp.p != p:
        raise ProgramError(f"BSP p={bsp.p} != LogP p={p}")
    programs = coerce_programs(program, p)
    W = window_length(logp_params)

    def make_wrapper(pid: int):
        def wrapper(bsp_ctx):
            interp = CycleInterpreter(pid, p, programs[pid], logp_params)
            window_end = W
            while True:
                interp.deliver(bsp_ctx.inbox)
                for instr in interp.run_window(window_end):
                    yield BSend(instr.dest, instr.payload, tag=instr.tag)
                if interp.done:
                    return interp.result
                yield BCompute(W)
                yield Sync()
                interp.close_window(window_end)
                window_end += W

        return wrapper

    if obs is not None and not obs.enabled:
        obs = None
    machine = BSPMachine(
        bsp,
        max_supersteps=max_supersteps,
        faults=faults,
        layer="guest LogP on host BSP",
        obs=obs,
    )
    bsp_result = machine.run([make_wrapper(pid) for pid in range(p)])

    native = _run_native(logp_params, programs, machine_kwargs) if compare_native else None
    report = Theorem1Report(
        logp_params=logp_params,
        bsp_params=bsp,
        bsp=bsp_result,
        native=native,
        window=W,
        hosts=p,
    )
    if obs is not None:
        obs.observe_theorem1(report)
    return report


def simulate_logp_on_bsp_workpreserving(
    logp_params: LogPParams,
    program: LogPProgram | Sequence[LogPProgram],
    bsp_p: int,
    *,
    bsp_params: BSPParams | None = None,
    compare_native: bool = True,
    max_supersteps: int = 1_000_000,
    faults: FaultPlan | None = None,
    machine_kwargs: dict | None = None,
    obs=None,
) -> Theorem1Report:
    """Footnote-1 variant: ``p`` LogP processors on ``p' = bsp_p`` BSP
    processors (``p'`` must divide ``p``).

    Host ``b`` interprets LogP processors ``[b k, (b+1) k)`` with
    ``k = p / p'``: per superstep it runs each charge's window in turn
    (``w = k W`` local operations) and routes the union of their
    submissions (``h <= k ceil(L/G)``).  The superstep costs
    ``k W + g k ceil(L/G) + l``, so the processor-time product is
    ``p'/p * (1 + g/G + l/(k W))``-comparable to the plain simulation's —
    the simulation is work-preserving.

    Host ``b``'s BSP result is the list of its charges' results in pid
    order; :attr:`Theorem1Report.results` flattens them back.
    """
    p = logp_params.p
    if bsp_p < 1 or p % bsp_p != 0:
        raise ProgramError(f"bsp_p={bsp_p} must divide p={p}")
    k = p // bsp_p
    bsp = (
        bsp_params
        if bsp_params is not None
        else BSPParams(p=bsp_p, g=logp_params.G, l=logp_params.L)
    )
    if bsp.p != bsp_p:
        raise ProgramError(f"bsp_params.p={bsp.p} != bsp_p={bsp_p}")
    programs = coerce_programs(program, p)
    W = window_length(logp_params)

    def host_of(lpid: int) -> int:
        return lpid // k

    def make_host(b: int):
        def host(bsp_ctx):
            interps = [
                CycleInterpreter(lpid, p, programs[lpid], logp_params)
                for lpid in range(b * k, (b + 1) * k)
            ]
            window_end = W
            while True:
                # Distribute the superstep's deliveries to the charges.
                local: dict[int, list[Message]] = {it.pid: [] for it in interps}
                for msg in bsp_ctx.inbox:
                    lpid, src_lpid, payload, tag = msg.payload
                    local[lpid].append(
                        Message(src=src_lpid, dest=lpid, payload=payload, tag=tag)
                    )
                for it in interps:
                    it.deliver(local[it.pid])
                    for instr in it.run_window(window_end):
                        yield BSend(
                            host_of(instr.dest),
                            (instr.dest, it.pid, instr.payload, instr.tag),
                            tag=instr.tag,
                        )
                if all(it.done for it in interps):
                    return [it.result for it in interps]
                yield BCompute(k * W)
                yield Sync()
                for it in interps:
                    it.close_window(window_end)
                window_end += W

        return host

    if obs is not None and not obs.enabled:
        obs = None
    machine = BSPMachine(
        bsp,
        max_supersteps=max_supersteps,
        faults=faults,
        layer="guest LogP on host BSP (work-preserving)",
        obs=obs,
    )
    bsp_result = machine.run([make_host(b) for b in range(bsp_p)])

    native = _run_native(logp_params, programs, machine_kwargs) if compare_native else None
    report = Theorem1Report(
        logp_params=logp_params,
        bsp_params=bsp,
        bsp=bsp_result,
        native=native,
        window=W,
        hosts=bsp_p,
        hosted=True,
    )
    if obs is not None:
        obs.observe_theorem1(report)
    return report
