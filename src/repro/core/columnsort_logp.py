"""Columnsort as a LogP program — the large-r sorting scheme of §4.2.

The paper's deterministic routing protocol picks between two sorters: an
AKS-based merge-split network for small ``r`` and Cubesort for large
``r`` (where it costs ``O(G r + L)``).  Our executable stand-ins are the
bitonic network (in :mod:`repro.core.det_routing`) and, here, Leighton's
Columnsort: 8 fixed steps — 4 local sorts interleaved with 4
input-independent permutations — valid for ``r >= 2 (p - 1)^2``.

Exactly as the paper prescribes for Cubesort's redistributions, each
permutation "is known in advance and can therefore be decomposed into
1-relations": every processor deterministically computes the same
Hall/König edge coloring of the permutation's processor-level multigraph
(:func:`repro.routing.hall.decompose_h_relation`) and sends its elements
on globally pinned, ``G``-paced slots, one color class per slot — so the
capacity constraint holds and the phase is stall-free by construction.

The total LogP time is ``O(Tseq(r) + G r + L)`` — the Cubesort bound with
constant rounds.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Generator

from repro.errors import RoutingError
from repro.logp.collectives import recv_n_tagged
from repro.logp.instructions import Compute, LogPContext, Send, WaitUntil
from repro.models.cost import t_seq_sort
from repro.models.params import LogPParams
from repro.routing.hall import decompose_h_relation
from repro.sorting.columnsort import columnsort_valid, transpose_dest, untranspose_dest

__all__ = ["columnsort_span", "columnsort_total_span", "logp_columnsort"]


# ---------------------------------------------------------------------------
# Permutation plans (computed identically by every processor, cached)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=256)
def _perm_plan(kind: str, r: int, s: int):
    """Plan for one permutation step.

    Returns ``(edges, colors, expected_in)`` where ``edges[e]`` is the
    e-th element's ``(src_proc, dst_proc)`` in the *canonical element
    order* (see the per-kind enumeration below), ``colors[e]`` its pinned
    slot index, and ``expected_in[j]`` how many elements processor ``j``
    receives from other processors.
    """
    half = r // 2
    edges: list[tuple[int, int]] = []
    if kind in ("transpose", "untranspose"):
        dest_fn = transpose_dest if kind == "transpose" else untranspose_dest
        # canonical order: global column-major index g
        for g in range(r * s):
            edges.append((g // r, dest_fn(g, r, s) // r))
    elif kind == "shift":
        # canonical order: global index g in the uniform r-per-proc layout
        for g in range(r * s):
            cc = (g + half) // r  # shifted (virtual) column, in [0, s]
            edges.append((g // r, min(cc, s - 1)))
    elif kind == "unshift":
        # canonical order: segments cc = 0..s in order, elements by rank m
        for cc in range(s + 1):
            size = (r - half) if cc == 0 else half if cc == s else r
            src = min(cc, s - 1)
            for m in range(size):
                g = m if cc == 0 else cc * r + m - half
                edges.append((src, g // r))
    else:  # pragma: no cover - internal
        raise RoutingError(f"unknown permutation kind {kind!r}")

    classes = decompose_h_relation(edges)
    colors = [0] * len(edges)
    for c, cls in enumerate(classes):
        for e in cls:
            colors[e] = c
    expected_in = [0] * s
    for (src, dst) in edges:
        if src != dst:
            expected_in[dst] += 1
    return tuple(edges), tuple(colors), tuple(expected_in), len(classes)


def _perm_targets(kind: str, r: int, s: int) -> Callable[[int], tuple[int, int]]:
    """Map canonical element index -> (dst_proc, placement_key).

    ``placement_key`` orders elements at the destination: the shifted
    segment+rank for "shift", the global index otherwise.
    """
    half = r // 2
    if kind == "transpose":
        return lambda e: (transpose_dest(e, r, s) // r, transpose_dest(e, r, s))
    if kind == "untranspose":
        return lambda e: (untranspose_dest(e, r, s) // r, untranspose_dest(e, r, s))
    if kind == "shift":
        def shift_target(e: int) -> tuple[int, int]:
            g2 = e + half
            cc = g2 // r
            return min(cc, s - 1), (cc, g2)

        return shift_target
    if kind == "unshift":
        def unshift_source_order(e: int) -> tuple[int, int]:
            raise RoutingError("use plan edges for unshift targets")

        return unshift_source_order
    raise RoutingError(f"unknown permutation kind {kind!r}")


# ---------------------------------------------------------------------------
# Time budgeting
# ---------------------------------------------------------------------------

def columnsort_span(r: int, p: int, params: LogPParams) -> int:
    """Per-phase window: pinned paced sends (up to ``r + r//2`` classes),
    latency, a paced receive drain, the local sort, and slack."""
    G, o, L = params.G, params.o, params.L
    classes = r + r // 2 + 1
    return 2 * classes * G + L + t_seq_sort(r + r // 2, p) + r + 6 * o + 4 * G


def columnsort_total_span(r: int, p: int, params: LogPParams) -> int:
    """Budget for the whole 8-step columnsort measured from its
    ``start_time``: the initial local sort plus 4 permutation phases."""
    return t_seq_sort(r, p) + 4 * columnsort_span(r, p, params)


# ---------------------------------------------------------------------------
# The LogP program fragment
# ---------------------------------------------------------------------------

def _pinned(ctx: LogPContext, slot: int, dest: int, payload: Any, tag: int) -> Generator:
    o = ctx.params.o
    if ctx.clock > slot - o:
        raise AssertionError(
            f"columnsort schedule overrun: processor {ctx.pid} at {ctx.clock} "
            f"missed slot {slot}"
        )
    yield WaitUntil(slot - o)
    t_acc = yield Send(dest, payload, tag=tag)
    if t_acc != slot:
        raise AssertionError(f"columnsort pinned send drifted: {t_acc} != {slot}")
    return None


def logp_columnsort(
    ctx: LogPContext,
    block: list,
    *,
    key: Callable[[Any], Any],
    tag_base: int,
    start_time: int,
) -> Generator[Any, Any, list]:
    """Sort ``r * p`` records (``r = len(block)`` per processor) by
    ``key`` with Columnsort, entirely inside the LogP model.

    Every processor must call this with the same ``r``, ``tag_base`` and
    ``start_time`` (a global deadline by which all processors have their
    blocks — e.g. a CB deadline).  Returns the processor's sorted block;
    the concatenation over processors (column-major) is globally sorted.
    Stall-free by construction; runs under ``forbid_stalling=True``.
    """
    p = ctx.p
    r = len(block)
    params: LogPParams = ctx.params
    G, o = params.G, params.o
    half = r // 2
    if p == 1:
        yield Compute(t_seq_sort(r, p))
        return sorted(block, key=key)
    if not columnsort_valid(r, p):
        raise RoutingError(
            f"columnsort requires r >= 2(p-1)^2: r={r}, p={p}"
        )

    span = columnsort_span(r, p, params)
    tsort = t_seq_sort(r, p)

    # Step 1: local sort (budgeted before the first permutation window).
    block = sorted(block, key=key)
    yield Compute(tsort)

    phases = ("transpose", "untranspose", "shift", "unshift")
    # State: for the uniform layout, `block` (sorted segments); around the
    # shift, `segments` maps shifted column id -> sorted list.
    segments: dict[int, list] | None = None

    for phase_idx, kind in enumerate(phases):
        base = start_time + tsort + phase_idx * span + G + o
        edges, colors, expected_in, _n_classes = _perm_plan(kind, r, p)

        # Enumerate my elements in the canonical order, with their edge
        # indices, destinations and placement keys.
        outgoing: list[tuple[int, int, Any, Any]] = []  # (color, dst, place, rec)
        local: list[tuple[Any, Any]] = []  # (place, rec)
        if kind != "unshift":
            target = _perm_targets(kind, r, p)
            for i, rec in enumerate(block):
                e = ctx.pid * r + i
                dst, place = target(e)
                if dst == ctx.pid:
                    local.append((place, rec))
                else:
                    outgoing.append((colors[e], dst, place, rec))
        else:
            # canonical order: segments by shifted column id, rank order.
            base_e = 0
            my_segments = segments or {}
            for cc in range(p + 1):
                size = (r - half) if cc == 0 else half if cc == p else r
                src = min(cc, p - 1)
                if src == ctx.pid:
                    seg = my_segments.get(cc, [])
                    if len(seg) != size:
                        raise AssertionError(
                            f"segment {cc} has {len(seg)} records, expected {size}"
                        )
                    for m, rec in enumerate(seg):
                        e = base_e + m
                        g = m if cc == 0 else cc * r + m - half
                        dst = g // r
                        if dst == ctx.pid:
                            local.append((g, rec))
                        else:
                            outgoing.append((colors[e], dst, g, rec))
                base_e += size

        outgoing.sort(key=lambda t: t[0])
        for color, dst, place, rec in outgoing:
            yield from _pinned(
                ctx, base + color * G, dst, (place, rec), tag_base + phase_idx
            )
        msgs = yield from recv_n_tagged(ctx, tag_base + phase_idx, expected_in[ctx.pid])
        incoming = local + [m.payload for m in msgs]
        yield Compute(r)

        if kind == "shift":
            # Group into shifted segments; sort each (step 7).
            segments = {}
            for (cc, _g2), rec in [(pl, rec) for pl, rec in incoming]:
                segments.setdefault(cc, []).append(rec)
            for cc in segments:
                segments[cc].sort(key=key)
            yield Compute(t_seq_sort(r + half, p))
            block = []  # uniform layout resumes after unshift
        else:
            incoming.sort(key=lambda t: t[0])
            block = [rec for _pl, rec in incoming]
            if len(block) != r:
                raise AssertionError(
                    f"processor {ctx.pid}: {len(block)} records after {kind}, "
                    f"expected {r}"
                )
            if kind in ("transpose", "untranspose"):
                # Steps 3 and 5: local sorts after the permutations.
                block = sorted(block, key=key)
                yield Compute(tsort)
    return block
