"""Section 5 / Observation 1: supporting BSP and LogP on the same network.

For a point-to-point topology whose (measured) h-relation routing time is
``T(h) ~= gamma * h + delta``:

* best attainable **BSP** parameters: ``g* = Theta(gamma)`` (asymptotic
  per-message cost) and ``l* = Theta(delta)`` (barrier ~ diameter);
* best attainable **LogP** parameters: ``G* = Theta(gamma)`` and the
  smallest ``L*`` such that every ``ceil(L*/G*)``-relation routes within
  ``L*`` — the model's own self-consistency requirement
  (``L >= ceil(L/G) gamma + delta``, paper Section 5).

:func:`derive_model_support` measures both on the actual packet
simulator: ``gamma``/``delta`` by affine fit, then ``L*`` by iterating
``L <- T(ceil(L/G*))`` with measured ``T`` until the capacity relation
really does route inside the window.  Observation 1 predicts
``G* = Theta(g*)`` and ``L* = Theta(l* + g*)`` — the experiment tabulates
those ratios across ``p`` and checks they stay bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.networks.params import NetworkParams, make_topology, measure_network_params
from repro.networks.routing_sim import RoutingConfig, route_h_relation
from repro.networks.topology import Topology
from repro.util.intmath import ceil_div

__all__ = ["ModelSupport", "derive_model_support"]


@dataclass(frozen=True)
class ModelSupport:
    """Best attainable model parameters on one topology instance."""

    name: str
    p: int
    gamma: float
    delta: float
    g_star: int
    l_star: int
    G_star: int
    L_star: int

    @property
    def G_over_g(self) -> float:
        """Observation 1 predicts this stays Theta(1) as p grows."""
        return self.G_star / max(1, self.g_star)

    @property
    def L_over_lg(self) -> float:
        """Observation 1 predicts this stays Theta(1) as p grows."""
        return self.L_star / max(1, self.l_star + self.g_star)


def derive_model_support(
    topo: Topology,
    *,
    table_name: str,
    config: RoutingConfig = RoutingConfig(),
    hs: tuple[int, ...] = (1, 2, 4, 8),
    seeds: tuple[int, ...] = (0, 1),
    gap_slack: float = 2.0,
    max_iter: int = 30,
) -> ModelSupport:
    """Measure the best attainable (g*, l*) and (G*, L*) on ``topo``.

    ``gap_slack`` is the constant-factor headroom between ``G*`` and the
    raw bandwidth ``gamma`` needed for the fixed point
    ``L >= gamma ceil(L/G) + delta`` to close (with ``G = gamma`` exactly,
    the inequality has no finite solution — bandwidth must strictly beat
    the capacity refill rate).
    """
    fit: NetworkParams = measure_network_params(
        topo, table_name=table_name, hs=hs, seeds=seeds, config=config
    )
    gamma = max(fit.gamma, 0.5)
    delta = max(fit.delta, 1.0)

    g_star = max(1, round(gamma))
    l_star = max(1, fit.diameter)

    G_star = max(2, g_star, round(gap_slack * gamma))
    # Fixed point: find the smallest L such that a measured
    # ceil(L/G)-relation routes within L on the actual simulator.
    L = max(G_star, round(delta))
    for _ in range(max_iter):
        C = max(1, ceil_div(L, G_star))
        t_measured = max(
            route_h_relation(topo, C, seed=seed, config=config).time for seed in seeds
        )
        if t_measured <= L:
            break
        L = t_measured
    return ModelSupport(
        name=table_name,
        p=topo.p,
        gamma=fit.gamma,
        delta=fit.delta,
        g_star=g_star,
        l_star=l_star,
        G_star=G_star,
        L_star=L,
    )


def survey_observation1(
    names: tuple[str, ...],
    ps: tuple[int, ...],
    **kwargs,
) -> list[ModelSupport]:
    """Run :func:`derive_model_support` over a topology x size grid."""
    out: list[ModelSupport] = []
    for name in names:
        for p in ps:
            topo, config = make_topology(name, p)
            out.append(
                derive_model_support(topo, table_name=name, config=config, **kwargs)
            )
    return out
