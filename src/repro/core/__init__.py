"""The paper's contribution: cross-simulations between BSP and LogP.

* :mod:`repro.core.logp_on_bsp` — Theorem 1 (LogP simulated on BSP),
* :mod:`repro.core.cb` — Section 4.1 Combine-and-Broadcast / barrier,
* :mod:`repro.core.det_routing` — Section 4.2 deterministic h-relations,
* :mod:`repro.core.rand_routing` — Section 4.3 randomized h-relations,
* :mod:`repro.core.bsp_on_logp` — Theorems 2/3 (BSP simulated on LogP),
* :mod:`repro.core.stalling` — Sections 2/3 stalling analysis,
* :mod:`repro.core.network_support` — Section 5 / Observation 1.

Submodules are imported lazily so that ``import repro.core.cb`` does not
pull in the heavier simulation drivers.
"""

from typing import TYPE_CHECKING

__all__ = ["simulate_logp_on_bsp", "simulate_bsp_on_logp"]

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.bsp_on_logp import simulate_bsp_on_logp
    from repro.core.logp_on_bsp import simulate_logp_on_bsp


def __getattr__(name: str):
    if name == "simulate_logp_on_bsp":
        from repro.core.logp_on_bsp import simulate_logp_on_bsp

        return simulate_logp_on_bsp
    if name == "simulate_bsp_on_logp":
        from repro.core.bsp_on_logp import simulate_bsp_on_logp

        return simulate_bsp_on_logp
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
