"""The paper's contribution: cross-simulations between BSP and LogP.

* :mod:`repro.core.logp_on_bsp` — Theorem 1 (LogP simulated on BSP),
* :mod:`repro.core.cb` — Section 4.1 Combine-and-Broadcast / barrier,
* :mod:`repro.core.det_routing` — Section 4.2 deterministic h-relations,
* :mod:`repro.core.rand_routing` — Section 4.3 randomized h-relations,
* :mod:`repro.core.bsp_on_logp` — Theorems 2/3 (BSP simulated on LogP),
* :mod:`repro.core.stalling` — Sections 2/3 stalling analysis,
* :mod:`repro.core.network_support` — Section 5 / Observation 1.

The package-level entry points below are **deprecated** in favour of the
:class:`~repro.engine.stack.Stack` API (``repro.Stack``), which names
the same compositions declaratively::

    Stack(prog).on_logp(params).run()                    # Theorem 2/3
    Stack(prog, model="logp", params=P).on_bsp().run()   # Theorem 1

They remain as thin wrappers that emit :class:`DeprecationWarning` at
call time and delegate to the engine-backed drivers — a wrapped call and
the equivalent stacked run are the same computation.  The submodule
functions (``repro.core.bsp_on_logp.simulate_bsp_on_logp`` etc.) stay
undeprecated: they are the drivers the Stack adapters themselves use.
"""

import warnings

__all__ = [
    "simulate_logp_on_bsp",
    "simulate_logp_on_bsp_workpreserving",
    "simulate_bsp_on_logp",
]


def _deprecated(legacy: str, stack_chain: str) -> None:
    warnings.warn(
        f"repro.core.{legacy}() is deprecated; use the Stack API: "
        f"{stack_chain}",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate_logp_on_bsp(logp_params, program, **kwargs):
    """Deprecated wrapper for :func:`repro.core.logp_on_bsp.simulate_logp_on_bsp`.

    Prefer ``Stack(program, model="logp", params=logp_params).on_bsp().run()``.
    """
    from repro.core.logp_on_bsp import simulate_logp_on_bsp as _impl

    _deprecated(
        "simulate_logp_on_bsp",
        "Stack(program, model='logp', params=logp_params).on_bsp().run()",
    )
    return _impl(logp_params, program, **kwargs)


def simulate_logp_on_bsp_workpreserving(logp_params, program, bsp_p, **kwargs):
    """Deprecated wrapper for
    :func:`repro.core.logp_on_bsp.simulate_logp_on_bsp_workpreserving`.

    Prefer ``Stack(program, model="logp", params=logp_params)
    .on_bsp(p=bsp_p).run()``.
    """
    from repro.core.logp_on_bsp import (
        simulate_logp_on_bsp_workpreserving as _impl,
    )

    _deprecated(
        "simulate_logp_on_bsp_workpreserving",
        "Stack(program, model='logp', params=logp_params).on_bsp(p=bsp_p).run()",
    )
    return _impl(logp_params, program, bsp_p, **kwargs)


def simulate_bsp_on_logp(logp_params, program, **kwargs):
    """Deprecated wrapper for :func:`repro.core.bsp_on_logp.simulate_bsp_on_logp`.

    Prefer ``Stack(program).on_logp(logp_params).run()``.
    """
    from repro.core.bsp_on_logp import simulate_bsp_on_logp as _impl

    _deprecated(
        "simulate_bsp_on_logp",
        "Stack(program).on_logp(logp_params).run()",
    )
    return _impl(logp_params, program, **kwargs)
