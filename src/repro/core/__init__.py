"""The paper's contribution: cross-simulations between BSP and LogP.

* :mod:`repro.core.logp_on_bsp` — Theorem 1 (LogP simulated on BSP),
* :mod:`repro.core.cb` — Section 4.1 Combine-and-Broadcast / barrier,
* :mod:`repro.core.det_routing` — Section 4.2 deterministic h-relations,
* :mod:`repro.core.rand_routing` — Section 4.3 randomized h-relations,
* :mod:`repro.core.bsp_on_logp` — Theorems 2/3 (BSP simulated on LogP),
* :mod:`repro.core.stalling` — Sections 2/3 stalling analysis,
* :mod:`repro.core.network_support` — Section 5 / Observation 1.

The package-level entry points below are **deprecated** in favour of the
:class:`~repro.engine.stack.Stack` API (``repro.Stack``), which names
the same compositions declaratively::

    Stack(prog).on_logp(params).run()                    # Theorem 2/3
    Stack(prog, model="logp", params=P).on_bsp().run()   # Theorem 1

They remain as thin wrappers that emit :class:`DeprecationWarning` both
at *import/access* time (``from repro.core import simulate_bsp_on_logp``
warns via module ``__getattr__``) and at call time, and delegate to the
engine-backed drivers — a wrapped call and the equivalent stacked run
are the same computation.  The submodule functions
(``repro.core.bsp_on_logp.simulate_bsp_on_logp`` etc.) stay
undeprecated: they are the drivers the Stack adapters themselves use.
"""

import warnings

__all__ = [
    "simulate_logp_on_bsp",
    "simulate_logp_on_bsp_workpreserving",
    "simulate_bsp_on_logp",
]


def _deprecated(legacy: str, stack_chain: str, *, stacklevel: int = 3) -> None:
    warnings.warn(
        f"repro.core.{legacy}() is deprecated; use the Stack API: "
        f"{stack_chain}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _wrap_simulate_logp_on_bsp(logp_params, program, **kwargs):
    """Deprecated wrapper for :func:`repro.core.logp_on_bsp.simulate_logp_on_bsp`.

    Prefer ``Stack(program, model="logp", params=logp_params).on_bsp().run()``.
    """
    from repro.core.logp_on_bsp import simulate_logp_on_bsp as _impl

    _deprecated(
        "simulate_logp_on_bsp",
        _STACK_CHAIN["simulate_logp_on_bsp"],
    )
    return _impl(logp_params, program, **kwargs)


def _wrap_simulate_logp_on_bsp_workpreserving(logp_params, program, bsp_p, **kwargs):
    """Deprecated wrapper for
    :func:`repro.core.logp_on_bsp.simulate_logp_on_bsp_workpreserving`.

    Prefer ``Stack(program, model="logp", params=logp_params)
    .on_bsp(p=bsp_p).run()``.
    """
    from repro.core.logp_on_bsp import (
        simulate_logp_on_bsp_workpreserving as _impl,
    )

    _deprecated(
        "simulate_logp_on_bsp_workpreserving",
        _STACK_CHAIN["simulate_logp_on_bsp_workpreserving"],
    )
    return _impl(logp_params, program, bsp_p, **kwargs)


def _wrap_simulate_bsp_on_logp(logp_params, program, **kwargs):
    """Deprecated wrapper for :func:`repro.core.bsp_on_logp.simulate_bsp_on_logp`.

    Prefer ``Stack(program).on_logp(logp_params).run()``.
    """
    from repro.core.bsp_on_logp import simulate_bsp_on_logp as _impl

    _deprecated(
        "simulate_bsp_on_logp",
        _STACK_CHAIN["simulate_bsp_on_logp"],
    )
    return _impl(logp_params, program, **kwargs)


#: Legacy name -> the exact Stack chain that replaces it (the text both
#: the access-time and call-time warnings carry).
_STACK_CHAIN = {
    "simulate_logp_on_bsp":
        "Stack(program, model='logp', params=logp_params).on_bsp().run()",
    "simulate_logp_on_bsp_workpreserving":
        "Stack(program, model='logp', params=logp_params).on_bsp(p=bsp_p).run()",
    "simulate_bsp_on_logp":
        "Stack(program).on_logp(logp_params).run()",
}

_WRAPPERS = {
    "simulate_logp_on_bsp": _wrap_simulate_logp_on_bsp,
    "simulate_logp_on_bsp_workpreserving":
        _wrap_simulate_logp_on_bsp_workpreserving,
    "simulate_bsp_on_logp": _wrap_simulate_bsp_on_logp,
}


def __getattr__(name: str):
    """Access-time deprecation: ``from repro.core import simulate_*``
    (or ``repro.core.simulate_*``) warns before the call even happens,
    so a migration shows up as soon as the legacy name is touched."""
    wrapper = _WRAPPERS.get(name)
    if wrapper is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _deprecated(name, _STACK_CHAIN[name], stacklevel=2)
    return wrapper


def __dir__():
    return sorted(set(globals()) | set(_WRAPPERS))
