"""Declarative experiment sweeps: :class:`CampaignSpec` and point keys.

The paper's claims are *sweeps* — Theorems 1–3 and Observation 1 are
bounds whose shape only emerges across grids of ``(P, g, ℓ, L, o, G)``
and topologies — so a campaign is declared, not scripted: a **target**
(a named runner from :mod:`repro.campaign.targets`, an ``experiment:ID``
from the CLI registry, or a ``chain:...`` Stack spec), a **parameter
grid** (ordered axes, cartesian product), **seeds**, and base parameters
shared by every point.

Each grid point gets a deterministic **content-addressed key**: the
SHA-256 of the canonical JSON of ``(target, point, fingerprint)`` where
``fingerprint`` hashes the package's source tree (see
:mod:`repro.campaign.fingerprint`).  Keys are what the on-disk
:class:`~repro.campaign.store.ResultStore` indexes by, so

* rerunning an identical campaign skips every cached point,
* changing one point's parameters re-runs exactly that point, and
* changing the simulator code re-runs everything (the fingerprint is
  folded into every key).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["CampaignSpec", "canonical_json", "point_key"]


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=list)


def point_key(target: str, point: dict, fingerprint: str) -> str:
    """Content-addressed identity of one grid point's computation."""
    payload = canonical_json(
        {"target": target, "point": point, "fingerprint": fingerprint}
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


def _freeze(pairs) -> tuple:
    """Normalize a dict / iterable of pairs to an ordered tuple of pairs,
    with list values made tuples (specs are frozen and hashable)."""
    if isinstance(pairs, dict):
        pairs = pairs.items()
    out = []
    for name, value in pairs:
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        out.append((str(name), value))
    return tuple(out)


@dataclass(frozen=True)
class CampaignSpec:
    """One declared sweep: target + grid + seeds (+ fixed base params).

    Parameters
    ----------
    name:
        Campaign identity; also the default store directory name.
    target:
        A runner id from :data:`repro.campaign.targets.TARGETS`, or the
        prefixed forms ``"experiment:TH1"`` (run a CLI experiment table
        per point) / ``"chain:bsp-on-logp-on-network"`` (run the named
        Stack chain per point).
    grid:
        Ordered axes, each ``(axis_name, (value, value, ...))``; points
        are the cartesian product in axis order (later axes vary
        fastest).  A dict is accepted and frozen in insertion order.
    base:
        Fixed parameters merged under every point (a point axis with the
        same name wins).
    seeds:
        Per-point seeds; every grid combination is run once per seed
        (seed varies fastest).
    timeout_s:
        Default per-point timeout enforced by the worker pool.
    """

    name: str
    target: str
    grid: tuple[tuple[str, tuple], ...] = ()
    base: tuple[tuple[str, object], ...] = ()
    seeds: tuple[int, ...] = (0,)
    timeout_s: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", _freeze(self.grid))
        object.__setattr__(self, "base", _freeze(self.base))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.name:
            raise ParameterError("CampaignSpec needs a non-empty name")
        if not self.target:
            raise ParameterError("CampaignSpec needs a target")
        for axis, values in self.grid:
            if not isinstance(values, tuple) or not values:
                raise ParameterError(
                    f"CampaignSpec grid axis {axis!r} needs a non-empty "
                    f"sequence of values"
                )
        if not self.seeds:
            raise ParameterError("CampaignSpec needs at least one seed")

    # -- expansion -----------------------------------------------------

    def points(self) -> list[dict]:
        """Expand the grid: one dict per (combination, seed), in a
        deterministic order (axis order, later axes and seed fastest)."""
        axes = [values for _name, values in self.grid]
        names = [name for name, _values in self.grid]
        out = []
        for combo in itertools.product(*axes) if axes else [()]:
            for seed in self.seeds:
                point = dict(self.base)
                point.update(zip(names, combo))
                point["seed"] = seed
                out.append(point)
        return out

    def items(self, fingerprint: str) -> list[dict]:
        """The store/pool work list: ``{index, key, point}`` per point."""
        return [
            {"index": i, "key": point_key(self.target, pt, fingerprint), "point": pt}
            for i, pt in enumerate(self.points())
        ]

    def __len__(self) -> int:
        n = len(self.seeds)
        for _name, values in self.grid:
            n *= len(values)
        return n

    # -- persistence ---------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "grid": [[name, list(values)] for name, values in self.grid],
            "base": [[name, value] for name, value in self.base],
            "seeds": list(self.seeds),
            "timeout_s": self.timeout_s,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignSpec":
        return cls(
            name=doc["name"],
            target=doc["target"],
            grid=tuple((name, tuple(values)) for name, values in doc.get("grid", [])),
            base=tuple((name, value) for name, value in doc.get("base", [])),
            seeds=tuple(doc.get("seeds", (0,))),
            timeout_s=doc.get("timeout_s"),
            description=doc.get("description", ""),
        )

    def describe(self) -> str:
        axes = " x ".join(f"{name}[{len(values)}]" for name, values in self.grid)
        seeds = f" x seeds[{len(self.seeds)}]" if len(self.seeds) > 1 else ""
        return f"{self.name}: {self.target} over {axes or '1 point'}{seeds} = {len(self)} points"
