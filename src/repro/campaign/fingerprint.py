"""Code fingerprinting: hash the package source into cache keys.

A cached campaign point is only valid while the simulator that produced
it is unchanged, so every point key folds in a **code fingerprint** —
the SHA-256 over the sorted ``(relative path, contents)`` of every
``.py`` file in the installed :mod:`repro` package.  Editing any module
changes the fingerprint, which changes every key, which makes a rerun
recompute everything; an untouched tree reuses the cache byte-for-byte.

The walk is cheap (a couple of hundred small files) but not free, so the
result is memoized per process; tests and tools that want explicit cache
control pass ``fingerprint=...`` straight to the runner instead.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

__all__ = ["code_fingerprint", "clear_fingerprint_cache"]

_CACHE: dict[str, str] = {}


def code_fingerprint(root: str | Path | None = None) -> str:
    """Hex digest over the package's ``.py`` sources (memoized).

    ``root`` defaults to the :mod:`repro` package directory; passing an
    explicit directory fingerprints that tree instead (used by tests).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    cache_key = str(root)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    out = digest.hexdigest()[:20]
    _CACHE[cache_key] = out
    return out


def clear_fingerprint_cache() -> None:
    """Forget memoized fingerprints (tests that rewrite sources)."""
    _CACHE.clear()
