"""Multiprocessing worker pool: chunked work-stealing, crash isolation.

The pool shards a campaign's pending points across ``workers`` OS
processes.  Scheduling is *chunked work-stealing*: the parent splits the
work list into small chunks on a shared queue and every worker pulls its
next chunk when it finishes the last one, so fast workers naturally
steal load from slow ones without any balancing logic in the parent.

Failure philosophy mirrors :mod:`repro.faults`, lifted to the harness:

* a point that **raises** fails that point (``status="failed"``);
* a point that exceeds the per-point **timeout** is interrupted inside
  the worker via ``SIGALRM`` (``status="timeout"``); where the alarm
  cannot fire (non-main thread, no ``setitimer``) a watchdog thread
  still times the point out, loudly warning that it cannot interrupt it;
* a worker process that **dies** (segfault, ``os._exit``, OOM-kill)
  fails only the point it had started — the parent re-queues the rest
  of the dead worker's chunk, spawns a replacement (bounded by a respawn
  budget), and the campaign keeps going.  If every worker is gone and
  the budget is spent, the parent finishes the remaining points serially
  rather than deadlock.

Every completed point is reported to the caller *as it lands* via the
``on_result`` callback (the runner appends it to the
:class:`~repro.campaign.store.ResultStore` immediately — that is what
makes kill-and-resume lossless).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time

__all__ = ["run_pool", "run_serial", "execute_point"]

#: Upper bound on points per chunk; small chunks keep stealing granular.
MAX_CHUNK = 8


def _watchdog_execute(target_fn, point: dict, timeout_s: float, key: str):
    """Timeout fallback where SIGALRM cannot fire (non-main thread, or a
    platform without ``setitimer``): run the target in a daemon thread
    and give up waiting after ``timeout_s``.  The point is reported as
    ``timeout`` either way, but unlike the alarm path the target cannot
    be *interrupted* — it keeps running in its thread until the process
    exits, so the degradation is surfaced as a ``RuntimeWarning`` rather
    than hidden.  Returns ``(status, record, error)``."""
    import threading
    import warnings

    box: dict = {}

    def _body() -> None:
        try:
            box["record"] = target_fn(point)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            box["error"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(
        target=_body, daemon=True, name=f"campaign-watchdog-{key}"
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        warnings.warn(
            f"point {key}: SIGALRM unavailable here, so the watchdog "
            f"thread timed the point out after {timeout_s}s but cannot "
            f"interrupt it; the target keeps running in a daemon thread "
            f"until this process exits",
            RuntimeWarning,
            stacklevel=3,
        )
        return "timeout", None, f"point {key} exceeded {timeout_s}s (watchdog)"
    if "error" in box:
        return "failed", None, box["error"]
    return "ok", box.get("record"), None


def execute_point(target_fn, item: dict, timeout_s: float | None) -> dict:
    """Run one point under an optional timeout; never raises.

    The timeout is enforced by ``SIGALRM``/``setitimer`` when possible
    (main thread of a worker process — the normal pool path).  Called
    from a non-main thread or a platform without ``setitimer``, it
    degrades to a watchdog thread (:func:`_watchdog_execute`): same
    ``timeout`` status, but with a visible ``RuntimeWarning`` because
    the overrunning target cannot actually be interrupted.

    Returns the store entry: ``{key, index, point, status, record,
    error, wall_s}`` with ``status`` one of ``ok | failed | timeout``.
    """
    import signal
    import threading

    key, index, point = item["key"], item["index"], item["point"]
    use_alarm = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )

    def _on_alarm(signum, frame):
        raise TimeoutError(f"point {key} exceeded {timeout_s}s")

    t0 = time.perf_counter()
    status, record, error = "ok", None, None
    old_handler = None
    if timeout_s is not None and not use_alarm:
        status, record, error = _watchdog_execute(target_fn, point, timeout_s, key)
        return {
            "key": key,
            "index": index,
            "point": point,
            "status": status,
            "record": record,
            "error": error,
            "wall_s": round(time.perf_counter() - t0, 6),
        }
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        record = target_fn(point)
    except TimeoutError as exc:
        status, error = "timeout", str(exc)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    return {
        "key": key,
        "index": index,
        "point": point,
        "status": status,
        "record": record,
        "error": error,
        "wall_s": round(time.perf_counter() - t0, 6),
    }


def run_serial(target_fn, items, timeout_s, on_result) -> None:
    """In-process fallback (``parallel <= 1`` and the pool's last
    resort): same entry shape, same callback protocol."""
    for item in items:
        entry = execute_point(target_fn, item, timeout_s)
        entry["worker"] = 0
        on_result(entry)


def _worker_main(worker_id: int, target_name: str, timeout_s, task_q, result_q):
    """Worker process body: pull chunks until the ``None`` sentinel."""
    from repro.campaign.targets import resolve_target

    try:
        target_fn = resolve_target(target_name)
    except Exception as exc:  # bad target: fail fast, visibly
        result_q.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    busy = 0.0
    while True:
        chunk = task_q.get()
        if chunk is None:
            break
        result_q.put(("chunk", worker_id, [item["key"] for item in chunk]))
        for item in chunk:
            result_q.put(("start", worker_id, item["key"]))
            entry = execute_point(target_fn, item, timeout_s)
            entry["worker"] = worker_id
            busy += entry["wall_s"]
            result_q.put(("done", worker_id, entry))
    result_q.put(("exit", worker_id, busy))


def _isolated_main(target_name: str, item: dict, timeout_s, result_q) -> None:
    """Single-shot subprocess body for :func:`_run_isolated`."""
    from repro.campaign.targets import resolve_target

    entry = execute_point(resolve_target(target_name), item, timeout_s)
    result_q.put(entry)


def _run_isolated(ctx, target_name: str, item: dict, timeout_s) -> dict:
    """Run one point in a dedicated subprocess; a dying process yields a
    ``crashed`` entry instead of killing the caller."""
    result_q = ctx.Queue()
    proc = ctx.Process(
        target=_isolated_main,
        args=(target_name, item, timeout_s, result_q),
        daemon=True,
    )
    t0 = time.perf_counter()
    proc.start()
    grace = (timeout_s or 0) + 30.0
    entry = None
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        try:
            entry = result_q.get(timeout=0.25)
            break
        except queue_mod.Empty:
            if not proc.is_alive():
                # One more non-blocking look: the child may have exited
                # right after queueing its result.
                try:
                    entry = result_q.get_nowait()
                except queue_mod.Empty:
                    entry = None
                break
    if proc.is_alive():
        proc.terminate()
    proc.join(timeout=2.0)
    result_q.cancel_join_thread()
    if entry is None:
        entry = {
            "key": item["key"],
            "index": item["index"],
            "point": item["point"],
            "status": "crashed",
            "record": None,
            "error": "isolated worker process died while running this point",
            "wall_s": round(time.perf_counter() - t0, 6),
        }
    entry["worker"] = -1
    return entry


def _chunks(items: list, workers: int) -> list[list]:
    if not items:
        return []
    size = max(1, min(MAX_CHUNK, len(items) // (workers * 4) or 1))
    return [items[i : i + size] for i in range(0, len(items), size)]


class PoolStats:
    """What the pool can say about its own efficiency."""

    def __init__(self) -> None:
        self.workers = 0
        self.respawns = 0
        self.crashed_workers = 0
        self.busy_s = 0.0
        self.wall_s = 0.0

    def utilization(self) -> float:
        denom = self.workers * self.wall_s
        return self.busy_s / denom if denom else 0.0


def run_pool(
    target_name: str,
    items: list[dict],
    *,
    workers: int,
    timeout_s: float | None,
    on_result,
    stop_after: int | None = None,
) -> PoolStats:
    """Shard ``items`` over ``workers`` processes; report entries via
    ``on_result`` as they complete.

    ``stop_after`` simulates a kill for resume testing and the CI smoke:
    once that many entries have landed, outstanding workers are
    terminated and the remaining points are left unrun (the store keeps
    what finished).
    """
    stats = PoolStats()
    stats.workers = workers
    t_start = time.perf_counter()
    if workers <= 1 or len(items) <= 1:
        from repro.campaign.targets import resolve_target

        target_fn = resolve_target(target_name)
        done = 0
        for item in items:
            if stop_after is not None and done >= stop_after:
                break
            entry = execute_point(target_fn, item, timeout_s)
            entry["worker"] = 0
            on_result(entry)
            stats.busy_s += entry["wall_s"]
            done += 1
        stats.workers = 1
        stats.wall_s = time.perf_counter() - t_start
        return stats

    ctx = mp.get_context()
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    for chunk in _chunks(items, workers):
        task_q.put(chunk)

    procs: dict[int, mp.Process] = {}
    next_id = 0

    def _spawn() -> None:
        nonlocal next_id
        proc = ctx.Process(
            target=_worker_main,
            args=(next_id, target_name, timeout_s, task_q, result_q),
            daemon=True,
        )
        proc.start()
        procs[next_id] = proc
        next_id += 1

    for _ in range(workers):
        _spawn()

    remaining = {item["key"] for item in items}
    by_key = {item["key"]: item for item in items}
    claimed: dict[int, list[str]] = {}  # worker -> chunk keys not yet done
    started: dict[int, str] = {}  # worker -> key currently executing
    respawn_budget = workers
    sentinels_sent = False
    exited: set[int] = set()
    done_count = 0
    stopping = False

    def _record(entry: dict) -> None:
        nonlocal done_count
        remaining.discard(entry["key"])
        on_result(entry)
        done_count += 1

    def _handle_crash(worker_id: int) -> None:
        """Fail the in-flight point, requeue the rest of the chunk."""
        nonlocal respawn_budget
        stats.crashed_workers += 1
        key = started.pop(worker_id, None)
        chunk_keys = claimed.pop(worker_id, [])
        if key is not None and key in remaining:
            item = by_key[key]
            _record(
                {
                    "key": key,
                    "index": item["index"],
                    "point": item["point"],
                    "status": "crashed",
                    "record": None,
                    "error": "worker process died while running this point",
                    "wall_s": 0.0,
                    "worker": worker_id,
                }
            )
        requeue = [by_key[k] for k in chunk_keys if k in remaining]
        if requeue:
            task_q.put(requeue)
        if respawn_budget > 0 and not stopping:
            respawn_budget -= 1
            stats.respawns += 1
            _spawn()

    def _finish_isolated() -> None:
        """Last resort (all workers dead, or orphaned points nobody will
        ever claim): run each leftover point in its own single-shot
        subprocess, so a point that kills its process cannot take the
        campaign down with it."""
        nonlocal stopping
        while True:
            try:
                task_q.get_nowait()
            except queue_mod.Empty:
                break
        for key in sorted(remaining, key=lambda k: by_key[k]["index"]):
            if stop_after is not None and done_count >= stop_after:
                stopping = True
                break
            entry = _run_isolated(ctx, target_name, by_key[key], timeout_s)
            stats.busy_s += entry["wall_s"]
            _record(entry)

    idle_rounds = 0
    while remaining and not stopping:
        try:
            msg = result_q.get(timeout=0.25)
        except queue_mod.Empty:
            msg = None
        if msg is not None:
            idle_rounds = 0
            kind, worker_id, payload = msg
            if kind == "chunk":
                claimed[worker_id] = list(payload)
            elif kind == "start":
                started[worker_id] = payload
            elif kind == "done":
                started.pop(worker_id, None)
                keys = claimed.get(worker_id)
                if keys and payload["key"] in keys:
                    keys.remove(payload["key"])
                stats.busy_s += payload.get("wall_s", 0.0)
                _record(payload)
                if stop_after is not None and done_count >= stop_after:
                    stopping = True
            elif kind == "exit":
                exited.add(worker_id)
            elif kind == "fatal":
                for proc in procs.values():
                    proc.terminate()
                raise RuntimeError(f"campaign worker {worker_id}: {payload}")
            continue
        # No message: reap dead workers and their in-flight work.
        idle_rounds += 1
        for wid, proc in list(procs.items()):
            if wid in exited or proc.is_alive():
                continue
            proc.join(timeout=0)
            exited.add(wid)
            _handle_crash(wid)
        if remaining and all(
            wid in exited or not p.is_alive() for wid, p in procs.items()
        ):
            # Every worker is gone and the respawn budget is spent.
            _finish_isolated()
            break
        if remaining and idle_rounds >= 20 and not started:
            # Workers alive but idle, nothing in flight, results missing:
            # a worker died between claiming a chunk and reporting it.
            # The orphaned points will never be claimed — run them here.
            _finish_isolated()
            break

    # Shut down: sentinels for live workers, terminate on stop_after.
    if stopping:
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
    elif not sentinels_sent:
        for _ in procs:
            task_q.put(None)
        sentinels_sent = True
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and any(
            p.is_alive() for p in procs.values()
        ):
            try:
                msg = result_q.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            if msg[0] == "done":  # late result from a straggler
                started.pop(msg[1], None)
                if msg[2]["key"] in remaining:
                    stats.busy_s += msg[2].get("wall_s", 0.0)
                    _record(msg[2])
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
    for proc in procs.values():
        proc.join(timeout=2.0)
    task_q.cancel_join_thread()
    result_q.cancel_join_thread()
    stats.wall_s = time.perf_counter() - t_start
    return stats
