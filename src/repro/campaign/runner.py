"""Campaign orchestration: cache check, dispatch, persist, report.

``run_campaign(spec)`` is the whole lifecycle:

1. fingerprint the code and expand the spec into keyed work items;
2. open the :class:`~repro.campaign.store.ResultStore` and split items
   into **cached** (an ``ok`` entry exists for the key) and **pending**;
3. run pending points — serially, or sharded over a
   :mod:`~repro.campaign.pool` worker pool — appending each entry to
   the store the moment it lands;
4. compact the store to exactly the spec's current keys (dropping
   superseded and invalidated entries) and write the index;
5. publish campaign metrics (points/sec, cache hit rate, worker
   utilization) into an :class:`~repro.obs.Observation` when given one.

Resume is therefore not a mode but a consequence: a killed campaign's
store already holds everything that finished, and the next run's step 2
skips it.  ``force=True`` truncates the store first; a changed code
fingerprint orphans every old key so step 2 finds nothing to skip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.fingerprint import code_fingerprint
from repro.campaign.pool import run_pool
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore

__all__ = ["CampaignReport", "run_campaign", "default_store_dir"]

#: Default parent directory for campaign stores (relative to cwd).
STORE_ROOT = Path("campaigns")


def default_store_dir(spec: CampaignSpec) -> Path:
    return STORE_ROOT / spec.name


@dataclass
class CampaignReport:
    """Outcome of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    store_dir: Path
    fingerprint: str
    total: int
    ran: int
    cached: int
    failed: int
    interrupted: bool
    wall_s: float
    workers: int
    utilization: float
    stale_dropped: int = 0
    ran_keys: list[str] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    entries: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed and not self.interrupted

    @property
    def points_per_s(self) -> float:
        return self.ran / self.wall_s if self.wall_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def records(self) -> list[dict]:
        """The completed points' target records, in grid order."""
        return [
            entry["record"]
            for entry in self.entries
            if entry.get("status") == "ok" and entry.get("record") is not None
        ]

    def render(self) -> str:
        from repro.util.tables import render_table

        status = (
            "interrupted"
            if self.interrupted
            else ("ok" if not self.failed else f"{self.failed} failed")
        )
        rows = [
            ("campaign", self.spec.name),
            ("target", self.spec.target),
            ("store", str(self.store_dir)),
            ("points", self.total),
            ("ran", self.ran),
            ("cached", f"{self.cached} ({self.cache_hit_rate * 100:.0f}% hit rate)"),
            ("failed", self.failed),
            ("status", status),
            ("wall", f"{self.wall_s:.2f}s"),
            ("throughput", f"{self.points_per_s:.1f} points/s"),
            ("workers", self.workers),
            ("utilization", f"{self.utilization * 100:.0f}%"),
        ]
        return render_table(
            ["field", "value"], rows, title=f"campaign — {self.spec.name}"
        )

    def as_dict(self) -> dict:
        return {
            "campaign": self.spec.name,
            "target": self.spec.target,
            "store": str(self.store_dir),
            "fingerprint": self.fingerprint,
            "total": self.total,
            "ran": self.ran,
            "cached": self.cached,
            "failed": self.failed,
            "interrupted": self.interrupted,
            "wall_s": round(self.wall_s, 4),
            "points_per_s": round(self.points_per_s, 2),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "workers": self.workers,
            "utilization": round(self.utilization, 4),
            "failures": self.failures,
        }


def run_campaign(
    spec: CampaignSpec,
    *,
    store_dir: str | Path | None = None,
    parallel: int = 1,
    force: bool = False,
    obs=None,
    stop_after: int | None = None,
    timeout_s: float | None = None,
    fingerprint: str | None = None,
    progress=None,
) -> CampaignReport:
    """Run (or resume) a campaign; see the module docstring.

    Parameters beyond the spec:

    * ``parallel`` — worker process count (``<= 1`` runs in-process);
    * ``force`` — drop every cached entry and recompute from scratch;
    * ``stop_after`` — abandon the run after this many points complete
      (simulated kill; the store keeps them and a later run resumes);
    * ``timeout_s`` — per-point timeout (defaults to the spec's);
    * ``fingerprint`` — cache-key override (tests; defaults to the
      hashed package source);
    * ``obs`` — an :class:`~repro.obs.Observation` to publish campaign
      metrics into;
    * ``progress`` — optional ``callable(str)`` for one-line updates.
    """
    say = progress or (lambda _msg: None)
    fp = fingerprint if fingerprint is not None else code_fingerprint()
    items = spec.items(fp)
    timeout = timeout_s if timeout_s is not None else spec.timeout_s
    directory = Path(store_dir) if store_dir is not None else default_store_dir(spec)

    t0 = time.perf_counter()
    with ResultStore(directory).open(spec, fp, force=force) as store:
        valid_keys = [item["key"] for item in items]
        cached = store.completed()
        pending = [item for item in items if item["key"] not in cached]
        say(
            f"campaign {spec.name}: {len(items)} points, "
            f"{len(items) - len(pending)} cached, {len(pending)} to run"
        )

        ran_keys: list[str] = []

        def on_result(entry: dict) -> None:
            store.append(entry)
            ran_keys.append(entry["key"])
            if entry["status"] != "ok":
                say(
                    f"  point {entry['index']} {entry['status']}: "
                    f"{entry.get('error')}"
                )

        stats = run_pool(
            spec.target,
            pending,
            workers=max(1, parallel),
            timeout_s=timeout,
            on_result=on_result,
            stop_after=stop_after,
        )
        interrupted = stop_after is not None and len(ran_keys) < len(pending)
        stale = 0
        if not interrupted:
            stale = store.compact(valid_keys)
        entries = store.entries()
        ordered = [
            entries[item["key"]] for item in items if item["key"] in entries
        ]
        failures = [
            {
                "index": e["index"],
                "key": e["key"],
                "status": e["status"],
                "error": e.get("error"),
            }
            for e in ordered
            if e.get("status") != "ok"
        ]

    wall = time.perf_counter() - t0
    report = CampaignReport(
        spec=spec,
        store_dir=directory,
        fingerprint=fp,
        total=len(items),
        ran=len(ran_keys),
        cached=len(items) - len(pending),
        failed=len(failures),
        interrupted=interrupted,
        wall_s=wall,
        workers=stats.workers,
        utilization=stats.utilization(),
        stale_dropped=stale,
        ran_keys=ran_keys,
        failures=failures,
        entries=ordered,
    )
    if obs is not None and obs:
        obs.observe_campaign(report)
    return report
