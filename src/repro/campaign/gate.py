"""Bound-fit regression gate: residual shape across a sweep vs baseline.

The paper's theorems predict *curves*, not points, so after a campaign
this module fits the sweep's predicted-vs-observed pairs — every
``cost_check`` residual the targets embedded in their records — and
compares the fitted shape against a committed baseline:

* per residual name, the observed values are regressed on the predicted
  values (least squares ``observed ≈ slope · predicted + intercept``) —
  a theorem that holds sweeps out with slope near the baseline's and the
  same ok-fraction under its :class:`~repro.obs.check.CostResidual`
  kind (exact/upper/estimate/factor);
* a gate **fails** when a residual family disappears, its ok-fraction
  drops, or its slope / mean ratio drifts outside the tolerance band —
  the signature of a simulator change bending a measured curve away
  from the paper's closed form.

Baselines are schema-versioned JSON written by
:meth:`RegressionGate.update` (see ``benchmarks/baselines/``); CI runs
the smoke campaign and checks it against the committed file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.io import dump_json, load_json

__all__ = ["fit_bounds", "GateResult", "RegressionGate"]

GATE_KIND = "repro.campaign.gate"

#: Relative drift allowed on slope and mean ratio before failing.
RATIO_TOL = 0.25
#: Absolute drop allowed in a residual family's ok-fraction.
OK_DROP_TOL = 0.0


def _residual_rows(records: list[dict]):
    """Yield ``(family, kind, observed, predicted, ok)`` from every
    ``cost_check`` block found in the records.  Indexed names collapse
    into one family (``superstep[3] ...`` -> ``superstep[*] ...``) so a
    family's membership does not depend on how many supersteps each grid
    point happened to execute."""
    import re

    from repro.obs.check import CostResidual

    for record in records:
        check = record.get("cost_check")
        if not check:
            continue
        for row in check.get("residuals", ()):
            residual = CostResidual(
                name=row["name"],
                observed=row["observed"],
                predicted=row["predicted"],
                kind=row.get("kind", "exact"),
            )
            family = re.sub(r"\[\d+\]", "[*]", residual.name)
            yield family, residual.kind, residual.observed, residual.predicted, residual.ok()


def _linear_fit(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares ``y = slope * x + intercept`` (slope 1 for a
    degenerate x range: the fit then only reports the offset)."""
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        return 1.0, my - mx
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    return slope, my - slope * mx


def fit_bounds(records: list[dict]) -> dict:
    """Summarize every residual family across the sweep.

    Returns ``{name: {kind, count, ok, ok_frac, mean_ratio, max_ratio,
    slope, intercept}}`` — the shape the gate compares.
    """
    families: dict[str, dict] = {}
    for name, kind, observed, predicted, ok in _residual_rows(records):
        fam = families.setdefault(
            name,
            {"kind": kind, "observed": [], "predicted": [], "ok": 0, "count": 0},
        )
        fam["count"] += 1
        fam["ok"] += bool(ok)
        fam["observed"].append(float(observed))
        fam["predicted"].append(float(predicted))
    out: dict[str, dict] = {}
    for name, fam in sorted(families.items()):
        obs_v, pred_v = fam["observed"], fam["predicted"]
        ratios = [
            o / p for o, p in zip(obs_v, pred_v) if p not in (0, 0.0)
        ]
        finite = [r for r in ratios if math.isfinite(r)]
        slope, intercept = _linear_fit(pred_v, obs_v)
        out[name] = {
            "kind": fam["kind"],
            "count": fam["count"],
            "ok": fam["ok"],
            "ok_frac": round(fam["ok"] / fam["count"], 6),
            "mean_ratio": round(sum(finite) / len(finite), 6) if finite else None,
            "max_ratio": round(max(finite), 6) if finite else None,
            "slope": round(slope, 6),
            "intercept": round(intercept, 6),
        }
    return out


@dataclass
class GateResult:
    """Verdict of one gate check."""

    summary: dict
    baseline: dict
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        from repro.util.tables import render_table

        rows = []
        for name, fam in self.summary.items():
            ref = self.baseline.get(name, {})
            rows.append(
                (
                    name,
                    fam["kind"],
                    fam["count"],
                    f"{fam['ok_frac']:.2f}",
                    f"{ref.get('ok_frac', float('nan')):.2f}",
                    f"{fam['slope']:.3f}",
                    f"{ref.get('slope', float('nan')):.3f}",
                )
            )
        out = render_table(
            ["residual", "kind", "n", "ok", "ok base", "slope", "slope base"],
            rows,
            title=f"regression gate — {'ok' if self.ok else 'FAIL'}",
        )
        for failure in self.failures:
            out += f"\nFAIL  {failure}"
        return out


def _drifted(value, ref, tol: float) -> bool:
    if value is None or ref is None:
        return (value is None) != (ref is None)
    if ref == 0:
        return abs(value) > tol
    return abs(value - ref) / abs(ref) > tol


class RegressionGate:
    """Fit a sweep and compare it against a committed baseline file."""

    def __init__(
        self, *, ratio_tol: float = RATIO_TOL, ok_drop_tol: float = OK_DROP_TOL
    ) -> None:
        self.ratio_tol = ratio_tol
        self.ok_drop_tol = ok_drop_tol

    def check(self, records: list[dict], baseline_path: str | Path) -> GateResult:
        doc = load_json(baseline_path, kind=GATE_KIND)
        baseline = doc["families"]
        summary = fit_bounds(records)
        failures: list[str] = []
        for name, ref in baseline.items():
            fam = summary.get(name)
            if fam is None:
                failures.append(f"residual family {name!r} disappeared from the sweep")
                continue
            if fam["ok_frac"] < ref["ok_frac"] - self.ok_drop_tol:
                failures.append(
                    f"{name}: ok fraction regressed "
                    f"{ref['ok_frac']:.2f} -> {fam['ok_frac']:.2f}"
                )
            if _drifted(fam["slope"], ref["slope"], self.ratio_tol):
                failures.append(
                    f"{name}: observed-vs-predicted slope drifted "
                    f"{ref['slope']:.3f} -> {fam['slope']:.3f} "
                    f"(tol {self.ratio_tol:.0%})"
                )
            if _drifted(fam["mean_ratio"], ref["mean_ratio"], self.ratio_tol):
                failures.append(
                    f"{name}: mean observed/predicted ratio drifted "
                    f"{ref['mean_ratio']} -> {fam['mean_ratio']} "
                    f"(tol {self.ratio_tol:.0%})"
                )
        return GateResult(summary=summary, baseline=baseline, failures=failures)

    def update(
        self, records: list[dict], baseline_path: str | Path, *, campaign: str = ""
    ) -> Path:
        """(Re)write the committed baseline from this sweep's fits."""
        return dump_json(
            baseline_path,
            GATE_KIND,
            {"campaign": campaign, "families": fit_bounds(records)},
        )
