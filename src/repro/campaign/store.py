"""On-disk campaign result store: append-only JSONL plus an index.

Layout (one directory per campaign)::

    <dir>/campaign.json   # schema + spec + fingerprint of the last run
    <dir>/results.jsonl   # one entry per completed point, append-only
    <dir>/index.json      # key -> status summary, rebuilt at close

``results.jsonl`` is the source of truth and is written one line per
completed point *as results arrive* (flushed and fsynced), so a killed
campaign keeps everything it finished: reopening the store replays the
file, moves a torn final line from a mid-write kill into
``results.quarantine`` and truncates back to the last good newline (so
later appends cannot concatenate onto the fragment), keeps the
**latest** entry per key, and the runner skips every key whose entry is
``ok``.
``index.json`` and ``campaign.json`` are conveniences for humans and CI
artifacts; they are never read back as truth.

Entries are content-addressed by the spec's point keys, so resume,
``--force``, and fingerprint invalidation all reduce to set algebra on
keys.  :meth:`ResultStore.canonical` is the determinism contract: the
completed entries in grid order with the volatile fields (wall clock,
worker id) stripped — a resumed store and an uninterrupted store of the
same campaign render identical canonical bytes.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.campaign.spec import CampaignSpec
from repro.errors import ParameterError

__all__ = ["ResultStore", "ShardedStore", "STORE_SCHEMA"]

#: Schema stamp written into campaign.json / index.json.
STORE_SCHEMA = {"name": "repro.campaign.store", "version": 1}

#: Entry fields excluded from the canonical projection (timing and
#: placement jitter; everything else must be deterministic).
VOLATILE_FIELDS = ("wall_s", "worker")


class ResultStore:
    """One campaign's persisted results under ``directory``."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.results_path = self.directory / "results.jsonl"
        self.meta_path = self.directory / "campaign.json"
        self.index_path = self.directory / "index.json"
        self.quarantine_path = self.directory / "results.quarantine"
        self.quarantined = 0  # torn tail fragments moved aside on load
        self._entries: dict[str, dict] = {}
        self._fh = None
        # Guards _entries and the append file handle: the service's
        # asyncio loop reads (get) while pool-callback threads append.
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------

    def open(
        self,
        spec: CampaignSpec,
        fingerprint: str,
        *,
        force: bool = False,
    ) -> "ResultStore":
        """Load prior results (unless ``force``) and start appending."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if force and self.results_path.exists():
            self.results_path.unlink()
        self._entries = self._load()
        self.meta_path.write_text(
            json.dumps(
                {
                    "schema": STORE_SCHEMA,
                    "spec": spec.as_dict(),
                    "fingerprint": fingerprint,
                },
                indent=2,
            )
            + "\n"
        )
        self._fh = self.results_path.open("a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self.write_index()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------

    def _load(self) -> dict[str, dict]:
        """Replay the JSONL, healing the tail a mid-write kill leaves.

        A process killed inside :meth:`append` leaves either a torn
        final line (unparseable) or a complete final line with no
        trailing newline.  Both would corrupt the *next* appended entry
        by concatenation, so the tail is repaired before the file is
        reopened for append: a torn fragment is moved to
        ``results.quarantine`` and the file truncated back to the last
        good newline; a newline-less good line gets its newline.
        Mid-file garbage (not our crash mode) is skipped, never healed.
        """
        entries: dict[str, dict] = {}
        if not self.results_path.exists():
            return entries
        raw = self.results_path.read_bytes()
        offset = 0
        for chunk in raw.splitlines(keepends=True):
            end = offset + len(chunk)
            line = chunk.strip()
            if line:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    if end >= len(raw):  # torn tail from a killed append
                        self._quarantine_tail(chunk, offset)
                        break
                    offset = end
                    continue  # mid-file garbage: tolerated, not healed
                key = entry.get("key")
                if key:
                    entries[key] = entry
            offset = end
        if raw and not raw.endswith(b"\n") and self.quarantined == 0:
            with self.results_path.open("ab") as fh:
                fh.write(b"\n")  # complete line, interrupted before EOL
        return entries

    def _quarantine_tail(self, fragment: bytes, offset: int) -> None:
        """Move a torn trailing fragment aside and truncate to it."""
        with self.quarantine_path.open("ab") as fh:
            fh.write(fragment.rstrip(b"\n") + b"\n")
        with self.results_path.open("r+b") as fh:
            fh.truncate(offset)
        self.quarantined += 1

    def entries(self) -> dict[str, dict]:
        """Latest entry per key (all statuses)."""
        with self._lock:
            return dict(self._entries)

    def get(self, key: str) -> dict | None:
        """Thread-safe point lookup: the latest entry for ``key`` (any
        status), or ``None`` — the service's cache-hit read path."""
        with self._lock:
            return self._entries.get(key)

    def reload(self) -> int:
        """Re-read the JSONL, merging entries appended by *other*
        processes sharing this directory.  Read-only — unlike
        :meth:`_load` it never heals the tail (another server may be
        mid-append), it just skips unparseable fragments.  Returns the
        number of new-or-updated keys."""
        if not self.results_path.exists():
            return 0
        raw = self.results_path.read_bytes()
        fresh: dict[str, dict] = {}
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            key = entry.get("key")
            if key:
                fresh[key] = entry
        with self._lock:
            updated = sum(
                1 for k, e in fresh.items() if self._entries.get(k) != e
            )
            self._entries.update(fresh)
        return updated

    def completed(self) -> dict[str, dict]:
        """Keys that finished successfully — the resume skip set.
        Failed/timeout/crashed points are *not* in it: a resumed
        campaign retries them."""
        with self._lock:
            return {
                key: entry
                for key, entry in self._entries.items()
                if entry.get("status") == "ok"
            }

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -------------------------------------------------------

    def append(self, entry: dict) -> None:
        """Persist one point outcome immediately (crash durability:
        flushed *and* fsynced, so a power cut after ``append`` returns
        cannot lose the entry, only ever tear a line mid-write)."""
        with self._lock:
            if self._fh is None:
                raise RuntimeError("ResultStore.append before open()")
            self._entries[entry["key"]] = entry
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def compact(self, valid_keys) -> int:
        """Rewrite the JSONL keeping only the latest entry per key in
        ``valid_keys``, ordered by grid index.  Returns the number of
        stale entries dropped (superseded duplicates + invalidated
        keys)."""
        valid = set(valid_keys)
        keep = [e for k, e in self._entries.items() if k in valid]
        keep.sort(key=lambda e: (e.get("index", 0), e.get("key", "")))
        was_open = self._fh is not None
        if was_open:
            self._fh.close()
        raw_lines = 0
        if self.results_path.exists():
            with self.results_path.open(encoding="utf-8") as fh:
                raw_lines = sum(1 for line in fh if line.strip())
        with self.results_path.open("w", encoding="utf-8") as fh:
            for entry in keep:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._entries = {e["key"]: e for e in keep}
        if was_open:
            self._fh = self.results_path.open("a", encoding="utf-8")
        return raw_lines - len(keep)

    def write_index(self) -> Path:
        statuses: dict[str, int] = {}
        for entry in self._entries.values():
            status = entry.get("status", "unknown")
            statuses[status] = statuses.get(status, 0) + 1
        self.index_path.write_text(
            json.dumps(
                {
                    "schema": STORE_SCHEMA,
                    "points": len(self._entries),
                    "statuses": statuses,
                    "keys": {
                        key: entry.get("status", "unknown")
                        for key, entry in sorted(self._entries.items())
                    },
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        return self.index_path

    # -- determinism contract ------------------------------------------

    def canonical(self) -> str:
        """Deterministic projection of the completed entries: grid
        order, volatile fields stripped.  Two stores of the same
        campaign — one uninterrupted, one killed and resumed — must
        render byte-identical canonical text."""
        entries = sorted(
            self.completed().values(),
            key=lambda e: (e.get("index", 0), e.get("key", "")),
        )
        cleaned = [
            {k: v for k, v in entry.items() if k not in VOLATILE_FIELDS}
            for entry in entries
        ]
        return json.dumps(cleaned, sort_keys=True, indent=1) + "\n"


class ShardedStore:
    """A family of :class:`ResultStore` shards under one root directory,
    routed by content-addressed key prefix.

    ``shard_for(key)`` is a pure function of the key's leading hex
    digits, so *every* server opening the same root routes every key to
    the same shard — that is what lets multiple service processes share
    one cache directory: each append is a single fsynced ``O_APPEND``
    line in the key's shard file, and :meth:`reload` folds in lines
    other processes appended since open.  The shard count is pinned in
    ``shards.json`` at first open; reopening with a different count is
    an error (it would silently re-route every key).

    The read path (:meth:`get`) and write path (:meth:`append`) are
    thread-safe via the per-shard store locks.
    """

    META_NAME = "shards.json"

    def __init__(self, root: str | Path, *, shards: int = 16) -> None:
        if not 1 <= int(shards) <= 256:
            raise ParameterError(
                f"ShardedStore needs 1 <= shards <= 256, got {shards}"
            )
        self.root = Path(root)
        self.shards = int(shards)
        self._stores = [
            ResultStore(self.root / f"shard-{i:02x}") for i in range(self.shards)
        ]

    # -- routing -------------------------------------------------------

    def shard_for(self, key: str) -> int:
        """Deterministic shard index for a point key (hex prefix mod)."""
        return int(str(key)[:8], 16) % self.shards

    def store_for(self, key: str) -> ResultStore:
        return self._stores[self.shard_for(key)]

    # -- lifecycle -----------------------------------------------------

    def open(self, spec, fingerprint: str, *, force: bool = False) -> "ShardedStore":
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / self.META_NAME
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("shards") != self.shards:
                raise ParameterError(
                    f"{self.root} was sharded {meta.get('shards')} ways; "
                    f"reopening with shards={self.shards} would re-route "
                    f"every key (use the original count)"
                )
        else:
            meta_path.write_text(
                json.dumps({"schema": STORE_SCHEMA, "shards": self.shards}) + "\n"
            )
        for store in self._stores:
            store.open(spec, fingerprint, force=force)
        return self

    def close(self) -> None:
        for store in self._stores:
            store.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading / writing ---------------------------------------------

    def get(self, key: str) -> dict | None:
        return self.store_for(key).get(key)

    def append(self, entry: dict) -> None:
        self.store_for(entry["key"]).append(entry)

    def reload(self) -> int:
        """Fold in entries appended by other processes since open."""
        return sum(store.reload() for store in self._stores)

    def entries(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for store in self._stores:
            out.update(store.entries())
        return out

    def completed(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for store in self._stores:
            out.update(store.completed())
        return out

    @property
    def quarantined(self) -> int:
        """Torn tail fragments healed across every shard at open."""
        return sum(store.quarantined for store in self._stores)

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)
