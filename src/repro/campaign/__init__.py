"""repro.campaign — parallel, resumable, cache-backed experiment sweeps.

The layer above :class:`~repro.engine.stack.Stack`: where a Stack runs
one composed simulation, a campaign runs a *grid* of them — sharded
across a multiprocessing worker pool, persisted point-by-point to an
on-disk store, skipped when cached, resumed when killed, and gated
against the paper's closed-form bounds afterwards.  See
``docs/CAMPAIGN.md``.

The pieces:

* :class:`CampaignSpec` — the declarative sweep (target + grid + seeds)
  with deterministic content-addressed point keys
  (:mod:`~repro.campaign.spec`, :mod:`~repro.campaign.fingerprint`);
* :func:`run_campaign` / :class:`CampaignReport` — orchestration over
  the worker pool and store (:mod:`~repro.campaign.runner`,
  :mod:`~repro.campaign.pool`);
* :class:`ResultStore` / :class:`ShardedStore` — JSONL + index
  persistence with resume and invalidation semantics, single-directory
  or sharded by key prefix for multi-server sharing
  (:mod:`~repro.campaign.store`);
* :class:`RegressionGate` / :func:`fit_bounds` — the bound-fit gate
  over the sweep's cost-check residuals (:mod:`~repro.campaign.gate`);
* :data:`TARGETS` / :func:`register_target` — what a grid point runs,
  and the public way to add your own (:mod:`~repro.campaign.targets`);
* :data:`CAMPAIGNS` — the built-in sweeps the CLI and benchmarks share
  (:mod:`~repro.campaign.builtin`);
* :func:`dump_json` / :func:`load_json` — the schema-versioned JSON
  emitter every result artifact goes through (:mod:`~repro.campaign.io`).
"""

from repro.campaign.builtin import CAMPAIGNS
from repro.campaign.fingerprint import code_fingerprint
from repro.campaign.gate import GateResult, RegressionGate, fit_bounds
from repro.campaign.io import dump_json, load_json
from repro.campaign.runner import CampaignReport, run_campaign
from repro.campaign.spec import CampaignSpec, point_key
from repro.campaign.store import ResultStore, ShardedStore
from repro.campaign.targets import (
    TARGETS,
    register_target,
    resolve_target,
    run_point,
)

__all__ = [
    "CampaignSpec",
    "CampaignReport",
    "run_campaign",
    "ResultStore",
    "ShardedStore",
    "register_target",
    "RegressionGate",
    "GateResult",
    "fit_bounds",
    "CAMPAIGNS",
    "TARGETS",
    "resolve_target",
    "run_point",
    "point_key",
    "code_fingerprint",
    "dump_json",
    "load_json",
]
