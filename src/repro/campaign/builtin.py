"""Built-in campaign specs: the paper's sweeps, declared once.

These are the grids the benchmarks and the CLI share (``python -m
repro.experiments campaign <name>``).  Each is a plain
:class:`~repro.campaign.spec.CampaignSpec`; benchmarks wrap them rather
than re-looping, so a sweep's definition lives in exactly one place.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec

__all__ = ["CAMPAIGNS", "SAMPLE_SORT_GRID", "SORTING_REGIMES"]

#: Theorem 1 across BSP machines: 3 kernels x 4 gap scalings x 2 latency
#: scalings = 24 points on the LogP(p=16, L=8, o=1, G=2) guest.
TH1_GRID = CampaignSpec(
    name="th1-grid",
    target="theorem1",
    grid=(
        ("kernel", ("sum", "ring", "alltoall")),
        ("gs", (1, 2, 4, 8)),
        ("ls", (1, 4)),
    ),
    base=(("p", 16), ("L", 8), ("o", 1), ("G", 2)),
    description="Theorem 1: LogP-on-BSP slowdown across g/l scalings (24 points)",
)

#: Theorem 2 across relation degrees and machine sizes; the sweep
#: crosses the bitonic/columnsort scheme boundary.
TH2_GRID = CampaignSpec(
    name="th2-grid",
    target="theorem2",
    grid=(
        ("p", (8, 16)),
        ("h", (1, 4, 16, 64, 256)),
    ),
    base=(("L", 8), ("o", 1), ("G", 2)),
    seeds=(1, 2),
    description="Theorem 2: deterministic routing slowdown vs S(L,G,p,h) (20 points)",
)

#: Propositions 1/2 across machine sizes and (L, G) regimes.
CB_GRID = CampaignSpec(
    name="cb-grid",
    target="cb",
    grid=(
        ("p", (8, 64, 512)),
        ("L", (8, 16)),
        ("G", (2, 8)),
    ),
    base=(("o", 1),),
    description="Propositions 1/2: Combine-and-Broadcast cost bounds (12 points)",
)

#: CI smoke: the Theorem 1 grid trimmed to seconds of work.
TH1_SMOKE = CampaignSpec(
    name="th1-smoke",
    target="theorem1",
    grid=(
        ("kernel", ("sum", "alltoall")),
        ("gs", (1, 4)),
        ("ls", (1, 4)),
    ),
    base=(("p", 16), ("L", 8), ("o", 1), ("G", 2)),
    description="Theorem 1 smoke grid for CI (8 points)",
)

#: The (previously orphaned) direct BSP sample sort as a campaign:
#: reachable from ``experiments campaign sample-sort-grid`` via the
#: ``workload`` target, sweeping machine size against keys per processor.
SAMPLE_SORT_GRID = CampaignSpec(
    name="sample-sort-grid",
    target="workload",
    grid=(
        ("workload", ("sample-sort",)),
        ("p", (2, 4, 8)),
        ("keys_per_proc", (16, 32, 64)),
    ),
    description="Direct BSP sample sort: cost ledger across p x n/p (9 points)",
)

#: The sorting-regime study grid: all three word-accurate sorters across
#: n/p at p=8 (invalid points — columnsort below 2(p-1)², non-power-of-
#: two bitonic — are recorded as skipped, not failed).
SORTING_REGIMES = CampaignSpec(
    name="sorting-regimes",
    target="workload",
    grid=(
        ("workload", ("sample-sort-unit", "bitonic-sort", "columnsort")),
        ("p", (8,)),
        ("keys_per_proc", (8, 16, 32, 64, 128)),
    ),
    description="Sorting regimes: sample vs bitonic vs Columnsort over n/p (15 points)",
)

CAMPAIGNS: dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        TH1_GRID,
        TH2_GRID,
        CB_GRID,
        TH1_SMOKE,
        SAMPLE_SORT_GRID,
        SORTING_REGIMES,
    )
}
