"""Campaign targets: the functions a grid point is applied to.

A target takes one **point** — a plain dict of parameters produced by
:meth:`CampaignSpec.points` — and returns one JSON-serializable
**record**.  Records carry the fields the paper's tables plot plus,
where a closed form exists, a ``cost_check`` block in the
:meth:`~repro.obs.check.CostCheckReport.as_dict` shape so the
regression gate (:mod:`repro.campaign.gate`) can fit and compare
residuals without re-running anything.

Three addressing forms resolve through :func:`resolve_target`:

* a bare id from :data:`TARGETS` (``"theorem1"``, ``"theorem2"``,
  ``"cb"``, ``"demo"``, ``"dist"``, ``"request"``) — the builtins plus
  anything registered through :func:`register_target`;
* ``"experiment:TH1"`` — run that CLI experiment's whole table per
  point (the point's parameters are ignored beyond the seed);
* ``"chain:bsp-on-logp-on-network"`` — run the named Stack chain on the
  demo programs, ``p``/``topology`` drawn from the point.

:func:`register_target` is the public extension point: register a
callable under a bare id and any :class:`~repro.campaign.spec.
CampaignSpec` (or the service) can address it by name.  One caveat for
user-registered targets: campaign *worker processes* import this module
fresh, so a target registered only in the parent is visible to the
serial path (``workers<=1``) and the service, not to process workers —
put registrations in an importable module if you need the pool.

Targets run inside worker processes, so they import lazily, take only
JSON-serializable input, and must be deterministic in the point (that is
what makes cached records bit-identical across reruns).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ParameterError

__all__ = ["TARGETS", "register_target", "resolve_target", "run_point"]

#: Bare target ids -> runner callables.  Builtins self-register below
#: via :func:`register_target`; ``experiment:<ID>`` and ``chain:<spec>``
#: are resolved dynamically by :func:`resolve_target`.
TARGETS: dict[str, Callable[[dict], dict]] = {}


def register_target(
    name: str,
    fn: Callable[..., dict] | None = None,
    *,
    replace: bool = False,
) -> Callable:
    """Register ``fn`` as the campaign target addressed by ``name``.

    The target callable takes one grid **point** (a plain dict) plus an
    optional ``obs=`` keyword and returns one JSON-serializable record::

        from repro.campaign import register_target

        @register_target("square")
        def square(point, obs=None):
            x = int(point.get("x", 0))
            return {"x": x, "y": x * x}

    Usable directly (``register_target("square", square)``) or as a
    decorator, returning ``fn`` unchanged either way.  Names must be
    non-empty and must not contain ``":"`` — the colon namespace is
    reserved for the dynamic ``experiment:<ID>`` / ``chain:<spec>``
    forms.  Registering an already-taken name raises
    :class:`~repro.errors.ParameterError` unless ``replace=True``.
    """
    if fn is None:
        return lambda f: register_target(name, f, replace=replace)
    if not isinstance(name, str) or not name.strip():
        raise ParameterError(
            f"target name must be a non-empty string, got {name!r}"
        )
    if ":" in name:
        raise ParameterError(
            f"target name {name!r} may not contain ':' (reserved for the "
            f"experiment:<ID> and chain:<spec> forms)"
        )
    if not callable(fn):
        raise ParameterError(
            f"target {name!r} must be callable, got {type(fn).__name__}"
        )
    if name in TARGETS and not replace:
        raise ParameterError(
            f"target {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    TARGETS[name] = fn
    return fn


def _logp_params(point: dict):
    from repro.models.params import LogPParams

    return LogPParams(
        p=int(point.get("p", 16)),
        L=int(point.get("L", 8)),
        o=int(point.get("o", 1)),
        G=int(point.get("G", 2)),
    )


def _target_theorem1(point: dict, obs=None) -> dict:
    """One Theorem-1 run: LogP kernel on a BSP machine with ``g = gs*G``,
    ``l = ls*L``; the record is the shared ``as_row`` projection plus
    the grid coordinates and the full cost-check block."""
    from repro.core.logp_on_bsp import simulate_logp_on_bsp
    from repro.models.params import BSPParams
    from repro.obs import CostModelCheck
    from repro.programs import (
        logp_alltoall_program,
        logp_broadcast_program,
        logp_ring_program,
        logp_sum_program,
    )

    kernels = {
        "sum": logp_sum_program,
        "ring": logp_ring_program,
        "alltoall": logp_alltoall_program,
        "broadcast": logp_broadcast_program,
    }
    kernel = str(point.get("kernel", "alltoall"))
    if kernel not in kernels:
        raise ParameterError(f"theorem1: unknown kernel {kernel!r}")
    logp = _logp_params(point)
    bsp = BSPParams(
        p=logp.p,
        g=logp.G * int(point.get("gs", 1)),
        l=logp.L * int(point.get("ls", 1)),
    )
    rep = simulate_logp_on_bsp(logp, kernels[kernel](), bsp_params=bsp, obs=obs)
    check = CostModelCheck.check(rep)
    return {
        "kernel": kernel,
        "p": logp.p,
        "g": bsp.g,
        "l": bsp.l,
        "capacity": logp.capacity,
        **rep.as_row(),
        "cost_check": check.as_dict(),
    }


def _target_theorem2(point: dict, obs=None) -> dict:
    """One Theorem-2 run: a balanced ``h``-relation through the Section
    4.2 deterministic protocol, with the measured slowdown checked as a
    ``factor`` residual against the paper's ``S(L, G, p, h)``."""
    from repro.core.det_routing import measure_det_routing
    from repro.models.cost import slowdown_S, t_route_small
    from repro.obs.check import CostCheckReport
    from repro.routing.workloads import balanced_h_relation

    params = _logp_params(point)
    h = int(point.get("h", 4))
    seed = int(point.get("seed", 0))
    m = measure_det_routing(params, balanced_h_relation(params.p, h, seed=seed))
    ideal = t_route_small(h, params)
    observed = m.total_time / max(1, params.G * h + params.L)
    predicted = slowdown_S(params, h)
    check = CostCheckReport(model=f"Theorem 2 (p={params.p}, h={h})")
    check.add("slowdown vs predicted S", observed, predicted, "factor")
    check.add("T total >= 2o+G(h-1)+L", -m.total_time, -ideal, "upper")
    return {
        "p": params.p,
        "h": h,
        "h_discovered": m.h,
        "scheme": m.outcomes[0].sort_scheme,
        "total_time": m.total_time,
        "t_sort": m.phase_time("sorted") - m.phase_time("r_known"),
        "t_cycles": m.phase_time("done") - m.phase_time("s_known"),
        "ideal": ideal,
        "observed_slowdown": round(observed, 6),
        "predicted_slowdown": round(predicted, 6),
        "cost_check": check.as_dict(),
    }


def _target_cb(point: dict, obs=None) -> dict:
    """One Combine-and-Broadcast run checked against Propositions 1/2."""
    import operator

    from repro.core.cb import measure_cb
    from repro.models.cost import cb_time_lower, cb_time_upper
    from repro.obs.check import CostCheckReport

    params = _logp_params(point)
    m = measure_cb(params, [1] * params.p, operator.add, op_cost=0)
    lower = cb_time_lower(params)
    upper = cb_time_upper(params)
    check = CostCheckReport(model=f"CB (p={params.p}, L={params.L}, G={params.G})")
    check.add("T_CB >= Prop1 lower", -m.t_cb, -lower, "upper")
    check.add("T_CB <= paper upper", m.t_cb, upper, "upper")
    return {
        "p": params.p,
        "L": params.L,
        "G": params.G,
        "capacity": params.capacity,
        "t_cb": m.t_cb,
        "lower": lower,
        "upper": upper,
        "cost_check": check.as_dict(),
    }


def _target_demo(point: dict, obs=None) -> dict:
    """Deterministic micro-target for tests, docs, and the smoke make
    target: squares ``x``; ``mode`` forces the failure paths the pool
    must isolate (``fail`` raises, ``crash`` kills the worker process,
    ``timeout`` sleeps past any reasonable per-point budget)."""
    mode = str(point.get("mode", "ok"))
    if mode == "fail":
        raise RuntimeError("demo target asked to fail")
    if mode == "crash":
        import os

        os._exit(17)
    if mode == "timeout":
        import time

        time.sleep(float(point.get("sleep_s", 60.0)))
    x = int(point.get("x", 0))
    return {"x": x, "y": x * x, "seed": point.get("seed", 0)}


def _target_dist(point: dict, obs=None) -> dict:
    """One real-process socket run (:mod:`repro.dist`), audited.

    Point keys: ``program`` (ring/alltoall/pingpong/flood), ``p``,
    ``rounds``, ``seed``, wire-fault rates ``drop``/``dup``/``delay``
    (plus ``max_extra_delay``), and ``kill`` as a ``"pid:superstep"``
    string.  The record keeps only the *deterministic* outcome — final
    states, reference match, audit verdict — never wall-clock or retry
    counts, so cached reruns stay bit-identical even though the wire
    timing differs run to run.
    """
    import tempfile

    from repro.dist import run_dist, run_reference
    from repro.faults.plan import FaultPlan

    program = str(point.get("program", "ring"))
    p = int(point.get("p", 2))
    rounds = int(point.get("rounds", 3))
    seed = int(point.get("seed", 0))
    rates = {
        "drop_rate": float(point.get("drop", 0.0)),
        "dup_rate": float(point.get("dup", 0.0)),
        "delay_rate": float(point.get("delay", 0.0)),
    }
    if rates["delay_rate"]:
        rates["max_extra_delay"] = int(point.get("max_extra_delay", 5))
    crash = None
    kill = str(point.get("kill", "") or "")
    if kill:
        pid_s, _, s_s = kill.partition(":")
        crash = {int(pid_s): int(s_s)}
    plan = None
    if crash or any(rates.values()):
        plan = FaultPlan(seed=seed, crash=crash, **rates)
    log_dir = tempfile.mkdtemp(prefix="repro-dist-pt-")
    kwargs = {"rounds": rounds}
    result = run_dist(program, p, kwargs=kwargs, plan=plan, log_dir=log_dir)
    report = result.analyze()
    expected = run_reference(program, p, kwargs)
    return {
        "program": program,
        "p": p,
        "rounds": rounds,
        "seed": seed,
        "kill": kill,
        **{k: v for k, v in point.items() if k in ("drop", "dup", "delay")},
        "states": result.results,
        "reference_match": result.results == expected,
        "audit_clean": report["clean"],
        "violations": report["protocol_violations"] + report["model_violations"],
    }


def _target_experiment(exp_id: str) -> Callable[[dict], dict]:
    def run(point: dict, obs=None) -> dict:
        from repro.experiments import EXPERIMENTS

        entry = EXPERIMENTS.get(exp_id)
        if entry is None:
            raise ParameterError(f"experiment:{exp_id}: unknown experiment id")
        table = entry[1](obs=obs)
        return table.as_json()

    return run


def _target_request(point: dict, obs=None) -> dict:
    """One :class:`~repro.engine.request.RunRequest` point: parse the
    request document, build its Stack through the one shared assembly
    path, run it, and record the shared ``as_row`` projection plus the
    cost-check block.  This is the compute path behind
    :class:`~repro.service.SimulationService` misses, and works as a
    plain campaign target too (grid points *are* request documents).

    When the request sets ``metrics``, the run carries its own
    :class:`~repro.obs.Observation` and the registry snapshot is
    embedded in the record — that flag is part of the request's cache
    key, so metrics-bearing records never alias bare ones.
    """
    from repro.engine.request import RunRequest, build_stack
    from repro.obs import CostModelCheck

    req = RunRequest.coerce(point)
    if req.metrics and obs is None:
        from repro.obs import Observation

        obs = Observation()
    stack = build_stack(req)
    result = stack.run(obs=obs)
    row = result.as_row() if hasattr(result, "as_row") else {}
    record = {"request": req.to_dict(), "chain": stack.describe(), **row}
    try:
        record["cost_check"] = CostModelCheck.check(result).as_dict()
    except TypeError:
        pass
    if req.metrics and obs is not None:
        record["metrics"] = obs.metrics.as_dict()
    return record


def _target_workload(point: dict, obs=None) -> dict:
    """One :mod:`repro.workloads` registry point: resolve the entry,
    run it end-to-end through the request path, fold its analytic cost
    model into the ledger check, and validate reference output.

    Point keys: ``workload`` (registry name, required), ``p``, ``seed``,
    optional ``chain`` (defaults to the entry's native model) and
    ``kernel``, plus the entry's own parameter axes (``n``,
    ``keys_per_proc``, ...).  Grid points the entry does not support
    (wrong divisibility, non-power-of-two ``p``, ...) come back as
    ``{"skipped": ...}`` records instead of failures, so dense cartesian
    grids can sweep sparse valid regions."""
    from repro.workloads import get, run_workload

    name = str(point.get("workload", ""))
    w = get(name)  # raises with the known names on a miss
    p = int(point.get("p", w.defaults["p"]))
    seed = int(point.get("seed", 0))
    reserved = ("workload", "p", "seed", "chain", "kernel")
    params = {k: v for k, v in point.items() if k not in reserved}
    merged = {k: v for k, v in w.merged(params).items() if k != "seed"}
    base = {"workload": name, "p": p, "seed": seed, **merged}
    if w.supports is not None and not w.supports(p, merged):
        return {**base, "skipped": "unsupported grid point"}
    run = run_workload(
        name,
        p=p,
        seed=seed,
        params=params,
        chain=point.get("chain"),
        kernel=point.get("kernel"),
        obs=obs,
    )
    record = run.as_record()
    record.pop("request", None)  # the point already names the coordinates
    return {**base, **record}


def _target_chain(chain: str) -> Callable[[dict], dict]:
    def run(point: dict, obs=None) -> dict:
        from repro.engine.request import DEFAULT_TOPOLOGY, RunRequest
        from repro.obs import CostModelCheck

        req = RunRequest(
            chain=chain,
            p=int(point.get("p", 8)),
            topology=str(point.get("topology", DEFAULT_TOPOLOGY)),
            seed=int(point.get("seed", 0)),
        )
        from repro.engine.stack import Stack

        stack = Stack.from_request(req)
        result = stack.run(obs=obs)
        record = {"chain": stack.describe(), **result.as_row()}
        try:
            record["cost_check"] = CostModelCheck.check(result).as_dict()
        except TypeError:
            pass
        return record

    return run


register_target("theorem1", _target_theorem1)
register_target("theorem2", _target_theorem2)
register_target("cb", _target_cb)
register_target("demo", _target_demo)
register_target("dist", _target_dist)
register_target("request", _target_request)
register_target("workload", _target_workload)


def resolve_target(name: str) -> Callable[[dict], dict]:
    """Resolve a spec's ``target`` string to its runner callable."""
    if name.startswith("experiment:"):
        return _target_experiment(name.split(":", 1)[1])
    if name.startswith("chain:"):
        return _target_chain(name.split(":", 1)[1])
    fn = TARGETS.get(name)
    if fn is None:
        known = ", ".join(sorted(TARGETS))
        raise ParameterError(
            f"unknown campaign target {name!r} (known: {known}, "
            f"experiment:<ID>, chain:<spec>; register your own with "
            f"repro.campaign.register_target)"
        )
    return fn


def run_point(target: str, point: dict, obs=None) -> dict:
    """Resolve and run one point (the serial path and the CLI reuse).

    ``obs`` threads an :class:`~repro.obs.Observation` into targets that
    support one — the CLI's ``--metrics``/``--trace`` path.  Campaign
    workers always pass ``None``: per-point observation would entangle
    records with registry state and break their bit-identical caching.
    """
    return resolve_target(target)(point, obs=obs)
