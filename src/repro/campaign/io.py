"""Schema-versioned JSON artifacts: one emitter for every result file.

Benchmarks, gate baselines, and campaign summaries used to write ad-hoc
JSON with no provenance; every file this module writes carries a
``schema`` stamp — ``{"name": <kind>, "version": <int>}`` — so readers
can validate what they are loading and migrations can bump versions per
kind instead of guessing from file shape.

``dump_json(path, kind, payload)`` wraps the payload::

    {"schema": {"name": kind, "version": 1}, ...payload...}

``load_json(path, kind=...)`` validates the stamp (tolerating legacy
stamp-less files when ``allow_legacy=True``, for committed artifacts
that predate this module) and returns the full document.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["SCHEMA_VERSION", "dump_json", "load_json"]

SCHEMA_VERSION = 1


def dump_json(
    path: str | Path,
    kind: str,
    payload: dict,
    *,
    version: int = SCHEMA_VERSION,
    indent: int = 2,
) -> Path:
    """Write ``payload`` under a schema stamp; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"schema": {"name": kind, "version": version}}
    doc.update({k: v for k, v in payload.items() if k != "schema"})
    path.write_text(json.dumps(doc, indent=indent, default=str) + "\n")
    return path


def load_json(
    path: str | Path,
    *,
    kind: str | None = None,
    allow_legacy: bool = False,
    max_version: int = SCHEMA_VERSION,
) -> dict:
    """Read a schema-stamped document, validating ``kind`` when given.

    ``max_version`` is the newest schema version the caller understands;
    kinds that migrated past the module-wide default pass their own
    ceiling (e.g. the kernel benchmark's per-kernel v2 layout).
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    schema = doc.get("schema")
    if schema is None:
        if allow_legacy:
            return doc
        raise ValueError(f"{path}: missing schema stamp (expected kind {kind!r})")
    if kind is not None and schema.get("name") != kind:
        raise ValueError(
            f"{path}: schema kind {schema.get('name')!r} != expected {kind!r}"
        )
    if schema.get("version", 0) > max_version:
        raise ValueError(
            f"{path}: schema version {schema.get('version')} is newer than "
            f"this reader ({max_version})"
        )
    return doc
