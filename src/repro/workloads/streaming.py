"""Pseudo-streaming supersteps: bounded fast memory as a transformer.

Buurlage et al. (arXiv:1608.07200) model accelerator-shaped machines
where each processor's *fast* memory holds far less than an arbitrary
``h``-relation: a BSP superstep whose ``h`` exceeds the fast-memory
budget must be *streamed* — split into rounds, each moving at most a
chunk of the relation, with a barrier between rounds.

:func:`pseudo_stream` implements that as a **program transformer**: it
wraps any inbox-order-insensitive BSP program and replaces every
original superstep boundary with ``rounds = ceil(h_bound / chunk)``
chunked boundaries.  The wrapped program is driven through a proxy
:class:`~repro.bsp.program.BSPContext`; ``Compute`` charges pass
through, ``Send``s are buffered and released at most ``chunk`` per
round, and every message received during the rounds of one original
boundary is accumulated and delivered to the inner program at its
original superstep index — so the inner program cannot tell it is being
streamed (it only ever sees whole supersteps), and results are
bit-identical to the unstreamed run.

``h_bound`` must be a data-independent per-processor bound on the
original program's ``h_send`` per superstep (all processors must agree
on the round count — it is the analytic ``h`` bound of the workload,
e.g. ``p - 1`` for an all-gather).  The transformer *proves* the bound
at runtime: a processor buffering more than ``rounds·chunk`` sends
raises :class:`~repro.errors.ProgramError` instead of silently
overflowing its fast memory.

The analytic superstep-count bound (checked exactly by the streamed
workloads' cost models)::

    streamed = (base_supersteps - trailing) * ceil(h_bound / chunk) + trailing

where ``trailing`` is 1 if the base program ends with a charged drain
row after its last Sync (work but no communication), else 0 — drain
rows move no data, so streaming never splits them.
"""

from __future__ import annotations

from repro.errors import ProgramError
from repro.workloads.registry import Workload, register

__all__ = [
    "pseudo_stream",
    "stream_rounds",
    "streamed_supersteps",
    "register_builtin_streaming",
    "streaming_bound_study",
]


def stream_rounds(h_bound: int, chunk: int) -> int:
    """Rounds one original boundary expands into: ``ceil(h_bound/chunk)``
    (at least 1 — a superstep with no data still needs its barrier)."""
    if chunk < 1:
        raise ProgramError(f"pseudo_stream needs chunk >= 1, got {chunk}")
    return max(1, -(-int(h_bound) // int(chunk)))


def streamed_supersteps(base: int, trailing: int, h_bound: int, chunk: int) -> int:
    """The analytic superstep count of the streamed program."""
    return (base - trailing) * stream_rounds(h_bound, chunk) + trailing


def pseudo_stream(base_program, chunk: int, h_bound: int):
    """Wrap ``base_program`` so every superstep moves at most ``chunk``
    messages per processor (see module docstring).

    The base program must be insensitive to inbox *ordering* within a
    superstep (e.g. it sorts or indexes received payloads by source) —
    streaming delivers the same per-superstep message multiset,
    interleaved by round.
    """
    from repro.bsp.program import BSPContext, Compute, Send, Sync

    rounds = stream_rounds(h_bound, chunk)

    def prog(ctx: BSPContext):
        inner = BSPContext(ctx.pid, ctx.p)
        gen = base_program(inner)
        step = 0
        try:
            item = next(gen)
            while True:
                # Local phase of one inner superstep: pass Computes
                # through, buffer Sends until the inner program Syncs.
                sends: list[Send] = []
                while not isinstance(item, Sync):
                    if isinstance(item, Compute):
                        yield item
                    elif isinstance(item, Send):
                        sends.append(item)
                    else:
                        raise ProgramError(
                            f"pseudo_stream: unknown instruction {item!r}"
                        )
                    item = gen.send(None)
                if len(sends) > rounds * chunk:
                    raise ProgramError(
                        f"pseudo_stream: processor {ctx.pid} buffered "
                        f"{len(sends)} sends in one superstep, exceeding "
                        f"rounds·chunk = {rounds}·{chunk} — h_bound "
                        f"{h_bound} is not a valid per-superstep bound"
                    )
                # Stream the boundary: <= chunk sends per round, with a
                # barrier after each; arrivals (from any round — peers
                # run the same round count in lockstep) accumulate until
                # the inner program's next superstep begins.
                buffered = []
                for rnd in range(rounds):
                    for s in sends[rnd * chunk : (rnd + 1) * chunk]:
                        yield s
                    yield Sync()
                    buffered.extend(ctx.recv_all(None))
                step += 1
                inner._begin_superstep(step, buffered)
                item = gen.send(None)
        except StopIteration as stop:
            return stop.value

    return prog


# -- streamed workload entries ----------------------------------------


def _stream_sample_sort_factory(p, seed, keys_per_proc=32, chunk=8, key_range=1 << 16):
    from repro.programs import bsp_sample_sort_unit_program

    base = bsp_sample_sort_unit_program(keys_per_proc, key_range=key_range, seed=seed)
    return pseudo_stream(base, chunk, _sample_sort_h_bound(p, keys_per_proc))


def _sample_sort_h_bound(p: int, r: int) -> int:
    """Data-independent per-processor h_send bound for the word-accurate
    sample sort: the root's splitter scatter ``(p-1)²``, the ``p``
    samples, or the full local block ``r`` leaving in the exchange."""
    return max(p, (p - 1) ** 2, r)


def _stream_sample_sort_cost(result, p, params):
    r, chunk = int(params["keys_per_proc"]), int(params["chunk"])
    predicted = streamed_supersteps(4, 1, _sample_sort_h_bound(p, r), chunk)
    max_send = max((rec.h_send for rec in result.ledger), default=0)
    return [
        ("supersteps == 3·rounds + 1", result.num_supersteps, predicted, "exact"),
        ("every h_send <= chunk (fast-memory bound)", max_send, chunk, "upper"),
    ]


def _stream_sample_sort_validate(result, p, params):
    from repro.programs import sorted_input_keys

    expected = sorted_input_keys(
        p, int(params["keys_per_proc"]), int(params["key_range"]), int(params["seed"])
    )
    got = [k for pid in range(p) for k in result.results[pid]]
    assert got == expected, "streamed sample sort output is not the sorted input"


def _stream_matvec_factory(p, seed, n=16, chunk=2):
    from repro.programs import bsp_matvec_program

    return pseudo_stream(bsp_matvec_program(n, seed=seed), chunk, p - 1)


def _stream_matvec_cost(result, p, params):
    chunk = int(params["chunk"])
    n = int(params["n"])
    predicted = streamed_supersteps(2, 1, p - 1, chunk)
    max_send = max((rec.h_send for rec in result.ledger), default=0)
    return [
        ("supersteps == rounds + 1", result.num_supersteps, predicted, "exact"),
        ("every h_send <= chunk (fast-memory bound)", max_send, chunk, "upper"),
        ("product w == (n/p)·n", result.ledger[-1].w, (n // p) * n, "exact"),
    ]


def _stream_matvec_validate(result, p, params):
    import numpy as np

    from repro.util.rng import make_rng

    n, seed = int(params["n"]), int(params["seed"])
    rows = n // p
    blocks, slices = [], []
    for pid in range(p):
        rng = make_rng(seed * 7919 + pid)
        blocks.append(rng.random((rows, n)))
        slices.append(rng.random(rows))
    x = np.concatenate(slices)
    for pid in range(p):
        expected = [float(v) for v in blocks[pid] @ x]
        assert result.results[pid] == expected, f"streamed matvec mismatch at {pid}"


def register_builtin_streaming() -> None:
    """Register the two streamed workloads (idempotent via replace)."""
    entries = [
        Workload(
            name="stream-sample-sort",
            family="streaming",
            model="bsp",
            description=(
                "Sample sort under a fast-memory budget: every superstep "
                "moves at most `chunk` words per processor."
            ),
            factory=_stream_sample_sort_factory,
            space={"p": (2, 4), "keys_per_proc": (16, 32), "chunk": (4, 8, 16),
                   "key_range": (1 << 16,)},
            quick={"p": (2, 4), "keys_per_proc": (16,), "chunk": (8,)},
            defaults={"p": 4, "keys_per_proc": 32, "chunk": 8,
                      "key_range": 1 << 16},
            cost_model=_stream_sample_sort_cost,
            validate=_stream_sample_sort_validate,
            supports=lambda p, params: p >= 2
            and int(params["keys_per_proc"]) >= p,
        ),
        Workload(
            name="stream-matvec",
            family="streaming",
            model="bsp",
            description=(
                "Matrix-vector product whose all-gather is streamed in "
                "`chunk`-word rounds."
            ),
            factory=_stream_matvec_factory,
            space={"p": (2, 4, 8), "n": (16, 32), "chunk": (1, 2, 4)},
            quick={"p": (4,), "n": (16,), "chunk": (1, 2)},
            defaults={"p": 4, "n": 16, "chunk": 2},
            cost_model=_stream_matvec_cost,
            validate=_stream_matvec_validate,
            supports=lambda p, params: p >= 2 and int(params["n"]) % p == 0,
        ),
    ]
    for w in entries:
        register(w, replace=True)


def streaming_bound_study(seed: int = 0, quick: bool = False) -> dict:
    """Prove the transformer's superstep bound on both streamed
    workloads: for each base/chunk pair, run base and streamed, check
    ``streamed == (base - trailing)·rounds + trailing`` exactly and
    that no streamed superstep exceeds ``chunk`` sends.
    """
    from repro.workloads.registry import run_workload

    cases = [
        ("sample-sort-unit", "stream-sample-sort", 4,
         {"p": 4, "keys_per_proc": 16, "chunks": (4, 8)},
         lambda p, params: _sample_sort_h_bound(p, int(params["keys_per_proc"]))),
        ("matvec", "stream-matvec", 2,
         {"p": 4, "n": 16, "chunks": (1, 2)},
         lambda p, params: p - 1),
    ]
    rows = []
    for base_name, stream_name, base_steps, cfg, h_bound_of in cases:
        p = cfg["p"]
        base_params = {k: v for k, v in cfg.items() if k not in ("p", "chunks")}
        base = run_workload(base_name, p=p, seed=seed, params=base_params)
        base.report.assert_ok()
        assert base.result.num_supersteps == base_steps, (
            base_name, base.result.num_supersteps)
        chunks = cfg["chunks"][:1] if quick else cfg["chunks"]
        for chunk in chunks:
            streamed = run_workload(
                stream_name, p=p, seed=seed, params={**base_params, "chunk": chunk}
            )
            streamed.report.assert_ok()
            h_bound = h_bound_of(p, base_params)
            predicted = streamed_supersteps(base_steps, 1, h_bound, chunk)
            observed = streamed.result.num_supersteps
            max_send = max(rec.h_send for rec in streamed.result.ledger)
            assert observed == predicted, (stream_name, chunk, observed, predicted)
            assert max_send <= chunk, (stream_name, chunk, max_send)
            rows.append({
                "base": base_name,
                "streamed": stream_name,
                "p": p,
                "chunk": int(chunk),
                "h_bound": int(h_bound),
                "base_supersteps": base_steps,
                "streamed_supersteps": int(observed),
                "predicted_supersteps": int(predicted),
                "max_h_send": int(max_send),
                "bound_holds": True,
            })
    return {"study": "streaming-bound", "seed": seed, "rows": rows}
