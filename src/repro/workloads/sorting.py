"""The sorting-regime family: sample sort vs bitonic vs Columnsort.

Gerbessiotis & Siniolakis (arXiv:1408.6729) study when one-round
sample sorting beats multi-round fixed-schedule sorters as ``n/p``
varies.  The three word-accurate sorters in
:mod:`repro.programs.bsp_sorting` make the regimes measurable on the
BSP cost ledger directly:

* **sample-sort-unit** — 4 supersteps always, but a ``p²``-word sample
  gather and ``(p-1)²``-word splitter scatter: wins once ``r = n/p``
  dwarfs ``p²``.
* **bitonic-sort** — ``R = log2(p)(log2(p)+1)/2`` rounds, each an exact
  ``r``-relation, no ``p²`` term: wins at small ``r`` where sample
  sort's overhead dominates.
* **columnsort** — 4 fixed ``~r``-relations, valid only for
  ``r >= 2(p-1)²`` — asymptotically between the two.

:func:`sorting_regime_study` sweeps ``r`` at fixed ``p`` and reports
the measured **crossover point** — the smallest ``r`` where sample sort
is no more expensive than bitonic — next to the analytic prediction
from the closed-form costs.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, clog2, register

__all__ = [
    "register_builtin_sorting",
    "sorting_regime_study",
    "bitonic_cost_closed_form",
    "sample_unit_cost_closed_form",
]


def _sort_cost(k: int) -> int:
    return k * max(1, int(k).bit_length())


def _bitonic_rounds(p: int) -> int:
    return clog2(p) * (clog2(p) + 1) // 2


def bitonic_cost_closed_form(r: int, p: int, g: int, l: int) -> int:
    """Exact total BSP cost of ``bsp_bitonic_sort_program``: initial
    local sort, then ``R`` rounds of (exact ``r``-relation + ``2r``
    merge-split work), with the last merge as the trailing drain row."""
    R = _bitonic_rounds(p)
    return _sort_cost(r) + 2 * r * R + g * r * R + (R + 1) * l


def sample_unit_cost_closed_form(r: int, p: int, g: int, l: int) -> int:
    """Expected total cost of ``bsp_sample_sort_unit_program`` with
    balanced buckets (~``r`` keys each): the ``p²`` sample gather and
    ``(p-1)²`` splitter scatter are the terms bitonic never pays."""
    return (
        2 * _sort_cost(r)  # local sort + final merge (balanced)
        + _sort_cost(p * p)  # splitter-pool sort at the root
        + r  # partition scan
        + g * (p * p + (p - 1) ** 2 + r)
        + 4 * l
    )


def _bitonic_factory(p, seed, keys_per_proc=16, key_range=1 << 16):
    from repro.programs import bsp_bitonic_sort_program

    return bsp_bitonic_sort_program(keys_per_proc, key_range=key_range, seed=seed)


def _bitonic_cost(result, p, params):
    r = int(params["keys_per_proc"])
    g, l = result.params.g, result.params.l
    R = _bitonic_rounds(p)
    max_h = max((rec.h for rec in result.ledger), default=0)
    return [
        ("supersteps == R+1", result.num_supersteps, R + 1, "exact"),
        ("max-h messages == R·r", result.total_messages, R * r, "exact"),
        ("max h-relation == r", max_h, r, "exact"),
        ("total cost == closed form", result.total_cost,
         bitonic_cost_closed_form(r, p, g, l), "exact"),
    ]


def _sorted_output_validate(result, p, params):
    from repro.programs import sorted_input_keys

    expected = sorted_input_keys(
        p, int(params["keys_per_proc"]), int(params["key_range"]), int(params["seed"])
    )
    got = [k for pid in range(p) for k in result.results[pid]]
    assert got == expected, "sorter output is not the sorted input"


def _columnsort_factory(p, seed, keys_per_proc=32, key_range=1 << 16):
    from repro.programs import bsp_columnsort_program

    return bsp_columnsort_program(keys_per_proc, key_range=key_range, seed=seed)


def _columnsort_cost(result, p, params):
    r = int(params["keys_per_proc"])
    g, l = result.params.g, result.params.l
    max_h = max((rec.h for rec in result.ledger), default=0)
    upper = 5 * _sort_cost(r) + 4 * g * r + 5 * l
    return [
        ("supersteps == 5", result.num_supersteps, 5, "exact"),
        ("max-h messages <= 4r", result.total_messages, 4 * r, "upper"),
        ("max h-relation <= r", max_h, r, "upper"),
        ("total cost <= 5·sort(r) + 4g·r + 5l", result.total_cost, upper, "upper"),
    ]


def _columnsort_supports(p: int, params: dict) -> bool:
    from repro.sorting.columnsort import columnsort_valid

    return p >= 2 and columnsort_valid(int(params["keys_per_proc"]), p)


def _sample_unit_factory(p, seed, keys_per_proc=32, key_range=1 << 16):
    from repro.programs import bsp_sample_sort_unit_program

    return bsp_sample_sort_unit_program(keys_per_proc, key_range=key_range, seed=seed)


def _sample_unit_cost(result, p, params):
    r = int(params["keys_per_proc"])
    return [
        ("supersteps == 4", result.num_supersteps, 4, "exact"),
        ("sample gather h_recv == p²", result.ledger[0].h_recv, p * p, "exact"),
        ("splitter scatter h_send == (p-1)²",
         result.ledger[1].h_send, (p - 1) ** 2, "exact"),
        ("exchange h <= 2r (regular-sampling bucket bound)",
         result.ledger[2].h, 2 * r, "upper"),
        ("final merge w <= sort(2r)", result.ledger[3].w, _sort_cost(2 * r), "upper"),
    ]


def register_builtin_sorting() -> None:
    """Register the three regime sorters (idempotent via replace)."""
    entries = [
        Workload(
            name="bitonic-sort",
            family="sorting",
            model="bsp",
            description=(
                "Bitonic merge-split sort: log2(p)(log2(p)+1)/2 exact "
                "r-relations; the small-n/p regime winner."
            ),
            factory=_bitonic_factory,
            space={"p": (2, 4, 8), "keys_per_proc": (4, 8, 16, 32, 64),
                   "key_range": (1 << 16,)},
            quick={"p": (2, 4), "keys_per_proc": (8,)},
            defaults={"p": 4, "keys_per_proc": 16, "key_range": 1 << 16},
            cost_model=_bitonic_cost,
            validate=_sorted_output_validate,
            supports=lambda p, params: p >= 2 and (p & (p - 1)) == 0,
        ),
        Workload(
            name="columnsort",
            family="sorting",
            model="bsp",
            description=(
                "Leighton's Columnsort: 4 fixed ~r-relation permutation "
                "supersteps; valid once r >= 2(p-1)²."
            ),
            factory=_columnsort_factory,
            space={"p": (2, 3, 4), "keys_per_proc": (8, 18, 32, 64),
                   "key_range": (1 << 16,)},
            quick={"p": (2, 3), "keys_per_proc": (8,)},
            defaults={"p": 3, "keys_per_proc": 18, "key_range": 1 << 16},
            cost_model=_columnsort_cost,
            validate=_sorted_output_validate,
            supports=_columnsort_supports,
        ),
        Workload(
            name="sample-sort-unit",
            family="sorting",
            model="bsp",
            description=(
                "Word-accurate direct sample sort: 4 supersteps, p²-word "
                "sample gather; the large-n/p regime winner."
            ),
            factory=_sample_unit_factory,
            space={"p": (2, 4, 8), "keys_per_proc": (8, 16, 32, 64, 128),
                   "key_range": (1 << 16,)},
            quick={"p": (2, 4), "keys_per_proc": (16,)},
            defaults={"p": 4, "keys_per_proc": 32, "key_range": 1 << 16},
            cost_model=_sample_unit_cost,
            validate=_sorted_output_validate,
            supports=lambda p, params: p >= 2 and int(params["keys_per_proc"]) >= p,
        ),
    ]
    for w in entries:
        register(w, replace=True)


def sorting_regime_study(
    p: int = 8,
    keys: tuple = (8, 16, 32, 64, 128, 256),
    seed: int = 0,
    quick: bool = False,
) -> dict:
    """Sweep ``r = keys_per_proc`` at fixed ``p`` over the three sorters
    and report the sample-sort/bitonic cost **crossover**.

    Returns a dict with one row per ``r`` (measured total BSP cost per
    sorter, the per-``r`` winner) plus ``crossover``: the measured and
    analytically predicted smallest ``r`` where sample sort is no more
    expensive than bitonic.  Runs route through
    :func:`~repro.workloads.registry.run_workload`, so every point is a
    real end-to-end request with its cost model checked.
    """
    from repro.engine.request import DEFAULT_PARAMS
    from repro.workloads.registry import get, run_workload

    if quick:
        keys = tuple(keys)[:2]
    g, l = DEFAULT_PARAMS["g"], DEFAULT_PARAMS["l"]
    rows = []
    crossover_measured = None
    crossover_predicted = None
    for r in keys:
        costs: dict[str, int | None] = {}
        for name in ("sample-sort-unit", "bitonic-sort", "columnsort"):
            w = get(name)
            params = {"keys_per_proc": int(r), "key_range": 1 << 16}
            if w.supports is not None and not w.supports(p, params):
                costs[name] = None
                continue
            run = run_workload(name, p=p, seed=seed, params=params)
            run.report.assert_ok()
            costs[name] = int(run.result.total_cost)
        ranked = [(c, n) for n, c in costs.items() if c is not None]
        winner = min(ranked)[1] if ranked else None
        rows.append({"p": p, "keys_per_proc": int(r), **costs, "winner": winner})
        if (
            crossover_measured is None
            and costs.get("sample-sort-unit") is not None
            and costs.get("bitonic-sort") is not None
            and costs["sample-sort-unit"] <= costs["bitonic-sort"]
        ):
            crossover_measured = int(r)
        if (
            crossover_predicted is None
            and sample_unit_cost_closed_form(int(r), p, g, l)
            <= bitonic_cost_closed_form(int(r), p, g, l)
        ):
            crossover_predicted = int(r)
    return {
        "study": "sorting-regimes",
        "p": p,
        "seed": seed,
        "g": g,
        "l": l,
        "rows": rows,
        "crossover": {
            "measured_keys_per_proc": crossover_measured,
            "predicted_keys_per_proc": crossover_predicted,
        },
    }
