"""The iterative-numeric family: analytic scalability-peak curves.

Sokolinsky's BSF model (arXiv:1710.10490) and its applications (Ezhova
& Sokolinsky, arXiv:1710.10835) predict, for iterative master-worker
kernels, a **scalability peak**: total cost ``T(p) = w(n)/p + c(p)``
falls with ``p`` until the communication term ``c(p)`` (growing like
``p``) takes over, so ``T`` is minimized near ``p* = sqrt(w/c')``.

The two kernels in :mod:`repro.programs.bsp_iterative` have fully
closed-form cost ledgers, so this module checks the *entire* measured
cost — not a bound — against the analytic curve, and
:func:`scalability_study` compares the measured argmin over a ``p``
grid with the analytic peak.

Closed forms (``rows = n/p``, ``h2 = 2`` for ``p >= 3`` else 1)::

    jacobi:   T(p) = (iters+1)·rows + p + g·(h2·iters + 2(p-1)) + (iters+2)·l
              supersteps = iters + 2
    gradient: T(p) = 4·iters·rows + iters·p + 2·iters·g·(p-1) + (2·iters+1)·l
              supersteps = 2·iters + 1

Continuous peaks: ``p*_jacobi = sqrt((iters+1)·n / (1+2g))`` and
``p*_gradient = sqrt(4n / (1+2g))`` (iteration count cancels).
"""

from __future__ import annotations

import math

from repro.workloads.registry import Workload, register

__all__ = [
    "register_builtin_numeric",
    "jacobi_cost_closed_form",
    "gradient_cost_closed_form",
    "jacobi_peak",
    "gradient_peak",
    "scalability_study",
]


def _h2(p: int) -> int:
    return 2 if p >= 3 else 1


def jacobi_cost_closed_form(n: int, p: int, iters: int, g: int, l: int) -> int:
    rows = n // p
    return (
        (iters + 1) * rows
        + p
        + g * (_h2(p) * iters + 2 * (p - 1))
        + (iters + 2) * l
    )


def gradient_cost_closed_form(n: int, p: int, iters: int, g: int, l: int) -> int:
    rows = n // p
    return (
        4 * iters * rows
        + iters * p
        + 2 * iters * g * (p - 1)
        + (2 * iters + 1) * l
    )


def jacobi_peak(n: int, iters: int, g: int) -> float:
    """Continuous minimizer of the Jacobi cost curve (``h2 = 2`` regime)."""
    return math.sqrt((iters + 1) * n / (1 + 2 * g))


def gradient_peak(n: int, g: int) -> float:
    """Continuous minimizer of the gradient cost curve (iters cancels)."""
    return math.sqrt(4 * n / (1 + 2 * g))


def _jacobi_factory(p, seed, n=48, iters=4):
    from repro.programs import bsp_jacobi_program

    return bsp_jacobi_program(n, iters, seed=seed)


def _jacobi_cost(result, p, params):
    n, iters = int(params["n"]), int(params["iters"])
    g, l = result.params.g, result.params.l
    msgs = _h2(p) * iters + 1 + (p - 1)
    return [
        ("supersteps == iters+2", result.num_supersteps, iters + 2, "exact"),
        ("max-h messages == h2·iters + p", result.total_messages, msgs, "exact"),
        ("total cost == closed form", result.total_cost,
         jacobi_cost_closed_form(n, p, iters, g, l), "exact"),
    ]


def _jacobi_validate(result, p, params):
    from repro.programs import jacobi_reference

    ref = jacobi_reference(
        int(params["n"]), p, int(params["iters"]), seed=int(params["seed"])
    )
    for pid in range(p):
        assert result.results[pid] == ref[pid], f"jacobi mismatch at {pid}"


def _gradient_factory(p, seed, n=48, iters=3):
    from repro.programs import bsp_gradient_program

    return bsp_gradient_program(n, iters, seed=seed)


def _gradient_cost(result, p, params):
    n, iters = int(params["n"]), int(params["iters"])
    g, l = result.params.g, result.params.l
    return [
        ("supersteps == 2·iters+1", result.num_supersteps, 2 * iters + 1, "exact"),
        ("max-h messages == iters·p", result.total_messages, iters * p, "exact"),
        ("total cost == closed form", result.total_cost,
         gradient_cost_closed_form(n, p, iters, g, l), "exact"),
    ]


def _gradient_validate(result, p, params):
    from repro.programs import gradient_reference

    ref = gradient_reference(
        int(params["n"]), p, int(params["iters"]), seed=int(params["seed"])
    )
    for pid in range(p):
        assert result.results[pid] == ref[pid], f"gradient mismatch at {pid}"


def _divides(p: int, params: dict) -> bool:
    return p >= 2 and int(params["n"]) % p == 0


def register_builtin_numeric() -> None:
    """Register the two iterative-numeric workloads (idempotent)."""
    entries = [
        Workload(
            name="jacobi",
            family="numeric",
            model="bsp",
            description=(
                "1-D Jacobi relaxation with halo exchange; exact "
                "closed-form cost with a scalability peak near "
                "sqrt((iters+1)·n/(1+2g))."
            ),
            factory=_jacobi_factory,
            space={"p": (2, 3, 4, 6, 8, 12, 16, 24), "n": (48, 96),
                   "iters": (2, 4, 8)},
            quick={"p": (2, 4), "n": (48,), "iters": (2,)},
            defaults={"p": 4, "n": 48, "iters": 4},
            cost_model=_jacobi_cost,
            validate=_jacobi_validate,
            supports=_divides,
        ),
        Workload(
            name="gradient",
            family="numeric",
            model="bsp",
            description=(
                "Master-worker steepest descent (BSF shape): fan-in of "
                "partial dot products, fan-out of the step size; peak "
                "near sqrt(4n/(1+2g))."
            ),
            factory=_gradient_factory,
            space={"p": (2, 3, 4, 6, 8, 12, 16, 24), "n": (48, 96),
                   "iters": (2, 3, 6)},
            quick={"p": (2, 4), "n": (48,), "iters": (2,)},
            defaults={"p": 4, "n": 48, "iters": 3},
            cost_model=_gradient_cost,
            validate=_gradient_validate,
            supports=_divides,
        ),
    ]
    for w in entries:
        register(w, replace=True)


def scalability_study(
    n: int = 48,
    iters: int = 4,
    ps: tuple = (2, 3, 4, 6, 8, 12, 16, 24),
    seed: int = 0,
    quick: bool = False,
) -> dict:
    """Measure both kernels' cost curves over ``ps`` and locate the
    scalability peak: the measured argmin must sit at the analytic
    argmin (over the same grid), and every measured cost must equal the
    closed form exactly.
    """
    from repro.engine.request import DEFAULT_PARAMS
    from repro.workloads.registry import run_workload

    if quick:
        ps = tuple(ps)[:3]
    g, l = DEFAULT_PARAMS["g"], DEFAULT_PARAMS["l"]
    out: dict = {"study": "numeric-scalability", "n": n, "iters": iters,
                 "g": g, "l": l, "seed": seed, "kernels": {}}
    for name, closed, peak in (
        ("jacobi", jacobi_cost_closed_form,
         lambda: jacobi_peak(n, iters, g)),
        ("gradient", gradient_cost_closed_form,
         lambda: gradient_peak(n, g)),
    ):
        rows = []
        for p in ps:
            if n % p != 0:
                continue
            run = run_workload(name, p=p, seed=seed,
                               params={"n": n, "iters": iters})
            run.report.assert_ok()
            measured = int(run.result.total_cost)
            predicted = closed(n, p, iters, g, l)
            assert measured == predicted, (name, p, measured, predicted)
            rows.append({"p": int(p), "measured": measured,
                         "predicted": predicted})
        best_measured = min(rows, key=lambda r: r["measured"])["p"]
        best_predicted = min(rows, key=lambda r: r["predicted"])["p"]
        out["kernels"][name] = {
            "rows": rows,
            "peak_measured_p": best_measured,
            "peak_predicted_p": best_predicted,
            "peak_continuous": round(peak(), 3),
            "peaks_agree": best_measured == best_predicted,
        }
    return out
