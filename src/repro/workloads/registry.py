"""The workload registry: declarative, discoverable scenario entries.

A :class:`Workload` bundles everything a scenario needs to run through
the existing infrastructure instead of landing as a one-off script:

* a **program factory** ``factory(p, seed, **params)`` returning the
  program in its model's coroutine dialect;
* a **parameter space** — the full sweep grid (including ``p``), a
  2-ish-point ``quick`` grid for smoke runs, and single-run defaults;
* an **analytic cost model** ``cost_model(result, p, params)`` emitting
  predicted-vs-observed rows (superstep counts, h-relation word counts,
  total-cost bounds) folded into the base
  :class:`~repro.obs.check.CostModelCheck` ledger verification by
  :func:`check_workload`;
* **reference-output validation** ``validate(result, p, params)``
  raising on any wrong answer.

Entries are discoverable via :func:`register` / :func:`get` /
:func:`iter_workloads`, runnable via :func:`run_workload` (which routes
through :class:`~repro.engine.request.RunRequest` and
:func:`~repro.engine.request.build_stack` — the exact path the service
and the campaign ``request`` target use, so "runs locally" and "runs
through the service" are the same property), and sweepable via
:meth:`Workload.spec`, which emits a :class:`~repro.campaign.spec.
CampaignSpec` over the ``workload`` campaign target.

The builtin library registers on package import (see
:mod:`repro.workloads.library`, :mod:`~repro.workloads.sorting`,
:mod:`~repro.workloads.streaming`, :mod:`~repro.workloads.numeric`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.errors import ParameterError

__all__ = [
    "Workload",
    "WorkloadRun",
    "register",
    "get",
    "names",
    "iter_workloads",
    "check_workload",
    "run_workload",
    "clog2",
    "clog3",
]


def clog2(p: int) -> int:
    """Smallest ``t`` with ``2**t >= p`` (0 for ``p <= 1``)."""
    return max(0, (int(p) - 1).bit_length())


def clog3(p: int) -> int:
    """Smallest ``t`` with ``3**t >= p`` (0 for ``p <= 1``)."""
    t, cover = 0, 1
    while cover < p:
        cover *= 3
        t += 1
    return t


#: Residual rows a cost model emits: ``(name, observed, predicted, kind)``
#: with ``kind`` one of the :class:`~repro.obs.check.CostResidual` kinds.
CostRows = "list[tuple[str, float, float, str]]"


@dataclass
class Workload:
    """One registered scenario.

    Fields
    ------
    name:
        Registry key (also the ``RunRequest.workload`` spelling).
    family:
        Grouping label (``"logp-core"``, ``"bsp-core"``, ``"sorting"``,
        ``"streaming"``, ``"numeric"``, ...).
    model:
        Guest model dialect of the factory's programs: ``"bsp"`` or
        ``"logp"``.  Also the default chain :func:`run_workload` uses.
    description:
        One paragraph for ``experiments workloads list/describe``.
    factory:
        ``factory(p, seed, **params) -> program``.
    space:
        Full sweep grid: axis name -> tuple of values.  Must include
        ``"p"``.  Axes beyond ``p`` are the factory's keyword params.
    quick:
        The 2-ish-point smoke grid in the same shape (every axis
        optional; missing axes fall back to ``defaults``).
    defaults:
        Single-run parameter values (must include ``"p"``).
    cost_model:
        Optional ``(result, p, params) -> [(name, obs, pred, kind)]``
        emitting analytic residual rows for a *native* run of ``model``.
    validate:
        Optional ``(result, p, params) -> None``, raising
        ``AssertionError`` on reference-output mismatch.
    supports:
        Optional ``(p, params) -> bool`` predicate marking valid grid
        points (divisibility, power-of-two ``p``, Columnsort's
        ``r >= 2(p-1)^2``, ...).  Unsupported points are *skipped*, not
        failed, by sweeps.
    """

    name: str
    family: str
    model: str
    description: str
    factory: Callable[..., Any]
    space: Mapping[str, tuple]
    quick: Mapping[str, tuple]
    defaults: Mapping[str, Any]
    cost_model: Callable[..., Any] | None = None
    validate: Callable[..., Any] | None = None
    supports: Callable[[int, dict], bool] | None = None
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.model not in ("bsp", "logp"):
            raise ParameterError(
                f"workload {self.name!r}: model must be 'bsp' or 'logp', "
                f"got {self.model!r}"
            )
        if "p" not in self.space:
            raise ParameterError(f"workload {self.name!r}: space must include 'p'")
        if "p" not in self.defaults:
            raise ParameterError(f"workload {self.name!r}: defaults must include 'p'")
        self.space = {k: tuple(v) for k, v in dict(self.space).items()}
        self.quick = {k: tuple(v) for k, v in dict(self.quick).items()}
        self.defaults = dict(self.defaults)
        unknown = set(self.quick) - set(self.space)
        if unknown:
            raise ParameterError(
                f"workload {self.name!r}: quick axes {sorted(unknown)} not in space"
            )

    # -- parameter space ----------------------------------------------

    def merged(self, params: Mapping[str, Any] | None = None) -> dict:
        """Program parameters (defaults minus ``p``, overlaid).  ``seed``
        passes through untouched — cost models and validators need it,
        though it is not a grid axis."""
        out = {k: v for k, v in self.defaults.items() if k != "p"}
        for k, v in (params or {}).items():
            if k == "p":
                continue
            if k == "seed":
                out[k] = int(v)
                continue
            if k not in self.space and k not in self.defaults:
                raise ParameterError(
                    f"workload {self.name!r} has no parameter {k!r} "
                    f"(axes: {', '.join(sorted(set(self.space) | set(self.defaults)))})"
                )
            out[k] = v
        return out

    def grid(self, quick: bool = False) -> dict[str, tuple]:
        """The sweep grid: ``space`` or the quick subset padded from
        defaults so every space axis is present."""
        if not quick:
            return dict(self.space)
        return {
            axis: self.quick.get(axis, (self.defaults[axis],))
            for axis in self.space
        }

    def points(self, quick: bool = False, seeds=(0,)) -> Iterator[dict]:
        """Supported grid points as plain dicts ``{p, seed, **params}``."""
        import itertools

        grid = self.grid(quick)
        axes = sorted(grid)
        for combo in itertools.product(*(grid[a] for a in axes)):
            point = dict(zip(axes, combo))
            p = int(point["p"])
            params = {k: v for k, v in point.items() if k != "p"}
            if self.supports is not None and not self.supports(p, params):
                continue
            for seed in seeds:
                yield {"p": p, "seed": int(seed), **params}

    def program(self, p: int, seed: int = 0, **params):
        """Build the program for one point (defaults overlaid)."""
        args = {k: v for k, v in self.merged(params).items() if k != "seed"}
        return self.factory(p, seed, **args)

    def spec(self, quick: bool = False, seeds=(0,), **overrides):
        """A :class:`~repro.campaign.spec.CampaignSpec` sweeping this
        workload through the ``workload`` campaign target."""
        from repro.campaign.spec import CampaignSpec

        suffix = "-quick" if quick else ""
        kwargs = {
            "name": f"workload-{self.name}{suffix}",
            "target": "workload",
            "grid": {"workload": (self.name,), **self.grid(quick)},
            "seeds": tuple(int(s) for s in seeds),
            "description": f"{self.family}/{self.name}: {self.description.splitlines()[0]}",
        }
        kwargs.update(overrides)
        return CampaignSpec(**kwargs)

    def describe(self) -> str:
        lines = [
            f"{self.name}  [{self.family}, model={self.model}]",
            f"  {self.description.strip()}",
            "  space: "
            + "  ".join(f"{k}={list(v)}" for k, v in sorted(self.space.items())),
            "  quick: "
            + "  ".join(
                f"{k}={list(v)}" for k, v in sorted(self.grid(quick=True).items())
            ),
            "  defaults: "
            + "  ".join(f"{k}={v}" for k, v in sorted(self.defaults.items())),
            f"  cost model: {'yes' if self.cost_model else 'no'}"
            f"   validator: {'yes' if self.validate else 'no'}",
        ]
        return "\n".join(lines)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload, *, replace: bool = False) -> Workload:
    """Add ``workload`` to the registry (``replace=True`` to overwrite)."""
    if not isinstance(workload, Workload):
        raise ParameterError(
            f"register() takes a Workload, got {type(workload).__name__}"
        )
    if workload.name in _REGISTRY and not replace:
        raise ParameterError(
            f"workload {workload.name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    """Look up a workload by name, raising with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown workload {name!r} (known: {', '.join(sorted(_REGISTRY))})"
        ) from None


def names() -> list[str]:
    return sorted(_REGISTRY)


def iter_workloads(family: str | None = None) -> Iterator[Workload]:
    """Registered workloads in registration order (library order:
    logp-core, bsp-core, sorting, streaming, numeric, then user
    entries), optionally filtered by family."""
    for w in _REGISTRY.values():
        if family is None or w.family == family:
            yield w


def _native_result(workload: Workload, result) -> bool:
    """Is ``result`` the shape the workload's cost model was written
    against (a native run of its own model)?  Cross-simulated runs
    (``bsp-on-logp`` etc.) get only the base ledger checks."""
    if workload.model == "bsp":
        return hasattr(result, "ledger")
    return hasattr(result, "makespan") and not hasattr(result, "ledger")


def check_workload(workload: Workload | str, result, p: int, params=None):
    """Base :class:`~repro.obs.check.CostModelCheck` verification plus
    the workload's analytic rows, as one report."""
    from repro.obs.check import CostCheckReport, CostModelCheck

    w = get(workload) if isinstance(workload, str) else workload
    merged = w.merged(params)
    label = " ".join([f"p={p}"] + [f"{k}={v}" for k, v in sorted(merged.items())])
    report = CostCheckReport(model=f"workload {w.name} ({label})")
    try:
        base = CostModelCheck.check(result)
    except TypeError:
        base = None
    if base is not None:
        for r in base.residuals:
            report.add(r.name, r.observed, r.predicted, r.kind)
    if w.cost_model is not None and _native_result(w, result):
        for name, observed, predicted, kind in w.cost_model(result, p, merged):
            report.add(name, float(observed), float(predicted), kind)
    return report


@dataclass
class WorkloadRun:
    """One :func:`run_workload` outcome."""

    workload: Workload
    request: Any  # the RunRequest that named the run
    result: Any  # the machine result (BSPResult / LogPResult / ...)
    report: Any  # the folded CostCheckReport
    validated: bool  # reference-output validator ran (and passed)

    @property
    def ok(self) -> bool:
        return self.report.ok()

    def as_record(self) -> dict:
        row = self.result.as_row() if hasattr(self.result, "as_row") else {}
        return {
            "workload": self.workload.name,
            "family": self.workload.family,
            "request": self.request.to_dict(),
            **row,
            "validated": self.validated,
            "cost_check": self.report.as_dict(),
        }


def run_workload(
    name: str,
    *,
    p: int | None = None,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    chain: str | None = None,
    kernel: str | None = None,
    obs=None,
    validate: bool = True,
) -> WorkloadRun:
    """Run one workload point end-to-end through the request path.

    Builds the :class:`~repro.engine.request.RunRequest` naming the
    point, assembles its Stack via the one shared
    :func:`~repro.engine.request.build_stack` path (identical to the
    service's miss-compute), runs it, folds the workload's cost model
    into the base check, and validates reference output on native runs.
    """
    from repro.engine.request import RunRequest, build_stack

    w = get(name)
    if p is None:
        p = int(w.defaults["p"])
    merged = w.merged(params)
    args = {k: v for k, v in merged.items() if k != "seed"}
    req = RunRequest(
        chain=chain or w.model,
        workload=w.name,
        args=args,
        p=p,
        seed=seed,
        kernel=kernel,
    )
    result = build_stack(req).run(obs=obs)
    full = {**merged, "seed": int(seed)}
    report = check_workload(w, result, p, full)
    validated = False
    if validate and w.validate is not None and _native_result(w, result):
        w.validate(result, p, full)
        validated = True
    return WorkloadRun(
        workload=w, request=req, result=result, report=report, validated=validated
    )
