"""The ported core library: every ``repro.programs`` entry as a
registered :class:`~repro.workloads.registry.Workload`.

Cost models here are written against *native* runs and pin the counts
the machines actually report: BSP ``num_supersteps`` / ``total_messages``
are per-superstep maxima over processors (the ledger convention), LogP
``total_messages`` is a true message count and ``makespan`` is checked
against the dependency-chain lower bound (as a negated ``upper`` row)
plus a constant-factor band.  Validators recompute reference outputs
exactly — same draws, same float-operation order — so any wrong answer
fails loudly, not statistically.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, clog2, clog3, register

__all__ = ["register_builtin_library"]


def _p2(p: int, params: dict) -> bool:
    return p >= 2


def _pow2(p: int, params: dict) -> bool:
    return p >= 2 and (p & (p - 1)) == 0


# -- LogP core ---------------------------------------------------------


def _ring_factory(p, seed, rounds=1):
    from repro.programs import logp_ring_program

    return logp_ring_program(rounds=rounds)


def _ring_cost(result, p, params):
    lp = result.params
    rounds = int(params["rounds"])
    lower = rounds * p * (lp.L + 2 * lp.o)
    return [
        ("total messages == rounds·p²", result.total_messages, rounds * p * p, "exact"),
        ("makespan >= rounds·p·(L+2o)", -result.makespan, -lower, "upper"),
        ("makespan vs rounds·p·(L+2o)", result.makespan, lower, "factor"),
    ]


def _ring_validate(result, p, params):
    for pid in range(p):
        assert result.results[pid] == pid, (pid, result.results[pid])


def _broadcast_factory(p, seed):
    from repro.programs import logp_broadcast_program

    return logp_broadcast_program()


def _broadcast_cost(result, p, params):
    lp = result.params
    lower = clog2(p) * (lp.L + 2 * lp.o)
    return [
        ("total messages == p-1", result.total_messages, p - 1, "exact"),
        ("makespan >= log2(p)·(L+2o)", -result.makespan, -lower, "upper"),
        ("makespan vs log2(p)·(L+2o)", result.makespan, lower, "factor"),
    ]


def _broadcast_validate(result, p, params):
    for pid in range(p):
        assert result.results[pid] == "tok", (pid, result.results[pid])


def _sum_factory(p, seed):
    from repro.programs import logp_sum_program

    return logp_sum_program()


def _sum_cost(result, p, params):
    lp = result.params
    lower = 2 * clog2(p) * (lp.L + 2 * lp.o)
    return [
        ("total messages == 2(p-1)", result.total_messages, 2 * (p - 1), "exact"),
        ("makespan >= 2·log2(p)·(L+2o)", -result.makespan, -lower, "upper"),
        ("makespan vs 2·log2(p)·(L+2o)", result.makespan, lower, "factor"),
    ]


def _sum_validate(result, p, params):
    total = p * (p - 1) // 2
    for pid in range(p):
        assert result.results[pid] == total, (pid, result.results[pid])


def _alltoall_factory(p, seed):
    from repro.programs import logp_alltoall_program

    return logp_alltoall_program()


def _alltoall_cost(result, p, params):
    lp = result.params
    # One processor must accept p-1 messages paced at G plus the last
    # message's flight: the 2o + G(h-1) + L routing floor with h = p-1.
    lower = 2 * lp.o + lp.G * (p - 2) + lp.L
    return [
        ("total messages == p(p-1)", result.total_messages, p * (p - 1), "exact"),
        ("makespan >= 2o+G(p-2)+L", -result.makespan, -lower, "upper"),
        ("makespan vs 2o+G(p-2)+L", result.makespan, lower, "factor"),
    ]


def _alltoall_validate(result, p, params):
    for pid in range(p):
        expected = [(j, pid) if j != pid else None for j in range(p)]
        assert result.results[pid] == expected, (pid, result.results[pid])


# -- BSP core ----------------------------------------------------------


def _prefix_factory(p, seed):
    from repro.programs import bsp_prefix_program

    return bsp_prefix_program()


def _prefix_cost(result, p, params):
    R = clog2(p)
    max_h = max((rec.h for rec in result.ledger), default=0)
    return [
        ("supersteps == log2(p)+1", result.num_supersteps, R + 1, "exact"),
        ("max-h messages == log2(p)", result.total_messages, R, "exact"),
        ("max h-relation <= 1", max_h, 1, "upper"),
    ]


def _prefix_validate(result, p, params):
    for pid in range(p):
        expected = (pid + 1) * (pid + 2) // 2
        assert result.results[pid] == expected, (pid, result.results[pid])


def _radix_factory(p, seed, keys_per_proc=8, key_bits=8):
    from repro.programs import bsp_radix_sort_program

    return bsp_radix_sort_program(keys_per_proc, key_bits, seed=seed)


def _radix_cost(result, p, params):
    passes = -(-int(params["key_bits"]) // 4)  # RADIX_BITS = 4
    per_pass = 2 * clog2(p) + clog3(p) + 1
    msg_upper = passes * (2 * clog2(p) + 2 * clog3(p) + int(params["keys_per_proc"]))
    return [
        ("supersteps == passes·(2·log2 p + log3 p + 1)",
         result.num_supersteps, passes * per_pass, "exact"),
        ("max-h messages <= collectives + scatter", result.total_messages,
         msg_upper, "upper"),
    ]


def _radix_validate(result, p, params):
    from repro.util.rng import make_rng

    kpp, kb = int(params["keys_per_proc"]), int(params["key_bits"])
    seed = int(params["seed"])
    drawn = []
    for pid in range(p):
        rng = make_rng(seed * 1_000_003 + pid)
        drawn.extend(int(k) for k in rng.integers(0, 1 << kb, size=kpp))
    got = [k for pid in range(p) for k in result.results[pid]]
    assert got == sorted(drawn), "radix-sort output is not the sorted input"


def _sample_sort_factory(p, seed, keys_per_proc=16, key_range=1 << 16):
    from repro.programs import bsp_sample_sort_program

    return bsp_sample_sort_program(keys_per_proc, key_range=key_range, seed=seed)


def _sample_sort_cost(result, p, params):
    return [
        ("supersteps == 4", result.num_supersteps, 4, "exact"),
        ("max-h messages == 2p-1", result.total_messages, 2 * p - 1, "exact"),
        ("sample gather h_recv == p", result.ledger[0].h_recv, p, "exact"),
        ("splitter scatter h_send == p-1", result.ledger[1].h_send, p - 1, "exact"),
    ]


def _sample_sort_validate(result, p, params):
    from repro.programs import sorted_input_keys

    expected = sorted_input_keys(
        p, int(params["keys_per_proc"]), int(params["key_range"]), int(params["seed"])
    )
    got = [k for pid in range(p) for k in result.results[pid]]
    assert got == expected, "sample-sort output is not the sorted input"


def _matvec_factory(p, seed, n=16):
    from repro.programs import bsp_matvec_program

    return bsp_matvec_program(n, seed=seed)


def _matvec_cost(result, p, params):
    n = int(params["n"])
    return [
        ("supersteps == 2", result.num_supersteps, 2, "exact"),
        ("max-h messages == p-1", result.total_messages, p - 1, "exact"),
        ("product w == (n/p)·n", result.ledger[-1].w, (n // p) * n, "exact"),
    ]


def _matvec_validate(result, p, params):
    import numpy as np

    from repro.util.rng import make_rng

    n, seed = int(params["n"]), int(params["seed"])
    rows = n // p
    blocks, slices = [], []
    for pid in range(p):
        rng = make_rng(seed * 7919 + pid)
        blocks.append(rng.random((rows, n)))
        slices.append(rng.random(rows))
    x = np.concatenate(slices)
    for pid in range(p):
        expected = [float(v) for v in blocks[pid] @ x]
        assert result.results[pid] == expected, f"matvec slice mismatch at {pid}"


def _fft_factory(p, seed, points_per_proc=8):
    from repro.programs import bsp_fft_program

    return bsp_fft_program(points_per_proc, seed=seed)


def _fft_cost(result, p, params):
    from repro.util.intmath import ilog2

    n2 = int(params["points_per_proc"])
    w0 = n2 * max(1, ilog2(n2)) + n2  # row FFT + twiddles
    w1 = n2 * max(1, ilog2(p))  # column FFTs ((n2/p) columns of length p)
    return [
        ("supersteps == 2", result.num_supersteps, 2, "exact"),
        ("max-h messages == p-1", result.total_messages, p - 1, "exact"),
        ("row-FFT w == n2·log n2 + n2", result.ledger[0].w, w0, "exact"),
        ("col-FFT w == n2·log p", result.ledger[-1].w, w1, "exact"),
    ]


def _fft_validate(result, p, params):
    import numpy as np

    from repro.programs.bsp_numeric import fft_reference_order
    from repro.util.rng import make_rng

    n2, seed = int(params["points_per_proc"]), int(params["seed"])
    # Cyclic input distribution: processor i's local j-th draw is
    # global point x[j * p + i].
    signal = [0j] * (p * n2)
    for pid in range(p):
        rng = make_rng(seed * 31337 + pid)
        re = rng.random(n2)
        im = rng.random(n2)
        for j, (a, b) in enumerate(zip(re, im)):
            signal[j * p + pid] = complex(a, b)
    got = fft_reference_order([result.results[pid] for pid in range(p)], p, n2)
    expected = np.fft.fft(np.array(signal))
    assert np.allclose(np.array(got), expected, rtol=1e-9, atol=1e-9), (
        "fft output does not match the reference DFT"
    )


def _fft_supports(p: int, params: dict) -> bool:
    n2 = int(params["points_per_proc"])
    return (
        p >= 2
        and (p & (p - 1)) == 0
        and (n2 & (n2 - 1)) == 0
        and n2 % p == 0
    )


def _matmul_factory(p, seed, n=8):
    from repro.programs import bsp_matmul_program

    return bsp_matmul_program(n, seed=seed)


def _matmul_supports(p: int, params: dict) -> bool:
    import math

    q = math.isqrt(p)
    return p >= 4 and q * q == p and int(params["n"]) % q == 0


def _matmul_cost(result, p, params):
    import math

    n = int(params["n"])
    q = math.isqrt(p)
    nb = n // q
    total_w = sum(rec.w for rec in result.ledger)
    return [
        ("supersteps == q+1", result.num_supersteps, q + 1, "exact"),
        ("max-h messages == 2q(q-1)", result.total_messages, 2 * q * (q - 1), "exact"),
        ("total compute == q·(n/q)³", total_w, q * nb**3, "exact"),
    ]


def _matmul_validate(result, p, params):
    import math

    import numpy as np

    from repro.util.rng import make_rng

    n, seed = int(params["n"]), int(params["seed"])
    q = math.isqrt(p)
    nb = n // q
    A = np.zeros((n, n))
    B = np.zeros((n, n))
    for pid in range(p):
        r, c = divmod(pid, q)
        rng = make_rng(seed * 613 + pid)
        A[r * nb : (r + 1) * nb, c * nb : (c + 1) * nb] = rng.random((nb, nb))
        B[r * nb : (r + 1) * nb, c * nb : (c + 1) * nb] = rng.random((nb, nb))
    C = A @ B
    for pid in range(p):
        r, c = divmod(pid, q)
        expected = C[r * nb : (r + 1) * nb, c * nb : (c + 1) * nb]
        assert np.allclose(
            np.array(result.results[pid]), expected, rtol=1e-9, atol=1e-9
        ), f"matmul block mismatch at {pid}"


def register_builtin_library() -> None:
    """Register the ten ported core workloads (idempotent via replace)."""
    entries = [
        Workload(
            name="ring",
            family="logp-core",
            model="logp",
            description="Token rotation around the ring; rounds·p² paced messages.",
            factory=_ring_factory,
            space={"p": (2, 4, 8, 16), "rounds": (1, 2, 4)},
            quick={"p": (2, 4), "rounds": (1,)},
            defaults={"p": 8, "rounds": 2},
            cost_model=_ring_cost,
            validate=_ring_validate,
            supports=_p2,
        ),
        Workload(
            name="broadcast",
            family="logp-core",
            model="logp",
            description="Binomial-tree broadcast from processor 0.",
            factory=_broadcast_factory,
            space={"p": (2, 4, 8, 16, 32)},
            quick={"p": (2, 8)},
            defaults={"p": 8},
            cost_model=_broadcast_cost,
            validate=_broadcast_validate,
            supports=_p2,
        ),
        Workload(
            name="sum",
            family="logp-core",
            model="logp",
            description="Binary-tree reduction to 0 plus binomial re-broadcast.",
            factory=_sum_factory,
            space={"p": (2, 4, 8, 16, 32)},
            quick={"p": (2, 8)},
            defaults={"p": 8},
            cost_model=_sum_cost,
            validate=_sum_validate,
            supports=_p2,
        ),
        Workload(
            name="alltoall",
            family="logp-core",
            model="logp",
            description="Staggered stall-free total exchange (h = p-1).",
            factory=_alltoall_factory,
            space={"p": (2, 4, 8, 16)},
            quick={"p": (2, 4)},
            defaults={"p": 8},
            cost_model=_alltoall_cost,
            validate=_alltoall_validate,
            supports=_p2,
        ),
        Workload(
            name="prefix",
            family="bsp-core",
            model="bsp",
            description="Inclusive prefix sums by recursive doubling.",
            factory=_prefix_factory,
            space={"p": (2, 4, 8, 16, 32)},
            quick={"p": (2, 8)},
            defaults={"p": 8},
            cost_model=_prefix_cost,
            validate=_prefix_validate,
            supports=_p2,
        ),
        Workload(
            name="radix-sort",
            family="bsp-core",
            model="bsp",
            description="LSD radix sort; the paper's irregular-h cautionary kernel.",
            factory=_radix_factory,
            space={"p": (2, 4, 8), "keys_per_proc": (8, 16), "key_bits": (8,)},
            quick={"p": (2, 4), "keys_per_proc": (8,)},
            defaults={"p": 4, "keys_per_proc": 8, "key_bits": 8},
            cost_model=_radix_cost,
            validate=_radix_validate,
            supports=_p2,
        ),
        Workload(
            name="sample-sort",
            family="bsp-core",
            model="bsp",
            description="Direct BSP sample sort (bucket messages), 4 supersteps.",
            factory=_sample_sort_factory,
            space={"p": (2, 4, 8), "keys_per_proc": (16, 32, 64), "key_range": (1 << 16,)},
            quick={"p": (2, 4), "keys_per_proc": (16,)},
            defaults={"p": 4, "keys_per_proc": 16, "key_range": 1 << 16},
            cost_model=_sample_sort_cost,
            validate=_sample_sort_validate,
            supports=_p2,
        ),
        Workload(
            name="matvec",
            family="bsp-core",
            model="bsp",
            description="Row-block dense matrix-vector product; one all-gather.",
            factory=_matvec_factory,
            space={"p": (2, 4, 8), "n": (16, 32)},
            quick={"p": (2, 4), "n": (16,)},
            defaults={"p": 4, "n": 16},
            cost_model=_matvec_cost,
            validate=_matvec_validate,
            supports=lambda p, params: p >= 2 and int(params["n"]) % p == 0,
        ),
        Workload(
            name="fft",
            family="bsp-core",
            model="bsp",
            description="Two-superstep transpose FFT (row FFTs, twiddle, all-to-all, column FFTs).",
            factory=_fft_factory,
            space={"p": (2, 4, 8), "points_per_proc": (8, 16)},
            quick={"p": (2, 4), "points_per_proc": (8,)},
            defaults={"p": 4, "points_per_proc": 8},
            cost_model=_fft_cost,
            validate=_fft_validate,
            supports=_fft_supports,
        ),
        Workload(
            name="matmul",
            family="bsp-core",
            model="bsp",
            description="SUMMA blocked matrix multiply on a q×q grid.",
            factory=_matmul_factory,
            space={"p": (4, 9, 16), "n": (6, 12)},
            quick={"p": (4,), "n": (6, 12)},
            defaults={"p": 4, "n": 8},
            cost_model=_matmul_cost,
            validate=_matmul_validate,
            supports=_matmul_supports,
        ),
    ]
    for w in entries:
        register(w, replace=True)
