"""``repro.workloads`` — the first-class workload library.

A declarative registry of runnable scenarios: each
:class:`~repro.workloads.registry.Workload` bundles a program factory,
its parameter space (full + quick sweep grids), an analytic cost model
folded into :class:`~repro.obs.check.CostModelCheck`, and
reference-output validation.  See ``docs/WORKLOADS.md``.

Entry points::

    from repro.workloads import get, iter_workloads, run_workload

    run = run_workload("jacobi", p=8)      # end-to-end via RunRequest
    run.report.assert_ok()                 # ledger + analytic residuals

    for w in iter_workloads():             # >= 17 builtin entries
        print(w.name, w.family, dict(w.space))

Builtin families register at import: the ten ported core programs
(``logp-core`` / ``bsp-core``), the sorting-regime trio (``sorting``),
the pseudo-streaming transformer pair (``streaming``), and the
iterative-numeric pair (``numeric``).  The studies —
:func:`~repro.workloads.sorting.sorting_regime_study`,
:func:`~repro.workloads.streaming.streaming_bound_study`,
:func:`~repro.workloads.numeric.scalability_study` — drive whole
families and report the paper-level findings (regime crossover,
fast-memory superstep bound, scalability peaks).
"""

from repro.workloads.registry import (
    Workload,
    WorkloadRun,
    check_workload,
    get,
    iter_workloads,
    names,
    register,
    run_workload,
)
from repro.workloads.library import register_builtin_library
from repro.workloads.numeric import register_builtin_numeric, scalability_study
from repro.workloads.sorting import register_builtin_sorting, sorting_regime_study
from repro.workloads.streaming import (
    pseudo_stream,
    register_builtin_streaming,
    streamed_supersteps,
    streaming_bound_study,
)

__all__ = [
    "Workload",
    "WorkloadRun",
    "register",
    "get",
    "names",
    "iter_workloads",
    "check_workload",
    "run_workload",
    "pseudo_stream",
    "streamed_supersteps",
    "sorting_regime_study",
    "streaming_bound_study",
    "scalability_study",
]

register_builtin_library()
register_builtin_sorting()
register_builtin_streaming()
register_builtin_numeric()
