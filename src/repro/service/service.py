"""The service core: cache → dedup → batch → pool, on one asyncio loop.

:class:`SimulationService` turns the campaign machinery into a serving
backend.  One :meth:`~SimulationService.submit` call resolves a
:class:`~repro.engine.request.RunRequest` through three tiers, cheapest
first:

1. **cache hit** — the request's content-addressed key (the same
   :func:`~repro.campaign.spec.point_key` campaign points use) is
   already ``ok`` in the :class:`~repro.campaign.store.ShardedStore`;
   the stored record is returned without touching the pool.
2. **in-flight dedup** — an identical request is being computed right
   now; this submit awaits the same future, so N concurrent identical
   requests cost one computation and produce N responses.
3. **miss** — the request joins the pending batch; the dispatch loop
   coalesces pending misses for a short window, then ships one chunked
   job to the campaign's work-stealing pool
   (:func:`~repro.campaign.pool.run_pool`).  Every finished point is
   appended to the store *as it lands* (crash durability is the
   store's: fsynced JSONL, torn-tail healing on reopen) and its waiters
   are resolved from the pool callback thread via
   ``call_soon_threadsafe``.

The store is sharded by key prefix, so several service processes can
share one cache directory: each sees the others' finished points after
:meth:`~SimulationService.reload`, and concurrent appends land in
per-shard append-only files.

``workers <= 1`` computes misses in-process (no worker process is ever
spawned) — the configuration the hit-path benchmark uses to prove cache
hits never cost a process.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.engine.request import RunRequest
from repro.obs.metrics import Histogram

__all__ = ["ServiceConfig", "ServiceStats", "SimulationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SimulationService`.

    Parameters
    ----------
    store_dir:
        Root of the sharded result store (shared across servers).
    shards:
        Key-prefix shard count; pinned in ``shards.json`` at first open.
    workers:
        Pool processes for miss batches; ``<= 1`` computes in-process.
    timeout_s:
        Per-point timeout forwarded to the pool (``None`` = unbounded).
    batch_window_s:
        How long the dispatcher waits after the first pending miss to
        coalesce more misses into the same pool job.
    max_batch:
        Upper bound on points per pool job.
    """

    store_dir: str
    shards: int = 16
    workers: int = 0
    timeout_s: float | None = 60.0
    batch_window_s: float = 0.01
    max_batch: int = 64


class ServiceStats:
    """Serving counters that must reconcile exactly.

    Invariant (checked by :meth:`reconciled` once the service is idle):
    every request issued is counted under exactly one outcome, so
    ``requests == served == hit + dedup + miss``.  ``failed`` is an
    overlay — responses whose computed entry was not ``ok`` — and
    ``pool_jobs`` / ``pool_points`` count what actually reached the
    pool (at a 100 % hit rate they stay zero).
    """

    OUTCOMES = ("hit", "dedup", "miss")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.requests = 0
        self.served = 0
        self.failed = 0
        self.pool_jobs = 0
        self.pool_points = 0
        self.counts = {o: 0 for o in self.OUTCOMES}
        self.latency = {
            o: Histogram(name=f"service.latency.{o}") for o in self.OUTCOMES
        }

    def record(self, outcome: str, seconds: float, *, ok: bool = True) -> None:
        self.served += 1
        self.counts[outcome] += 1
        if not ok:
            self.failed += 1
        self.latency[outcome].observe(seconds)

    def hit_rate(self) -> float:
        return self.counts["hit"] / self.served if self.served else 0.0

    def reconciled(self) -> bool:
        return self.requests == self.served == sum(self.counts.values())

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "served": self.served,
            "hit": self.counts["hit"],
            "dedup": self.counts["dedup"],
            "miss": self.counts["miss"],
            "failed": self.failed,
            "pool_jobs": self.pool_jobs,
            "pool_points": self.pool_points,
            "hit_rate": round(self.hit_rate(), 6),
            "reconciled": self.reconciled(),
            "latency": {o: h.as_dict() for o, h in self.latency.items()},
        }


class SimulationService:
    """Async request front-end over the campaign cache and pool."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.stats = ServiceStats()
        self.store = None
        self.fingerprint: str | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: list[tuple[str, RunRequest]] = []
        self._kick: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._closing = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "SimulationService":
        from repro.campaign.fingerprint import code_fingerprint
        from repro.campaign.spec import CampaignSpec
        from repro.campaign.store import ShardedStore

        self._loop = asyncio.get_running_loop()
        self.fingerprint = code_fingerprint()
        spec = CampaignSpec(name="service", target="request")
        store = ShardedStore(self.config.store_dir, shards=self.config.shards)
        await asyncio.to_thread(store.open, spec, self.fingerprint)
        self.store = store
        self._kick = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="service-dispatch"
        )
        return self

    async def close(self) -> None:
        self._closing = True
        if self._kick is not None:
            self._kick.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        for key, fut in list(self._inflight.items()):
            if not fut.done():
                fut.set_result(
                    {"key": key, "status": "failed", "record": None,
                     "error": "service closed before this point ran"}
                )
        self._inflight.clear()
        if self.store is not None:
            await asyncio.to_thread(self.store.close)
            self.store = None

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- the serving path ----------------------------------------------

    async def submit(self, request: RunRequest | dict) -> dict:
        """Resolve one request: cache hit, in-flight join, or computed.

        Returns a response dict: ``{ok, key, outcome, status, record,
        error}`` with ``outcome`` one of ``hit | dedup | miss``.
        """
        req = RunRequest.coerce(request)
        key = req.key(self.fingerprint)
        self.stats.requests += 1
        t0 = time.perf_counter()

        entry = self.store.get(key)
        if entry is not None and entry.get("status") == "ok":
            self.stats.record("hit", time.perf_counter() - t0)
            return self._response(key, entry, "hit")

        fut = self._inflight.get(key)
        if fut is not None:
            entry = await asyncio.shield(fut)
            ok = entry.get("status") == "ok"
            self.stats.record("dedup", time.perf_counter() - t0, ok=ok)
            return self._response(key, entry, "dedup")

        fut = self._loop.create_future()
        self._inflight[key] = fut
        self._pending.append((key, req))
        self._kick.set()
        entry = await asyncio.shield(fut)
        ok = entry.get("status") == "ok"
        self.stats.record("miss", time.perf_counter() - t0, ok=ok)
        return self._response(key, entry, "miss")

    def reload(self) -> int:
        """Fold in points other servers appended to the shared store."""
        return self.store.reload()

    @staticmethod
    def _response(key: str, entry: dict, outcome: str) -> dict:
        return {
            "ok": entry.get("status") == "ok",
            "key": key,
            "outcome": outcome,
            "status": entry.get("status"),
            "record": entry.get("record"),
            "error": entry.get("error"),
        }

    # -- miss dispatch -------------------------------------------------

    def _resolve(self, key: str, entry: dict) -> None:
        """Loop-thread continuation for one landed point."""
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result(entry)

    async def _dispatch_loop(self) -> None:
        """Coalesce pending misses and ship them to the pool, batch by
        batch.  One batch runs at a time; misses arriving meanwhile
        queue up for the next one."""
        from repro.campaign.pool import run_pool

        while True:
            await self._kick.wait()
            self._kick.clear()
            if self._closing:
                return
            if self.config.batch_window_s > 0:
                await asyncio.sleep(self.config.batch_window_s)
            batch = self._pending[: self.config.max_batch]
            del self._pending[: len(batch)]
            if self._pending:
                self._kick.set()  # leftovers start the next batch
            if not batch:
                continue
            items = [
                {"key": key, "index": i, "point": req.to_dict()}
                for i, (key, req) in enumerate(batch)
            ]
            self.stats.pool_jobs += 1
            self.stats.pool_points += len(items)
            loop = self._loop

            def on_result(entry: dict) -> None:
                # Pool callback thread: persist first (fsynced, so the
                # point survives a kill), then wake the waiters.
                self.store.append(entry)
                loop.call_soon_threadsafe(self._resolve, entry["key"], entry)

            try:
                await asyncio.to_thread(
                    run_pool,
                    "request",
                    items,
                    workers=max(1, self.config.workers),
                    timeout_s=self.config.timeout_s,
                    on_result=on_result,
                )
            except Exception as exc:  # noqa: BLE001 — keep serving
                error = f"pool dispatch failed: {type(exc).__name__}: {exc}"
                for item in items:
                    self._resolve(
                        item["key"],
                        {"key": item["key"], "index": item["index"],
                         "point": item["point"], "status": "failed",
                         "record": None, "error": error},
                    )
                continue
            for item in items:  # points the pool never reported
                self._resolve(
                    item["key"],
                    {"key": item["key"], "index": item["index"],
                     "point": item["point"], "status": "crashed",
                     "record": None,
                     "error": "pool finished without reporting this point"},
                )
