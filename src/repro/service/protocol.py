"""JSON-lines TCP front door for :class:`~repro.service.SimulationService`.

Wire format: one JSON object per line, both directions.  Requests carry
an ``op`` and an optional ``id`` the response echoes, so a client may
pipeline many ops on one connection and match responses by id::

    -> {"op": "run", "id": 1, "request": {"chain": "bsp-on-logp", "p": 8}}
    <- {"id": 1, "ok": true, "outcome": "miss", "record": {...}, ...}

Ops: ``run`` (resolve one request document), ``stats`` (the service's
reconciling counters), ``reload`` (fold in points other servers
appended to the shared store), ``ping``.  Every ``run`` is handled in
its own task, so concurrent identical requests on one *or many*
connections dedupe inside the service exactly like in-process callers.

Everything is stdlib asyncio; :class:`ServiceClient` is the async
client and :func:`request_sync` the one-shot synchronous wrapper the
CLI client mode uses.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["serve", "ServiceClient", "request_sync"]


def _error(message: str, req_id=None) -> dict:
    return {"id": req_id, "ok": False, "error": message}


async def _handle_connection(service, reader, writer) -> None:
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def reply(doc: dict) -> None:
        async with write_lock:  # run tasks finish out of order
            writer.write(json.dumps(doc).encode() + b"\n")
            await writer.drain()

    async def handle_run(doc: dict) -> None:
        req_id = doc.get("id")
        try:
            response = await service.submit(doc.get("request") or {})
        except Exception as exc:  # noqa: BLE001 — report, keep serving
            await reply(_error(f"{type(exc).__name__}: {exc}", req_id))
            return
        await reply({"id": req_id, **response})

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                await reply(_error(f"bad JSON: {exc}"))
                continue
            op = doc.get("op")
            if op == "run":
                task = asyncio.create_task(handle_run(doc))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            elif op == "stats":
                await reply({"id": doc.get("id"), "ok": True,
                             "stats": service.stats.as_dict()})
            elif op == "reload":
                updated = await asyncio.to_thread(service.reload)
                await reply({"id": doc.get("id"), "ok": True,
                             "reloaded": updated})
            elif op == "ping":
                await reply({"id": doc.get("id"), "ok": True, "pong": True})
            else:
                await reply(_error(f"unknown op {op!r}", doc.get("id")))
    finally:
        for task in tasks:
            task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(service, host: str = "127.0.0.1", port: int = 0):
    """Start the TCP server; returns the ``asyncio.Server`` (inspect
    ``server.sockets[0].getsockname()`` for the bound port)."""

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


class ServiceClient:
    """Pipelined async client: one connection, responses matched by id."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                doc = json.loads(line)
                fut = self._pending.pop(doc.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(doc)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for fut in self._pending.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("server closed"))
            self._pending.clear()

    async def call(self, op: str, **fields) -> dict:
        self._next_id += 1
        req_id = self._next_id
        fut = asyncio.get_running_loop().create_future()
        self._pending[req_id] = fut
        self._writer.write(
            json.dumps({"op": op, "id": req_id, **fields}).encode() + b"\n"
        )
        await self._writer.drain()
        return await fut

    async def run(self, request: dict) -> dict:
        return await self.call("run", request=request)

    async def stats(self) -> dict:
        return (await self.call("stats"))["stats"]

    async def ping(self) -> bool:
        return bool((await self.call("ping")).get("pong"))

    async def reload(self) -> int:
        return int((await self.call("reload")).get("reloaded", 0))

    async def close(self) -> None:
        self._reader_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def request_sync(host: str, port: int, documents: list[dict]) -> list[dict]:
    """Connect, submit every request document concurrently, return the
    responses in order — the CLI client mode in one call."""

    async def _go() -> list[dict]:
        client = await ServiceClient.connect(host, port)
        try:
            return list(
                await asyncio.gather(*(client.run(d) for d in documents))
            )
        finally:
            await client.close()

    return asyncio.run(_go())
