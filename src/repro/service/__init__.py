"""repro.service — simulation-as-a-service over the campaign cache.

The serving tier the ROADMAP's "production-scale" north star asks for:
an asyncio front-end that resolves :class:`~repro.engine.request.
RunRequest` documents through cache → in-flight dedup → batched pool
dispatch, over a key-prefix-sharded result store several servers can
share.  See ``docs/SERVICE.md``.

* :class:`SimulationService` / :class:`ServiceConfig` — the in-process
  core (:mod:`~repro.service.service`);
* :class:`ServiceStats` — reconciling served/deduped/missed counters
  plus per-outcome latency histograms, published into an
  :class:`~repro.obs.Observation` via ``observe_service``;
* :func:`serve` / :class:`ServiceClient` / :func:`request_sync` — the
  JSON-lines TCP protocol (:mod:`~repro.service.protocol`), behind the
  CLI's ``serve`` and ``request`` subcommands.
"""

from repro.service.protocol import ServiceClient, request_sync, serve
from repro.service.service import ServiceConfig, ServiceStats, SimulationService

__all__ = [
    "SimulationService",
    "ServiceConfig",
    "ServiceStats",
    "serve",
    "ServiceClient",
    "request_sync",
]
