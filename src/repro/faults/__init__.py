"""Deterministic fault injection and resilience protocols.

The paper's LogP semantics already quantify over an *adversarial*
substrate (any delivery schedule within ``L``, any acceptance order under
the capacity bound), but every admissible execution still delivers every
message exactly once.  This package deliberately steps outside that
envelope so the machines can be hardened against a substrate that
*misbehaves*:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, immutable description
  of per-message faults (drop / duplicate / extra-delay / reorder) and
  per-processor faults (crash-stop, slow clock).  Fixed seed => identical
  fault pattern, so faulty runs are exactly as reproducible as clean ones.
* :class:`~repro.faults.medium.FaultyMedium` — a drop-in replacement for
  the LogP :class:`~repro.logp.network.Medium` applying a plan's
  message fates at acceptance time.
* :mod:`repro.faults.protocol` — an ack/retransmit layer (timeout +
  exponential backoff + duplicate suppression) that wraps any LogP
  program so it completes correctly over a lossy medium.
* :mod:`repro.faults.invariants` — machine-checkable execution invariants
  (message conservation, monotone clocks, capacity compliance, buffer
  high-water consistency), wired into ``LogPMachine(check_invariants=True)``.

BSP resilience (superstep checkpoint-and-retry) lives in
:class:`repro.bsp.machine.BSPMachine` (``faults=`` / ``comm_retry=``);
faulty-link packet routing lives in
:mod:`repro.networks.routing_sim` (``RoutingConfig.link_fault_rate``).
See ``docs/FAULTS.md`` for the full fault model.
"""

__all__ = [
    "FaultPlan",
    "ActiveFaults",
    "FaultLog",
    "MessageFate",
    "CRASHED",
    "FaultyMedium",
    "reliable",
    "check_execution",
]

# Lazy re-exports: both machine engines import from this package while its
# submodules import from theirs (faults.medium builds on logp.network), so
# eagerly importing everything here would close an import cycle.  PEP 562
# attribute access keeps `from repro.faults import FaultPlan` working
# without forcing the whole dependency graph at package-import time.
_EXPORTS = {
    "FaultPlan": "repro.faults.plan",
    "ActiveFaults": "repro.faults.plan",
    "FaultLog": "repro.faults.plan",
    "MessageFate": "repro.faults.plan",
    "CRASHED": "repro.faults.plan",
    "FaultyMedium": "repro.faults.medium",
    "reliable": "repro.faults.protocol",
    "check_execution": "repro.faults.invariants",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
