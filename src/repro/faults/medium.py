"""A LogP communication medium that misbehaves on cue.

:class:`FaultyMedium` is a drop-in :class:`~repro.logp.network.Medium`
replacement.  At acceptance time each message draws a
:class:`~repro.faults.plan.MessageFate` from the run's
:class:`~repro.faults.plan.ActiveFaults`:

* **drop** — the delivery event still fires (the capacity slot was
  genuinely occupied while the message was "in flight"), but
  :meth:`deliverable` returns ``False`` so the engine frees the slot
  without buffering anything at the destination;
* **duplicate** — a ghost copy (fresh uid, same content) is scheduled at
  another free step; ghosts occupy a delivery step but *not* a capacity
  slot (they are spontaneous network artifacts, not accepted traffic);
* **extra-delay** — the delivery step may exceed the model's
  ``t_acc + L`` deadline by the fate's ``extra_delay``;
* **reorder** — the delivery policy's proposed delay is inverted within
  ``[1, L]``, flipping the arrival order of back-to-back messages.

Everything else — the stalling rule, the capacity constraint for real
messages, one delivery per destination per step — is inherited unchanged,
so a faulty run is still a legal LogP execution *minus* the injected
violations, all of which are recorded in the run's
:class:`~repro.faults.plan.FaultLog`.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import _CLEAN, ActiveFaults
from repro.logp.network import Medium
from repro.logp.scheduler import AcceptancePolicy, DeliveryScheduler
from repro.models.message import Message
from repro.models.params import LogPParams

__all__ = ["FaultyMedium"]


class FaultyMedium(Medium):
    """A :class:`Medium` applying a seeded fault plan's message fates."""

    def __init__(
        self,
        params: LogPParams,
        delivery: DeliveryScheduler,
        acceptance: AcceptancePolicy,
        on_accept: Callable[[int, int], None],
        on_schedule_delivery: Callable[[Message, int], None],
        faults: ActiveFaults,
    ) -> None:
        super().__init__(params, delivery, acceptance, on_accept, on_schedule_delivery)
        self.faults = faults
        self._fates: dict[int, object] = {}
        self._drops: set[int] = set()
        self._ghosts: set[int] = set()

    def _accept(self, sender: int, msg: Message, t: int, stalled_since: int | None) -> None:
        fate = self.faults.fate(msg)
        log = self.faults.log
        if not fate.clean:
            self._fates[msg.uid] = fate
        if fate.drop:
            self._drops.add(msg.uid)
            log.dropped.append((msg.uid, msg.src, msg.dest, t))
        if fate.reorder:
            log.reordered.append(msg.uid)
        if fate.extra_delay:
            log.delayed.append((msg.uid, fate.extra_delay))
        super()._accept(sender, msg, t, stalled_since)
        if fate.duplicate:
            ghost = Message(
                src=msg.src, dest=msg.dest, payload=msg.payload, tag=msg.tag, size=msg.size
            )
            step = self._free_step(msg.dest, t + 1, t, t + self.params.L, overflow=True)
            self._occupied[msg.dest].add(step)
            self._ghosts.add(ghost.uid)
            log.duplicated.append((msg.uid, ghost.uid, msg.dest))
            self._on_schedule(ghost, step)

    def _pick_delivery_step(self, msg: Message, t_acc: int) -> int:
        L = self.params.L
        fate = self._fates.get(msg.uid, _CLEAN)
        delay = self.delivery.propose_delay(msg, t_acc, L)
        delay = min(max(int(delay), 1), L)
        if fate.reorder:
            delay = L + 1 - delay
        if fate.extra_delay:
            target = t_acc + delay + fate.extra_delay
            return self._free_step(
                msg.dest, target, t_acc, target + L, overflow=True
            )
        return self._free_step(msg.dest, t_acc + delay, t_acc, t_acc + L)

    def on_delivered(self, msg: Message, t: int) -> None:
        if msg.uid in self._ghosts:
            # Ghosts never occupied a capacity slot: free only the
            # delivery step, do not touch in-transit counts or pending.
            self._occupied[msg.dest].discard(t)
            return
        super().on_delivered(msg, t)

    def deliverable(self, msg: Message) -> bool:
        return msg.uid not in self._drops
