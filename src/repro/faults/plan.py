"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is an immutable description of how the substrate
misbehaves.  Message-level faults are drawn from one seeded stream per
directed link ``(src, dest)``, indexed by the link's acceptance count, so

* a fixed seed reproduces the exact same fault pattern run after run
  (the engines themselves are deterministic, hence so is the per-link
  acceptance order), and
* a retransmission of a lost message is a *new* submission on the link
  and draws a fresh, independent fate — exactly the property the
  ack/retransmit layer needs to make progress.

Processor-level faults are static maps: ``crash[pid] = t`` (crash-stop;
on the BSP machine ``t`` is a superstep index and the crash is transient
— that superstep's sends are lost once and recovered by the
checkpoint-retry exchange) and ``slow[pid] = s`` (every local busy step
takes ``s`` steps instead — LogP only).

A plan is reusable: each run calls :meth:`FaultPlan.activate` to get a
fresh :class:`ActiveFaults` carrying the per-run RNG streams and the
:class:`FaultLog` ledger of what was actually injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ParameterError
from repro.models.message import Message
from repro.util.rng import derive_seed

__all__ = ["FaultPlan", "ActiveFaults", "FaultLog", "MessageFate", "CRASHED"]


class _Crashed:
    """Singleton result placeholder for crash-stopped processors."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "CRASHED"


CRASHED = _Crashed()


@dataclass(frozen=True)
class MessageFate:
    """The faults one accepted message suffers."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: int = 0
    reorder: bool = False

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.extra_delay or self.reorder)


_CLEAN = MessageFate()


@dataclass
class FaultLog:
    """Ledger of every fault actually injected during one run."""

    #: (uid, src, dest, accept_time)
    dropped: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: (original uid, ghost uid, dest)
    duplicated: list[tuple[int, int, int]] = field(default_factory=list)
    #: (uid, extra steps beyond the [1, L] window)
    delayed: list[tuple[int, int]] = field(default_factory=list)
    #: uids whose proposed delay was inverted
    reordered: list[int] = field(default_factory=list)
    #: (pid, time-or-superstep)
    crashes: list[tuple[int, int]] = field(default_factory=list)
    #: (superstep, messages lost that attempt) — BSP checkpoint-retry
    bsp_lost: list[tuple[int, int]] = field(default_factory=list)

    def ghost_uids(self) -> set[int]:
        return {ghost for _orig, ghost, _d in self.duplicated}

    def dropped_uids(self) -> set[int]:
        return {uid for uid, _s, _d, _t in self.dropped}

    def delayed_uids(self) -> set[int]:
        return {uid for uid, _extra in self.delayed}

    def summary(self) -> dict[str, int]:
        return {
            "dropped": len(self.dropped),
            "duplicated": len(self.duplicated),
            "delayed": len(self.delayed),
            "reordered": len(self.reordered),
            "crashes": len(self.crashes),
            "bsp_lost": sum(n for _s, n in self.bsp_lost),
        }


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded description of substrate misbehaviour.

    Attributes
    ----------
    seed:
        Root seed; all fault decisions derive from it deterministically.
    drop_rate, dup_rate, delay_rate, reorder_rate:
        Per-message probabilities in ``[0, 1]``, drawn independently per
        accepted message from the link's stream.
    max_extra_delay:
        When a message draws a delay fault, it is delivered up to this
        many steps *past* the model's ``t_acc + L`` deadline (uniform in
        ``[1, max_extra_delay]``).  Must be >= 1 when ``delay_rate > 0``.
    crash:
        ``pid -> t``.  LogP: the processor halts at step ``t`` (its
        result becomes :data:`CRASHED`).  BSP: the processor's sends in
        superstep ``t`` are lost on the first delivery attempt
        (transient fail-stop across one exchange).
    slow:
        ``pid -> scale``.  LogP only: every local busy step (``Compute``,
        send/receive overhead) of the processor takes ``scale`` steps.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    max_extra_delay: int = 0
    reorder_rate: float = 0.0
    crash: Mapping[int, int] | None = None
    slow: Mapping[int, int] | None = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(f"FaultPlan requires 0 <= {name} <= 1, got {rate}")
        if self.max_extra_delay < 0:
            raise ParameterError(
                f"FaultPlan requires max_extra_delay >= 0, got {self.max_extra_delay}"
            )
        if self.delay_rate > 0 and self.max_extra_delay < 1:
            raise ParameterError(
                "FaultPlan with delay_rate > 0 needs max_extra_delay >= 1 "
                "(otherwise the delay fault is a silent no-op)"
            )
        for name in ("crash", "slow"):
            mapping = getattr(self, name)
            if mapping is None:
                continue
            for pid, value in mapping.items():
                if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
                    raise ParameterError(f"FaultPlan.{name} keys must be pids, got {pid!r}")
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ParameterError(
                        f"FaultPlan.{name}[{pid}] must be an integer, got {value!r}"
                    )
            if name == "slow" and any(v < 1 for v in mapping.values()):
                raise ParameterError("FaultPlan.slow scales must be >= 1")
            if name == "crash" and any(v < 0 for v in mapping.values()):
                raise ParameterError("FaultPlan.crash times must be >= 0")

    @property
    def message_faults(self) -> bool:
        return bool(self.drop_rate or self.dup_rate or self.delay_rate or self.reorder_rate)

    def activate(self) -> "ActiveFaults":
        """Fresh per-run fault state (streams rewound, empty log)."""
        return ActiveFaults(self)


class ActiveFaults:
    """Per-run realization of a :class:`FaultPlan`.

    Holds the lazily-created per-link RNG streams, the per-attempt BSP
    exchange streams, and the :class:`FaultLog`.  Created via
    :meth:`FaultPlan.activate`; never shared between runs.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.log = FaultLog()
        self._link_rng: dict[tuple[int, int], np.random.Generator] = {}
        self._bsp_rng: dict[tuple[int, int], np.random.Generator] = {}

    # -- LogP message fates --------------------------------------------------

    def fate(self, msg: Message) -> MessageFate:
        """Draw the fate of an accepted message (one draw per acceptance,
        in link-acceptance order — deterministic for a fixed seed)."""
        plan = self.plan
        if not plan.message_faults:
            return _CLEAN
        key = (msg.src, msg.dest)
        rng = self._link_rng.get(key)
        if rng is None:
            rng = self._link_rng[key] = np.random.default_rng(
                derive_seed(plan.seed, "link", msg.src, msg.dest)
            )
        u = rng.random(4)
        # Constant stream consumption per message: the extra-delay width
        # is drawn unconditionally so one fate never shifts the next.
        extra = int(rng.integers(1, plan.max_extra_delay + 1)) if plan.max_extra_delay else 0
        return MessageFate(
            drop=bool(u[0] < plan.drop_rate),
            duplicate=bool(u[1] < plan.dup_rate),
            extra_delay=extra if u[2] < plan.delay_rate else 0,
            reorder=bool(u[3] < plan.reorder_rate),
        )

    # -- BSP exchange fates ----------------------------------------------------

    def bsp_lost(self, src: int, dest: int, superstep: int, attempt: int) -> bool:
        """Whether this message is lost in delivery ``attempt`` of the
        superstep's exchange.  One stream per (superstep, attempt), drawn
        in message order, so retries re-roll independently."""
        plan = self.plan
        if plan.crash and attempt == 0 and plan.crash.get(src) == superstep:
            return True
        if plan.drop_rate <= 0.0:
            return False
        key = (superstep, attempt)
        rng = self._bsp_rng.get(key)
        if rng is None:
            rng = self._bsp_rng[key] = np.random.default_rng(
                derive_seed(plan.seed, "bsp", superstep, attempt)
            )
        return bool(rng.random() < plan.drop_rate)

    # -- processor faults ------------------------------------------------------

    def crash_time(self, pid: int) -> int | None:
        if self.plan.crash is None:
            return None
        return self.plan.crash.get(pid)

    def clock_scale(self, pid: int) -> int:
        if self.plan.slow is None:
            return 1
        return self.plan.slow.get(pid, 1)
