"""Ack/retransmit: a resilient transport for LogP programs.

:func:`reliable` wraps any LogP program in a stop-and-wait
acknowledgement protocol so it completes **correctly and
deterministically** over a :class:`~repro.faults.medium.FaultyMedium`
that drops, duplicates, delays, and reorders messages:

* every application ``Send`` becomes a ``('D', seq, tag, payload)``
  envelope; the sender retransmits on timeout with exponential backoff
  (capped) until the matching ``('A', seq)`` acknowledgement arrives;
* the receiver acknowledges *every* data envelope (including
  retransmissions of data it already has) and suppresses duplicates by
  ``(src, seq)``, so the application sees each message exactly once, in
  first-arrival order;
* after the application program finishes, the wrapper *lingers*
  (:class:`~repro.logp.instructions.Linger`): it keeps re-acknowledging
  late retransmissions until the whole machine is quiescent, which is the
  exact distributed-termination condition — no guessed shutdown timeout.

Guarantees (for ``drop_rate < 1`` and no *permanent* crash of a
communicating peer): every wrapped program terminates with the same
per-processor results as the fault-free run, because retransmissions are
fresh submissions that draw fresh, independent fault fates from the
plan's per-link streams (see :mod:`repro.faults.plan`).  Crash-stop
processors are *not* masked — a receive from a permanently crashed peer
deadlocks, as it must under crash-stop with no failure detector.

The protocol costs time, not correctness: timeouts, acks and
retransmissions inflate the makespan.  ``benchmarks/bench_fault_resilience.py``
measures the slowdown as a function of the fault rate.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import ProtocolError
from repro.logp.instructions import (
    Linger,
    LogPContext,
    LogPProgram,
    Recv,
    Send,
    TryRecv,
)
from repro.models.message import Message

__all__ = ["reliable", "DATA_TAG", "ACK_TAG", "default_timeout"]

#: Tag namespace far above anything application programs use.
DATA_TAG = 1 << 20
ACK_TAG = (1 << 20) + 1


def default_timeout(params) -> int:
    """Retransmission timeout covering one clean round trip: data flight
    (<= L), receiver acquire + ack prepare (~2o + G), ack flight (<= L)."""
    return 2 * (params.L + 2 * params.o + params.G) + 2


class _ProtoState:
    """Per-processor protocol bookkeeping."""

    __slots__ = ("next_seq", "seen", "inbox", "retransmissions")

    def __init__(self) -> None:
        self.next_seq: dict[int, int] = {}
        # (src, seq) pairs already delivered to the application.
        self.seen: set[tuple[int, int]] = set()
        # Fresh application messages awaiting the application's Recv.
        self.inbox: deque[Message] = deque()
        self.retransmissions = 0


def reliable(program: LogPProgram, *, timeout: int | None = None, max_backoff: int = 8):
    """Wrap ``program`` in the ack/retransmit layer.

    Parameters
    ----------
    program:
        Any LogP program (generator function over a
        :class:`~repro.logp.instructions.LogPContext`).
    timeout:
        Base retransmission timeout in steps; defaults to
        :func:`default_timeout` for the machine's parameters.
    max_backoff:
        Cap on the exponential backoff, as a multiple of the base
        timeout.

    Returns a new LogP program.  All processors of a machine must run
    wrapped programs (the protocol's envelopes are not understood by
    unwrapped peers).
    """
    if max_backoff < 1:
        raise ProtocolError(f"reliable() needs max_backoff >= 1, got {max_backoff}")

    def wrapped(ctx: LogPContext):
        base = timeout if timeout is not None else default_timeout(ctx.params)
        if base < 1:
            raise ProtocolError(f"reliable() needs timeout >= 1, got {base}")
        st = _ProtoState()
        inner = program(ctx)
        send_value: Any = None
        result: Any = None
        while True:
            try:
                instr = inner.send(send_value)
            except StopIteration as stop:
                result = stop.value
                break
            if isinstance(instr, Send):
                send_value = yield from _send_reliably(ctx, st, instr, base, max_backoff)
            elif isinstance(instr, Recv):
                send_value = yield from _recv_reliably(ctx, st, blocking=True)
            elif isinstance(instr, TryRecv):
                send_value = yield from _recv_reliably(ctx, st, blocking=False)
            else:
                # Compute / WaitUntil / Linger are purely local: pass through.
                send_value = yield instr
        # Drain phase: our last acks may have been dropped, so peers can
        # still be retransmitting data we already consumed.  Keep
        # re-acknowledging until the machine is quiescent.
        while True:
            msg = yield Linger()
            if msg is None:
                return result
            yield from _handle_envelope(ctx, st, msg)

    return wrapped


def _send_reliably(ctx: LogPContext, st: _ProtoState, instr: Send, base: int, max_backoff: int):
    """Send one application message, retransmitting until acknowledged.
    Returns the acceptance time of the first transmission (what the
    application's ``Send`` would have returned)."""
    seq = st.next_seq.get(instr.dest, 0)
    st.next_seq[instr.dest] = seq + 1
    envelope = ("D", seq, instr.tag, instr.payload)
    wait = base
    accept_time: int | None = None
    while True:
        t_acc = yield Send(instr.dest, envelope, tag=DATA_TAG, size=instr.size)
        if accept_time is None:
            accept_time = t_acc
        else:
            st.retransmissions += 1
        deadline = ctx.clock + wait
        while ctx.clock < deadline:
            msg = yield TryRecv()
            if msg is None:
                continue
            if msg.tag == ACK_TAG:
                if msg.src == instr.dest and msg.payload[1] == seq:
                    return accept_time
                # Stale ack (an earlier retransmission's duplicate): ignore.
                continue
            yield from _handle_envelope(ctx, st, msg)
        # Timeout: back off and retransmit.
        wait = min(wait * 2, base * max_backoff)


def _recv_reliably(ctx: LogPContext, st: _ProtoState, *, blocking: bool):
    """Produce the next fresh application message (or ``None`` for a
    non-blocking poll that found nothing)."""
    if st.inbox:
        return st.inbox.popleft()
    while True:
        msg = yield (Recv() if blocking else TryRecv())
        if msg is None:
            return None  # TryRecv: nothing acquirable right now
        yield from _handle_envelope(ctx, st, msg)
        if st.inbox:
            return st.inbox.popleft()
        # Acquired a duplicate or a stray ack; the application's poll is
        # still unanswered — try again.


def _handle_envelope(ctx: LogPContext, st: _ProtoState, msg: Message):
    """Process one acquired message: ack data (always, even duplicates),
    enqueue fresh application messages, drop stray acks."""
    if msg.tag == ACK_TAG:
        return  # ack for a send already satisfied by a duplicate ack
    if msg.tag != DATA_TAG:
        # Not protocol traffic (mixed machine): hand through verbatim.
        st.inbox.append(msg)
        return
    _kind, seq, app_tag, app_payload = msg.payload
    yield Send(msg.src, ("A", seq), tag=ACK_TAG)
    key = (msg.src, seq)
    if key not in st.seen:
        st.seen.add(key)
        st.inbox.append(
            Message(src=msg.src, dest=ctx.pid, payload=app_payload, tag=app_tag, size=msg.size)
        )
