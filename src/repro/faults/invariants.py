"""Machine-checkable execution invariants for LogP runs.

:func:`check_execution` validates a finished
:class:`~repro.logp.machine.LogPResult` (run with a trace) against the
model rules the engine is supposed to enforce, *plus* the bookkeeping
rules the engine enforces on itself:

* every rule of :meth:`repro.logp.trace.Trace.check_invariants`
  (submission/acquisition gaps ``>= G``, delivery within ``L`` of
  acceptance, per-destination capacity ``<= ceil(L/G)``, one delivery per
  destination per step, no acquisition before delivery);
* **message conservation** — every submitted message is delivered exactly
  once, every delivered message was submitted, every acquisition consumes
  a distinct delivery;
* **monotone clocks** — each processor's submissions and acquisitions
  occur at non-decreasing times, and the global delivery sequence is
  non-decreasing (the event heap never runs backwards);
* **buffer high-water consistency** — the engine-reported per-processor
  high-water mark never exceeds the bound recomputed from the trace's
  delivery/acquisition times.

When the run used a :class:`~repro.faults.plan.FaultPlan`, pass its
:class:`~repro.faults.plan.FaultLog`: violations the plan *deliberately
injected* (dropped messages are never delivered, duplicated ghosts are
delivered without a submission, extra-delayed messages overshoot the
``L`` window) are excused — everything else must still hold, which is
exactly what makes a faulty run trustworthy evidence rather than noise.

``LogPMachine(check_invariants=True)`` wires this in automatically and
raises :class:`~repro.errors.InvariantViolationError` on any violation.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.faults.plan import FaultLog
from repro.logp.trace import TraceViolation, accept_times_from_result

__all__ = ["check_execution"]


def check_execution(result, fault_log: FaultLog | None = None) -> list[TraceViolation]:
    """Validate ``result`` (a :class:`~repro.logp.machine.LogPResult`
    carrying a trace); returns all violations (empty list == clean).

    ``fault_log`` — the run's injected-fault ledger, used to excuse the
    violations the fault plan caused on purpose.
    """
    trace = result.trace
    if trace is None:
        raise ValueError(
            "check_execution needs a trace; run the machine with "
            "record_trace=True (check_invariants=True alone checks "
            "internally but strips the trace from the result)"
        )

    delayed = fault_log.delayed_uids() if fault_log is not None else set()
    ghosts = fault_log.ghost_uids() if fault_log is not None else set()
    dropped = fault_log.dropped_uids() if fault_log is not None else set()

    accept = accept_times_from_result(result)
    violations = [
        v
        for v in trace.check_invariants(accept)
        if not (v.rule == "latency" and v.uid in delayed)
        and not (v.rule == "phantom" and v.uid in ghosts)
    ]

    submitted = {uid for _t, _src, uid in trace.submissions}
    delivered = Counter(uid for _t, _dest, uid in trace.deliveries)

    # -- message conservation ----------------------------------------------
    for uid in sorted(submitted):
        n = delivered.get(uid, 0)
        if n == 0 and uid not in dropped:
            violations.append(
                TraceViolation(
                    "conservation",
                    f"message {uid} submitted but never delivered (and not "
                    f"dropped by the fault plan)",
                    uid=uid,
                )
            )
        elif n > 1:
            violations.append(
                TraceViolation(
                    "conservation", f"message {uid} delivered {n} times", uid=uid
                )
            )
    for uid in sorted(set(delivered) - submitted - ghosts):
        violations.append(
            TraceViolation(
                "conservation",
                f"message {uid} delivered without a submission (and not a "
                f"fault-plan duplicate)",
                uid=uid,
            )
        )
    acquired = Counter(uid for _a, _b, _pid, uid in trace.acquisitions)
    for uid, n in sorted(acquired.items()):
        if n > 1:
            violations.append(
                TraceViolation(
                    "conservation", f"message {uid} acquired {n} times", uid=uid
                )
            )

    # -- monotone clocks ----------------------------------------------------
    # Trace lists are appended in engine-event order, so each processor's
    # sub-sequence is its local execution order: time must never decrease.
    per_src: dict[int, list[int]] = defaultdict(list)
    for t, src, _uid in trace.submissions:
        per_src[src].append(t)
    for src, times in sorted(per_src.items()):
        for a, b in zip(times, times[1:]):
            if b < a:
                violations.append(
                    TraceViolation(
                        "monotone-clock",
                        f"processor {src} submitted at {b} after submitting at {a}",
                    )
                )
    per_pid: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for t_start, t_end, pid, _uid in trace.acquisitions:
        per_pid[pid].append((t_start, t_end))
        if t_end < t_start:
            violations.append(
                TraceViolation(
                    "monotone-clock",
                    f"processor {pid} acquisition ends at {t_end} before its "
                    f"start at {t_start}",
                )
            )
    for pid, spans in sorted(per_pid.items()):
        for (a, _), (b, _) in zip(spans, spans[1:]):
            if b < a:
                violations.append(
                    TraceViolation(
                        "monotone-clock",
                        f"processor {pid} acquired at {b} after acquiring at {a}",
                    )
                )
    for (a, _d1, _u1), (b, _d2, _u2) in zip(trace.deliveries, trace.deliveries[1:]):
        if b < a:
            violations.append(
                TraceViolation(
                    "monotone-clock",
                    f"delivery at {b} processed after delivery at {a} "
                    f"(event heap ran backwards)",
                )
            )
            break

    # -- buffer high-water consistency --------------------------------------
    # Recompute, per destination, the peak number of delivered-but-not-yet-
    # acquired messages.  The engine pops a message from its buffer when the
    # acquisition *starts*, possibly later than the event that triggered it,
    # so the trace-derived peak is an upper bound on the engine's report.
    highwater = getattr(result, "buffer_highwater", None)
    if highwater is not None:
        events: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for t, dest, _uid in trace.deliveries:
            events[dest].append((t, 0))  # +1; ties: deliver before acquire
        acq_start = {uid: t for t, _e, _pid, uid in trace.acquisitions}
        for t, dest, uid in trace.deliveries:
            t_acq = acq_start.get(uid)
            if t_acq is not None:
                events[dest].append((t_acq, 1))  # -1
        for pid, reported in enumerate(highwater):
            evs = sorted(events.get(pid, []))
            peak = count = 0
            for _t, kind in evs:
                count += 1 if kind == 0 else -1
                peak = max(peak, count)
            if reported > peak:
                violations.append(
                    TraceViolation(
                        "buffer-highwater",
                        f"processor {pid} reports buffer high-water {reported} "
                        f"but the trace only supports {peak}",
                    )
                )

    return violations
