"""Machine parameter bundles for BSP and LogP.

The classes validate the structural constraints the paper derives in
Section 2; in particular LogP's ``max{2, o} <= G <= L`` (each inequality is
individually motivated in the paper and individually reproduced in
``tests/logp/test_parameter_constraints.py``).

**Unified keyword spellings** (see docs/ARCHITECTURE.md): both parameter
bundles accept one long spelling per concept — ``processors``, ``gap``,
``latency`` (plus LogP's ``overhead`` and ``word_gap``) — alongside the
paper's one-letter names.  The historical cross-model spellings
(``BSPParams(G=, L=)``, ``LogPParams(g=, l=)``) are accepted for one
release with a :class:`DeprecationWarning`; the paper's own casing stays
canonical because BSP and LogP deliberately use different cases for
different quantities (lower-case ``g``/``l`` are BSP's, upper-case
``G``/``L`` are LogP's).
"""

from __future__ import annotations

import operator
import warnings
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.util.intmath import ceil_div

__all__ = ["BSPParams", "LogPParams"]


def resolve_aliases(
    cls_name: str,
    kwargs: dict,
    *,
    aliases: dict[str, str],
    deprecated: dict[str, str] = {},
) -> dict:
    """Fold alternate keyword spellings into their canonical names.

    ``aliases`` are the unified long spellings (accepted silently);
    ``deprecated`` are legacy spellings that emit a
    :class:`DeprecationWarning` naming the replacement.  Passing an
    alias together with its canonical name is an error.
    """
    for table, warn in ((aliases, False), (deprecated, True)):
        for alias, target in table.items():
            if alias not in kwargs:
                continue
            if target in kwargs:
                raise ParameterError(
                    f"{cls_name}() got both {alias!r} and its canonical "
                    f"spelling {target!r}"
                )
            if warn:
                warnings.warn(
                    f"{cls_name}({alias}=...) is deprecated; "
                    f"use {cls_name}({target}=...)",
                    DeprecationWarning,
                    stacklevel=3,
                )
            kwargs[target] = kwargs.pop(alias)
    return kwargs


#: Sentinel marking a required field in a ``_bind_fields`` spec.
REQUIRED = object()


def _bind_fields(obj, spec: tuple[tuple[str, object], ...], args: tuple, kwargs: dict) -> None:
    """Dataclass-equivalent argument binding for the ``init=False``
    parameter classes: positional args fill ``spec`` in order, keywords
    fill the rest, defaults apply, and the usual ``TypeError``s fire for
    duplicates/unknowns/missing."""
    cls_name = type(obj).__name__
    names = [name for name, _default in spec]
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {len(names)} positional arguments "
            f"({len(args)} given)"
        )
    for name, value in zip(names, args):
        if name in kwargs:
            raise TypeError(f"{cls_name}() got multiple values for argument {name!r}")
        kwargs[name] = value
    unknown = [k for k in kwargs if k not in names]
    if unknown:
        raise TypeError(
            f"{cls_name}() got unexpected keyword argument(s) {unknown}"
        )
    for name, default in spec:
        value = kwargs.get(name, default)
        if value is REQUIRED:
            raise TypeError(f"{cls_name}() missing required argument: {name!r}")
        object.__setattr__(obj, name, value)


def _coerce_int_fields(obj, fields: tuple[str, ...]) -> None:
    """Coerce each named field to a plain ``int`` (accepting numpy ints
    and other ``__index__`` types), raising :class:`ParameterError` for
    floats, strings and anything else non-integral.

    Without this, a float or string parameter sails past the sign checks
    (``4.0 < 1`` is a fine comparison) and only explodes much later as an
    opaque ``TypeError`` deep inside the engine's ``range``/heap code.
    """
    for name in fields:
        value = getattr(obj, name)
        if isinstance(value, bool):
            raise ParameterError(f"{name} must be an integer, got bool {value!r}")
        try:
            coerced = operator.index(value)
        except TypeError:
            raise ParameterError(
                f"{name} must be an integer, got {type(value).__name__} {value!r}"
            ) from None
        # frozen dataclass: bypass the frozen __setattr__
        object.__setattr__(obj, name, int(coerced))


@dataclass(frozen=True, init=False)
class BSPParams:
    """BSP machine parameters (Section 2.1).

    A superstep with max local work ``w`` and an ``h``-relation costs
    ``w + g*h + l`` time units; the unit is the duration of one local
    operation.

    Attributes
    ----------
    p:
        Number of processors.  Keyword alias: ``processors``.
    g:
        Reciprocal per-processor bandwidth: for large message sets the
        medium delivers ``p`` messages every ``g`` units.  Keyword alias:
        ``gap``; the cross-model spelling ``G=`` is deprecated.
    l:
        Upper bound on barrier-synchronization time; ``g + l`` bounds the
        latency of a lone message.  Keyword alias: ``latency``; the
        cross-model spelling ``L=`` is deprecated.
    """

    p: int
    g: int
    l: int

    _SPEC = (("p", REQUIRED), ("g", REQUIRED), ("l", REQUIRED))

    def __init__(self, *args, **kwargs) -> None:
        kwargs = resolve_aliases(
            "BSPParams",
            kwargs,
            aliases={"processors": "p", "gap": "g", "latency": "l"},
            deprecated={"G": "g", "L": "l"},
        )
        _bind_fields(self, self._SPEC, args, kwargs)
        self.__post_init__()

    def __post_init__(self) -> None:
        _coerce_int_fields(self, ("p", "g", "l"))
        if self.p < 1:
            raise ParameterError(f"BSP requires p >= 1, got p={self.p}")
        if self.g < 1:
            raise ParameterError(f"BSP requires g >= 1, got g={self.g}")
        if self.l < 0:
            raise ParameterError(f"BSP requires l >= 0, got l={self.l}")

    def superstep_cost(self, w: int, h: int) -> int:
        """Cost ``w + g*h + l`` of one superstep (paper eq. (1))."""
        if w < 0 or h < 0:
            raise ParameterError(f"superstep_cost requires w,h >= 0, got w={w}, h={h}")
        return w + self.g * h + self.l


@dataclass(frozen=True, init=False)
class LogPParams:
    """LogP machine parameters (Section 2.2).

    Attributes
    ----------
    p:
        Number of processors.  Keyword alias: ``processors``.
    L:
        Latency: a message is delivered at most ``L`` steps after its
        acceptance by the communication medium.  Keyword alias:
        ``latency``; the cross-model spelling ``l=`` is deprecated.
    o:
        Overhead: processor time to prepare a submission or acquire a
        delivered message.  Keyword alias: ``overhead``.
    G:
        Gap: minimum spacing between consecutive submissions, and between
        consecutive acquisitions, by the same processor.  (Upper-case to
        match the paper, which reserves lower-case ``g`` for BSP.)
        Keyword alias: ``gap``; the cross-model spelling ``g=`` is
        deprecated.

    The *capacity constraint* permits at most ``ceil(L/G)`` messages in
    transit to any single destination; :attr:`capacity` exposes that bound.

    The constructor enforces the paper's constraints ``max{2, o} <= G <= L``
    unless ``unchecked=True`` is passed, which exists solely so that tests
    and the buffer-growth experiment can *exhibit* the anomalies the paper
    uses to justify the constraints.

    **LogGP extension** (Alexandrov et al., cited as [18] by the paper):
    ``Gb > 0`` enables *long messages* — a ``Send`` of ``size = n`` words
    occupies its endpoint for ``o + (n - 1) * Gb`` steps instead of ``o``,
    modeling per-word bandwidth much cheaper than per-message gap
    (``Gb <= G``).  ``Gb = 0`` is classic LogP (message size ignored).
    """

    p: int
    L: int
    o: int
    G: int
    unchecked: bool = False
    Gb: int = 0

    _SPEC = (
        ("p", REQUIRED),
        ("L", REQUIRED),
        ("o", REQUIRED),
        ("G", REQUIRED),
        ("unchecked", False),
        ("Gb", 0),
    )

    def __init__(self, *args, **kwargs) -> None:
        kwargs = resolve_aliases(
            "LogPParams",
            kwargs,
            aliases={
                "processors": "p",
                "latency": "L",
                "overhead": "o",
                "gap": "G",
                "word_gap": "Gb",
            },
            deprecated={"g": "G", "l": "L"},
        )
        _bind_fields(self, self._SPEC, args, kwargs)
        self.__post_init__()

    def __post_init__(self) -> None:
        _coerce_int_fields(self, ("p", "L", "o", "G", "Gb"))
        if self.p < 1:
            raise ParameterError(f"LogP requires p >= 1, got p={self.p}")
        if self.o < 0:
            raise ParameterError(f"LogP requires o >= 0, got o={self.o}")
        if self.L < 1 or self.G < 1:
            raise ParameterError(f"LogP requires L, G >= 1, got L={self.L}, G={self.G}")
        if self.Gb < 0:
            raise ParameterError(f"LogGP requires Gb >= 0, got Gb={self.Gb}")
        if self.unchecked:
            return
        if self.Gb > self.G:
            raise ParameterError(
                f"LogGP requires Gb <= G (per-word bandwidth is cheaper than "
                f"the per-message gap), got Gb={self.Gb} > G={self.G}"
            )
        if self.G < 2:
            raise ParameterError(
                f"LogP requires G >= 2 (with G=1 the model forces one-step delivery "
                f"to hot destinations; see Section 2.2), got G={self.G}"
            )
        if self.G < self.o:
            raise ParameterError(
                f"LogP requires G >= o (a processor spends o per message anyway), "
                f"got G={self.G} < o={self.o}"
            )
        if self.G > self.L:
            raise ParameterError(
                f"LogP requires G <= L (G > L forces unbounded input buffers; "
                f"see Section 2.2), got G={self.G} > L={self.L}"
            )

    @property
    def capacity(self) -> int:
        """Per-destination in-transit bound ``ceil(L/G)``."""
        return ceil_div(self.L, self.G)

    def matching_bsp(self, *, g: int | None = None, l: int | None = None) -> BSPParams:
        """The BSP parameter bundle with ``g = G`` and ``l = L``.

        The cross-simulation theorems are stated under ``g = Theta(G)`` and
        ``l = Theta(L)``; this helper builds the exact-match instance and
        lets callers scale either parameter to explore the general case.
        """
        return BSPParams(p=self.p, g=self.G if g is None else g, l=self.L if l is None else l)
