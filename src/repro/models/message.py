"""The message value type shared by both machine models.

Both BSP and LogP move fixed-size messages (the paper's unit of
communication); a message carries an opaque payload plus addressing
metadata.  Messages are immutable so that traces can safely alias them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

__all__ = ["Message"]

_serial = count()


@dataclass(frozen=True)
class Message:
    """A single fixed-size message.

    Attributes
    ----------
    src:
        Index of the originating processor.
    dest:
        Index of the destination processor.  The deterministic routing
        protocol of Section 4.2 additionally uses the out-of-range
        destination ``p`` for *dummy* messages; machines reject such
        destinations, the protocol strips dummies before final delivery.
    payload:
        Opaque application data.
    tag:
        Small integer namespace so that independent protocol phases
        (e.g. CB traffic vs. payload routing) can share a machine without
        confusing each other's messages.
    size:
        Length in words (>= 1); only meaningful on LogGP machines.
    uid:
        Process-wide unique id, used only for tracing/debugging.
    """

    src: int
    dest: int
    payload: Any = None
    tag: int = 0
    size: int = 1
    uid: int = field(default_factory=lambda: next(_serial), compare=False)

    def redirect(self, new_dest: int) -> "Message":
        """Copy of this message with a different destination.

        Used by store-and-forward relaying (a relay re-sends the original
        message body toward its true destination).
        """
        return Message(
            src=self.src, dest=new_dest, payload=self.payload, tag=self.tag, size=self.size
        )

    def __repr__(self) -> str:  # compact for traces
        return f"Msg({self.src}->{self.dest}, tag={self.tag}, payload={self.payload!r})"
