"""Shared model-level types: machine parameters, messages, analytic costs."""

from repro.models.message import Message
from repro.models.params import BSPParams, LogPParams

__all__ = ["Message", "BSPParams", "LogPParams"]
