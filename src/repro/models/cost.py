"""Every closed-form cost expression stated in the paper, as executable code.

The benchmark harness compares times *measured* on the simulated machines
against these predictions.  The paper's bounds are asymptotic; functions
here return the bound with its explicit constant where the paper gives one
(e.g. ``T_CB <= 3(L+o) log p / log(1+ceil(L/G))``) and with constant 1
otherwise, so callers compare shapes/ratios rather than absolute values.

Section references follow the Algorithmica text reproduced in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.params import BSPParams, LogPParams
from repro.util.intmath import ceil_div, log_star

__all__ = [
    "bsp_superstep_cost",
    "theorem1_superstep_cost",
    "theorem1_slowdown",
    "stalling_sim_slowdown",
    "cb_time_upper",
    "cb_time_lower",
    "cb_tree_arity",
    "t_seq_sort",
    "t_sort_aks",
    "t_sort_cubesort",
    "t_route_small",
    "t_route_deterministic",
    "slowdown_S",
    "theorem3_num_batches",
    "theorem3_beta",
    "theorem3_time_bound",
    "theorem3_failure_bound",
    "stalling_worst_case",
    "TopologyCosts",
    "TABLE1",
]


# ---------------------------------------------------------------------------
# BSP basics and Theorem 1 (Section 3)
# ---------------------------------------------------------------------------

def bsp_superstep_cost(params: BSPParams, w: int, h: int) -> int:
    """Paper eq. (1): ``T = w + g*h + l``."""
    return params.superstep_cost(w, h)


def theorem1_superstep_cost(bsp: BSPParams, logp: LogPParams) -> int:
    """BSP cost of simulating one LogP cycle of ``ceil(L/2)`` steps (Thm 1).

    Each cycle performs at most ``ceil(L/2)`` local operations per processor
    and routes an h-relation with ``h <= ceil(L/G)`` (stall-freedom bounds
    the per-destination traffic of a cycle by the capacity constraint).
    """
    cycle = ceil_div(logp.L, 2)
    h = logp.capacity
    return bsp.superstep_cost(cycle, h)


def theorem1_slowdown(bsp: BSPParams, logp: LogPParams) -> float:
    """Predicted slowdown of the Theorem 1 simulation.

    ``O(1 + g/G + l/L)``: the cycle of ``L/2`` LogP steps costs
    ``L/2 + g*ceil(L/G) + l`` in BSP.
    """
    cycle = ceil_div(logp.L, 2)
    return theorem1_superstep_cost(bsp, logp) / cycle


def stalling_sim_slowdown(bsp: BSPParams, logp: LogPParams) -> float:
    """Slowdown ``O(((l + g)/G) log p)`` for simulating *stalling* LogP
    cycles on BSP via sorting/prefix preprocessing (end of Section 3)."""
    return ((bsp.l + bsp.g) / logp.G) * max(1.0, math.log2(logp.p))


# ---------------------------------------------------------------------------
# Combine-and-Broadcast (Section 4.1)
# ---------------------------------------------------------------------------

def cb_tree_arity(params: LogPParams) -> int:
    """Arity of the CB tree: ``max{2, ceil(L/G)}``."""
    return max(2, params.capacity)


def cb_time_upper(params: LogPParams) -> float:
    """Paper's explicit upper bound ``3 (L+o) log p / log(1 + ceil(L/G))``.

    For ``p = 1`` the CB is vacuous and the bound is 0.
    """
    if params.p == 1:
        return 0.0
    return 3.0 * (params.L + params.o) * math.log2(params.p) / math.log2(1 + params.capacity)


def cb_time_lower(params: LogPParams) -> float:
    """Proposition 1 lower bound ``Omega(L log p / log(1 + ceil(L/G)))``
    (returned with constant 1)."""
    if params.p == 1:
        return 0.0
    return params.L * math.log2(params.p) / math.log2(1 + params.capacity)


# ---------------------------------------------------------------------------
# Sorting (Section 4.2)
# ---------------------------------------------------------------------------

def t_seq_sort(r: int, p: int) -> int:
    """Local sort of ``r`` keys in range ``[0, p]``:
    ``r * min{log r, ceil(log p / log r)}`` (Radixsort; paper Section 4.2).

    For ``r <= 2`` the min-term is taken as 1 (a constant number of passes).
    """
    if r <= 0:
        return 0
    if r <= 2:
        return r
    log_r = math.log2(r)
    passes = min(log_r, ceil_div(max(1, math.ceil(math.log2(max(2, p)))), max(1, math.floor(log_r))))
    return int(math.ceil(r * max(1.0, passes)))


def t_sort_aks(r: int, p: int, params: LogPParams) -> float:
    """AKS-based scheme: ``O((G r + L) log p)`` (paper Section 4.2).

    Our executable substitute is Batcher's bitonic network with
    ``O(log^2 p)`` depth; this function returns the *paper's* AKS bound.
    """
    if p == 1:
        return float(t_seq_sort(r, p))
    return (params.G * max(1, r) + params.L) * math.log2(p)


def t_sort_cubesort(
    r: int, p: int, params: LogPParams, *, include_log_star_term: bool = True
) -> float:
    """Cubesort-based scheme (paper Section 4.2):

    ``O( 25^{log* (pr) - log* r} * (log(pr)/log(r+1))^2 * (Tseq(r) + G r + L) )``

    At finite sizes the ``25^{log* pr - log* r}`` factor flips between 1
    and 25 as ``log*`` steps; pass ``include_log_star_term=False`` for the
    asymptotic-regime view (the paper itself drops the term from the
    slowdown ``S`` because it is constant where Cubesort is preferable).
    """
    if p == 1 or r == 0:
        return float(t_seq_sort(r, p))
    factor = (
        25 ** max(0, log_star(p * r) - log_star(r)) if include_log_star_term else 1
    )
    rounds = factor * (math.log2(p * r) / math.log2(r + 1)) ** 2
    return rounds * (t_seq_sort(r, p) + params.G * r + params.L)


def t_sort_best(r: int, p: int, params: LogPParams) -> float:
    """The better of the two schemes, as the protocol would choose."""
    return min(t_sort_aks(r, p, params), t_sort_cubesort(r, p, params))


# ---------------------------------------------------------------------------
# Routing h-relations (Section 4.2) and the slowdown S
# ---------------------------------------------------------------------------

def t_route_small(h: int, params: LogPParams) -> int:
    """Direct routing of an ``h``-relation with ``h <= ceil(L/G)``:
    ``2o + G(h-1) + L`` (<= 4L), paper Section 4.2."""
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    if h == 0:
        return 0
    return 2 * params.o + params.G * (h - 1) + params.L


def t_route_deterministic(h: int, params: LogPParams) -> float:
    """Paper eq. (2): ``Trout(h) <= 2 T_CB + Tsort(r, p) + 2o + (G+2)h + L``.

    ``r`` is the max number sent by any processor; eq. (2) is stated with
    the sort on ``r`` — we evaluate at the worst case ``r = h``.
    """
    return (
        2.0 * cb_time_upper(params)
        + t_sort_best(h, params.p, params)
        + 2 * params.o
        + (params.G + 2) * h
        + params.L
    )


def slowdown_S(params: LogPParams, h: int) -> float:
    """The paper's slowdown expression (end of Section 4.2):

    ``S(L,G,p,h) = L log p / ((Gh+L) log(1+ceil(L/G)))
                   + min{ log p, ceil(log p/log(h+1))^2 *
                          (Tseq(h) + Gh + L)/(Gh+L) }``

    (The ``25^{log* ...}`` factor is dropped exactly as the paper drops it:
    it is constant in the regime where Cubesort is the better scheme.)
    ``S = O(log p)`` always, and ``S = O(1)`` for
    ``h = Omega(p^eps + L log p)``.
    """
    p, L, G = params.p, params.L, params.G
    if p == 1:
        return 1.0
    log_p = math.log2(p)
    denom = G * h + L
    sync_term = L * log_p / (denom * math.log2(1 + params.capacity))
    if h >= 1:
        cube_term = (math.ceil(log_p / math.log2(h + 1)) ** 2) * (
            (t_seq_sort(h, p) + G * h + L) / denom
        )
    else:
        cube_term = log_p
    return sync_term + min(log_p, cube_term)


# ---------------------------------------------------------------------------
# Randomized routing (Section 4.3, Theorem 3)
# ---------------------------------------------------------------------------

def theorem3_beta_hat(c1: float, c2: float) -> float:
    """``beta_hat = e^{2(c2+3)/c1} - 1`` from the Theorem 3 proof."""
    return math.exp(2.0 * (c2 + 3.0) / c1) - 1.0


def theorem3_beta(c1: float, c2: float) -> float:
    """``beta = 4 e^{2(c2+3)/c1}``: total time is ``<= beta * G * h``."""
    return 4.0 * math.exp(2.0 * (c2 + 3.0) / c1)


def theorem3_num_batches(h: int, params: LogPParams, beta_hat: float) -> int:
    """``R = (1 + beta_hat) * h / ceil(L/G)`` rounded up to >= 1."""
    if h <= 0:
        return 1
    return max(1, math.ceil((1.0 + beta_hat) * h / params.capacity))


def theorem3_time_bound(h: int, params: LogPParams, beta_hat: float) -> float:
    """Round-phase bound ``2 (L + o) R`` (<= 4 L R = beta G h)."""
    return 2.0 * (params.L + params.o) * theorem3_num_batches(h, params, beta_hat)


def theorem3_failure_bound(h: int, params: LogPParams, beta_hat: float) -> float:
    """Chernoff union bound on Prob(stall or leftover), Theorem 3 proof.

    ``2 R p * (e^d / (1+d)^{1+d})^{C/(1+d)}`` with ``d = beta_hat`` and
    ``C = ceil(L/G)``; clamped to [0, 1].
    """
    C = params.capacity
    d = beta_hat
    R = theorem3_num_batches(h, params, beta_hat)
    log_tail = (C / (1.0 + d)) * (d - (1.0 + d) * math.log(1.0 + d))
    bound = 2.0 * R * params.p * math.exp(log_tail)
    return max(0.0, min(1.0, bound))


# ---------------------------------------------------------------------------
# Stalling (Sections 2 and 4.3)
# ---------------------------------------------------------------------------

def loggp_end_to_end(n: int, params: LogPParams) -> int:
    """LogGP extension: end-to-end time of one ``n``-word message,
    ``(o + (n-1) Gb) + L + (o + (n-1) Gb)`` — sender occupancy, wire
    latency, receiver occupancy (Alexandrov et al., paper ref. [18])."""
    if n < 1:
        raise ValueError(f"message size must be >= 1, got {n}")
    occupancy = params.o + (n - 1) * params.Gb
    return 2 * occupancy + params.L


def stalling_worst_case(h: int, params: LogPParams) -> int:
    """Worst-case completion time ``O(G h^2)`` of an h-relation under the
    stalling rule (Section 4.3's key observation), with constant 1."""
    return params.G * h * h


def hotspot_delivery_time(k: int, params: LogPParams) -> int:
    """Time for a hot spot to absorb ``k`` messages: the stalling rule keeps
    the destination draining at full rate, one message every ``G`` steps,
    so delivery completes in ``Theta(G k + L)`` (Section 2.2 discussion)."""
    if k <= 0:
        return 0
    return params.G * (k - 1) + params.L


# ---------------------------------------------------------------------------
# Table 1 (Section 5): gamma(p) and delta(p) per topology
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TopologyCosts:
    """Asymptotic bandwidth (gamma) and latency (delta) of a topology,
    as functions of the number of processors ``p`` (Table 1)."""

    name: str
    gamma_expr: str
    delta_expr: str

    def gamma(self, p: int, d: int = 2) -> float:
        return _EXPRS[self.gamma_expr](p, d)

    def delta(self, p: int, d: int = 2) -> float:
        return _EXPRS[self.delta_expr](p, d)


_EXPRS = {
    "1": lambda p, d: 1.0,
    "log p": lambda p, d: max(1.0, math.log2(p)),
    "p^(1/d)": lambda p, d: p ** (1.0 / d),
    "sqrt(p)": lambda p, d: math.sqrt(p),
}

#: Table 1 of the paper, verbatim (gamma, delta as expressions of p).
TABLE1: dict[str, TopologyCosts] = {
    "d-dim array": TopologyCosts("d-dim array", "p^(1/d)", "p^(1/d)"),
    "hypercube (multi-port)": TopologyCosts("hypercube (multi-port)", "1", "log p"),
    "hypercube (single-port)": TopologyCosts("hypercube (single-port)", "log p", "log p"),
    "butterfly": TopologyCosts("butterfly", "log p", "log p"),
    "ccc": TopologyCosts("ccc", "log p", "log p"),
    "shuffle-exchange": TopologyCosts("shuffle-exchange", "log p", "log p"),
    "mesh-of-trees": TopologyCosts("mesh-of-trees", "sqrt(p)", "log p"),
}


def best_bsp_params_on(topology: str, p: int, d: int = 2) -> tuple[float, float]:
    """Section 5: best attainable BSP parameters ``g* = Theta(gamma(p))``,
    ``l* = Theta(delta(p))`` on a Table-1 topology."""
    costs = TABLE1[topology]
    return costs.gamma(p, d), costs.delta(p, d)


def best_logp_params_on(topology: str, p: int, d: int = 2) -> tuple[float, float]:
    """Section 5: best attainable LogP parameters ``G* = Theta(gamma(p))``,
    ``L* = Theta(gamma(p) + delta(p))`` on a Table-1 topology."""
    costs = TABLE1[topology]
    gamma, delta = costs.gamma(p, d), costs.delta(p, d)
    return gamma, gamma + delta
