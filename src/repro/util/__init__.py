"""Shared utilities: integer math, RNG plumbing, statistics, tables, tracing."""

from repro.util.intmath import (
    ceil_div,
    ilog2,
    is_power_of_two,
    log_star,
    next_power_of_two,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.stats import affine_fit, mean_and_ci, summarize

__all__ = [
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "log_star",
    "next_power_of_two",
    "make_rng",
    "spawn_rngs",
    "affine_fit",
    "mean_and_ci",
    "summarize",
]
