"""Seeded random-number plumbing.

Every randomized component in the library (delivery schedulers, the
Theorem 3 batch assignment, workload generators) takes an explicit seed or
:class:`numpy.random.Generator` so that all experiments are reproducible.
"""

from __future__ import annotations


import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_seed"]

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS entropy — only appropriate for exploratory use;
    all tests and benches pass explicit integers).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used to give each simulated processor its own RNG stream so that the
    behaviour of processor ``i`` does not depend on how often the other
    processors draw.
    """
    if n < 0:
        raise ValueError(f"spawn_rngs requires n >= 0, got {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] if isinstance(
        seed, np.random.Generator
    ) else [np.random.default_rng(s) for s in np.random.SeedSequence(_as_int_seed(seed)).spawn(n)]


def _as_int_seed(seed: int | None) -> int | None:
    if seed is None:
        return None
    return int(seed)


def derive_seed(seed: int, *salts: int | str) -> int:
    """Deterministically derive a sub-seed from ``seed`` and salt values.

    Stable across runs and platforms (uses SeedSequence entropy mixing on
    integer-encoded salts, not Python's randomized ``hash``).
    """
    encoded: list[int] = [int(seed)]
    for salt in salts:
        if isinstance(salt, str):
            encoded.extend(salt.encode("utf-8"))
        else:
            encoded.append(int(salt) & 0xFFFFFFFF)
    ss = np.random.SeedSequence(encoded)
    return int(ss.generate_state(1, dtype=np.uint64)[0])
