"""Statistics helpers for the benchmark harness.

The Table 1 experiment extracts bandwidth/latency estimates by fitting the
affine model ``T(h) = gamma * h + delta`` to measured routing times; the
theorem benches summarize repeated randomized runs with means and normal
confidence intervals.  Nothing here is performance-critical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["AffineFit", "affine_fit", "mean_and_ci", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class AffineFit:
    """Least-squares fit ``y ~ slope * x + intercept``.

    ``r2`` is the coefficient of determination; ``1.0`` for a perfect fit,
    ``0.0`` when the fit explains nothing beyond the mean.
    """

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def affine_fit(xs: Sequence[float], ys: Sequence[float]) -> AffineFit:
    """Ordinary least squares for ``y = slope*x + intercept``.

    Requires at least two distinct x values.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("affine_fit requires equal-length 1-d sequences")
    if x.size < 2 or np.all(x == x[0]):
        raise ValueError("affine_fit requires >= 2 distinct x values")
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (slope * x + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return AffineFit(slope=float(slope), intercept=float(intercept), r2=r2)


def mean_and_ci(values: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Sample mean and half-width of the normal ``z``-confidence interval."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_and_ci requires at least one value")
    if arr.size == 1:
        return float(arr[0]), 0.0
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return float(arr.mean()), half


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for slowdown ratios)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean requires at least one value")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    max: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("summarize requires at least one value")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
    )
