"""Fixed-width ASCII table rendering for the benchmark harness.

The benches print paper-shaped tables (one per experiment id in DESIGN.md);
this module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one table cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as a boxed fixed-width table string."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)
