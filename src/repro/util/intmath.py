"""Small exact integer-math helpers used throughout the models.

All cost formulas in the paper are stated over integer step counts, so we
keep this arithmetic exact (no floats) wherever the paper does.
"""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "ilog2",
    "next_power_of_two",
    "is_power_of_two",
    "log_star",
    "log2_ceil",
    "digits_mixed_radix",
    "from_digits_mixed_radix",
    "gray_code",
    "inverse_gray_code",
]


def ceil_div(a: int, b: int) -> int:
    """Exact ``ceil(a / b)`` for integers, ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def ilog2(n: int) -> int:
    """``floor(log2(n))`` for ``n >= 1``."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return n.bit_length() - 1


def log2_ceil(n: int) -> int:
    """``ceil(log2(n))`` for ``n >= 1`` (0 for n == 1)."""
    if n < 1:
        raise ValueError(f"log2_ceil requires n >= 1, got {n}")
    return (n - 1).bit_length()


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"next_power_of_two requires n >= 1, got {n}")
    return 1 << log2_ceil(n)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def log_star(n: float) -> int:
    """The iterated logarithm ``log* n`` (base 2).

    Number of times ``log2`` must be applied before the value drops to
    ``<= 1``.  Appears in the paper's Cubesort round count
    ``25^{log* pr - log* r}``.
    """
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def digits_mixed_radix(value: int, radices: tuple[int, ...]) -> tuple[int, ...]:
    """Decompose ``value`` into mixed-radix digits (least significant first).

    Used to map linear processor indices to coordinates in d-dimensional
    arrays with per-dimension side lengths ``radices``.
    """
    digits = []
    v = value
    for r in radices:
        if r < 1:
            raise ValueError(f"radices must be >= 1, got {radices}")
        digits.append(v % r)
        v //= r
    if v != 0:
        raise ValueError(f"value {value} out of range for radices {radices}")
    return tuple(digits)


def from_digits_mixed_radix(digits: tuple[int, ...], radices: tuple[int, ...]) -> int:
    """Inverse of :func:`digits_mixed_radix`."""
    if len(digits) != len(radices):
        raise ValueError("digits/radices length mismatch")
    value = 0
    weight = 1
    for d, r in zip(digits, radices):
        if not 0 <= d < r:
            raise ValueError(f"digit {d} out of range for radix {r}")
        value += d * weight
        weight *= r
    return value


def gray_code(n: int) -> int:
    """Binary-reflected Gray code of ``n``."""
    if n < 0:
        raise ValueError("gray_code requires n >= 0")
    return n ^ (n >> 1)


def inverse_gray_code(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    if g < 0:
        raise ValueError("inverse_gray_code requires g >= 0")
    n = 0
    while g:
        n ^= g
        g >>= 1
    return n
