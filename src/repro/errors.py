"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from model-semantics
violations detected at simulation time.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "ProgramError",
    "DeadlockError",
    "CapacityViolationError",
    "StallError",
    "RoutingError",
    "TopologyError",
    "SimulationLimitError",
    "InvariantViolationError",
    "ProtocolError",
    "DistRunError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A machine/model parameter violates its documented constraints.

    For LogP this includes the paper's Section 2.2 constraints
    ``max{2, o} <= G <= L``; for BSP it covers non-positive ``g``/``l``.
    """


class ProgramError(ReproError, RuntimeError):
    """A user program performed an operation the model does not allow.

    Examples: sending to a non-existent processor, yielding an object
    that is not an instruction, receiving after the network drained.
    """


class DeadlockError(ReproError, RuntimeError):
    """The simulation cannot make progress.

    Raised when every live processor is blocked (e.g. all waiting on
    ``Recv`` with no message in flight anywhere).

    ``diagnostics`` (when provided by the engine) is a dict snapshotting
    the machine at the moment of deadlock — the event queue's front (the
    next pending times the kernel would process, empty at a true drain
    deadlock), the per-destination submit times still pending in the
    medium, the kernel counters, and a compact record of the *blocked*
    processors only — so that fault-induced and skip-ahead hangs can be
    debugged from the exception alone.  The snapshot is also rendered
    into the message text.
    """

    def __init__(self, message: str, *, diagnostics: dict | None = None) -> None:
        if diagnostics:
            message = f"{message}\n{format_deadlock_diagnostics(diagnostics)}"
        super().__init__(message)
        self.diagnostics = diagnostics or {}


def format_deadlock_diagnostics(diag: dict) -> str:
    """Render a deadlock diagnostics dict as an indented report."""
    lines = ["deadlock diagnostics:"]
    if "time" in diag:
        lines.append(f"  last event time: {diag['time']}")
    front = diag.get("queue_front")
    if front is not None:
        if front:
            rendered = ", ".join(
                f"t={ev['time']} {ev['kind']}@{ev['pid']}" for ev in front
            )
            lines.append(f"  event-queue front: {rendered}")
        else:
            lines.append("  event-queue front: <empty — no pending times>")
    pending_times = diag.get("next_pending_times")
    if pending_times:
        rendered = ", ".join(
            f"dest {d}: {times}" for d, times in sorted(pending_times.items())
        )
        lines.append(f"  pending submit times: {rendered}")
    kernel = diag.get("kernel")
    if kernel:
        lines.append(
            f"  kernel: {kernel.get('kernel')} events={kernel.get('events')} "
            f"batches={kernel.get('batches')} "
            f"ticks_skipped={kernel.get('ticks_skipped')}"
        )
    for proc in diag.get("blocked", diag.get("processors", [])):
        lines.append(
            "  processor {pid}: state={state} clock={clock} buffered={buffered}"
            " pending_send={pending_send!r}".format(**proc)
        )
    medium = diag.get("medium")
    if medium:
        lines.append(
            f"  medium: in_transit={medium.get('in_transit')} "
            f"pending={medium.get('pending')} "
            f"total_accepted={medium.get('total_accepted')}"
        )
    faults = diag.get("faults")
    if faults:
        lines.append(f"  faults: {faults}")
    return "\n".join(lines)


class CapacityViolationError(ReproError, RuntimeError):
    """An internal invariant of the LogP capacity constraint was broken.

    This signals a bug in the engine, never a user-program condition:
    user programs that over-subscribe a destination *stall*, they do not
    break the constraint.
    """


class StallError(ReproError, RuntimeError):
    """A stall occurred in a context that requires stall-freedom.

    Raised by the LogP machine when running with ``forbid_stalling=True``
    (used by the Theorem 1/2 constructions, which are proven stall-free)
    and by :mod:`repro.logp.validate` when certification fails.
    """


class RoutingError(ReproError, RuntimeError):
    """An h-relation could not be decomposed/routed as requested."""


class TopologyError(ReproError, ValueError):
    """A network topology was requested with invalid size parameters."""


class SimulationLimitError(ReproError, RuntimeError):
    """A configured safety limit (max steps / max events) was exceeded."""


class InvariantViolationError(ReproError, AssertionError):
    """A machine-checkable model invariant failed on an execution trace.

    Raised by :mod:`repro.faults.invariants` (and by ``LogPMachine`` when
    constructed with ``check_invariants=True``).  ``violations`` holds the
    individual :class:`~repro.logp.trace.TraceViolation` records.
    """

    def __init__(self, message: str, violations: list | None = None) -> None:
        self.violations = list(violations or [])
        if self.violations:
            message += "\n" + "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(message)


class ProtocolError(ReproError, RuntimeError):
    """A resilience protocol exhausted its fault budget.

    Raised by the ack/retransmit layer when a message is still
    unacknowledged after the maximum number of retransmissions, and by
    the BSP checkpoint-retry machine when a superstep's communication
    phase keeps losing messages past ``max_comm_retries``.  The
    real-socket backend (:mod:`repro.dist`) also raises it for corrupt
    wire frames.
    """


class DistRunError(ReproError, RuntimeError):
    """A real-process distributed run failed in a *diagnosed* way.

    The supervisor of :mod:`repro.dist` never hangs and never returns a
    silently corrupt result: every terminal failure — restart budget
    exhausted, whole-run deadline expired, a worker that died with no
    recovery path, a peer protocol violation — raises this error with a
    ``reason`` label and a ``diagnosis`` dict snapshotting the run (the
    round in progress, per-worker states, channel statistics, restart
    counts), mirroring :class:`DeadlockError`'s philosophy for the
    simulators.
    """

    def __init__(self, message: str, *, reason: str = "failed",
                 diagnosis: dict | None = None) -> None:
        self.reason = reason
        self.diagnosis = diagnosis or {}
        if self.diagnosis:
            detail = ", ".join(
                f"{k}={v!r}" for k, v in sorted(self.diagnosis.items())
                if k not in ("workers",)
            )
            message = f"[{reason}] {message}\n  diagnosis: {detail}"
            for w in self.diagnosis.get("workers", []):
                message += "\n  " + ", ".join(f"{k}={v!r}" for k, v in w.items())
        else:
            message = f"[{reason}] {message}"
        super().__init__(message)
