"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from model-semantics
violations detected at simulation time.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "ProgramError",
    "DeadlockError",
    "CapacityViolationError",
    "StallError",
    "RoutingError",
    "TopologyError",
    "SimulationLimitError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A machine/model parameter violates its documented constraints.

    For LogP this includes the paper's Section 2.2 constraints
    ``max{2, o} <= G <= L``; for BSP it covers non-positive ``g``/``l``.
    """


class ProgramError(ReproError, RuntimeError):
    """A user program performed an operation the model does not allow.

    Examples: sending to a non-existent processor, yielding an object
    that is not an instruction, receiving after the network drained.
    """


class DeadlockError(ReproError, RuntimeError):
    """The simulation cannot make progress.

    Raised when every live processor is blocked (e.g. all waiting on
    ``Recv`` with no message in flight anywhere).
    """


class CapacityViolationError(ReproError, RuntimeError):
    """An internal invariant of the LogP capacity constraint was broken.

    This signals a bug in the engine, never a user-program condition:
    user programs that over-subscribe a destination *stall*, they do not
    break the constraint.
    """


class StallError(ReproError, RuntimeError):
    """A stall occurred in a context that requires stall-freedom.

    Raised by the LogP machine when running with ``forbid_stalling=True``
    (used by the Theorem 1/2 constructions, which are proven stall-free)
    and by :mod:`repro.logp.validate` when certification fails.
    """


class RoutingError(ReproError, RuntimeError):
    """An h-relation could not be decomposed/routed as requested."""


class TopologyError(ReproError, ValueError):
    """A network topology was requested with invalid size parameters."""


class SimulationLimitError(ReproError, RuntimeError):
    """A configured safety limit (max steps / max events) was exceeded."""
