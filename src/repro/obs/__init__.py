"""repro.obs — observability for the simulation stack.

One import surface for the three tentpole pieces (see
``docs/OBSERVABILITY.md``):

* :class:`Observation` — the metrics + trace sink a run publishes into
  (``BSPMachine(params, obs=obs)``, ``Stack(...).run(obs=obs)``, ...);
* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — the metric primitives;
* :class:`Tracer` / :class:`Span` — layer-labelled spans with the Chrome
  ``trace_event`` exporter and text flamegraph;
* :class:`CostModelCheck` / :class:`CostCheckReport` /
  :class:`CostResidual` — predicted-vs-observed residuals against the
  paper's closed-form bounds.
"""

from repro.obs.check import CostCheckReport, CostModelCheck, CostResidual
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observation import Observation
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Observation",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "CostModelCheck",
    "CostCheckReport",
    "CostResidual",
]
