"""The observation hub: one object carrying metrics + tracer through a run.

An :class:`Observation` is handed to a machine (``obs=``), a theorem
driver, or a :class:`~repro.engine.stack.Stack` run; every layer it
passes through publishes into its shared :class:`MetricsRegistry` and
(when ``trace=True``) its :class:`Tracer`.  The design rule, pinned by
the golden-trace suite: *observation never changes execution*.  Almost
everything is published once per run from records the machines already
keep (cost ledgers, event traces, kernel counters, stall and fault
ledgers); the few inline hooks (per-link occupancy in the routers) sit
behind a single ``is not None`` test and only count.

``Observation(enabled=False)`` is the measurable no-op: machines
normalize it away up front, so instrumented call sites run the exact
uninstrumented code path — the perf-smoke gate asserts the residual
overhead stays under 5 %.

The ``layer`` labels threaded through every ``observe_*`` call are the
same strings the engine's diagnostics carry (``"guest BSP on host
LogP"``, ``"native BSP reference"``, ...), so a stacked run's metrics
and trace rows separate by layer for free.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["Observation"]


def _active(obs: "Observation | None") -> "Observation | None":
    """Normalize ``obs`` for hot paths: a disabled observation becomes
    ``None``, so instrumented code needs only an ``is not None`` test."""
    return obs if (obs is not None and obs.enabled) else None


class Observation:
    """Shared metrics/trace sink for one (possibly stacked) run.

    Parameters
    ----------
    trace:
        Also record layer-labelled spans (see :class:`Tracer`); off by
        default because traces grow with the execution while metrics
        stay O(1) per run.
    enabled:
        ``False`` builds the inert observation every instrumented call
        site treats exactly like ``obs=None`` — used by the overhead
        benchmark gate.
    """

    def __init__(self, *, trace: bool = False, enabled: bool = True) -> None:
        self.enabled = enabled
        self.trace = bool(trace)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self._published_kernels: list = []

    def __bool__(self) -> bool:
        return self.enabled

    @property
    def tracing(self) -> bool:
        return self.enabled and self.trace

    def metrics_only(self) -> "Observation":
        """A view sharing this registry with span recording off — for
        sub-runs whose native time base would clash with the parent's
        trace (e.g. per-superstep router invocations)."""
        view = Observation.__new__(Observation)
        view.enabled = self.enabled
        view.trace = False
        view.metrics = self.metrics
        view.tracer = self.tracer
        view._published_kernels = self._published_kernels
        return view

    # -- output --------------------------------------------------------

    def write_trace(self, path: str | Path) -> Path:
        """Export the recorded spans as Chrome ``trace_event`` JSON."""
        return self.tracer.write_chrome(path)

    def render_metrics(self, title: str = "metrics") -> str:
        return self.metrics.render(title)

    def flamegraph(self, width: int = 40) -> str:
        return self.tracer.flamegraph(width)

    # -- publication hooks ---------------------------------------------

    def publish_kernel(self, layer: str, counters) -> None:
        """Publish one engine's :class:`~repro.perf.counters.KernelCounters`.

        Deduplicated by object identity: the engine core publishes at
        drain time and the result-level observers publish defensively,
        so the same counters object may arrive twice.
        """
        if not self.enabled or counters is None:
            return
        if any(seen is counters for seen in self._published_kernels):
            return
        self._published_kernels.append(counters)
        m = self.metrics
        kind = counters.kernel
        m.counter("kernel.events", layer=layer, kernel=kind).inc(counters.events)
        m.counter("kernel.batches", layer=layer, kernel=kind).inc(counters.batches)
        m.counter("kernel.ticks_skipped", layer=layer, kernel=kind).inc(
            counters.ticks_skipped
        )
        m.gauge("kernel.queue_highwater", layer=layer, kernel=kind).track_max(
            counters.queue_highwater
        )
        if kind == "adaptive":
            # Mode residency and switching of the density-adaptive kernel.
            m.counter("kernel.mode_switches", layer=layer, kernel=kind).inc(
                counters.mode_switches
            )
            m.counter("kernel.dense_batches", layer=layer, kernel=kind).inc(
                counters.dense_batches
            )
            m.counter("kernel.sparse_batches", layer=layer, kernel=kind).inc(
                counters.sparse_batches
            )
            m.counter("kernel.density_samples", layer=layer, kernel=kind).inc(
                counters.density_samples
            )
            m.gauge("kernel.density", layer=layer, kernel=kind).set(
                round(counters.density, 6)
            )

    def _publish_faults(self, layer: str, fault_log) -> None:
        if fault_log is None:
            return
        for name, count in fault_log.summary().items():
            if count:
                self.metrics.counter(f"faults.{name}", layer=layer).inc(count)

    # -- per-layer observers -------------------------------------------

    def observe_bsp(self, result, layer: str = "BSP") -> None:
        """Publish a :class:`~repro.bsp.machine.BSPResult`: the per-
        superstep ``w``/``h``/cost decomposition, retries, kernel work,
        and (tracing) one span per superstep split into its local and
        communication phases on the BSP simulated clock."""
        if not self.enabled:
            return
        m = self.metrics
        m.counter("bsp.supersteps", layer=layer).inc(result.num_supersteps)
        m.counter("bsp.messages", layer=layer).inc(result.total_messages)
        m.gauge("bsp.total_cost", layer=layer).track_max(result.total_cost)
        if result.total_retries:
            m.counter("bsp.retries", layer=layer).inc(result.total_retries)
            m.counter("bsp.retry_cost", layer=layer).inc(result.total_retry_cost)
        hist_w = m.histogram("bsp.superstep_w", layer=layer)
        hist_h = m.histogram("bsp.superstep_h", layer=layer)
        hist_cost = m.histogram("bsp.superstep_cost", layer=layer)
        for rec in result.ledger:
            hist_w.observe(rec.w)
            hist_h.observe(rec.h)
            hist_cost.observe(rec.cost)
        self.publish_kernel(layer, result.kernel)
        self._publish_faults(layer, result.fault_log)
        if self.tracing:
            tr = self.tracer
            clock = 0
            for rec in result.ledger:
                end = clock + rec.cost
                tr.span(
                    layer,
                    "superstep",
                    clock,
                    end,
                    args={
                        "index": rec.index,
                        "w": rec.w,
                        "h": rec.h,
                        "retries": rec.retries,
                    },
                )
                # Phase decomposition on a second thread row so the
                # parent superstep span stays unambiguous.
                tr.span(layer, "local (w)", clock, clock + rec.w, tid=1)
                tr.span(layer, "exchange (g*h+l)", clock + rec.w, end, tid=1)
                clock = end

    def observe_logp(self, result, layer: str = "LogP") -> None:
        """Publish a :class:`~repro.logp.machine.LogPResult`: makespan,
        message/stall totals, buffer high-water, kernel work, and —
        when tracing and the machine recorded its trace — per-processor
        submit/acquire spans, stall spans, and one async span per
        message lifetime (submit → acquire) keyed by message uid."""
        if not self.enabled:
            return
        m = self.metrics
        m.gauge("logp.makespan", layer=layer).track_max(result.makespan)
        m.counter("logp.messages", layer=layer).inc(result.total_messages)
        if result.stalls:
            m.counter("logp.stalls", layer=layer).inc(len(result.stalls))
            m.counter("logp.stall_cycles", layer=layer).inc(result.total_stall_time)
        m.gauge("logp.buffer_highwater", layer=layer).track_max(
            max(result.buffer_highwater, default=0)
        )
        self.publish_kernel(layer, result.kernel)
        self._publish_faults(layer, result.fault_log)
        trace = result.trace
        if self.tracing and trace is not None:
            tr = self.tracer
            o = result.params.o
            delivered = {uid: t for t, _dest, uid in trace.deliveries}
            latency = m.histogram("logp.delivery_latency", layer=layer)
            acq_end: dict[int, int] = {}
            for t_start, t_end, pid, uid in trace.acquisitions:
                tr.span(layer, "acquire", t_start, t_end, tid=pid, args={"uid": uid})
                acq_end[uid] = t_end
            for t_sub, src, uid in trace.submissions:
                tr.span(layer, "submit", t_sub - o, t_sub, tid=src, args={"uid": uid})
                end = acq_end.get(uid, delivered.get(uid, t_sub))
                tr.span(
                    layer, "message", t_sub, end, tid=src, cat="msg", async_id=uid
                )
                t_del = delivered.get(uid)
                if t_del is not None:
                    latency.observe(t_del - t_sub)
            for s in result.stalls:
                tr.span(layer, "stall", s.submit_time, s.accept_time, tid=s.sender,
                        args={"dest": s.dest})

    def observe_routing(
        self, outcome, occupancy=None, hops=None, layer: str = "network"
    ) -> None:
        """Publish a :class:`~repro.networks.routing_sim.RoutingOutcome`
        plus the router's optional inline recordings: ``occupancy`` maps
        each directed link to its transmission count, ``hops`` lists
        ``(arrive_time, packet, u, v)`` successful transmissions."""
        if not self.enabled:
            return
        m = self.metrics
        m.gauge("net.route_time", layer=layer).track_max(outcome.time)
        m.counter("net.packets", layer=layer).inc(outcome.packets)
        m.counter("net.hops", layer=layer).inc(outcome.total_hops)
        if outcome.retransmissions:
            m.counter("net.retransmissions", layer=layer).inc(outcome.retransmissions)
        m.gauge("net.max_queue", layer=layer).track_max(outcome.max_queue)
        if occupancy:
            hist = m.histogram("net.link_occupancy", layer=layer)
            for count in occupancy.values():
                hist.observe(count)
        self.publish_kernel(layer, outcome.kernel)
        if self.tracing and hops:
            tr = self.tracer
            for t_arr, pkt, u, v in hops:
                tr.span(
                    layer, "hop", t_arr - 1, t_arr, tid=u,
                    args={"packet": pkt, "link": f"{u}->{v}"},
                )

    def observe_network_delivery(self, delivery, layer: str = "network") -> None:
        """Publish a :class:`~repro.networks.backed.NetworkDelivery`'s
        co-simulation record: delay distribution, ``> L`` violations,
        and (tracing) one span per store-and-forward hop in the host
        LogP clock."""
        if not self.enabled:
            return
        m = self.metrics
        hist = m.histogram("net.delivery_delay", layer=layer)
        for d in delivery.delays:
            hist.observe(d)
        if delivery.violations:
            m.counter("net.latency_violations", layer=layer).inc(delivery.violations)
        if delivery.occupancy:
            occ = m.histogram("net.link_occupancy", layer=layer)
            for count in delivery.occupancy.values():
                occ.observe(count)
        if self.tracing:
            tr = self.tracer
            for depart, u, v, uid in delivery.hops:
                tr.span(
                    layer, "hop", depart, depart + 1, tid=u,
                    args={"uid": uid, "link": f"{u}->{v}"},
                )

    # -- cross-simulation observers ------------------------------------

    def observe_theorem2(self, report) -> None:
        """Publish a Theorem 2/3 :class:`~repro.core.bsp_on_logp.
        Theorem2Report`: the native reference ledger, the measured and
        predicted slowdowns, and (tracing) the guest's per-superstep
        local/sync/route phase spans on the host LogP clock."""
        if not self.enabled:
            return
        guest = "guest BSP supersteps"
        m = self.metrics
        m.gauge("sim.slowdown", layer=guest).set(round(report.slowdown, 6))
        m.gauge("sim.predicted_slowdown", layer=guest).set(
            round(report.predicted_slowdown, 6)
        )
        self.observe_bsp(report.bsp_native, layer="native BSP reference")
        sync_h = m.histogram("sim.t_sync", layer=guest)
        route_h = m.histogram("sim.t_route", layer=guest)
        prev = 0
        for tm in report.timings:
            sync_h.observe(tm.t_sync)
            route_h.observe(tm.t_route)
            if self.tracing:
                tr = self.tracer
                args = {"superstep": tm.index}
                tr.span(guest, "local", prev, tm.local_end, args=args)
                tr.span(guest, "sync (CB)", tm.local_end, tm.sync_end, args=args)
                tr.span(guest, "route", tm.sync_end, tm.route_end, args=args)
            prev = tm.route_end

    def observe_theorem1(self, report) -> None:
        """Publish a Theorem 1 :class:`~repro.core.logp_on_bsp.
        Theorem1Report`: slowdowns, window geometry, and (tracing) the
        guest's simulated cycles on the LogP virtual clock."""
        if not self.enabled:
            return
        guest = "guest LogP windows"
        m = self.metrics
        m.gauge("sim.slowdown", layer=guest).set(round(report.slowdown, 6))
        m.gauge("sim.predicted_slowdown", layer=guest).set(
            round(report.predicted_slowdown, 6)
        )
        m.gauge("sim.window", layer=guest).set(report.window)
        m.gauge("sim.max_window_h", layer=guest).track_max(report.max_window_h)
        if report.native is not None:
            m.gauge("logp.makespan", layer="native LogP reference").track_max(
                report.native.makespan
            )
        if self.tracing:
            tr = self.tracer
            W = report.window
            for i in range(report.windows):
                tr.span(guest, "cycle", i * W, (i + 1) * W, args={"window": i})

    def observe_network_run(self, run) -> None:
        """Publish a Section-5 :class:`~repro.networks.backed.
        NetworkBackedRun`: measured routing/barrier charges per
        superstep and (tracing) the re-priced superstep spans."""
        if not self.enabled:
            return
        layer = "guest BSP on host network"
        m = self.metrics
        m.gauge("net.network_cost", layer=layer).track_max(run.network_cost)
        m.counter("net.route_time_total", layer=layer).inc(run.total_route_time)
        route_h = m.histogram("net.superstep_route_time", layer=layer)
        clock = 0
        for s in run.supersteps:
            route_h.observe(s.route_time)
            if self.tracing:
                tr = self.tracer
                args = {"superstep": s.index, "h": s.h}
                tr.span(layer, "local (w)", clock, clock + s.w, args=args)
                tr.span(
                    layer, "route", clock + s.w, clock + s.w + s.route_time, args=args
                )
                tr.span(
                    layer, "barrier", clock + s.w + s.route_time, clock + s.cost,
                    args=args,
                )
            clock += s.cost

    def observe_dist(self, result, layer: str = "dist") -> None:
        """Publish a :class:`~repro.dist.supervisor.DistResult`: rounds,
        restarts, wall time, wire-fault and reliable-channel counters,
        and (tracing) the merged Lamport-clock event log replayed as one
        lane per process — a *real* faulty run rendered through the same
        tracer as the simulators."""
        if not self.enabled:
            return
        m = self.metrics
        m.counter("dist.rounds", layer=layer).inc(result.rounds)
        m.gauge("dist.wall_s", layer=layer).set(round(result.wall_s, 6))
        m.gauge("dist.p", layer=layer).set(result.p)
        if result.restarts:
            m.counter("dist.restarts", layer=layer).inc(result.restarts)
        for kind, count in result.wire_faults.items():
            if count:
                m.counter(f"dist.wire_{kind}", layer=layer).inc(count)
        for name in ("sent", "received", "retransmits", "dup_received",
                     "backpressure_waits"):
            count = result.channel_stats.get(name, 0)
            if count:
                m.counter(f"dist.chan_{name}", layer=layer).inc(count)
        if self.tracing:
            from repro.dist.analyze import replay_to_tracer
            from repro.dist.eventlog import merge_logs

            events, _meta = merge_logs(result.log_dir)
            replay_to_tracer(events, self.tracer)

    def observe_service(self, stats, layer: str = "service") -> None:
        """Publish a :class:`~repro.service.ServiceStats` snapshot: the
        reconciling served/deduped/missed counters, the hit-rate gauge,
        and the per-outcome request-latency histograms (merged field-
        wise, since the service keeps real :class:`Histogram` objects).
        Called from the CLI's ``serve`` shutdown path and the service
        benchmark — never per-request."""
        if not self.enabled:
            return
        m = self.metrics
        m.counter("service.requests", layer=layer).inc(stats.requests)
        m.counter("service.served", layer=layer).inc(stats.served)
        m.counter("service.hits", layer=layer).inc(stats.counts["hit"])
        m.counter("service.deduped", layer=layer).inc(stats.counts["dedup"])
        m.counter("service.missed", layer=layer).inc(stats.counts["miss"])
        if stats.failed:
            m.counter("service.failed", layer=layer).inc(stats.failed)
        m.counter("service.pool_jobs", layer=layer).inc(stats.pool_jobs)
        m.counter("service.pool_points", layer=layer).inc(stats.pool_points)
        m.gauge("service.hit_rate", layer=layer).set(round(stats.hit_rate(), 6))
        for outcome, src in stats.latency.items():
            if not src.count:
                continue
            dst = m.histogram("service.latency_s", layer=layer, outcome=outcome)
            dst.count += src.count
            dst.total += src.total
            dst.min = min(dst.min, src.min)
            dst.max = max(dst.max, src.max)

    def observe_campaign(self, report, layer: str = "campaign") -> None:
        """Publish a :class:`~repro.campaign.runner.CampaignReport`:
        point totals, throughput, cache hit rate, and pool utilization.
        Called once per campaign from :func:`~repro.campaign.runner.
        run_campaign` — never from workers, whose records must stay
        bit-identical across cached reruns."""
        if not self.enabled:
            return
        m = self.metrics
        m.counter("campaign.points", layer=layer).inc(report.total)
        m.counter("campaign.ran", layer=layer).inc(report.ran)
        m.counter("campaign.cached", layer=layer).inc(report.cached)
        if report.failed:
            m.counter("campaign.failed", layer=layer).inc(report.failed)
        m.gauge("campaign.workers", layer=layer).set(report.workers)
        m.gauge("campaign.points_per_s", layer=layer).set(
            round(report.points_per_s, 6)
        )
        m.gauge("campaign.cache_hit_rate", layer=layer).set(
            round(report.cache_hit_rate, 6)
        )
        m.gauge("campaign.worker_utilization", layer=layer).set(
            round(report.utilization, 6)
        )

    # -- dispatch ------------------------------------------------------

    def observe_result(self, result, layer: str | None = None) -> None:
        """Duck-typed dispatch to the matching ``observe_*`` method —
        the hook :meth:`~repro.engine.result.MachineResult.observe`
        calls.  Mirrors ``CostModelCheck.check``'s shape tests."""
        if not self.enabled:
            return
        if hasattr(result, "restarts") and hasattr(result, "log_dir"):
            self.observe_dist(result, layer=layer or "dist")
        elif hasattr(result, "timings") and hasattr(result, "bsp_native"):
            self.observe_theorem2(result)
        elif hasattr(result, "window") and hasattr(result, "bsp"):
            self.observe_theorem1(result)
        elif hasattr(result, "supersteps") and hasattr(result, "topology_name"):
            self.observe_network_run(result)
        elif hasattr(result, "ledger"):
            self.observe_bsp(result, layer=layer or "BSP")
        elif hasattr(result, "makespan"):
            self.observe_logp(result, layer=layer or "LogP")
        elif hasattr(result, "total_hops"):
            self.observe_routing(result, layer=layer or "network")
        else:
            raise TypeError(
                f"Observation has no observer for {type(result).__name__}"
            )
