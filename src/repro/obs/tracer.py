"""Layer-labelled execution spans and the Chrome ``trace_event`` exporter.

A :class:`Tracer` collects :class:`Span` records — supersteps, message
lifetimes (submit → acquire), routing hops — each labelled with the
*layer* that produced it (the same labels the engine's diagnostics use:
``"guest BSP on host LogP"``, ``"network"``, ...).  Time is the layer's
simulated clock; in a stacked run every layer reports in the host
machine's clock, so the spans of all layers line up on one axis.

Two exports:

* :meth:`Tracer.to_chrome` / :meth:`Tracer.write_chrome` — the Chrome
  ``trace_event`` JSON object format.  Load the file at
  ``chrome://tracing`` or https://ui.perfetto.dev: each *layer* becomes a
  process row (named via ``process_name`` metadata), each processor a
  thread row, point-to-point spans are complete (``"X"``) events and
  message lifetimes async (``"b"``/``"e"``) events keyed by message uid.
  One simulated time unit is exported as one microsecond.
* :meth:`Tracer.flamegraph` — a compact per-layer text summary
  aggregating total span duration by name, for terminal inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One observed interval of a simulated execution.

    ``tid`` is the acting processor (0 for machine-wide events such as a
    BSP barrier); ``async_id`` marks a message-lifetime span that may
    overlap others on the same processor row and is exported as a Chrome
    async event instead of a complete one.
    """

    layer: str
    name: str
    start: int
    end: int
    tid: int = 0
    cat: str = "sim"
    args: dict | None = None
    async_id: int | None = None

    @property
    def duration(self) -> int:
        return self.end - self.start


class Tracer:
    """Collects spans and instants; layers are registered on first use."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[tuple[str, str, int, int, dict | None]] = []
        self._layers: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def layer_id(self, layer: str) -> int:
        """Stable numeric id (Chrome ``pid``) for a layer label."""
        pid = self._layers.get(layer)
        if pid is None:
            pid = self._layers[layer] = len(self._layers) + 1
        return pid

    @property
    def layers(self) -> tuple[str, ...]:
        return tuple(self._layers)

    def span(
        self,
        layer: str,
        name: str,
        start: int,
        end: int,
        *,
        tid: int = 0,
        cat: str = "sim",
        args: dict | None = None,
        async_id: int | None = None,
    ) -> None:
        self.layer_id(layer)
        self.spans.append(
            Span(
                layer=layer,
                name=name,
                start=start,
                end=max(start, end),
                tid=tid,
                cat=cat,
                args=args,
                async_id=async_id,
            )
        )

    def instant(
        self, layer: str, name: str, time: int, *, tid: int = 0, args: dict | None = None
    ) -> None:
        self.layer_id(layer)
        self.instants.append((layer, name, time, tid, args))

    # -- Chrome trace_event export -------------------------------------

    def to_chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object document."""
        events: list[dict] = []
        for layer, pid in self._layers.items():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": layer},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        for s in self.spans:
            pid = self._layers[s.layer]
            common = {
                "name": s.name,
                "cat": s.cat,
                "pid": pid,
                "tid": s.tid,
            }
            if s.args:
                common["args"] = s.args
            if s.async_id is None:
                events.append({**common, "ph": "X", "ts": s.start, "dur": s.duration})
            else:
                ident = f"0x{s.async_id:x}"
                events.append({**common, "ph": "b", "id": ident, "ts": s.start})
                events.append(
                    {
                        "name": s.name,
                        "cat": s.cat,
                        "pid": pid,
                        "tid": s.tid,
                        "ph": "e",
                        "id": ident,
                        "ts": s.end,
                    }
                )
        for layer, name, time, tid, args in self.instants:
            ev = {
                "name": name,
                "cat": "sim",
                "ph": "i",
                "ts": time,
                "pid": self._layers[layer],
                "tid": tid,
                "s": "t",
            }
            if args:
                ev["args"] = args
            events.append(ev)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "time_unit": "1 simulated step == 1us",
            },
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write :meth:`to_chrome` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path

    # -- text summary --------------------------------------------------

    def flamegraph(self, width: int = 40) -> str:
        """Per-layer aggregate of span time by name, widest bar first."""
        lines: list[str] = []
        for layer in self._layers:
            totals: dict[str, tuple[int, int]] = {}
            for s in self.spans:
                if s.layer != layer:
                    continue
                dur, n = totals.get(s.name, (0, 0))
                totals[s.name] = (dur + s.duration, n + 1)
            if not totals:
                continue
            lines.append(f"[{layer}]")
            peak = max(dur for dur, _n in totals.values()) or 1
            for name, (dur, n) in sorted(
                totals.items(), key=lambda kv: -kv[1][0]
            ):
                bar = "#" * max(1, round(width * dur / peak))
                lines.append(f"  {name:<24s} {dur:>10d} x{n:<6d} {bar}")
        return "\n".join(lines) if lines else "(no spans recorded)"
