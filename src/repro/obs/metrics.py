"""Metrics primitives: counters, gauges, histograms, and their registry.

The observability layer's design rule is that *instrumentation never
changes execution*: every metric is either published once per run from
data the machines already record (cost ledgers, kernel counters, stall
ledgers, traces), or incremented behind an ``if obs is not None`` guard
cheap enough for the perf-smoke gate's < 5 % disabled-overhead budget
(see ``docs/OBSERVABILITY.md``).  The golden-trace suite pins the
stronger property: simulated clocks and message orders are bit-identical
with observation enabled and disabled.

Metrics are identified by ``(name, labels)`` — by convention every
machine labels its metrics with its ``layer`` (the same label the
engine's diagnostics carry), so a stacked run's registry separates the
guest BSP's supersteps from the host LogP's messages from the network's
link occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count (events drained, messages sent)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """A point-in-time level (queue high-water, makespan, slowdown)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def track_max(self, v: float) -> None:
        """Keep the maximum over repeated runs sharing one registry."""
        self.value = max(self.value, v)


@dataclass
class Histogram:
    """A scalar distribution (per-superstep ``w``/``h``, message latency,
    per-link occupancy) summarized as count/sum/min/max."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": round(self.mean, 4),
        }


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Get-or-create registry of every metric one observed run produced.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric object
    for ``(name, labels)``, creating it on first use — callers hold the
    returned object and mutate it directly, so the registry adds no cost
    to the hot path beyond the initial lookup.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, tuple], Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, kind: str, cls, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name=name, labels=key[2])
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # -- reporting -----------------------------------------------------

    def rows(self) -> list[tuple]:
        """Display rows ``(metric, kind, value, detail)``, sorted by name."""
        out: list[tuple] = []
        for (kind, name, labels), metric in sorted(self._metrics.items(), key=lambda kv: (kv[0][1], kv[0][2], kv[0][0])):
            ident = f"{name}{_fmt_labels(labels)}"
            if isinstance(metric, Histogram):
                d = metric.as_dict()
                out.append(
                    (
                        ident,
                        kind,
                        d["count"],
                        f"sum={d['sum']:g} min={d['min']:g} "
                        f"mean={d['mean']:g} max={d['max']:g}"
                        if d["count"]
                        else "empty",
                    )
                )
            else:
                value = metric.value
                if isinstance(value, float) and not value.is_integer():
                    value = round(value, 4)
                out.append((ident, kind, value, ""))
        return out

    def render(self, title: str = "metrics") -> str:
        """Pretty table of every metric (the ``--metrics`` CLI output)."""
        from repro.util.tables import render_table

        return render_table(
            ["metric", "kind", "value", "detail"], self.rows(), title=title
        )

    def as_dict(self) -> dict:
        """JSON-serializable projection, grouped by metric kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (kind, name, labels), metric in self._metrics.items():
            ident = f"{name}{_fmt_labels(labels)}"
            if isinstance(metric, Histogram):
                out["histograms"][ident] = metric.as_dict()
            elif isinstance(metric, Gauge):
                out["gauges"][ident] = metric.value
            else:
                out["counters"][ident] = metric.value
        return out
