"""Predicted-vs-observed cost assertions (``CostModelCheck``).

The paper's claims are shapes of measured curves — BSP's ``w + g·h + ℓ``
per superstep, LogP's ``≤ L`` delivery and ``L + 2o`` point-to-point
cost, the Theorem 1/2 slowdown predictions — so this module turns each
closed form into a *residual check* against a measured run:

* every residual row records the observed quantity, the model's
  prediction, and their difference/ratio;
* ``kind="exact"`` rows must match the prediction exactly (the BSP cost
  ledger *is* the formula);
* ``kind="upper"`` rows must stay at or below the prediction (LogP
  delivery latency ``≤ L``);
* ``kind="estimate"`` rows are reported with their ratio and judged
  against a relative tolerance;
* ``kind="factor"`` rows (slowdown vs an asymptotic, constant-free
  prediction) are judged to a constant multiplicative band.

``CostModelCheck.check(result)`` dispatches on the result type
(:class:`~repro.bsp.machine.BSPResult`,
:class:`~repro.logp.machine.LogPResult`, the Theorem 1/2 reports) and
returns a :class:`CostCheckReport`; ``report.assert_ok()`` raises with
the offending rows.  ``python -m repro.experiments run TH1 --metrics``
and ``... inspect <chain> `` print these reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CostResidual", "CostCheckReport", "CostModelCheck"]


@dataclass(frozen=True)
class CostResidual:
    """One predicted-vs-observed comparison.

    ``kind`` is ``"exact"`` (must equal), ``"upper"`` (observed must not
    exceed predicted), ``"estimate"`` (ratio judged by a relative
    tolerance), or ``"factor"`` (ratio judged to a constant
    multiplicative band — for asymptotic predictions).
    """

    name: str
    observed: float
    predicted: float
    kind: str = "exact"

    #: Band for ``kind="factor"``: the observed/predicted ratio must lie
    #: in ``[1/FACTOR_BAND, FACTOR_BAND]``.  Asymptotic predictions (the
    #: theorem slowdowns are ``O(S)`` with protocol constants elided)
    #: are judged to a constant factor, not a percentage.
    FACTOR_BAND = 8.0

    @property
    def residual(self) -> float:
        """Signed miss: ``observed - predicted``."""
        return self.observed - self.predicted

    @property
    def ratio(self) -> float:
        if self.predicted == 0:
            return 1.0 if self.observed == 0 else math.inf
        return self.observed / self.predicted

    def ok(self, rel_tol: float = 0.5) -> bool:
        if self.kind == "exact":
            return self.observed == self.predicted
        if self.kind == "upper":
            return self.observed <= self.predicted
        if self.kind == "factor":
            return 1.0 / self.FACTOR_BAND <= self.ratio <= self.FACTOR_BAND
        return abs(self.ratio - 1.0) <= rel_tol


@dataclass
class CostCheckReport:
    """All residuals of one checked run."""

    model: str
    residuals: list[CostResidual] = field(default_factory=list)

    def add(self, name: str, observed: float, predicted: float, kind: str = "exact") -> None:
        self.residuals.append(CostResidual(name, observed, predicted, kind))

    def failures(self, rel_tol: float = 0.5) -> list[CostResidual]:
        return [r for r in self.residuals if not r.ok(rel_tol)]

    def ok(self, rel_tol: float = 0.5) -> bool:
        return not self.failures(rel_tol)

    @property
    def max_abs_residual(self) -> float:
        return max((abs(r.residual) for r in self.residuals), default=0.0)

    def assert_ok(self, rel_tol: float = 0.5) -> "CostCheckReport":
        """Raise ``AssertionError`` listing every failed residual."""
        bad = self.failures(rel_tol)
        if bad:
            detail = "; ".join(
                f"{r.name}: observed={r.observed:g} predicted={r.predicted:g} "
                f"({r.kind}, ratio={r.ratio:.3f})"
                for r in bad
            )
            raise AssertionError(
                f"CostModelCheck[{self.model}]: {len(bad)} residual(s) out of "
                f"bounds — {detail}"
            )
        return self

    def rows(self) -> list[tuple]:
        return [
            (
                r.name,
                r.kind,
                f"{r.observed:g}",
                f"{r.predicted:g}",
                f"{r.residual:+g}",
                f"{r.ratio:.3f}" if math.isfinite(r.ratio) else "inf",
            )
            for r in self.residuals
        ]

    def render(self) -> str:
        from repro.util.tables import render_table

        return render_table(
            ["check", "kind", "observed", "predicted", "residual", "ratio"],
            self.rows(),
            title=f"CostModelCheck — {self.model}",
        )

    @classmethod
    def from_dict(cls, doc: dict) -> "CostCheckReport":
        """Rebuild a report from :meth:`as_dict` output — how campaign
        records round-trip their cost checks through JSON."""
        report = cls(model=doc.get("model", "?"))
        for row in doc.get("residuals", ()):
            report.add(
                row["name"],
                row["observed"],
                row["predicted"],
                row.get("kind", "exact"),
            )
        return report

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "residuals": [
                {
                    "name": r.name,
                    "kind": r.kind,
                    "observed": r.observed,
                    "predicted": r.predicted,
                    "residual": r.residual,
                    "ratio": r.ratio if math.isfinite(r.ratio) else None,
                }
                for r in self.residuals
            ],
        }


class CostModelCheck:
    """Compare a measured run against the paper's closed-form bounds."""

    #: Per-superstep rows are emitted up to this many supersteps; beyond
    #: it only the aggregate row is kept (the report stays readable).
    MAX_DETAIL_ROWS = 64

    @staticmethod
    def check_bsp(result) -> CostCheckReport:
        """BSP cost ledger vs ``w + g·h + ℓ`` (+ recovery): exact rows."""
        report = CostCheckReport(model=f"BSP p={result.params.p}")
        params = result.params
        total_pred = 0
        for rec in result.ledger:
            predicted = params.superstep_cost(rec.w, rec.h) + rec.retry_cost
            total_pred += predicted
            if rec.index < CostModelCheck.MAX_DETAIL_ROWS:
                report.add(
                    f"superstep[{rec.index}] w+g·h+l", rec.cost, predicted, "exact"
                )
        report.add("total_cost", result.total_cost, total_pred, "exact")
        return report

    @staticmethod
    def check_logp(result) -> CostCheckReport:
        """LogP trace vs the model's bounds: delivery within ``L`` of
        acceptance, point-to-point cost ``≥ 2o + L`` impossible to beat
        (lower bound as an ``upper`` check on ``-cost``), submission and
        acquisition gaps ``≥ G``.  Needs ``record_trace=True``."""
        params = result.params
        report = CostCheckReport(model=f"LogP p={params.p}")
        trace = result.trace
        if trace is None:
            # No trace: the only model-level claim checkable from the
            # result alone is nonnegativity, phrased as the usual
            # negated lower bound so a legitimate makespan passes.
            report.add("makespan >= 0", -result.makespan, 0, "upper")
            return report
        from repro.logp.trace import accept_times_from_result

        accept = accept_times_from_result(result)
        delivered = {uid: t for t, _dest, uid in trace.deliveries}
        worst = 0
        for uid, t_del in delivered.items():
            t_acc = accept.get(uid)
            if t_acc is not None:
                worst = max(worst, t_del - t_acc)
        report.add("max delivery latency <= L", worst, params.L, "upper")
        sub = {uid: t for t, _src, uid in trace.submissions}
        acq_end = {uid: t_end for _s, t_end, _pid, uid in trace.acquisitions}
        if acq_end:
            # Fastest observed point-to-point time; the model says a lone
            # message costs at least o (submit) + delivery + o (acquire),
            # delivery >= 1 — so 2o + 1 is a hard floor.
            fastest = min(
                acq_end[uid] - (sub[uid] - params.o)
                for uid in acq_end
                if uid in sub
            )
            report.add(
                "min end-to-end >= 2o + 1", -fastest, -(2 * params.o + 1), "upper"
            )
        return report

    @staticmethod
    def check_theorem1(report_obj) -> CostCheckReport:
        """Theorem 1 run: host-BSP ledger exact, slowdown vs prediction."""
        report = CostModelCheck.check_bsp(report_obj.bsp)
        report.model = (
            f"Theorem 1 (LogP p={report_obj.logp_params.p} on "
            f"BSP p={report_obj.bsp_params.p})"
        )
        report.add(
            "slowdown vs predicted",
            report_obj.slowdown,
            report_obj.predicted_slowdown,
            "estimate",
        )
        report.add(
            "window == floor(L/2)",
            report_obj.window,
            max(1, report_obj.logp_params.L // 2),
            "exact",
        )
        return report

    @staticmethod
    def check_theorem2(report_obj) -> CostCheckReport:
        """Theorem 2/3 run: native ledger exact, phase timings consistent,
        slowdown vs the paper's ``S(L, G, p, h)`` prediction."""
        report = CostModelCheck.check_bsp(report_obj.bsp_native)
        report.model = (
            f"Theorem 2/3 ({report_obj.routing} routing, "
            f"LogP p={report_obj.logp_params.p})"
        )
        if report_obj.timings:
            last_end = report_obj.timings[-1].route_end
            report.add(
                "makespan >= last route_end", -report_obj.total_logp_time, -last_end, "upper"
            )
        report.add(
            "slowdown vs predicted S",
            report_obj.slowdown,
            report_obj.predicted_slowdown,
            "factor",
        )
        return report

    @staticmethod
    def check(result) -> CostCheckReport:
        """Dispatch on the result's shape (duck-typed, import-free)."""
        if hasattr(result, "timings") and hasattr(result, "bsp_native"):
            return CostModelCheck.check_theorem2(result)
        if hasattr(result, "window") and hasattr(result, "bsp"):
            return CostModelCheck.check_theorem1(result)
        if hasattr(result, "ledger"):
            return CostModelCheck.check_bsp(result)
        if hasattr(result, "makespan"):
            return CostModelCheck.check_logp(result)
        raise TypeError(
            f"CostModelCheck has no model for {type(result).__name__}"
        )
