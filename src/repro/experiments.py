"""Command-line experiment runner: regenerate the paper's tables.

``python -m repro.experiments list`` shows the experiment ids (matching
DESIGN.md's index) and the built-in campaign names; ``python -m
repro.experiments run <id> [...]`` or ``run all`` prints the
corresponding tables (``--parallel N`` shards the ids over worker
processes).  ``python -m repro.experiments inspect <chain>`` runs a
demo program through a named :class:`~repro.engine.stack.Stack` chain
(``bsp-on-logp-on-network``, ``logp-on-bsp``, ...) and prints its
result row, cost-model residuals, and — with the shared observability
flags — metrics and traces.  ``python -m repro.experiments campaign
<name>`` runs a resumable, cache-backed parameter sweep over a
multiprocessing pool (``--parallel``, ``--resume``, ``--force``,
``--gate``; see :mod:`repro.campaign` and ``docs/CAMPAIGN.md``).

Shared flags (``run`` and ``inspect``):

* ``--json`` — emit one machine-readable JSON document per experiment
  alongside each pretty table, rows built on the shared
  :meth:`~repro.engine.result.MachineResult.as_row` projection where the
  underlying reports provide it;
* ``--metrics`` — attach an :class:`~repro.obs.Observation` and print
  its metric registry after the run;
* ``--trace OUT.json`` — additionally record layer-labelled spans and
  write a Chrome ``trace_event`` file loadable in Perfetto
  (``run`` with several ids writes one file per id, the id spliced in
  before the extension).

The pytest benchmarks in ``benchmarks/`` run the same code with shape
assertions and persistence; this runner is the zero-dependency way to
eyeball results.
"""

from __future__ import annotations

import argparse
import json
import operator
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.perf.event_queue import KERNELS
from repro.util.tables import render_table

__all__ = ["main", "EXPERIMENTS", "ExperimentTable"]


@dataclass
class ExperimentTable:
    """One experiment's outcome: a pretty table plus machine-readable rows.

    ``rows`` holds the display tuples exactly as :func:`render_table`
    shows them; ``records``, when supplied, holds richer per-row dicts —
    typically a :meth:`MachineResult.as_row` projection merged with the
    experiment's configuration axes.  When absent, records are derived
    by zipping the display columns.  ``extras`` holds pre-rendered
    blocks (cost-check reports, ...) printed after the main table.
    """

    id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    records: list[dict] | None = field(default=None)
    extras: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(self.columns, self.rows, title=self.title)
        for block in self.extras:
            out += "\n\n" + block
        return out

    def as_json(self) -> dict:
        records = self.records
        if records is None:
            records = [dict(zip(self.columns, row)) for row in self.rows]
        return {"id": self.id, "title": self.title, "rows": records}


def _exp_table1(obs=None) -> ExperimentTable:
    from repro.models.cost import TABLE1
    from repro.networks.params import TOPOLOGY_BUILDERS, measure_network_params

    rows = []
    for name, builder in TOPOLOGY_BUILDERS.items():
        for p in (16, 64):
            topo, config = builder(p)
            meas = measure_network_params(
                topo, table_name=name, hs=(1, 2, 4, 8), seeds=(0, 1),
                config=config, obs=obs,
            )
            th_g, th_d = meas.theory()
            costs = TABLE1[name]
            rows.append(
                (
                    name,
                    meas.p,
                    f"{meas.gamma:.2f}",
                    f"{th_g:.1f} ~ {costs.gamma_expr}",
                    f"{meas.delta:.2f}",
                    f"{th_d:.1f} ~ {costs.delta_expr}",
                )
            )
    return ExperimentTable(
        "T1",
        "T1 — Table 1: fitted T(h) = gamma h + delta per topology",
        ["topology", "p", "gamma fit", "gamma Table 1", "delta fit", "delta Table 1"],
        rows,
    )


def _exp_theorem1(obs=None) -> ExperimentTable:
    """Thin wrapper over the ``theorem1`` campaign target: the CLI table
    and a :class:`~repro.campaign.CampaignSpec` sweep run the exact same
    per-point code, so their records are interchangeable."""
    from repro.campaign.targets import run_point
    from repro.obs.check import CostCheckReport

    rows = []
    records = []
    extras = []
    for gs, ls in ((1, 1), (4, 1), (1, 4), (4, 4)):
        point = {"kernel": "alltoall", "p": 16, "L": 8, "o": 1, "G": 2,
                 "gs": gs, "ls": ls, "seed": 0}
        rec = run_point("theorem1", point, obs=obs)
        check = CostCheckReport.from_dict(rec["cost_check"])
        rows.append(
            (
                f"g={rec['g']}, l={rec['l']}",
                rec["windows"],
                rec["max_window_h"],
                rec["capacity"],
                f"{rec['slowdown']:.2f}",
                f"{rec['predicted_slowdown']:.2f}",
                rec["outputs_match"],
                check.ok(),
            )
        )
        records.append(rec)
        if not extras:  # full residual detail for the matched machine
            extras.append(check.render())
    return ExperimentTable(
        "TH1",
        "TH1 — Theorem 1: stall-free LogP (all-to-all) on BSP  [LogP p=16, L=8, o=1, G=2]",
        ["BSP machine", "cycles", "max h", "ceil(L/G)", "slowdown", "predicted",
         "outputs match", "residuals ok"],
        rows,
        records=records,
        extras=extras,
    )


def _exp_cb(obs=None) -> ExperimentTable:
    from repro.core.cb import measure_cb
    from repro.models.cost import cb_time_lower, cb_time_upper
    from repro.models.params import LogPParams

    rows = []
    for p in (8, 64, 512):
        for L, G in ((8, 8), (8, 2), (16, 2)):
            params = LogPParams(p=p, L=L, o=1, G=G)
            m = measure_cb(params, [1] * p, operator.add, op_cost=0)
            rows.append(
                (
                    p,
                    params.capacity,
                    m.t_cb,
                    f"{cb_time_lower(params):.0f}",
                    f"{cb_time_upper(params):.0f}",
                )
            )
    return ExperimentTable(
        "P1",
        "P1 — Propositions 1/2: Combine-and-Broadcast cost (o=1)",
        ["p", "ceil(L/G)", "T_CB", "Prop1 lower", "paper upper"],
        rows,
    )


def _exp_theorem2(obs=None) -> ExperimentTable:
    from repro.core.det_routing import measure_det_routing
    from repro.models.cost import t_route_small
    from repro.models.params import LogPParams
    from repro.routing.workloads import balanced_h_relation

    params = LogPParams(p=16, L=8, o=1, G=2)
    rows = []
    for h in (1, 4, 16, 64, 256, 512):
        m = measure_det_routing(params, balanced_h_relation(params.p, h, seed=h))
        rows.append(
            (
                h,
                m.outcomes[0].sort_scheme,
                m.total_time,
                t_route_small(h, params),
                f"{m.total_time / (params.G * h + params.L):.1f}",
            )
        )
    return ExperimentTable(
        "TH2",
        "TH2 — Theorem 2: deterministic h-relation routing (p=16, L=8, o=1, G=2)",
        ["h", "scheme", "T total", "optimal", "T/(Gh+L)"],
        rows,
    )


def _exp_theorem3(obs=None) -> ExperimentTable:
    from repro.core.rand_routing import measure_rand_routing
    from repro.models.params import LogPParams
    from repro.routing.workloads import balanced_h_relation

    params = LogPParams(p=16, L=16, o=1, G=2)
    pairs = balanced_h_relation(params.p, 16, seed=123)
    rows = []
    for R in (2, 4, 8, 16):
        runs = [measure_rand_routing(params, pairs, seed=s, R=R) for s in range(6)]
        rows.append(
            (
                R,
                f"{sum(r.stalled for r in runs)}/6",
                f"{sum(r.clean for r in runs)}/6",
                max(r.total_time for r in runs),
                params.G * 16,
            )
        )
    return ExperimentTable(
        "TH3",
        "TH3 — Theorem 3: randomized routing, stall probability vs batch budget",
        ["R", "stalled", "clean", "T max", "G h"],
        rows,
    )


def _exp_stalling(obs=None) -> ExperimentTable:
    from repro.core.stalling import measure_hotspot, measure_stall_storm
    from repro.models.params import LogPParams

    params = LogPParams(p=32, L=8, o=1, G=2)
    rows = []
    for k in (4, 8, 16, 31):
        rep = measure_hotspot(params, k)
        rows.append(("hot spot", k, rep.makespan, rep.predicted, rep.num_stalls))
    for h in (4, 8, 16):
        rep = measure_stall_storm(params, h)
        rows.append(("convoy", h, rep.makespan, rep.worst_case_bound, len(rep.result.stalls)))
    return ExperimentTable(
        "ST",
        "ST — stalling: hot-spot drain rate and the O(Gh^2) worst case (p=32, L=8, o=1, G=2)",
        ["workload", "k / h", "makespan", "bound", "stalls"],
        rows,
    )


def _exp_observation1(obs=None) -> ExperimentTable:
    from repro.core.network_support import survey_observation1

    rows = [
        (r.name, r.p, r.g_star, r.l_star, r.G_star, r.L_star,
         f"{r.G_over_g:.2f}", f"{r.L_over_lg:.2f}")
        for r in survey_observation1(
            (
                "d-dim array",
                "hypercube (multi-port)",
                "hypercube (single-port)",
                "butterfly",
                "ccc",
                "shuffle-exchange",
                "mesh-of-trees",
            ),
            (16, 64),
        )
    ]
    return ExperimentTable(
        "OB1",
        "OB1 — Observation 1: best attainable parameters per network",
        ["topology", "p", "g*", "l*", "G*", "L*", "G*/g*", "L*/(l*+g*)"],
        rows,
    )


def _exp_workpreserving(obs=None) -> ExperimentTable:
    from repro.core.logp_on_bsp import simulate_logp_on_bsp_workpreserving
    from repro.models.params import LogPParams
    from repro.programs import logp_sum_program

    params = LogPParams(p=16, L=8, o=1, G=2)
    rows = []
    records = []
    for bsp_p in (16, 8, 4, 2, 1):
        rep = simulate_logp_on_bsp_workpreserving(
            params, logp_sum_program(), bsp_p, obs=obs
        )
        rows.append(
            (bsp_p, params.p // bsp_p, rep.bsp.total_cost, rep.work,
             f"{rep.slowdown:.1f}", rep.outputs_match)
        )
        records.append({"bsp_p": bsp_p, "work": rep.work, **rep.as_row()})
    return ExperimentTable(
        "WP",
        "WP — footnote 1: work-preserving Theorem 1 simulation (LogP p=16)",
        ["p'", "charges/host", "T_BSP", "work p'*T", "slowdown", "outputs match"],
        rows,
        records=records,
    )


#: id -> (description, builder).  Builders accept an optional
#: ``obs=Observation(...)``; experiments whose drivers support it (T1,
#: TH1, WP) publish metrics/spans into it, the rest ignore it.
EXPERIMENTS: dict[str, tuple[str, Callable[..., ExperimentTable]]] = {
    "T1": ("Table 1: network bandwidth/latency parameters", _exp_table1),
    "TH1": ("Theorem 1: LogP on BSP", _exp_theorem1),
    "P1": ("Propositions 1/2: Combine-and-Broadcast", _exp_cb),
    "TH2": ("Theorem 2: deterministic BSP on LogP", _exp_theorem2),
    "TH3": ("Theorem 3: randomized routing", _exp_theorem3),
    "ST": ("Sections 2.2/3: stalling analyses", _exp_stalling),
    "OB1": ("Observation 1: direct implementations on networks", _exp_observation1),
    "WP": ("Footnote 1: work-preserving simulation", _exp_workpreserving),
}


# -- inspect: run a demo program through a named Stack chain -------------


def _parse_chain(spec: str) -> tuple[str, list[str]]:
    """Back-compat alias for :func:`repro.engine.request.parse_chain`."""
    from repro.engine.request import parse_chain

    return parse_chain(spec)


def _build_inspect_stack(
    guest: str, hosts: list[str], p: int, topology: str, kernel: str | None = None
):
    """Back-compat shim: the demo Stack for ``inspect``, now assembled
    through the one shared :class:`~repro.engine.request.RunRequest`
    path (same programs and parameters as before)."""
    from repro.engine.request import RunRequest, build_stack

    chain = guest if hosts == [guest] else "-on-".join([guest, *hosts])
    return build_stack(
        RunRequest(chain=chain, p=p, topology=topology, kernel=kernel)
    )


def _inspect(args) -> int:
    from repro.engine.request import RunRequest
    from repro.engine.stack import Stack
    from repro.errors import ProgramError
    from repro.obs import CostModelCheck, Observation

    try:
        stack = Stack.from_request(
            RunRequest(
                chain=args.chain,
                p=args.p,
                topology=args.topology,
                kernel=getattr(args, "kernel", None),
            )
        )
    except (ValueError, KeyError) as exc:
        print(f"inspect: {exc}", file=sys.stderr)
        return 2
    obs = Observation(trace=bool(args.trace))
    try:
        result = stack.run(obs=obs)
    except ProgramError as exc:
        print(f"inspect: {exc}", file=sys.stderr)
        return 2

    row = result.as_row()
    doc: dict = {"chain": stack.describe(), "result": row}
    print(f"stack: {stack.describe()}  ->  {type(result).__name__}")
    print(render_table(
        ["field", "value"],
        [(k, json.dumps(v, default=str) if isinstance(v, dict) else v)
         for k, v in row.items()],
    ))
    try:
        check = CostModelCheck.check(result)
    except TypeError:
        check = None
    if check is not None:
        print()
        print(check.render())
        doc["cost_check"] = check.as_dict()
    for block in _obs_blocks(
        obs, doc, metrics=args.metrics, trace_path=args.trace,
        title=stack.describe(),
    ):
        print()
        print(block)
    if args.trace and args.metrics:
        print()
        print(obs.flamegraph())
    if args.json:
        print(json.dumps(doc, default=str))
    return 0


def _trace_path(base: str, exp_id: str, multi: bool) -> str:
    if not multi:
        return base
    stem, dot, ext = base.rpartition(".")
    return f"{stem}.{exp_id}.{ext}" if dot else f"{base}.{exp_id}"


def _obs_blocks(obs, doc: dict, *, metrics: bool, trace_path: str | None,
                title: str) -> list[str]:
    """The shared ``--metrics`` / ``--trace`` epilogue every subcommand
    used to hand-roll: render the registry, write the Chrome trace, and
    fold both into the JSON document.  Returns printable text blocks."""
    blocks: list[str] = []
    if obs is None:
        return blocks
    if metrics:
        blocks.append(obs.render_metrics(title=f"metrics — {title}"))
        doc["metrics"] = obs.metrics.as_dict()
    if trace_path:
        obs.write_trace(trace_path)
        blocks.append(
            f"trace written to {trace_path} ({len(obs.tracer.spans)} spans; "
            f"load in Perfetto / chrome://tracing)"
        )
        doc["trace"] = trace_path
    return blocks


def _experiment_output(exp_id: str, *, as_json: bool, metrics: bool,
                       trace_path: str | None) -> str:
    """Run one experiment id and return its full printable output —
    table, optional JSON document, metrics, trace notice.  One code path
    for serial ``run``, parallel ``run``, and the campaign targets."""
    from repro.obs import Observation

    obs = Observation(trace=bool(trace_path)) if (metrics or trace_path) else None
    table = EXPERIMENTS[exp_id][1](obs=obs)
    parts = [table.render()]
    doc = table.as_json()
    blocks = _obs_blocks(
        obs, doc, metrics=metrics, trace_path=trace_path, title=exp_id
    )
    if as_json:
        parts.append(json.dumps(doc, default=str))
    parts.extend(blocks)
    return "\n\n".join(parts)


def _run_experiments(args) -> int:
    ids = list(EXPERIMENTS) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; try 'list'", file=sys.stderr)
        return 2
    multi = len(ids) > 1
    jobs = [
        (
            i,
            {
                "as_json": args.json,
                "metrics": args.metrics,
                "trace_path": _trace_path(args.trace, i, multi) if args.trace else None,
            },
        )
        for i in ids
    ]
    workers = max(1, getattr(args, "parallel", 1) or 1)
    if workers > 1 and len(jobs) > 1:
        import multiprocessing as mp

        with mp.get_context().Pool(min(workers, len(jobs))) as pool:
            outputs = pool.starmap(_experiment_job, jobs)
    else:
        outputs = [_experiment_job(i, kwargs) for i, kwargs in jobs]
    for text in outputs:
        print(text)
        print()
    return 0


def _experiment_job(exp_id: str, kwargs: dict) -> str:
    """Picklable wrapper for the ``run --parallel`` worker pool."""
    return _experiment_output(exp_id, **kwargs)


# -- campaign: resumable, cache-backed sweeps over a worker pool --------


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axes(pairs: list[str]) -> list[tuple[str, tuple]]:
    out = []
    for pair in pairs or ():
        name, eq, values = pair.partition("=")
        if not eq:
            raise ValueError(f"expected axis=v1,v2,... got {pair!r}")
        out.append((name, tuple(_parse_value(v) for v in values.split(","))))
    return out


def _campaign_spec(args):
    """Resolve the positional name: a built-in campaign, or an ad-hoc
    spec assembled from a target id plus ``--grid``/``--base`` axes."""
    from repro.campaign import CAMPAIGNS, CampaignSpec

    overrides = {}
    if args.seeds:
        overrides["seeds"] = tuple(int(s) for s in args.seeds.split(","))
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    spec = CAMPAIGNS.get(args.name)
    if spec is not None:
        if args.grid or args.base:
            raise ValueError(
                f"{args.name!r} is a built-in campaign; --grid/--base only "
                f"apply to ad-hoc targets"
            )
        if overrides:
            doc = spec.as_dict()
            doc.update(
                {"seeds": list(overrides.get("seeds", spec.seeds)),
                 "timeout_s": overrides.get("timeout_s", spec.timeout_s)}
            )
            spec = CampaignSpec.from_dict(doc)
        return spec
    grid = _parse_axes(args.grid)
    base = [(name, values[0]) for name, values in _parse_axes(args.base)]
    return CampaignSpec(
        name=args.store_name or args.name.replace(":", "-"),
        target=args.name,
        grid=tuple(grid),
        base=tuple(base),
        seeds=overrides.get("seeds", (0,)),
        timeout_s=overrides.get("timeout_s"),
        description="ad-hoc CLI campaign",
    )


def _campaign(args) -> int:
    from repro.campaign import RegressionGate, run_campaign
    from repro.errors import ParameterError
    from repro.obs import Observation

    try:
        spec = _campaign_spec(args)
    except (ValueError, ParameterError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    obs = Observation(trace=bool(args.trace)) if (args.metrics or args.trace) else None
    try:
        report = run_campaign(
            spec,
            store_dir=args.store,
            parallel=args.parallel,
            force=args.force,
            stop_after=args.stop_after,
            obs=obs,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except (ValueError, ParameterError) as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    doc = report.as_dict()
    rc = 0 if (report.ok or report.interrupted) else 1
    if args.gate or args.update_gate:
        gate = RegressionGate()
        records = report.records()
        if args.update_gate:
            path = gate.update(records, args.update_gate, campaign=spec.name)
            print(f"\ngate baseline written to {path}")
        if args.gate:
            result = gate.check(records, args.gate)
            print()
            print(result.render())
            doc["gate"] = {"ok": result.ok, "failures": result.failures}
            if not result.ok:
                rc = 1
    blocks = _obs_blocks(
        obs, doc, metrics=args.metrics, trace_path=args.trace,
        title=f"campaign {spec.name}",
    )
    if args.json:
        print()
        print(json.dumps(doc, default=str))
    for block in blocks:
        print()
        print(block)
    if report.interrupted:
        print(
            f"\ninterrupted after {report.ran} point(s); rerun to resume "
            f"from {report.store_dir}",
        )
    return rc


# -- dist: the real-process socket backend ------------------------------


def _parse_faults(spec: str | None, kills: list[str] | None, seed: int):
    """Build a FaultPlan from ``--faults k=v,...`` and ``--kill PID:S``."""
    from repro.faults import FaultPlan

    rates: dict = {}
    for pair in (spec.split(",") if spec else ()):
        key, eq, value = pair.partition("=")
        if not eq:
            raise ValueError(f"--faults expects k=v pairs, got {pair!r}")
        aliases = {"drop": "drop_rate", "dup": "dup_rate",
                   "delay": "delay_rate", "reorder": "reorder_rate",
                   "max_extra_delay": "max_extra_delay"}
        field = aliases.get(key, key)
        rates[field] = int(value) if field == "max_extra_delay" else float(value)
    crash = {}
    for pair in kills or ():
        pid, colon, s = pair.partition(":")
        if not colon:
            raise ValueError(f"--kill expects PID:SUPERSTEP, got {pair!r}")
        crash[int(pid)] = int(s)
    if not rates and not crash:
        return None
    if rates.get("delay_rate") and not rates.get("max_extra_delay"):
        rates["max_extra_delay"] = 5
    return FaultPlan(seed=seed, crash=crash or None, **rates)


def _dist(args) -> int:
    import tempfile

    from repro.dist import DistParams, run_reference
    from repro.engine import Stack
    from repro.errors import DistRunError, ParameterError
    from repro.obs import Observation

    try:
        plan = _parse_faults(args.faults, args.kill, args.seed)
    except (ValueError, ParameterError) as exc:
        print(f"dist: {exc}", file=sys.stderr)
        return 2
    kwargs = {"rounds": args.rounds}
    log_dir = args.log_dir or tempfile.mkdtemp(prefix="repro-dist-")
    params = DistParams(run_timeout_s=args.timeout)
    obs = Observation(trace=bool(args.trace)) if (args.metrics or args.trace) else None
    stack = Stack(args.program).on_dist(
        args.p, kwargs=kwargs, params=params, log_dir=log_dir
    )
    try:
        result = stack.run(faults=plan, obs=obs)
    except DistRunError as exc:
        print(f"dist run failed loudly (as designed): {exc}", file=sys.stderr)
        return 1
    expected = run_reference(args.program, args.p, kwargs)
    correct = result.results == expected
    print(f"program {args.program!r} on {args.p} real processes: "
          f"{result.rounds} rounds in {result.wall_s:.3f}s "
          f"({result.restarts} restart(s))")
    print(f"final states: {result.results}")
    print(f"matches in-process reference: {correct}")
    if plan is not None:
        print(f"wire faults injected: {result.wire_faults}  "
              f"channel: retransmits={result.channel_stats['retransmits']} "
              f"dup_received={result.channel_stats['dup_received']}")
    report = result.analyze()
    print(f"log audit ({report['events']} events across "
          f"{len(report['files'])} files): "
          f"{'clean' if report['clean'] else 'VIOLATIONS'}")
    for v in report["protocol_violations"] + report["model_violations"]:
        print(f"  - {v}")
    print(f"event logs kept in {log_dir}")
    doc = {
        "result": result.summary(),
        "states": result.results,
        "reference_match": correct,
        "audit": {k: report[k] for k in
                  ("events", "clean", "protocol_violations",
                   "model_violations", "torn")},
        "log_dir": log_dir,
    }
    for block in _obs_blocks(
        obs, doc, metrics=args.metrics, trace_path=args.trace,
        title=f"dist {args.program}",
    ):
        print()
        print(block)
    if args.json:
        print()
        print(json.dumps(doc, default=str))
    return 0 if (correct and report["clean"]) else 1


# -- serve / request: simulation-as-a-service ---------------------------


def _parse_request_params(pairs: list[str] | None) -> dict:
    out = {}
    for pair in pairs or ():
        key, eq, value = pair.partition("=")
        if not eq:
            raise ValueError(f"--param expects K=V (K in L,o,G,g,l), got {pair!r}")
        out[key] = int(value)
    return out


def _print_service_stats(stats: dict) -> None:
    from repro.util.tables import render_table

    rows = [
        (k, stats[k])
        for k in ("requests", "served", "hit", "dedup", "miss", "failed",
                  "pool_jobs", "pool_points", "hit_rate", "reconciled")
    ]
    print(render_table(["counter", "value"], rows, title="service stats"))


def _serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, SimulationService
    from repro.service import serve as serve_tcp

    cfg = ServiceConfig(
        store_dir=args.store,
        shards=args.shards,
        workers=args.workers,
        timeout_s=args.timeout,
        batch_window_s=args.batch_window,
    )
    if args.smoke:
        return _serve_smoke(cfg, args)

    async def _main() -> None:
        async with SimulationService(cfg) as svc:
            server = await serve_tcp(svc, args.host, args.port)
            sock = server.sockets[0].getsockname()
            print(
                f"serving on {sock[0]}:{sock[1]}  "
                f"(store {cfg.store_dir}, {cfg.shards} shards, "
                f"workers={cfg.workers}; ops: run/stats/reload/ping)",
                flush=True,
            )
            try:
                async with server:
                    await server.serve_forever()
            finally:
                _print_service_stats(svc.stats.as_dict())
                if args.metrics:
                    from repro.obs import Observation

                    obs = Observation()
                    obs.observe_service(svc.stats)
                    print()
                    print(obs.render_metrics(title="metrics — service"))

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_smoke(cfg, args) -> int:
    """Self-contained end-to-end smoke: real server, real socket client,
    mixed hit/miss/dedup traffic, counters asserted to reconcile.  Backs
    ``make serve-smoke`` and the service-smoke CI job."""
    import asyncio
    import dataclasses

    from repro.service import ServiceClient, SimulationService
    from repro.service import serve as serve_tcp

    cfg = dataclasses.replace(cfg, batch_window_s=max(cfg.batch_window_s, 0.05))
    docs = [{"chain": "bsp", "p": 4, "seed": s} for s in range(3)]
    copies = 4

    async def _main() -> tuple[dict, list]:
        async with SimulationService(cfg) as svc:
            server = await serve_tcp(svc, args.host, 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(args.host, port)
            assert await client.ping()
            # Wave 1: `copies` concurrent copies of each unique request
            # — one miss per unique key, the rest dedup against it.
            wave1 = await asyncio.gather(
                *(client.run(d) for d in docs for _ in range(copies))
            )
            # Wave 2: the same requests again — all cache hits.
            wave2 = await asyncio.gather(*(client.run(d) for d in docs))
            stats = await client.stats()
            await client.close()
            server.close()
            await server.wait_closed()
            return stats, wave1 + wave2

    stats, responses = asyncio.run(_main())
    n = len(docs)
    checks = [
        ("every response ok", all(r.get("ok") for r in responses)),
        ("requests == issued", stats["requests"] == n * copies + n),
        ("counters reconcile", stats["reconciled"]),
        (f"miss == {n} unique", stats["miss"] == n),
        (f"dedup == {n * (copies - 1)}", stats["dedup"] == n * (copies - 1)),
        (f"hit == {n} repeats", stats["hit"] == n),
        ("pool saw only unique points", stats["pool_points"] == n),
        ("no failures", stats["failed"] == 0),
    ]
    _print_service_stats(stats)
    ok = True
    for label, passed in checks:
        print(f"  {'PASS' if passed else 'FAIL'}  {label}")
        ok = ok and passed
    print(f"serve smoke: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _request(args) -> int:
    from repro.engine.request import RunRequest
    from repro.errors import ParameterError

    try:
        req = RunRequest(
            chain=args.chain,
            program=args.program,
            workload=args.workload,
            args=_parse_workload_params(args.arg),
            p=args.p,
            topology=args.topology,
            params=_parse_request_params(args.param),
            seed=args.seed,
            kernel=args.kernel,
            metrics=args.with_metrics,
        )
    except (ValueError, ParameterError) as exc:
        print(f"request: {exc}", file=sys.stderr)
        return 2
    if args.dry_run:
        from repro.campaign import code_fingerprint

        print(json.dumps(
            {"request": req.to_dict(), "key": req.key(code_fingerprint())},
            indent=2,
        ))
        return 0
    docs = [req.to_dict()] * max(1, args.count)
    if args.local:
        import asyncio
        import tempfile

        from repro.service import ServiceConfig, SimulationService

        store = args.store or tempfile.mkdtemp(prefix="repro-service-")

        async def _go():
            cfg = ServiceConfig(store_dir=store, shards=args.shards, workers=0)
            async with SimulationService(cfg) as svc:
                rs = await asyncio.gather(*(svc.submit(d) for d in docs))
                return rs, svc.stats.as_dict()

        responses, stats = asyncio.run(_go())
    else:
        from repro.service import request_sync

        try:
            responses = request_sync(args.host, args.port, docs)
        except ConnectionError as exc:
            print(
                f"request: cannot reach {args.host}:{args.port} ({exc}); "
                f"start one with 'serve' or use --local",
                file=sys.stderr,
            )
            return 2
        stats = None
    for resp in responses:
        outcome = resp.get("outcome", "?")
        status = resp.get("status", "?")
        print(f"{req.describe()}  ->  {outcome}/{status}  key={resp.get('key')}")
        if resp.get("error"):
            print(f"  error: {resp['error']}")
    if stats is not None:
        print()
        _print_service_stats(stats)
    if args.json:
        print()
        print(json.dumps(responses if len(responses) > 1 else responses[0],
                         default=str))
    return 0 if all(r.get("ok") for r in responses) else 1


def _parse_workload_params(pairs: list[str] | None) -> dict:
    out: dict = {}
    for pair in pairs or []:
        key, _, value = pair.partition("=")
        if not key or not value:
            raise SystemExit(f"workloads: bad --param {pair!r} (want K=V)")
        out[key] = _parse_value(value)
    return out


def _workload_run_line(run) -> str:
    result = run.result
    cost = getattr(result, "total_cost", None)
    if cost is None:
        cost = getattr(result, "makespan", "?")
    steps = getattr(result, "num_supersteps", "-")
    status = "ok" if run.ok else "FAIL"
    status += "+val" if run.validated else ""
    return (
        f"{run.workload.name:20s} p={run.request.p:<3d} "
        f"cost={cost:<8} supersteps={steps:<4} {status}"
    )


def _workloads_list(args) -> int:
    from repro.workloads import iter_workloads

    for w in iter_workloads(family=getattr(args, "family", None)):
        space = "  ".join(f"{k}={list(v)}" for k, v in sorted(w.space.items()))
        print(f"{w.name:20s} [{w.family}/{w.model}]  {space}")
    return 0


def _workloads_describe(args) -> int:
    from repro.errors import ParameterError
    from repro.workloads import get

    try:
        w = get(args.name)
    except ParameterError as exc:
        print(f"workloads: {exc}", file=sys.stderr)
        return 2
    print(w.describe())
    print(f"  campaign: {w.spec(quick=True).name} (target=workload)")
    return 0


def _workloads_run(args) -> int:
    from repro.workloads import get, iter_workloads, run_workload

    if args.all:
        targets = list(iter_workloads(family=args.family))
    else:
        if not args.name:
            print("workloads: give a workload name or --all", file=sys.stderr)
            return 2
        targets = [get(args.name)]
    records = []
    all_ok = True
    for w in targets:
        points = (
            list(w.points(quick=True, seeds=(args.seed,)))
            if args.quick
            else [{"p": args.p or int(w.defaults["p"]), "seed": args.seed,
                   **_parse_workload_params(args.param)}]
        )
        runs = []
        for point in points:
            point = dict(point)
            p, seed = point.pop("p"), point.pop("seed")
            run = run_workload(
                w.name, p=p, seed=seed, params=point, chain=args.chain,
                kernel=args.kernel, validate=not args.no_validate,
            )
            runs.append(run)
            all_ok = all_ok and run.ok
            print(_workload_run_line(run))
            if args.verbose or not run.ok:
                print(run.report.render())
        records.append({
            "workload": w.name,
            "family": w.family,
            "points": [r.as_record() for r in runs],
            "ok": all(r.ok for r in runs),
        })
    if args.out:
        doc = {
            "tool": "experiments workloads run",
            "quick": bool(args.quick),
            "seed": args.seed,
            "ok": all_ok,
            "workloads": records,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
        print(f"wrote {args.out}")
    return 0 if all_ok else 1


def _workloads_sweep(args) -> int:
    from repro.workloads import (
        scalability_study,
        sorting_regime_study,
        streaming_bound_study,
    )

    studies = {
        "sorting-regimes": lambda: sorting_regime_study(
            seed=args.seed, quick=args.quick
        ),
        "streaming-bound": lambda: streaming_bound_study(
            seed=args.seed, quick=args.quick
        ),
        "numeric-scalability": lambda: scalability_study(
            seed=args.seed, quick=args.quick
        ),
    }
    doc = studies[args.study]()
    if args.study == "sorting-regimes":
        cx = doc["crossover"]
        for row in doc["rows"]:
            print(f"keys/proc={row['keys_per_proc']:<5d} winner={row['winner']}")
        print(
            f"crossover: measured keys/proc={cx['measured_keys_per_proc']} "
            f"predicted={cx['predicted_keys_per_proc']}"
        )
    elif args.study == "streaming-bound":
        for row in doc["rows"]:
            print(
                f"{row['streamed']:20s} chunk={row['chunk']:<3d} "
                f"supersteps={row['streamed_supersteps']} "
                f"(predicted {row['predicted_supersteps']}) "
                f"max-h={row['max_h_send']} "
                f"bound={'holds' if row['bound_holds'] else 'VIOLATED'}"
            )
    else:
        for name, k in doc["kernels"].items():
            print(
                f"{name:10s} peak p: measured={k['peak_measured_p']} "
                f"predicted={k['peak_predicted_p']} "
                f"continuous={k['peak_continuous']} "
                f"{'agree' if k['peaks_agree'] else 'DISAGREE'}"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
        print(f"wrote {args.out}")
    return 0


def _workloads(args) -> int:
    return {
        "list": _workloads_list,
        "describe": _workloads_describe,
        "run": _workloads_run,
        "sweep": _workloads_sweep,
    }[args.wcommand](args)


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document per experiment "
        "after its table (rows use the shared MachineResult.as_row "
        "projection where available)",
    )
    sub.add_argument(
        "--metrics",
        action="store_true",
        help="attach an Observation and print its metric registry",
    )
    sub.add_argument(
        "--trace",
        metavar="OUT.json",
        help="record layer-labelled spans and write a Chrome trace_event "
        "file (loadable in Perfetto)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's quantitative artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids and built-in campaigns")
    run = sub.add_parser("run", help="run experiments by id (or 'all')")
    run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="run the listed experiments across N worker processes",
    )
    _add_obs_flags(run)
    camp = sub.add_parser(
        "campaign",
        help="run a resumable, cache-backed parameter sweep over a "
        "worker pool (see docs/CAMPAIGN.md)",
    )
    camp.add_argument(
        "name",
        help="a built-in campaign name (see 'list'), or a target id "
        "(theorem1, theorem2, cb, experiment:<ID>, chain:<spec>) "
        "combined with --grid",
    )
    camp.add_argument(
        "--grid",
        action="append",
        metavar="AXIS=V1,V2,...",
        help="add a grid axis to an ad-hoc campaign (repeatable)",
    )
    camp.add_argument(
        "--base",
        action="append",
        metavar="KEY=VALUE",
        help="fixed parameter merged under every point (repeatable)",
    )
    camp.add_argument("--seeds", metavar="S1,S2,...", help="per-point seeds")
    camp.add_argument(
        "--parallel", type=int, default=1, metavar="N", help="worker processes"
    )
    camp.add_argument(
        "--resume",
        action="store_true",
        help="resume from the store's cached points (the default; spelled "
        "out for scripts that want to be explicit)",
    )
    camp.add_argument(
        "--force",
        action="store_true",
        help="drop every cached point and recompute from scratch",
    )
    camp.add_argument(
        "--store", metavar="DIR", help="store directory (default campaigns/<name>)"
    )
    camp.add_argument(
        "--store-name", metavar="NAME", help="store/campaign name for ad-hoc targets"
    )
    camp.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="per-point timeout"
    )
    camp.add_argument(
        "--stop-after",
        type=int,
        metavar="N",
        help="abandon the run after N completed points (simulated kill; "
        "the store keeps them and the next run resumes)",
    )
    camp.add_argument(
        "--gate",
        metavar="BASELINE.json",
        help="fit the sweep's cost-model residuals and fail on shape "
        "regressions vs this committed baseline",
    )
    camp.add_argument(
        "--update-gate",
        metavar="BASELINE.json",
        help="(re)write the gate baseline from this sweep",
    )
    _add_obs_flags(camp)
    inspect_p = sub.add_parser(
        "inspect",
        help="run a demo program through a Stack chain "
        "(e.g. bsp-on-logp-on-network) and report on it",
    )
    inspect_p.add_argument(
        "chain",
        help="layer chain, guest first: bsp, logp, logp-on-bsp, "
        "bsp-on-logp, bsp-on-network, logp-on-network, "
        "bsp-on-logp-on-network",
    )
    inspect_p.add_argument(
        "--p", type=int, default=8, help="processor count (default 8)"
    )
    inspect_p.add_argument(
        "--topology",
        default="hypercube (multi-port)",
        help="Table 1 topology name for network layers "
        "(default: 'hypercube (multi-port)')",
    )
    inspect_p.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="event-queue kernel for the host machine / router: 'event' "
        "(skip-ahead), 'tick' (reference scan), or 'adaptive' "
        "(density-switched vectorized scanner); default: each layer's own",
    )
    _add_obs_flags(inspect_p)
    dist_p = sub.add_parser(
        "dist",
        help="run a program on real OS processes over TCP sockets, with "
        "optional seeded fault injection (see docs/DIST.md)",
    )
    dist_p.add_argument(
        "program",
        nargs="?",
        default="ring",
        help="dist program name (ring, alltoall, pingpong, flood); "
        "default ring",
    )
    dist_p.add_argument("--p", type=int, default=3, help="worker processes")
    dist_p.add_argument("--rounds", type=int, default=4, help="supersteps")
    dist_p.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed (same seed = same fault scenario, here and "
        "in the simulators)",
    )
    dist_p.add_argument(
        "--faults",
        metavar="K=V,...",
        help="wire-fault rates, e.g. drop=0.2,dup=0.1,delay=0.1 "
        "(keys: drop, dup, delay, reorder, max_extra_delay)",
    )
    dist_p.add_argument(
        "--kill",
        action="append",
        metavar="PID:S",
        help="SIGKILL worker PID mid-superstep S (repeatable)",
    )
    dist_p.add_argument(
        "--log-dir", metavar="DIR",
        help="event-log directory (default: a fresh temp dir, kept)",
    )
    dist_p.add_argument(
        "--timeout", type=float, default=60.0,
        help="whole-run deadline in seconds (default 60)",
    )
    _add_obs_flags(dist_p)
    serve_p = sub.add_parser(
        "serve",
        help="serve RunRequest documents over TCP: cache hits from the "
        "sharded store, in-flight dedup, misses batched to the pool "
        "(see docs/SERVICE.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=7997,
        help="bind port (0 = ephemeral; default 7997)",
    )
    serve_p.add_argument(
        "--store", metavar="DIR", default="campaigns/service",
        help="sharded result-store root, shareable between servers "
        "(default campaigns/service)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=16,
        help="key-prefix shard count, pinned at first open (default 16)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0,
        help="pool processes for miss batches; 0 computes in-process "
        "(default 0)",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=60.0, help="per-point timeout",
    )
    serve_p.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="miss-coalescing window before a pool dispatch (default 0.01)",
    )
    serve_p.add_argument(
        "--smoke", action="store_true",
        help="self-contained end-to-end smoke: ephemeral port, mixed "
        "hit/miss/dedup traffic over a real socket, counters asserted",
    )
    _add_obs_flags(serve_p)
    req_p = sub.add_parser(
        "request",
        help="build one RunRequest and resolve it — against a running "
        "'serve' instance, or --local in-process",
    )
    req_p.add_argument(
        "chain",
        help="layer chain, guest first (bsp, bsp-on-logp, "
        "bsp-on-logp-on-network, bsp-on-dist, ...)",
    )
    req_p.add_argument(
        "--program", default="default",
        help="named guest program (default: the chain's demo program)",
    )
    req_p.add_argument(
        "--workload", default=None,
        help="registered workload name (see 'workloads list'); mutually "
        "exclusive with --program",
    )
    req_p.add_argument(
        "--arg", action="append", metavar="K=V",
        help="workload parameter (with --workload; repeatable)",
    )
    req_p.add_argument("--p", type=int, default=8, help="processor count")
    req_p.add_argument(
        "--topology", default="hypercube (multi-port)",
        help="Table 1 topology for network layers",
    )
    req_p.add_argument(
        "--param", action="append", metavar="K=V",
        help="model-parameter override (K in L,o,G,g,l; repeatable)",
    )
    req_p.add_argument("--seed", type=int, default=0, help="request seed")
    req_p.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="event-queue kernel for layers that own a queue",
    )
    req_p.add_argument(
        "--with-metrics", action="store_true",
        help="set the request's metrics flag: the computed record embeds "
        "its Observation registry (separate cache entry)",
    )
    req_p.add_argument("--host", default="127.0.0.1", help="server address")
    req_p.add_argument("--port", type=int, default=7997, help="server port")
    req_p.add_argument(
        "--local", action="store_true",
        help="no server: run an in-process service against --store",
    )
    req_p.add_argument(
        "--store", metavar="DIR",
        help="store root for --local (default: a fresh temp dir)",
    )
    req_p.add_argument(
        "--shards", type=int, default=16, help="shard count for --local",
    )
    req_p.add_argument(
        "--count", type=int, default=1, metavar="N",
        help="submit N concurrent copies (exercises in-flight dedup)",
    )
    req_p.add_argument(
        "--dry-run", action="store_true",
        help="print the request document and its cache key; run nothing",
    )
    req_p.add_argument(
        "--json", action="store_true",
        help="also print the raw response document(s)",
    )
    wl_p = sub.add_parser(
        "workloads",
        help="the workload library: list/describe/run registered "
        "workloads and drive the family studies (see docs/WORKLOADS.md)",
    )
    wsub = wl_p.add_subparsers(dest="wcommand", required=True)
    wl_list = wsub.add_parser(
        "list", help="one line per registered workload with its sweep space"
    )
    wl_list.add_argument("--family", help="only this family")
    wl_desc = wsub.add_parser(
        "describe", help="full space/quick/defaults/model card for one workload"
    )
    wl_desc.add_argument("name", help="registered workload name")
    wl_run = wsub.add_parser(
        "run",
        help="run workload points end-to-end via RunRequest, fold the "
        "analytic cost model into the ledger check, validate output",
    )
    wl_run.add_argument("name", nargs="?", help="workload name (or --all)")
    wl_run.add_argument(
        "--all", action="store_true", help="run every registered workload"
    )
    wl_run.add_argument("--family", help="with --all: only this family")
    wl_run.add_argument(
        "--quick", action="store_true",
        help="sweep the quick grid instead of one defaults point",
    )
    wl_run.add_argument("--p", type=int, help="processor count override")
    wl_run.add_argument("--seed", type=int, default=0, help="run seed")
    wl_run.add_argument(
        "--param", action="append", metavar="K=V",
        help="workload parameter override (repeatable)",
    )
    wl_run.add_argument(
        "--chain", help="layer chain override (default: the workload's model)"
    )
    wl_run.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="event-queue kernel for layers that own a queue",
    )
    wl_run.add_argument(
        "--no-validate", action="store_true",
        help="skip reference-output validation",
    )
    wl_run.add_argument(
        "--verbose", action="store_true",
        help="print the full residual table for every point",
    )
    wl_run.add_argument(
        "--out", metavar="OUT.json", help="write a JSON artifact of all runs"
    )
    wl_sweep = wsub.add_parser(
        "sweep", help="drive one of the three family studies"
    )
    wl_sweep.add_argument(
        "study",
        choices=["sorting-regimes", "streaming-bound", "numeric-scalability"],
    )
    wl_sweep.add_argument("--quick", action="store_true", help="trimmed grid")
    wl_sweep.add_argument("--seed", type=int, default=0, help="study seed")
    wl_sweep.add_argument(
        "--out", metavar="OUT.json", help="write the study document as JSON"
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        from repro.campaign import CAMPAIGNS
        from repro.workloads import iter_workloads

        for key, (desc, _fn) in EXPERIMENTS.items():
            print(f"{key:5s} {desc}")
        print()
        for name, spec in CAMPAIGNS.items():
            print(f"{name:10s} {spec.description} [campaign]")
        print()
        for w in iter_workloads():
            space = "  ".join(
                f"{k}={list(v)}" for k, v in sorted(w.space.items())
            )
            print(f"{w.name:20s} {space} [workload/{w.family}]")
        return 0
    if args.command == "inspect":
        return _inspect(args)
    if args.command == "campaign":
        return _campaign(args)
    if args.command == "dist":
        return _dist(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "request":
        return _request(args)
    if args.command == "workloads":
        return _workloads(args)
    return _run_experiments(args)


if __name__ == "__main__":
    raise SystemExit(main())
