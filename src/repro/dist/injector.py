"""Wire-level fault injection from a seeded :class:`~repro.faults.plan.FaultPlan`.

The same plan object that drives the simulators' ``FaultyMedium`` drives
the real socket backend, and it draws from the *same* per-link RNG
streams (``derive_seed(seed, "link", src, dest)``, one draw per
transmission in link order) — so one seed names one fault scenario in
both worlds, which is what makes a chaos test reproducible and what S3's
determinism test asserts.

Placement.  All message-fault draws happen supervisor-side (workers stay
numpy-free and the draw order stays single-threaded per link): the
supervisor consults :meth:`WireFaults.send_fate` from the per-worker
channel pump thread for every physical transmission of a ``deliver``
frame.  A dropped transmission is simply not written; the reliable
channel's retransmit timer fires and the retransmission — a *new*
transmission on the link — draws a fresh fate, exactly the semantics
:mod:`repro.faults.plan` documents for the simulator.  Duplicates are
written twice (the receive-side seq dedup must absorb the ghost), and
delays hold the frame for ``extra_delay * delay_unit_s`` wall-clock
seconds.

Crash faults map to real deaths: ``plan.crash[pid] = s`` becomes a kill
directive shipped to worker ``pid``'s first incarnation, which SIGKILLs
itself at the start of superstep ``s`` — no atexit, no flush, the real
thing the supervisor must recover from.
"""

from __future__ import annotations

import threading

from repro.faults.plan import ActiveFaults, FaultPlan, MessageFate
from repro.models.message import Message

__all__ = ["WireFaults", "preview_fates"]


class WireFaults:
    """Per-run wire-fault state shared by the supervisor's channels.

    Thread safety: fates may be requested from several channel pump
    threads; a single lock serialises the draws.  Per-link determinism
    holds because all ``deliver`` transmissions for a link ``(src,
    dest)`` happen on ``dest``'s single pump thread, so each link's
    stream is consumed in that link's transmission order regardless of
    cross-link interleaving.
    """

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan
        self.active: ActiveFaults | None = plan.activate() if plan is not None else None
        self._lock = threading.Lock()
        #: (kind, src, dest, uid) for every injected wire fault.
        self.events: list[tuple[str, int, int, str]] = []

    @property
    def enabled(self) -> bool:
        return self.active is not None and self.plan.message_faults

    def send_fate(self, frame: dict) -> MessageFate | None:
        """Fate for one physical transmission of an app-message frame.

        ``frame`` must carry ``src``/``dest`` (worker pids) and ``uid``.
        Returns ``None`` when no plan is active (the channel skips all
        fault bookkeeping on ``None``).
        """
        if not self.enabled:
            return None
        with self._lock:
            fate = self.active.fate(
                Message(src=frame["src"], dest=frame["dest"], payload=None, size=1)
            )
            if not fate.clean:
                uid = str(frame.get("uid", "?"))
                if fate.drop:
                    self.events.append(("drop", frame["src"], frame["dest"], uid))
                if fate.duplicate:
                    self.events.append(("dup", frame["src"], frame["dest"], uid))
                if fate.extra_delay:
                    self.events.append(("delay", frame["src"], frame["dest"], uid))
        return fate

    def kill_directive(self, pid: int) -> int | None:
        """Superstep at which worker ``pid``'s first incarnation should
        SIGKILL itself, or ``None``."""
        if self.plan is None or self.plan.crash is None:
            return None
        return self.plan.crash.get(pid)

    def summary(self) -> dict[str, int]:
        counts = {"drop": 0, "dup": 0, "delay": 0}
        for kind, _s, _d, _u in self.events:
            counts[kind] += 1
        return counts


def preview_fates(plan: FaultPlan, src: int, dest: int, n: int) -> list[MessageFate]:
    """The first ``n`` fates link ``(src, dest)`` will deal under ``plan``.

    Pure function of ``(plan, src, dest)`` — a fresh activation draws
    from the rewound per-link stream, so this is exactly the sequence
    both the simulator's medium and :class:`WireFaults` consume.  Used
    by the cross-backend determinism tests and handy for sizing a chaos
    scenario before running it.
    """
    active = plan.activate()
    return [
        active.fate(Message(src=src, dest=dest, payload=None, size=1))
        for _ in range(n)
    ]
