"""Reliable frame channel over one TCP socket.

TCP already gives in-order bytes on a healthy connection; this layer
adds what the fault model takes away.  The supervisor's fault injector
(:mod:`repro.dist.injector`) drops, duplicates, and delays individual
*frames* at the wire, exactly like the simulator's
:class:`~repro.faults.medium.FaultyMedium` does to messages — so the
channel implements the classic recovery machinery for real:

* every reliable frame (see :data:`~repro.dist.frames.RELIABLE_TYPES`)
  carries a per-connection sequence number ``q``;
* the receiver delivers in sequence order exactly once — duplicates are
  re-acked and discarded, out-of-order frames (a delayed original
  overtaken by its retransmission) are held until the gap fills;
* the receiver sends cumulative ``ack`` frames; the sender retransmits
  unacked frames on a deadline with exponential backoff and
  multiplicative jitter (a retransmission is a *new* wire transmission
  and draws a fresh fault fate, which is what makes progress certain);
* the outbound queue is bounded — a producer outrunning the wire blocks
  (backpressure) instead of buffering without limit.

Threads: one pump (outbound queue + retransmit + delayed-frame timers)
and one receive loop per channel.  Both exit on close or socket error;
``on_close`` fires exactly once with the terminating exception (or
``None`` for a local close), which is how the supervisor notices a dead
worker connection without polling.
"""

from __future__ import annotations

import heapq
import queue
import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.dist.clock import LamportClock
from repro.dist.frames import RELIABLE_TYPES, FrameReader, encode_frame
from repro.errors import ProtocolError

__all__ = ["ReliableChannel", "ChannelStats", "ChannelClosed"]


class ChannelClosed(ProtocolError):
    """Send attempted on (or blocked across) a closed channel."""


@dataclass
class ChannelStats:
    """What the channel can say about the wire it survived."""

    sent: int = 0
    received: int = 0
    retransmits: int = 0
    dup_received: int = 0
    out_of_order: int = 0
    wire_dropped: int = 0
    wire_duplicated: int = 0
    wire_delayed: int = 0
    acks_sent: int = 0
    backpressure_waits: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "sent": self.sent,
            "received": self.received,
            "retransmits": self.retransmits,
            "dup_received": self.dup_received,
            "out_of_order": self.out_of_order,
            "wire_dropped": self.wire_dropped,
            "wire_duplicated": self.wire_duplicated,
            "wire_delayed": self.wire_delayed,
            "acks_sent": self.acks_sent,
            "backpressure_waits": self.backpressure_waits,
        }

    def merge(self, other: "ChannelStats") -> None:
        for name in (
            "sent", "received", "retransmits", "dup_received", "out_of_order",
            "wire_dropped", "wire_duplicated", "wire_delayed", "acks_sent",
            "backpressure_waits",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


#: Frame types eligible for wire-fault injection.  Control-plane frames
#: (hello/welcome/barrier/commit/ack/hb/...) are exempt so the fault
#: schedule stays pinned to application-message traffic, matching the
#: simulator's per-link message streams.
FAULTABLE_TYPES = frozenset({"data", "deliver"})


class ReliableChannel:
    """Seq/ack/retransmit framing over an already-connected socket.

    Parameters
    ----------
    sock:
        Connected TCP socket; the channel owns it from here on.
    name:
        Label for diagnostics (``"sup->w0"``, ``"w3"``, ...).
    clock:
        The process's :class:`~repro.dist.clock.LamportClock`; every
        delivered reliable frame merges its ``lc`` stamp.
    on_frame:
        Callback invoked (from the receive thread) for every in-order,
        deduplicated frame, heartbeats included.
    on_close:
        Callback invoked exactly once when the channel dies, with the
        terminating exception or ``None``.
    rto_initial_s / rto_max_s / rto_jitter:
        Retransmission timing (see :class:`~repro.dist.params.DistParams`).
    queue_max:
        Outbound queue bound (backpressure past it).
    send_filter / recv_filter:
        Optional fault hooks ``frame -> MessageFate | None`` consulted
        per *transmission* (send side) or per *arrival* (receive side)
        for :data:`FAULTABLE_TYPES` frames.  A receive-side drop is
        honoured before any dedup/ack bookkeeping — the wire simply
        never carried the frame.
    delay_unit_s:
        Seconds per unit of a fate's ``extra_delay``.
    jitter_rng:
        ``random.Random`` for backoff jitter (seedable in tests).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        name: str,
        clock: LamportClock,
        on_frame,
        on_close=None,
        rto_initial_s: float = 0.05,
        rto_max_s: float = 1.0,
        rto_jitter: float = 0.25,
        queue_max: int = 256,
        send_filter=None,
        recv_filter=None,
        delay_unit_s: float = 0.002,
        jitter_rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.stats = ChannelStats()
        self._sock = sock
        self._on_frame = on_frame
        self._on_close = on_close
        self._rto_initial = rto_initial_s
        self._rto_max = rto_max_s
        self._jitter = rto_jitter
        self._send_filter = send_filter
        self._recv_filter = recv_filter
        self._delay_unit = delay_unit_s
        self._rng = jitter_rng if jitter_rng is not None else random.Random()

        self._sendq: queue.Queue = queue.Queue(maxsize=queue_max)
        self._next_seq = 0
        #: seq -> [bytes, deadline, rto, frame] for in-flight frames.
        self._unacked: dict[int, list] = {}
        self._unacked_lock = threading.Lock()
        #: (due_time, tiebreak, bytes) delayed transmissions.
        self._delayed: list = []
        self._delay_tiebreak = 0
        self._recv_next = 0
        self._recv_ooo: dict[int, dict] = {}
        self._wlock = threading.Lock()
        self._closed = threading.Event()
        self._close_lock = threading.Lock()
        self._close_exc: BaseException | None = None
        self._close_reported = False

        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"{name}-pump", daemon=True
        )
        self._recv = threading.Thread(
            target=self._recv_loop, name=f"{name}-recv", daemon=True
        )
        self._pump.start()
        self._recv.start()

    # -- sending -------------------------------------------------------

    def send(self, frame: dict, *, timeout: float | None = None) -> None:
        """Enqueue ``frame`` for transmission.

        Reliable types get a Lamport stamp and a sequence number here (in
        call order) and are retransmitted until acked.  A full queue
        blocks — backpressure — until space frees or the channel closes
        (:class:`ChannelClosed`); ``timeout`` caps the total wait.
        """
        if self._closed.is_set():
            raise ChannelClosed(f"channel {self.name} is closed")
        if frame["t"] in RELIABLE_TYPES:
            frame = dict(frame)
            frame["q"] = self._next_seq
            self._next_seq += 1
            frame.setdefault("lc", self.clock.tick())
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                self._sendq.put(frame, timeout=0.1)
                return
            except queue.Full:
                self.stats.backpressure_waits += 1
                if self._closed.is_set():
                    raise ChannelClosed(
                        f"channel {self.name} closed while backpressured"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise ChannelClosed(
                        f"channel {self.name}: send blocked past {timeout}s "
                        f"(queue full, peer not draining)"
                    ) from None

    def try_send(self, frame: dict) -> bool:
        """Non-blocking send for liveness frames (heartbeats): drops the
        frame instead of blocking when the queue is full."""
        if self._closed.is_set():
            return False
        try:
            self._sendq.put_nowait(frame)
            return True
        except queue.Full:
            return False

    @property
    def unacked_count(self) -> int:
        with self._unacked_lock:
            return len(self._unacked)

    # -- lifecycle -----------------------------------------------------

    def close(self, exc: BaseException | None = None) -> None:
        """Tear the channel down (idempotent) and report ``on_close``."""
        with self._close_lock:
            if self._closed.is_set():
                return
            self._close_exc = exc
            self._closed.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._report_close()

    def _report_close(self) -> None:
        with self._close_lock:
            if self._close_reported:
                return
            self._close_reported = True
            cb, exc = self._on_close, self._close_exc
        if cb is not None:
            cb(exc)

    def join(self, timeout: float = 2.0) -> None:
        self._pump.join(timeout)
        self._recv.join(timeout)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    # -- internals: outbound -------------------------------------------

    def _write(self, data: bytes) -> None:
        with self._wlock:
            self._sock.sendall(data)

    def _transmit(self, frame: dict, data: bytes) -> None:
        """One physical transmission attempt, through the fault filter."""
        fate = None
        if self._send_filter is not None and frame["t"] in FAULTABLE_TYPES:
            fate = self._send_filter(frame)
        if fate is None or fate.clean:
            self._write(data)
            return
        if fate.drop:
            self.stats.wire_dropped += 1
            return  # the retransmit timer will try again
        if fate.extra_delay:
            self.stats.wire_delayed += 1
            due = time.monotonic() + fate.extra_delay * self._delay_unit
            self._delay_tiebreak += 1
            heapq.heappush(self._delayed, (due, self._delay_tiebreak, data))
            if fate.duplicate:
                self.stats.wire_duplicated += 1
                self._write(data)
            return
        self._write(data)
        if fate.duplicate:
            self.stats.wire_duplicated += 1
            self._write(data)

    def _pump_loop(self) -> None:
        try:
            while not self._closed.is_set():
                now = time.monotonic()
                wait = 0.02
                if self._delayed:
                    wait = min(wait, max(0.0, self._delayed[0][0] - now))
                try:
                    frame = self._sendq.get(timeout=max(wait, 0.001))
                except queue.Empty:
                    frame = None
                if frame is not None:
                    data = encode_frame(frame)
                    if frame["t"] in RELIABLE_TYPES:
                        rto = self._backoff(self._rto_initial)
                        with self._unacked_lock:
                            self._unacked[frame["q"]] = [
                                data, time.monotonic() + rto, self._rto_initial,
                                frame,
                            ]
                    self.stats.sent += 1
                    self._transmit(frame, data)
                now = time.monotonic()
                while self._delayed and self._delayed[0][0] <= now:
                    _due, _tb, data = heapq.heappop(self._delayed)
                    self._write(data)
                self._retransmit_due(now)
        except (OSError, ValueError, ProtocolError) as exc:
            self._fail(exc)

    def _backoff(self, rto: float) -> float:
        if not self._jitter:
            return rto
        return rto * (1.0 + self._jitter * (2.0 * self._rng.random() - 1.0))

    def _retransmit_due(self, now: float) -> None:
        due: list[tuple[int, list]] = []
        with self._unacked_lock:
            for seq, rec in self._unacked.items():
                if rec[1] <= now:
                    rec[2] = min(rec[2] * 2.0, self._rto_max)
                    rec[1] = now + self._backoff(rec[2])
                    due.append((seq, rec))
        for _seq, rec in sorted(due):
            self.stats.retransmits += 1
            self._transmit(rec[3], rec[0])

    # -- internals: inbound --------------------------------------------

    def _recv_loop(self) -> None:
        reader = FrameReader()
        try:
            while not self._closed.is_set():
                try:
                    chunk = self._sock.recv(65536)
                except socket.timeout:
                    continue
                if not chunk:
                    self._fail(ConnectionResetError(
                        f"channel {self.name}: peer closed the connection"
                    ))
                    return
                for frame in reader.feed(chunk):
                    self._handle(frame)
        except (OSError, ProtocolError) as exc:
            self._fail(exc)

    def _handle(self, frame: dict) -> None:
        kind = frame["t"]
        if kind == "ack":
            cum = frame.get("a", -1)
            with self._unacked_lock:
                for seq in [s for s in self._unacked if s <= cum]:
                    del self._unacked[seq]
            return
        if kind not in RELIABLE_TYPES:  # heartbeat-class traffic
            self.stats.received += 1
            self._on_frame(frame)
            return
        if self._recv_filter is not None and kind in FAULTABLE_TYPES:
            fate = self._recv_filter(frame)
            if fate is not None and fate.drop:
                # The wire "lost" this arrival: no ack, no delivery; the
                # peer's retransmission will carry a fresh fate.
                self.stats.wire_dropped += 1
                return
        seq = frame.get("q")
        if seq is None:
            raise ProtocolError(
                f"channel {self.name}: reliable frame {kind!r} without seq"
            )
        if seq < self._recv_next:
            self.stats.dup_received += 1
            self._send_ack()
            return
        if seq > self._recv_next:
            self.stats.out_of_order += 1
            self._recv_ooo[seq] = frame
            self._send_ack()
            return
        self._deliver(frame)
        while self._recv_next in self._recv_ooo:
            self._deliver(self._recv_ooo.pop(self._recv_next))
        self._send_ack()

    def _deliver(self, frame: dict) -> None:
        self._recv_next = frame["q"] + 1
        self.stats.received += 1
        self.clock.observe(frame.get("lc"))
        self._on_frame(frame)

    def _send_ack(self) -> None:
        self.stats.acks_sent += 1
        try:
            self._write(encode_frame({"t": "ack", "a": self._recv_next - 1}))
        except OSError as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if not self._closed.is_set():
            self.close(exc)
