"""Real-process distributed backend (``repro.dist``).

The simulators answer "what does the model predict?"; this package
answers "what does a real machine do?" — each LogP processor is an OS
process, links are TCP sockets, failures are real SIGKILLs, and the
same seeded :class:`~repro.faults.plan.FaultPlan` that drives the
simulated fault media drops/duplicates/delays frames at the wire.

Layering (each module usable alone):

* :mod:`~repro.dist.params` — :class:`DistParams` runtime knobs
* :mod:`~repro.dist.clock` — thread-safe Lamport clock
* :mod:`~repro.dist.frames` — length-prefixed JSON wire protocol
* :mod:`~repro.dist.channel` — seq/ack/retransmit reliable channel
* :mod:`~repro.dist.injector` — FaultPlan -> wire-fault adapter
* :mod:`~repro.dist.eventlog` — Lamport-stamped JSONL logs + merging
* :mod:`~repro.dist.programs` — checkpointable superstep programs
* :mod:`~repro.dist.worker` — the worker process entrypoint
* :mod:`~repro.dist.supervisor` — spawn/monitor/relay/restart
* :mod:`~repro.dist.analyze` — merged-log invariants + obs replay
* :mod:`~repro.dist.measure` — wall-clock L/o/g fits

Front door::

    from repro.dist import run_dist
    result = run_dist("ring", p=3, kwargs={"rounds": 4})
    report = result.analyze(strict=True)   # exactly-once, agreement, ...

or, composed with everything else, ``Stack().on_dist(p=3).run(...)``.
"""

from repro.dist.analyze import analyze_run, check_merged, replay_to_tracer, to_logp_result
from repro.dist.channel import ChannelClosed, ChannelStats, ReliableChannel
from repro.dist.clock import LamportClock
from repro.dist.eventlog import EventLogWriter, merge_logs, read_log
from repro.dist.frames import FrameReader, encode_frame
from repro.dist.injector import WireFaults, preview_fates
from repro.dist.params import DistParams
from repro.dist.programs import DIST_PROGRAMS, DistContext, make_program, run_reference
from repro.dist.supervisor import DistResult, Supervisor, run_dist

__all__ = [
    "DistParams",
    "LamportClock",
    "encode_frame",
    "FrameReader",
    "ReliableChannel",
    "ChannelStats",
    "ChannelClosed",
    "WireFaults",
    "preview_fates",
    "EventLogWriter",
    "read_log",
    "merge_logs",
    "DistContext",
    "DIST_PROGRAMS",
    "make_program",
    "run_reference",
    "Supervisor",
    "DistResult",
    "run_dist",
    "analyze_run",
    "check_merged",
    "replay_to_tracer",
    "to_logp_result",
]
