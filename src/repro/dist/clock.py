"""Thread-safe Lamport clock.

Every process in a distributed run (workers and the supervisor) owns one
:class:`LamportClock`.  The two rules (Lamport 1978):

* a local event *ticks* the clock (``tick()`` returns the new value);
* receiving a message stamped ``lc`` first merges (``observe(lc)``:
  ``clock = max(clock, lc)``) and then ticks, so the receive event is
  ordered after both its local predecessor and the send.

Stamped into every wire frame and every event-log line, the clock gives
the merged per-process logs a total order consistent with causality:
sort by ``(lc, pid, n)`` where ``n`` is the per-process line number (see
:mod:`repro.dist.eventlog`).
"""

from __future__ import annotations

import threading

__all__ = ["LamportClock"]


class LamportClock:
    """Monotone logical clock shared by a process's threads."""

    __slots__ = ("_value", "_lock")

    def __init__(self, start: int = 0) -> None:
        self._value = int(start)
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        """Advance for a local event; returns the event's timestamp."""
        with self._lock:
            self._value += 1
            return self._value

    def observe(self, other: int | None) -> int:
        """Merge a received stamp and tick; returns the receive event's
        timestamp.  ``None`` (unstamped frame) is an ordinary tick."""
        with self._lock:
            if other is not None and other > self._value:
                self._value = int(other)
            self._value += 1
            return self._value
