"""Measure real L/o/g from wall-clock socket microbenchmarks.

The paper's models parameterize machines; this module measures the
"machine" the dist backend actually runs on (localhost TCP between real
processes) and expresses it in LogP's own vocabulary:

``o`` — **overhead**: processor time consumed handing one message to the
wire.  Measured as the per-frame cost of encode+``sendall`` on a
connected socket (the sender is occupied for exactly this long).

``L`` — **latency**: one-way frame time between two *processes*.
Measured by ping-pong against an echo subprocess over the reliable
channel: ``RTT/2 - o`` (subtracting the sender-side overhead once, as
in the model's ``o + L + o`` round decomposition).

``g`` — **gap**: reciprocal bandwidth at saturation.  Measured by
flooding a burst through the channel and dividing the drain time by the
message count; by definition ``g >= o`` and the fit reports the max.

All three are medians over repeated trials (timer noise on CI is heavy-
tailed, so medians, not means).  ``fit_logp_params`` rounds the numbers
onto an integer microsecond grid as a :class:`~repro.models.params.
LogPParams` — the bridge that lets a *measured* machine drive the same
simulators and theorems as the paper's hypothetical ones.

The echo peer is this module run as ``python -m repro.dist.measure
--echo``: one connection, every ``data`` frame bounced straight back.
"""

from __future__ import annotations

import argparse
import socket
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.dist.channel import ReliableChannel
from repro.dist.clock import LamportClock
from repro.dist.frames import encode_frame
from repro.errors import DistRunError

__all__ = ["measure_overhead", "measure_pingpong", "measure_gap",
           "fit_logp", "fit_logp_params"]


def _spawn_echo(host: str = "127.0.0.1", timeout: float = 10.0):
    """Start the echo subprocess; returns (proc, connected socket)."""
    lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    lsock.bind((host, 0))
    lsock.listen(1)
    port = lsock.getsockname()[1]
    pkg_root = str(Path(__file__).resolve().parents[2])
    import os

    env = dict(os.environ)
    prev = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = pkg_root + (os.pathsep + prev if prev else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.dist.measure", "--echo",
         "--host", host, "--port", str(port)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    lsock.settimeout(timeout)
    try:
        conn, _ = lsock.accept()
    except socket.timeout:
        proc.kill()
        raise DistRunError("echo subprocess never connected",
                           reason="echo-timeout") from None
    finally:
        lsock.close()
    conn.settimeout(None)
    return proc, conn


def measure_overhead(n: int = 2000) -> list[float]:
    """Per-frame send overhead (seconds) on a connected loopback pair."""
    a, b = socket.socketpair()
    # Drain b continuously so a's send buffer never fills.
    stop = threading.Event()

    b.settimeout(0.2)  # set before the thread starts: b may close early

    def drain():
        while not stop.is_set():
            try:
                if not b.recv(65536):
                    return
            except socket.timeout:
                continue
            except OSError:
                return

    t = threading.Thread(target=drain, daemon=True)
    t.start()
    frame = {"t": "data", "uid": "0:0:0", "src": 0, "dest": 1, "k": 0,
             "s": 0, "payload": 12345}
    samples = []
    try:
        for _ in range(n):
            t0 = time.perf_counter()
            a.sendall(encode_frame(frame))
            samples.append(time.perf_counter() - t0)
    finally:
        stop.set()
        a.close()
        b.close()
    return samples


def measure_pingpong(n: int = 200) -> list[float]:
    """Round-trip times (seconds) through an echo *subprocess*."""
    proc, conn = _spawn_echo()
    got = threading.Event()
    chan = ReliableChannel(
        conn, name="pingpong", clock=LamportClock(),
        on_frame=lambda f: got.set() if f["t"] == "data" else None,
    )
    rtts = []
    try:
        for i in range(n):
            got.clear()
            t0 = time.perf_counter()
            chan.send({"t": "data", "uid": f"0:0:{i}", "src": 0, "dest": 1,
                       "k": i, "s": 0, "payload": i})
            if not got.wait(timeout=5.0):
                raise DistRunError("echo peer stopped responding",
                                   reason="echo-timeout")
            rtts.append(time.perf_counter() - t0)
    finally:
        chan.close()
        proc.kill()
        proc.wait(timeout=2.0)
    return rtts


def measure_gap(n: int = 2000, burst: int = 200) -> list[float]:
    """Per-message time (seconds) at saturation through the echo peer."""
    proc, conn = _spawn_echo()
    seen = {"count": 0}
    done = threading.Event()

    def on_frame(f):
        if f["t"] == "data":
            seen["count"] += 1
            if seen["count"] % burst == 0:
                done.set()

    chan = ReliableChannel(conn, name="flood", clock=LamportClock(),
                           on_frame=on_frame, queue_max=burst * 2)
    gaps = []
    try:
        for _ in range(max(1, n // burst)):
            done.clear()
            t0 = time.perf_counter()
            for i in range(burst):
                chan.send({"t": "data", "uid": f"0:1:{i}", "src": 0,
                           "dest": 1, "k": i, "s": 1, "payload": i})
            if not done.wait(timeout=10.0):
                raise DistRunError("flood echo never drained",
                                   reason="echo-timeout")
            gaps.append((time.perf_counter() - t0) / burst)
    finally:
        chan.close()
        proc.kill()
        proc.wait(timeout=2.0)
    return gaps


def fit_logp(*, quick: bool = False) -> dict:
    """Measure and fit; returns a report dict (times in microseconds)."""
    scale = 10 if quick else 1
    o_samples = measure_overhead(n=max(200, 2000 // scale))
    rtts = measure_pingpong(n=max(20, 200 // scale))
    gaps = measure_gap(n=max(200, 2000 // scale), burst=max(20, 200 // scale))
    o_s = statistics.median(o_samples)
    rtt_s = statistics.median(rtts)
    g_s = statistics.median(gaps)
    latency_s = max(rtt_s / 2.0 - o_s, o_s)
    return {
        "o_us": o_s * 1e6,
        "L_us": latency_s * 1e6,
        "g_us": max(g_s, o_s) * 1e6,
        "rtt_us": rtt_s * 1e6,
        "samples": {
            "overhead": len(o_samples),
            "pingpong": len(rtts),
            "flood_bursts": len(gaps),
        },
        "spread": {
            "o_p90_us": _quantile(o_samples, 0.9) * 1e6,
            "rtt_p90_us": _quantile(rtts, 0.9) * 1e6,
            "gap_p90_us": _quantile(gaps, 0.9) * 1e6,
        },
    }


def fit_logp_params(fit: dict, p: int = 2):
    """Round a :func:`fit_logp` report onto LogP's integer-µs grid,
    respecting the Section 2.2 constraint ``max(2, o) <= G <= L``."""
    from repro.models.params import LogPParams

    o = max(1, round(fit["o_us"]))
    g = max(2, o, round(fit["g_us"]))
    length = max(g, round(fit["L_us"]))
    return LogPParams(p=p, L=length, o=o, G=g)


def _quantile(xs: list[float], q: float) -> float:
    ys = sorted(xs)
    return ys[min(len(ys) - 1, int(q * len(ys)))]


def _echo_main(host: str, port: int) -> int:
    """Child mode: connect and bounce every data frame back."""
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(None)
    chan_box = {}

    def on_frame(f):
        if f["t"] == "data":
            chan_box["chan"].send(f)

    chan = ReliableChannel(sock, name="echo", clock=LamportClock(),
                           on_frame=on_frame, queue_max=1024)
    chan_box["chan"] = chan
    while not chan.closed:
        time.sleep(0.05)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.dist.measure")
    parser.add_argument("--echo", action="store_true")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    ns = parser.parse_args(argv)
    if ns.echo:
        return _echo_main(ns.host, ns.port)
    parser.error("run via benchmarks/bench_dist.py, or pass --echo")
    return 2


if __name__ == "__main__":
    sys.exit(main())
