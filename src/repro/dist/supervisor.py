"""Supervisor: spawn, monitor, relay, checkpoint, restart.

The supervisor owns a real distributed run.  Topology is a star (the
BSF master/worker arrangement): every worker process TCP-connects back
to the supervisor, which relays application messages between them, so
all fault injection and all recovery decisions live in one place.

**Round protocol.**  Rounds are BSP supersteps made crash-tolerant.
During round ``s`` workers stream DATA frames (staged here, keyed by
uid so a re-execution after a crash overwrites rather than duplicates)
and finish with a BARRIER frame carrying their post-round state — the
checkpoint.  When every worker has barriered round ``s`` the supervisor
*commits*: first it durably updates every worker's checkpoint to
``(s+1, state, inbox)``, only then relays DELIVER frames and sends
COMMIT.  Checkpoint-before-relay is the crux of recovery: a worker that
dies at any later instant restarts from a checkpoint that already
contains everything the relay would have told it, so no send failure
can strand the protocol between rounds.

**Failure detection.**  Three independent signals — heartbeat silence
past ``hb_timeout_s``, connection EOF/error, and ``proc.poll()`` — any
of which declares the worker dead.  Recovery is respawn-with-checkpoint
(incarnation + 1) under a run-wide restart budget.  A worker reporting
a deterministic program error is *not* restarted (replaying a
deterministic failure cannot help); the run aborts with the diagnosis.

**Never hang, never lie.**  Every terminal path is either a
:class:`DistResult` whose states are checked against nothing less than
the committed protocol, or a :class:`~repro.errors.DistRunError`
labelled with a reason (``run-timeout``, ``restart-budget-exhausted``,
``program-error``, ...) and a diagnosis snapshot.  A whole-run deadline
(``run_timeout_s``) backstops everything.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dist.channel import ChannelClosed, ChannelStats, ReliableChannel
from repro.dist.clock import LamportClock
from repro.dist.eventlog import EventLogWriter, worker_log_path
from repro.dist.injector import WireFaults
from repro.dist.params import DistParams
from repro.dist.programs import DIST_PROGRAMS
from repro.errors import DistRunError, ProgramError
from repro.faults.plan import FaultPlan

__all__ = ["Supervisor", "DistResult", "run_dist"]

_EXIT_PROGRAM_ERROR = 3


@dataclass
class DistResult:
    """Outcome of one supervised distributed run."""

    program: str
    p: int
    rounds: int
    results: list
    wall_s: float
    restarts: int
    run_id: str
    log_dir: str
    wire_faults: dict = field(default_factory=dict)
    channel_stats: dict = field(default_factory=dict)
    params: DistParams = field(default_factory=DistParams)
    plan: FaultPlan | None = None

    def summary(self) -> dict:
        return {
            "program": self.program,
            "p": self.p,
            "rounds": self.rounds,
            "wall_s": round(self.wall_s, 4),
            "restarts": self.restarts,
            "wire_faults": dict(self.wire_faults),
            "run_id": self.run_id,
        }

    def analyze(self, *, strict: bool = False) -> dict:
        """Post-hoc audit of this run's logs (see
        :func:`repro.dist.analyze.analyze_run`)."""
        from repro.dist.analyze import analyze_run

        return analyze_run(self.log_dir, self.p, strict=strict)


class _Worker:
    """Supervisor-side ledger for one logical worker."""

    __slots__ = ("pid", "inc", "proc", "chan", "conn_id", "last_seen",
                 "barrier", "checkpoint", "alive", "bye", "exit_code")

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.inc = -1
        self.proc: subprocess.Popen | None = None
        self.chan: ReliableChannel | None = None
        self.conn_id: int | None = None
        self.last_seen = 0.0
        #: (s, state, done) from the latest BARRIER, or None
        self.barrier: tuple | None = None
        #: (s0, state-or-None, inbox-frames) to resume from
        self.checkpoint: tuple = (0, None, [])
        self.alive = False
        self.bye = False
        self.exit_code: int | None = None


class Supervisor:
    """One run = one Supervisor instance; call :meth:`run` once."""

    def __init__(
        self,
        program: str,
        p: int,
        *,
        kwargs: dict | None = None,
        params: DistParams | None = None,
        plan: FaultPlan | None = None,
        log_dir: str | Path,
        run_id: str | None = None,
    ) -> None:
        if program not in DIST_PROGRAMS:
            raise ProgramError(
                f"unknown dist program {program!r}; available: "
                f"{', '.join(sorted(DIST_PROGRAMS))}"
            )
        if p < 1:
            raise ProgramError(f"dist run needs p >= 1, got {p}")
        self.program = program
        self.p = p
        self.kwargs = dict(kwargs or {})
        self.params = params if params is not None else DistParams()
        self.plan = plan
        self.wire = WireFaults(plan)
        self.log_dir = Path(log_dir)
        self.run_id = run_id or os.urandom(6).hex()
        self.clock = LamportClock()
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.slog = EventLogWriter(
            worker_log_path(self.log_dir, -1), pid=-1, clock=self.clock,
            fsync=self.params.fsync_logs,
        )
        self.workers = [_Worker(pid) for pid in range(p)]
        self.restarts = 0
        self.round = 0
        self._events: queue.Queue = queue.Queue()
        self._conns: dict[int, ReliableChannel] = {}
        self._conn_serial = 0
        self._lsock: socket.socket | None = None
        self._port: int | None = None
        self._accepting = threading.Event()
        self._phase = "run"  # run -> shutdown -> done
        self._t0 = 0.0
        self._deadline = 0.0
        self._stats = ChannelStats()
        #: s -> {uid: data-frame} staged during round s (delivered at commit)
        self._stage: dict[int, dict] = {}
        self._final_states: list = []

    # -- wiring --------------------------------------------------------

    def _listen(self) -> None:
        self._lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._lsock.bind((self.params.host, 0))
        self._lsock.listen(self.p + 4)
        self._lsock.settimeout(0.2)
        self._port = self._lsock.getsockname()[1]
        self._accepting.set()
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="sup-accept").start()
        self.slog.log("listen", port=self._port, run=self.run_id, p=self.p)

    def _accept_loop(self) -> None:
        while self._accepting.is_set():
            try:
                conn, _addr = self._lsock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._conn_serial += 1
            cid = self._conn_serial
            chan = ReliableChannel(
                conn,
                name=f"sup-c{cid}",
                clock=self.clock,
                on_frame=lambda f, cid=cid: self._events.put(("frame", cid, f)),
                on_close=lambda exc, cid=cid: self._events.put(("closed", cid, exc)),
                rto_initial_s=self.params.rto_initial_s,
                rto_max_s=self.params.rto_max_s,
                rto_jitter=self.params.rto_jitter,
                queue_max=self.params.send_queue_max,
                send_filter=self._send_filter,
                delay_unit_s=self.params.delay_unit_s,
            )
            self._conns[cid] = chan

    def _send_filter(self, frame):
        fate = self.wire.send_fate(frame)
        if fate is not None and not fate.clean:
            self.slog.log(
                "wire_fault", uid=str(frame.get("uid")), src=frame.get("src"),
                dest=frame.get("dest"),
                drop=fate.drop, dup=fate.duplicate, delay=fate.extra_delay,
            )
        return fate

    def _spawn(self, w: _Worker, *, first: bool) -> None:
        w.inc += 1
        w.alive = True
        w.bye = False
        w.barrier = None
        w.exit_code = None
        w.last_seen = time.monotonic()
        cfg = {
            "host": self.params.host,
            "port": self._port,
            "pid": w.pid,
            "inc": w.inc,
            "run_id": self.run_id,
            "log_dir": str(self.log_dir),
            "connect_timeout_s": self.params.connect_timeout_s,
            "connect_backoff_s": self.params.connect_backoff_s,
            "fsync_logs": self.params.fsync_logs,
        }
        cfg.update(self.params.as_dict())
        # Workers must import the same `repro` this supervisor runs from,
        # regardless of the caller's cwd or a relative PYTHONPATH.
        pkg_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        prev = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = pkg_root + (os.pathsep + prev if prev else "")
        out = open(self.log_dir / f"worker-{w.pid}.{w.inc}.out", "wb")
        w.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.dist.worker",
             "--config", json.dumps(cfg)],
            stdout=out, stderr=subprocess.STDOUT, env=env,
        )
        out.close()
        self.slog.log("spawn" if first else "restart",
                      worker=w.pid, inc=w.inc, os_pid=w.proc.pid)

    # -- the event loop ------------------------------------------------

    def run(self) -> DistResult:
        self._t0 = time.monotonic()
        self._deadline = self._t0 + self.params.run_timeout_s
        try:
            self._listen()
            for w in self.workers:
                self._spawn(w, first=True)
            while self._phase != "done":
                self._pump_events()
                self._check_liveness()
                if self._phase == "shutdown" and self._shutdown_settled():
                    self._phase = "done"
                if time.monotonic() > self._deadline:
                    self._abort("run-timeout",
                                f"run exceeded {self.params.run_timeout_s}s")
            return self._finish()
        finally:
            self._cleanup()

    def _pump_events(self) -> None:
        try:
            kind, cid, payload = self._events.get(timeout=0.02)
        except queue.Empty:
            return
        while True:
            if kind == "frame":
                self._on_frame(cid, payload)
            else:
                self._on_closed(cid, payload)
            try:
                kind, cid, payload = self._events.get_nowait()
            except queue.Empty:
                return

    def _worker_for_conn(self, cid: int) -> _Worker | None:
        for w in self.workers:
            if w.conn_id == cid:
                return w
        return None

    def _on_frame(self, cid: int, frame: dict) -> None:
        kind = frame["t"]
        if kind == "hello":
            self._on_hello(cid, frame)
            return
        w = self._worker_for_conn(cid)
        if w is None or not w.alive:
            return  # stale connection of a dead incarnation
        w.last_seen = time.monotonic()
        if kind == "hb":
            return
        if kind == "data":
            self._on_data(frame)
        elif kind == "barrier":
            self._on_barrier(w, frame)
        elif kind == "bye":
            w.bye = True
        elif kind == "err":
            self._abort(
                str(frame.get("reason", "worker-error")),
                f"worker {w.pid} reported a fatal error at superstep "
                f"{frame.get('s')}: {frame.get('detail')}",
            )

    def _on_hello(self, cid: int, frame: dict) -> None:
        chan = self._conns.get(cid)
        if chan is None:
            # The connection's recv thread outran the accept thread's
            # registration of the channel.  The worker sends nothing
            # further until it gets its WELCOME, so requeueing the hello
            # for the next pump iteration loses nothing.
            self._events.put(("frame", cid, frame))
            time.sleep(0.001)
            return
        pid, inc = int(frame["pid"]), int(frame.get("inc", 0))
        if not 0 <= pid < self.p:
            self._drop_conn(cid)
            return
        w = self.workers[pid]
        if inc != w.inc or not w.alive:
            # A ghost from a previous incarnation that somehow connected
            # late: tell it to go away.
            try:
                chan.send({"t": "shutdown"})
            except ChannelClosed:
                pass
            return
        w.conn_id = cid
        w.chan = chan
        w.last_seen = time.monotonic()
        self.slog.log("hello", worker=pid, inc=inc)
        s0, state, inbox = w.checkpoint
        welcome = {
            "t": "welcome", "program": self.program, "kwargs": self.kwargs,
            "p": self.p, "s0": s0, "state": state, "inbox": inbox,
        }
        if w.inc == 0:
            kill_at = self.wire.kill_directive(pid)
            if kill_at is not None:
                welcome["kill_at"] = int(kill_at)
        try:
            w.chan.send(welcome)
        except ChannelClosed:
            self._declare_dead(w, "connection-lost")

    def _on_data(self, frame: dict) -> None:
        dest = frame.get("dest")
        if not isinstance(dest, int) or not 0 <= dest < self.p:
            self._abort("protocol",
                        f"data frame addressed to invalid worker {dest!r}")
        s = int(frame["s"])
        self._staged(s)[frame["uid"]] = frame

    def _staged(self, s: int) -> dict:
        return self._stage.setdefault(s, {})

    def _on_barrier(self, w: _Worker, frame: dict) -> None:
        w.barrier = (int(frame["s"]), frame.get("state"), bool(frame["done"]))
        self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self._phase != "run":
            return
        r = self.round
        if not all(w.barrier is not None and w.barrier[0] == r
                   for w in self.workers):
            return
        staged = self._staged(r)
        inboxes: dict[int, list[dict]] = {w.pid: [] for w in self.workers}
        for uid in sorted(staged, key=lambda u: (staged[u]["src"], staged[u]["k"])):
            f = staged[uid]
            inboxes[f["dest"]].append(
                {"uid": f["uid"], "src": f["src"], "k": f["k"],
                 "payload": f["payload"]}
            )
        # Checkpoint FIRST: once these are written, any death — including
        # one caused by the relay sends below — restarts into a state
        # that already includes this round's messages.
        for w in self.workers:
            w.checkpoint = (r + 1, w.barrier[1], inboxes[w.pid])
        self.slog.log("commit", s=r)
        all_done = all(w.barrier[2] for w in self.workers)
        for w in self.workers:
            if not w.alive:
                continue
            try:
                for m in inboxes[w.pid]:
                    w.chan.send({"t": "deliver", "uid": m["uid"],
                                 "src": m["src"], "dest": w.pid, "k": m["k"],
                                 "payload": m["payload"], "for_s": r + 1})
                w.chan.send({"t": "commit", "s": r})
            except ChannelClosed:
                self._declare_dead(w, "connection-lost")
        self._stage.pop(r, None)
        self.round = r + 1
        if all_done:
            self._final_states = [w.barrier[1] for w in self.workers]
            self._begin_shutdown()

    def _begin_shutdown(self) -> None:
        self._phase = "shutdown"
        self._shutdown_deadline = time.monotonic() + min(
            5.0, self.params.io_timeout_s
        )
        self.slog.log("shutdown")
        for w in self.workers:
            if w.alive and w.chan is not None:
                try:
                    w.chan.send({"t": "shutdown"})
                except ChannelClosed:
                    pass

    def _shutdown_settled(self) -> bool:
        for w in self.workers:
            if w.proc is not None and w.proc.poll() is None and not w.bye:
                if time.monotonic() < self._shutdown_deadline:
                    return False
        return True

    # -- liveness ------------------------------------------------------

    def _on_closed(self, cid: int, exc) -> None:
        w = self._worker_for_conn(cid)
        self._conns.pop(cid, None)
        if w is None or not w.alive or self._phase != "run":
            return
        self._declare_dead(w, f"connection-lost:{exc!r}" if exc else
                           "connection-lost")

    def _check_liveness(self) -> None:
        if self._phase != "run":
            return
        now = time.monotonic()
        for w in self.workers:
            if not w.alive:
                continue
            code = w.proc.poll() if w.proc is not None else None
            if code is not None:
                w.exit_code = code
                if code == _EXIT_PROGRAM_ERROR:
                    self._abort(
                        "program-error",
                        f"worker {w.pid} exited with a deterministic "
                        f"program error (restart would replay it)",
                    )
                self._declare_dead(w, f"process-exit:{code}")
                continue
            # Before the HELLO the silence is interpreter startup plus
            # TCP connect, not lost heartbeats — judge it against the
            # (much longer) connect deadline or restarts would thrash on
            # a loaded machine.
            if w.conn_id is None:
                if now - w.last_seen > max(self.params.hb_timeout_s,
                                           self.params.connect_timeout_s):
                    self._declare_dead(w, "connect-timeout")
            elif now - w.last_seen > self.params.hb_timeout_s:
                self._declare_dead(w, "heartbeat-timeout")

    def _declare_dead(self, w: _Worker, reason: str) -> None:
        if not w.alive:
            return
        w.alive = False
        w.barrier = None
        self.slog.log("worker_dead", worker=w.pid, inc=w.inc, reason=reason)
        if w.chan is not None:
            self._stats.merge(w.chan.stats)
            w.chan.close()
            w.chan = None
        w.conn_id = None
        if w.proc is not None and w.proc.poll() is None:
            w.proc.kill()
        self.restarts += 1
        if self.restarts > self.params.restart_budget:
            self._abort(
                "restart-budget-exhausted",
                f"worker {w.pid} died ({reason}) but the restart budget "
                f"({self.params.restart_budget}) is spent",
            )
        self._spawn(w, first=False)

    # -- terminal paths ------------------------------------------------

    def _diagnosis(self) -> dict:
        now = time.monotonic()
        return {
            "round": self.round,
            "phase": self._phase,
            "restarts": self.restarts,
            "wire_faults": self.wire.summary(),
            "elapsed_s": round(now - self._t0, 3),
            "workers": [
                {
                    "pid": w.pid,
                    "inc": w.inc,
                    "alive": w.alive,
                    "barrier_s": w.barrier[0] if w.barrier else None,
                    "ckpt_s": w.checkpoint[0],
                    "silent_s": round(now - w.last_seen, 3),
                    "exit": w.exit_code,
                }
                for w in self.workers
            ],
        }

    def _abort(self, reason: str, message: str) -> None:
        diag = self._diagnosis()
        self.slog.log("abort", reason=reason)
        raise DistRunError(message, reason=reason, diagnosis=diag)

    def _finish(self) -> DistResult:
        wall = time.monotonic() - self._t0
        for w in self.workers:
            if w.chan is not None:
                self._stats.merge(w.chan.stats)
        self.slog.log("result", rounds=self.round, restarts=self.restarts,
                      wall_s=round(wall, 4))
        return DistResult(
            program=self.program,
            p=self.p,
            rounds=self.round,
            results=list(getattr(self, "_final_states", [])),
            wall_s=wall,
            restarts=self.restarts,
            run_id=self.run_id,
            log_dir=str(self.log_dir),
            wire_faults=self.wire.summary(),
            channel_stats=self._stats.as_dict(),
            params=self.params,
            plan=self.plan,
        )

    def _drop_conn(self, cid: int) -> None:
        chan = self._conns.pop(cid, None)
        if chan is not None:
            chan.close()

    def _cleanup(self) -> None:
        self._accepting.clear()
        if self._lsock is not None:
            try:
                self._lsock.close()
            except OSError:
                pass
        for w in self.workers:
            if w.proc is not None and w.proc.poll() is None:
                w.proc.kill()
        for w in self.workers:
            if w.proc is not None:
                try:
                    w.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    pass
        for chan in list(self._conns.values()):
            chan.close()
        self._conns.clear()
        self.slog.close()


def run_dist(
    program: str,
    p: int,
    *,
    kwargs: dict | None = None,
    params: DistParams | None = None,
    plan: FaultPlan | None = None,
    log_dir: str | Path | None = None,
    run_id: str | None = None,
) -> DistResult:
    """Run ``program`` on ``p`` real worker processes; returns the
    :class:`DistResult` or raises a labelled
    :class:`~repro.errors.DistRunError`.

    ``log_dir=None`` creates a temporary directory (kept afterwards —
    the logs *are* the evidence) under the system temp root.
    """
    if log_dir is None:
        import tempfile

        log_dir = tempfile.mkdtemp(prefix="repro-dist-")
    sup = Supervisor(
        program, p, kwargs=kwargs, params=params, plan=plan,
        log_dir=log_dir, run_id=run_id,
    )
    return sup.run()
