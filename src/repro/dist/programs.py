"""Checkpointable superstep programs for the real-process backend.

The simulators run generator coroutines, which cannot be snapshotted
mid-yield and therefore cannot survive a SIGKILL.  The dist backend
instead runs *state-function* programs — the BSP superstep made
restartable:

* ``init(ctx) -> state`` produces the round-0 state;
* ``superstep(ctx, s, state, inbox) -> (state, outbox, done)`` advances
  one round: consume the messages committed for round ``s``, emit an
  outbox of ``(dest, payload)`` pairs, and say whether this worker is
  finished.

``state`` must be JSON-serializable — it *is* the checkpoint.  The
supervisor stores each worker's ``(s, state)`` at every barrier; after a
crash it respawns the worker with the committed state and the committed
inbox, and the worker resumes at ``s+1`` as if nothing happened.  A
superstep may therefore execute more than once (the attempt that died
before its barrier), so supersteps must be deterministic functions of
``(pid, s, state, inbox)`` — the same discipline every checkpoint/replay
system imposes, and the reason message uids (``"src:s:k"``) are stable
across re-execution.

``inbox`` arrives sorted by ``(src, k)`` so re-executions see identical
input order.  :func:`run_reference` executes the same program in-process
with zero sockets — the oracle the chaos tests compare every recovered
run against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError

__all__ = [
    "DistContext",
    "DIST_PROGRAMS",
    "make_program",
    "run_reference",
    "MAX_REFERENCE_ROUNDS",
]


@dataclass(frozen=True)
class DistContext:
    """What a superstep is allowed to know about the machine."""

    pid: int
    p: int


class _RingSum:
    """Each round, pass your accumulator to ``(pid + 1) % p`` and absorb
    what arrives.  After ``rounds`` rounds every accumulator equals the
    sum of a rotating window — a cheap computation whose final value
    depends on every round having happened exactly once."""

    def __init__(self, rounds: int = 4) -> None:
        self.rounds = int(rounds)

    def init(self, ctx: DistContext) -> dict:
        return {"acc": ctx.pid + 1}

    def superstep(self, ctx, s, state, inbox):
        last = s + 1 >= self.rounds
        # Final round receives only: a message emitted in the last round
        # would have no round to be delivered in.
        outbox = [] if last or ctx.p == 1 else [((ctx.pid + 1) % ctx.p, state["acc"])]
        acc = state["acc"] + sum(m["payload"] for m in inbox)
        return {"acc": acc}, outbox, last


class _AllToAll:
    """Dense traffic: every round, send ``pid*1000 + s`` to every other
    worker and fold everything received into a running checksum."""

    def __init__(self, rounds: int = 3) -> None:
        self.rounds = int(rounds)

    def init(self, ctx: DistContext) -> dict:
        return {"sum": 0}

    def superstep(self, ctx, s, state, inbox):
        last = s + 1 >= self.rounds
        outbox = (
            [] if last
            else [(d, ctx.pid * 1000 + s) for d in range(ctx.p) if d != ctx.pid]
        )
        total = state["sum"] + sum(m["payload"] for m in inbox)
        return {"sum": total}, outbox, last


class _PingPong:
    """Two workers bounce one token; everyone else idles.  The measured
    round-trip drives the L and o fits in ``bench_dist``."""

    def __init__(self, rounds: int = 8, payload: int = 0) -> None:
        self.rounds = int(rounds)
        self.payload = int(payload)

    def init(self, ctx: DistContext) -> dict:
        return {"hops": 0}

    def superstep(self, ctx, s, state, inbox):
        outbox = []
        hops = state["hops"]
        last = s + 1 >= self.rounds
        if ctx.p == 1:
            return {"hops": hops}, [], True
        if not last:
            if s == 0 and ctx.pid == 0:
                outbox = [(1, self.payload)]
                hops += 1
            elif inbox and ctx.pid in (0, 1):
                outbox = [(1 - ctx.pid, self.payload)]
                hops += 1
        return {"hops": hops}, outbox, last


class _Flood:
    """Worker 0 pushes ``burst`` messages per round at worker 1 — the
    per-message cost at saturation is the bandwidth gap ``g``."""

    def __init__(self, rounds: int = 3, burst: int = 16) -> None:
        self.rounds = int(rounds)
        self.burst = int(burst)

    def init(self, ctx: DistContext) -> dict:
        return {"got": 0}

    def superstep(self, ctx, s, state, inbox):
        last = s + 1 >= self.rounds
        outbox = []
        if ctx.pid == 0 and ctx.p > 1 and not last:
            outbox = [(1, k) for k in range(self.burst)]
        got = state["got"] + len(inbox)
        return {"got": got}, outbox, last


DIST_PROGRAMS = {
    "ring": _RingSum,
    "alltoall": _AllToAll,
    "pingpong": _PingPong,
    "flood": _Flood,
}

#: Safety rail for :func:`run_reference` on ``done``-driven programs.
MAX_REFERENCE_ROUNDS = 10_000


def make_program(name: str, kwargs: dict | None = None):
    """Instantiate a registered program by name (worker-side entry)."""
    try:
        factory = DIST_PROGRAMS[name]
    except KeyError:
        raise ProgramError(
            f"unknown dist program {name!r}; available: "
            f"{', '.join(sorted(DIST_PROGRAMS))}"
        ) from None
    return factory(**(kwargs or {}))


def run_reference(name: str, p: int, kwargs: dict | None = None) -> list:
    """Execute a dist program in-process with perfect delivery.

    Returns the per-worker final states — the ground truth any socket
    run (faulty or not) must reproduce exactly.  The loop applies the
    same semantics the supervisor implements: round ``s``'s outboxes are
    delivered, sorted by ``(src, k)``, as round ``s+1``'s inboxes, and
    the run ends when every worker has reported ``done``.
    """
    program = make_program(name, kwargs)
    ctxs = [DistContext(pid=pid, p=p) for pid in range(p)]
    states = [program.init(ctx) for ctx in ctxs]
    inboxes: list[list[dict]] = [[] for _ in range(p)]
    done = [False] * p
    for s in range(MAX_REFERENCE_ROUNDS):
        staged: list[list[tuple[int, int, dict]]] = [[] for _ in range(p)]
        for pid in range(p):
            if done[pid]:
                continue
            states[pid], outbox, fin = program.superstep(
                ctxs[pid], s, states[pid], inboxes[pid]
            )
            for k, (dest, payload) in enumerate(outbox):
                if not 0 <= dest < p:
                    raise ProgramError(
                        f"program {name!r} sent to nonexistent worker {dest}"
                    )
                staged[dest].append((pid, k, {"src": pid, "payload": payload}))
            done[pid] = done[pid] or fin
        inboxes = [[m for _src, _k, m in sorted(box)] for box in staged]
        if all(done):
            if any(inboxes):
                raise ProgramError(
                    f"program {name!r} finished with undelivered messages"
                )
            return states
    raise ProgramError(
        f"program {name!r} did not finish within {MAX_REFERENCE_ROUNDS} rounds"
    )
