"""Wire protocol: length-prefixed JSON frames.

One frame = 4-byte big-endian payload length + UTF-8 JSON object.  JSON
keeps the protocol debuggable (``xxd`` the stream, read the logs) and is
plenty for the paper-scale payloads this backend moves; the length
prefix makes framing exact under arbitrary TCP segmentation.

Frame vocabulary (the ``t`` field):

===========  ======  ====================================================
type         dir     meaning
===========  ======  ====================================================
``hello``    w -> s  worker pid / incarnation / run-id handshake
``welcome``  s -> w  program name+kwargs, resume superstep, state, inbox
``data``     w -> s  one application message ``src -> dest`` of round
                     ``s`` (uid ``"src:s:k"``)
``barrier``  w -> s  end of round ``s``: checkpoint state, done flag
``deliver``  s -> w  one committed message for the worker's next round
``commit``   s -> w  round ``s`` committed globally; advance to ``s+1``
``shutdown`` s -> w  run over; worker acks with ``bye`` and exits
``bye``      w -> s  graceful exit notification
``ack``      both    cumulative reliable-channel acknowledgement
``hb``       w -> s  heartbeat (liveness only, unreliable)
``err``      both    fatal peer-side failure, with a labelled reason
===========  ======  ====================================================

``hello``/``welcome``/``data``/``barrier``/``deliver``/``commit``/
``shutdown``/``bye``/``err`` ride the reliable channel (sequence numbers,
retransmission); ``ack`` and ``hb`` are fire-and-forget.  Every reliable
frame carries a Lamport stamp ``lc``.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError

__all__ = [
    "encode_frame",
    "FrameReader",
    "MAX_FRAME_BYTES",
    "RELIABLE_TYPES",
    "UNRELIABLE_TYPES",
]

_LEN = struct.Struct(">I")

#: Upper bound on one frame's JSON payload; a peer announcing more is
#: corrupt (or hostile) and the connection is torn down.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Frame types that get sequence numbers and retransmission.
RELIABLE_TYPES = frozenset(
    {"hello", "welcome", "data", "barrier", "deliver", "commit",
     "shutdown", "bye", "err"}
)
#: Fire-and-forget frame types (no seq, never retransmitted).
UNRELIABLE_TYPES = frozenset({"ack", "hb"})


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame dict to its wire bytes."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES="
            f"{MAX_FRAME_BYTES} (type {frame.get('t')!r})"
        )
    return _LEN.pack(len(body)) + body


class FrameReader:
    """Incremental decoder: feed raw socket bytes, get complete frames.

    Tolerates arbitrary chunking (a frame split across many ``recv``
    calls, many frames in one).  Corrupt input — an impossible length or
    undecodable JSON — raises :class:`~repro.errors.ProtocolError`; the
    reliable channel treats that as a dead connection.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> list[dict]:
        """Append ``chunk``; return every frame completed by it."""
        self._buf.extend(chunk)
        frames: list[dict] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"announced frame length {length} exceeds "
                    f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
                )
            if len(self._buf) < _LEN.size + length:
                return frames
            body = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            try:
                frame = json.loads(body)
            except ValueError as exc:
                raise ProtocolError(f"undecodable frame body: {exc}") from exc
            if not isinstance(frame, dict) or "t" not in frame:
                raise ProtocolError(f"frame is not a typed object: {frame!r}")
            frames.append(frame)

    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)
