"""Worker process: one LogP processor as a real OS process.

Spawned by the supervisor as ``python -m repro.dist.worker --config
'<json>'``; connects back over TCP, handshakes, then runs the BSP-style
round loop of its :mod:`~repro.dist.programs` program:

1. receive WELCOME (program spec, resume round ``s0``, checkpointed
   state, committed inbox);
2. per round: execute the superstep, stream each outbox message as a
   DATA frame, send BARRIER with the post-round state (the checkpoint),
   then block until COMMIT — buffering DELIVER frames for the next
   round as they arrive;
3. on SHUTDOWN: reply BYE and exit 0.

Everything the worker does is Lamport-stamped into its own JSONL log.
Robustness posture: every blocking wait has a deadline (``io_timeout_s``)
— a dead or wedged supervisor makes the worker *exit nonzero with a
labelled log line*, never hang; a program exception is reported upstream
as an ``err`` frame (restarting a deterministic failure is pointless, so
the supervisor aborts the run with the diagnosis).  Chaos runs arrive
here too: a ``kill_at`` directive in WELCOME makes the worker SIGKILL
itself mid-round — after streaming its DATA, before its BARRIER — which
is precisely the window where recovery is hardest.

The module imports no numpy and only stdlib + the tiny dist modules, so
worker startup stays cheap and fault-draw determinism stays entirely
supervisor-side.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import signal
import socket
import sys
import threading
import time

from repro.dist.channel import ReliableChannel
from repro.dist.clock import LamportClock
from repro.dist.eventlog import EventLogWriter, worker_log_path
from repro.dist.programs import DistContext, make_program

__all__ = ["main", "WorkerRuntime"]

EXIT_OK = 0
EXIT_SUPERVISOR_LOST = 2
EXIT_PROGRAM_ERROR = 3
EXIT_PROTOCOL = 4


class _SupervisorLost(Exception):
    """The supervisor stopped talking (EOF, timeout, or channel error)."""


class WorkerRuntime:
    """The worker's state machine, factored for direct use in tests."""

    def __init__(self, cfg: dict) -> None:
        self.cfg = cfg
        self.pid = int(cfg["pid"])
        self.inc = int(cfg.get("inc", 0))
        self.clock = LamportClock()
        self.log = EventLogWriter(
            worker_log_path(cfg["log_dir"], self.pid),
            pid=self.pid,
            clock=self.clock,
            incarnation=self.inc,
            fsync=bool(cfg.get("fsync_logs", False)),
        )
        self.io_timeout = float(cfg.get("io_timeout_s", 10.0))
        self.hb_interval = float(cfg.get("hb_interval_s", 0.05))
        self._inbound: queue.Queue = queue.Queue()
        self._chan: ReliableChannel | None = None
        self._stop_hb = threading.Event()

    # -- plumbing ------------------------------------------------------

    def connect(self) -> None:
        cfg = self.cfg
        deadline = time.monotonic() + float(cfg.get("connect_timeout_s", 10.0))
        backoff = float(cfg.get("connect_backoff_s", 0.02))
        last: Exception | None = None
        while True:
            try:
                sock = socket.create_connection(
                    (cfg["host"], int(cfg["port"])), timeout=2.0
                )
                sock.settimeout(None)
                break
            except OSError as exc:
                last = exc
                if time.monotonic() + backoff > deadline:
                    raise _SupervisorLost(
                        f"connect to {cfg['host']}:{cfg['port']} failed "
                        f"past the deadline: {last}"
                    ) from exc
                time.sleep(backoff)
                backoff = min(backoff * 2, 0.5)
        self._chan = ReliableChannel(
            sock,
            name=f"w{self.pid}",
            clock=self.clock,
            on_frame=self._inbound.put,
            on_close=lambda exc: self._inbound.put(
                {"t": "_closed", "exc": repr(exc) if exc else None}
            ),
            rto_initial_s=float(cfg.get("rto_initial_s", 0.05)),
            rto_max_s=float(cfg.get("rto_max_s", 1.0)),
            rto_jitter=float(cfg.get("rto_jitter", 0.25)),
            queue_max=int(cfg.get("send_queue_max", 256)),
        )

    def _next_frame(self, *, wanted: str) -> dict:
        try:
            frame = self._inbound.get(timeout=self.io_timeout)
        except queue.Empty:
            raise _SupervisorLost(
                f"no frame from supervisor for {self.io_timeout}s "
                f"while waiting for {wanted!r}"
            ) from None
        if frame["t"] == "_closed":
            raise _SupervisorLost(
                f"supervisor channel closed while waiting for {wanted!r}: "
                f"{frame['exc']}"
            )
        return frame

    def _heartbeat_loop(self) -> None:
        while not self._stop_hb.wait(self.hb_interval):
            self._chan.try_send({"t": "hb", "pid": self.pid, "inc": self.inc})

    # -- the round loop ------------------------------------------------

    def run(self) -> int:
        self.log.log("boot", os_pid=os.getpid())
        self.connect()
        self._chan.send({"t": "hello", "pid": self.pid, "inc": self.inc,
                         "run": self.cfg.get("run_id", ""),
                         "os_pid": os.getpid()})
        welcome = self._next_frame(wanted="welcome")
        if welcome["t"] == "shutdown":  # raced a supervisor abort
            self._chan.send({"t": "bye", "pid": self.pid})
            return EXIT_OK
        if welcome["t"] != "welcome":
            self.log.log("err", detail=f"expected welcome, got {welcome['t']}")
            return EXIT_PROTOCOL

        program = make_program(welcome["program"], welcome.get("kwargs"))
        ctx = DistContext(pid=self.pid, p=int(welcome["p"]))
        s = int(welcome["s0"])
        state = welcome.get("state")
        if state is None:
            state = program.init(ctx)
        inbox = list(welcome.get("inbox") or [])
        for m in inbox:
            self.log.log("deliver", uid=m["uid"], src=m["src"], s=s)
        kill_at = welcome.get("kill_at")
        self.log.log("welcome", s0=s, resumed=welcome.get("state") is not None)

        hb = threading.Thread(target=self._heartbeat_loop, daemon=True,
                              name=f"w{self.pid}-hb")
        hb.start()
        try:
            return self._rounds(program, ctx, s, state, inbox, kill_at)
        finally:
            self._stop_hb.set()

    def _rounds(self, program, ctx, s, state, inbox, kill_at) -> int:
        #: messages staged for a future round: s -> list of frames
        staged: dict[int, list[dict]] = {}
        done = False
        while True:
            self.log.log("step", s=s)
            try:
                state, outbox, done = program.superstep(ctx, s, state, inbox)
            except Exception as exc:  # deterministic program bug
                self.log.log("err", s=s, detail=repr(exc))
                self._chan.send({"t": "err", "pid": self.pid, "s": s,
                                 "reason": "program-error", "detail": repr(exc)})
                return EXIT_PROGRAM_ERROR
            for k, (dest, payload) in enumerate(outbox):
                uid = f"{self.pid}:{s}:{k}"
                self.log.log("send", uid=uid, src=self.pid, dest=dest, s=s)
                self._chan.send({"t": "data", "uid": uid, "src": self.pid,
                                 "dest": dest, "k": k, "s": s,
                                 "payload": payload})
            if kill_at is not None and s == kill_at:
                # Chaos directive: die mid-round — data streamed, barrier
                # never sent.  SIGKILL: no flushes, no goodbyes.
                self.log.log("kill_self", s=s)
                os.kill(os.getpid(), signal.SIGKILL)
            self.log.log("barrier", s=s, done=done)
            self._chan.send({"t": "barrier", "pid": self.pid, "s": s,
                             "state": state, "done": done})

            inbox = None
            while inbox is None:
                frame = self._next_frame(wanted=f"commit {s}")
                kind = frame["t"]
                if kind == "deliver":
                    self.log.log("deliver", uid=frame["uid"], src=frame["src"],
                                 s=frame["for_s"])
                    staged.setdefault(frame["for_s"], []).append(frame)
                elif kind == "commit":
                    if frame["s"] != s:
                        continue  # stale commit replayed across a restart
                    self.log.log("commit", s=s)
                    batch = staged.pop(s + 1, [])
                    batch.sort(key=lambda f: (f["src"], f["k"]))
                    inbox = [{"uid": f["uid"], "src": f["src"],
                              "payload": f["payload"]} for f in batch]
                elif kind == "shutdown":
                    self.log.log("shutdown")
                    self._chan.send({"t": "bye", "pid": self.pid})
                    self._drain_unacked()
                    return EXIT_OK
                elif kind == "hb":
                    continue
                else:
                    self.log.log("err", detail=f"unexpected frame {kind!r}")
                    return EXIT_PROTOCOL
            s += 1
            if done:
                # Final round committed; nothing left to execute — park
                # until the supervisor's global shutdown.
                while True:
                    frame = self._next_frame(wanted="shutdown")
                    if frame["t"] == "shutdown":
                        self.log.log("shutdown")
                        self._chan.send({"t": "bye", "pid": self.pid})
                        self._drain_unacked()
                        return EXIT_OK

    def _drain_unacked(self, timeout: float = 2.0) -> None:
        deadline = time.monotonic() + timeout
        while self._chan.unacked_count and time.monotonic() < deadline:
            time.sleep(0.005)

    def close(self) -> None:
        if self._chan is not None:
            self._chan.close()
        self.log.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.dist.worker")
    parser.add_argument("--config", required=True,
                        help="JSON runtime config from the supervisor")
    ns = parser.parse_args(argv)
    cfg = json.loads(ns.config)
    rt = WorkerRuntime(cfg)
    try:
        return rt.run()
    except _SupervisorLost as exc:
        rt.log.log("err", reason="supervisor-lost", detail=str(exc))
        return EXIT_SUPERVISOR_LOST
    finally:
        rt.close()


if __name__ == "__main__":
    sys.exit(main())
