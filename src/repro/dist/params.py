"""Tunable parameters of the real-process distributed backend.

Everything time-valued is wall-clock seconds (the dist backend measures
real time; the simulators count abstract steps).  The defaults are sized
for localhost CI runs: heartbeats every 50 ms, a 2 s liveness deadline,
retransmission starting at 50 ms with exponential backoff, and a whole-
run deadline that turns any hang into a labelled
:class:`~repro.errors.DistRunError` instead of a stuck process tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["DistParams"]


@dataclass(frozen=True)
class DistParams:
    """Knobs of the supervisor/worker runtime.

    Attributes
    ----------
    host:
        Interface the supervisor listens on (workers connect back to it).
    hb_interval_s / hb_timeout_s:
        Worker heartbeat period, and how long the supervisor waits
        without hearing *any* frame from a worker before declaring it
        dead (kill + restart from the last committed superstep).
    connect_timeout_s / connect_backoff_s:
        How long a worker keeps retrying the initial TCP connect, and
        the starting backoff between attempts (doubled per retry).
    rto_initial_s / rto_max_s / rto_jitter:
        Reliable-channel retransmission: first timeout, cap, and the
        multiplicative jitter fraction applied to every backoff step so
        retransmit storms decorrelate.
    send_queue_max:
        Bound on each channel's outbound frame queue.  A full queue
        blocks the producer (backpressure) instead of buffering without
        limit.
    io_timeout_s:
        Worker-side cap on waiting for one expected frame (WELCOME /
        DELIVER / SHUTDOWN); on expiry the worker exits nonzero rather
        than hang forever on a dead supervisor.
    run_timeout_s:
        Whole-run deadline at the supervisor; on expiry every worker is
        killed and :class:`~repro.errors.DistRunError` is raised with a
        diagnosis of where the run was stuck.
    restart_budget:
        Total worker restarts the supervisor will perform before giving
        up (budget shared across workers, mirroring the campaign pool's
        respawn budget).
    delay_unit_s:
        Wall-clock seconds per unit of a fault plan's ``extra_delay``
        when it is injected at the socket layer.
    fsync_logs:
        ``os.fsync`` every event-log line (slow; only for crash tests
        that truncate logs mid-line).
    """

    host: str = "127.0.0.1"
    hb_interval_s: float = 0.05
    hb_timeout_s: float = 2.0
    connect_timeout_s: float = 10.0
    connect_backoff_s: float = 0.02
    rto_initial_s: float = 0.05
    rto_max_s: float = 1.0
    rto_jitter: float = 0.25
    send_queue_max: int = 256
    io_timeout_s: float = 10.0
    run_timeout_s: float = 60.0
    restart_budget: int = 3
    delay_unit_s: float = 0.002
    fsync_logs: bool = False

    def __post_init__(self) -> None:
        positive = (
            "hb_interval_s", "hb_timeout_s", "connect_timeout_s",
            "connect_backoff_s", "rto_initial_s", "rto_max_s",
            "io_timeout_s", "run_timeout_s", "delay_unit_s",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ParameterError(f"DistParams requires {name} > 0")
        if self.hb_timeout_s <= self.hb_interval_s:
            raise ParameterError(
                "DistParams requires hb_timeout_s > hb_interval_s "
                f"(got {self.hb_timeout_s} <= {self.hb_interval_s})"
            )
        if self.rto_max_s < self.rto_initial_s:
            raise ParameterError("DistParams requires rto_max_s >= rto_initial_s")
        if not 0.0 <= self.rto_jitter <= 1.0:
            raise ParameterError("DistParams requires 0 <= rto_jitter <= 1")
        if self.send_queue_max < 1:
            raise ParameterError("DistParams requires send_queue_max >= 1")
        if self.restart_budget < 0:
            raise ParameterError("DistParams requires restart_budget >= 0")

    def as_dict(self) -> dict:
        """JSON projection shipped to workers inside the WELCOME frame."""
        return {
            "hb_interval_s": self.hb_interval_s,
            "hb_timeout_s": self.hb_timeout_s,
            "rto_initial_s": self.rto_initial_s,
            "rto_max_s": self.rto_max_s,
            "rto_jitter": self.rto_jitter,
            "send_queue_max": self.send_queue_max,
            "io_timeout_s": self.io_timeout_s,
            "fsync_logs": self.fsync_logs,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "DistParams":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 — py3.10 compat
        return cls(**{k: v for k, v in doc.items() if k in known})
