"""Per-process JSONL event logs, Lamport-stamped and merge-ready.

Every process in a distributed run — each worker and the supervisor —
appends one JSON object per line to its own log file.  Lines are written
whole and flushed per event (line-buffered), so a SIGKILL can lose or
tear at most the final line; :func:`read_log` tolerates exactly that,
returning the intact prefix and quarantining the torn tail instead of
refusing the whole file.

Every line carries:

``n``    per-process line number (0, 1, 2, ...)
``pid``  logical process id (worker pid, or ``-1`` for the supervisor)
``inc``  incarnation (0 for the first spawn, +1 per restart)
``lc``   Lamport stamp: the writer ticks its clock per event, and merges
         peer stamps on receive, so sorting the union of all logs by
         ``(lc, pid, n)`` yields a total order consistent with causality
``ev``   event kind (``send``, ``deliver``, ``barrier``, ``commit``, ...)

plus event-specific fields (``uid``, ``s``, ``src``, ``dest``, ...).
:func:`merge_logs` produces that total order; :mod:`repro.dist.analyze`
checks it and replays it through the observability stack.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.dist.clock import LamportClock

__all__ = ["EventLogWriter", "read_log", "merge_logs", "worker_log_path"]


def worker_log_path(log_dir: str | Path, pid: int) -> Path:
    """Canonical log file location for one logical process."""
    name = "supervisor.jsonl" if pid < 0 else f"worker-{pid}.jsonl"
    return Path(log_dir) / name


class EventLogWriter:
    """Append-only, line-buffered JSONL event log for one process.

    Not crash-proof — crash-*legible*: each event is one ``write`` of a
    full line followed by a flush (and an ``fsync`` when asked), so the
    file is valid JSONL up to at most one torn final line no matter when
    the process dies.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        pid: int,
        clock: LamportClock,
        incarnation: int = 0,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.pid = pid
        self.incarnation = incarnation
        self._clock = clock
        self._fsync = fsync
        self._lock = threading.Lock()
        self._n = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def log(self, ev: str, *, lc: int | None = None, **fields) -> int:
        """Record one event; returns its Lamport stamp.

        ``lc=None`` ticks the clock (a local event).  A receive event
        passes the merged stamp it already obtained from
        :meth:`~repro.dist.clock.LamportClock.observe` so the log line
        and the clock agree.
        """
        if lc is None:
            lc = self._clock.tick()
        with self._lock:
            rec = {"n": self._n, "pid": self.pid, "inc": self.incarnation,
                   "lc": lc, "ev": ev}
            rec.update(fields)
            self._n += 1
            self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
        return lc

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.flush()
                self._fh.close()
            except ValueError:  # already closed
                pass


def read_log(path: str | Path) -> tuple[list[dict], str | None]:
    """Read one process log; returns ``(events, torn_tail)``.

    A final line without a newline terminator, or one that fails to
    parse, is the signature of a process killed mid-write: it is
    returned as ``torn_tail`` (for diagnostics) rather than raised.  A
    torn line anywhere *else* would mean real corruption and raises
    ``ValueError``.
    """
    events: list[dict] = []
    torn: str | None = None
    raw = Path(path).read_bytes()
    if not raw:
        return events, torn
    lines = raw.split(b"\n")
    complete, tail = lines[:-1], lines[-1]
    for i, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except ValueError as exc:
            raise ValueError(
                f"{path}: corrupt event-log line {i} (not the torn-tail "
                f"case — line is newline-terminated): {exc}"
            ) from exc
    if tail.strip():
        try:
            events.append(json.loads(tail))
        except ValueError:
            torn = tail.decode("utf-8", errors="replace")
    return events, torn


def merge_logs(log_dir: str | Path) -> tuple[list[dict], dict]:
    """Merge every ``*.jsonl`` log under ``log_dir`` into one totally
    ordered event list.

    Order: ``(lc, pid, n)`` — Lamport stamp first (causally consistent),
    then pid and local line number as deterministic tie-breaks.  Returns
    ``(events, meta)`` where ``meta`` records the files read and any
    torn tails observed.
    """
    log_dir = Path(log_dir)
    events: list[dict] = []
    meta: dict = {"files": [], "torn": {}}
    for path in sorted(log_dir.glob("*.jsonl")):
        evs, torn = read_log(path)
        meta["files"].append(path.name)
        if torn is not None:
            meta["torn"][path.name] = torn
        events.extend(evs)
    events.sort(key=lambda e: (e.get("lc", 0), e.get("pid", 0), e.get("n", 0)))
    return events, meta
