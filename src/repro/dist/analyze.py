"""Merged-log analysis: total order, invariants, and obs replay.

This is the "trust, then verify" half of the dist backend.  The run
produces per-process Lamport-stamped logs (:mod:`repro.dist.eventlog`);
this module merges them and answers three questions:

1. **Did the protocol keep its promises?**  :func:`check_merged`
   verifies, from the logs alone, that every application message was
   delivered *exactly once* at its destination (counting only effective
   deliveries — a delivery replayed into a restarted incarnation whose
   predecessor never committed the round is recovery, not duplication),
   that every supervisor ``commit s`` is causally preceded by a
   ``barrier s`` from every participating worker (superstep agreement),
   and that each incarnation's Lamport stamps are strictly monotone.

2. **Can I look at it?**  :func:`replay_to_tracer` renders the merged
   order through the ordinary :class:`repro.obs.Tracer` — one lane per
   process, a span per superstep, instants for sends/deliveries/commits/
   faults/restarts — so ``chrome://tracing`` views a *real* faulty run
   with the same tooling the simulators use.  Time is the Lamport stamp.

3. **Does the simulator-grade checker agree?**  :func:`to_logp_result`
   re-expresses the merged log as a genuine
   :class:`~repro.logp.machine.LogPResult` (Lamport time scaled onto a
   LogP step grid) and hands it to
   :func:`repro.faults.invariants.check_execution` — the same machinery
   that audits simulated runs audits the sockets.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from repro.dist.eventlog import merge_logs
from repro.errors import InvariantViolationError
from repro.logp.machine import LogPResult
from repro.logp.trace import Trace
from repro.models.params import LogPParams
from repro.obs.tracer import Tracer

__all__ = [
    "check_merged",
    "replay_to_tracer",
    "to_logp_result",
    "analyze_run",
]

#: LogP step grid used when projecting Lamport time: one Lamport tick
#: maps to G steps, so distinct local events land >= G apart and every
#: gap invariant holds by construction.
_G = 2
_O = 1


def check_merged(events: list[dict]) -> list[str]:
    """Protocol invariants over one merged, totally ordered event list.

    Returns human-readable violation strings (empty == clean).
    """
    violations: list[str] = []

    sends: dict[str, dict] = {}
    for e in events:
        if e["ev"] == "send":
            sends.setdefault(e["uid"], e)  # re-sends after restart: same uid

    # -- exactly-once delivery -----------------------------------------
    # Effective deliveries: per (uid, pid) keep only the delivery to the
    # highest incarnation — earlier incarnations' rounds were discarded
    # by the crash that caused the restart.  Within one incarnation a
    # repeated uid is a real duplication (channel dedup failed).
    per_uid_pid: dict[tuple[str, int], dict[int, int]] = defaultdict(dict)
    for e in events:
        if e["ev"] != "deliver":
            continue
        counts = per_uid_pid[(e["uid"], e["pid"])]
        counts[e["inc"]] = counts.get(e["inc"], 0) + 1
    delivered_to: dict[str, list[int]] = defaultdict(list)
    for (uid, pid), by_inc in sorted(per_uid_pid.items()):
        for inc, n in sorted(by_inc.items()):
            if n > 1:
                violations.append(
                    f"exactly-once: message {uid} delivered {n} times to "
                    f"worker {pid} incarnation {inc}"
                )
        delivered_to[uid].append(pid)
    for uid, send in sorted(sends.items()):
        dests = delivered_to.get(uid, [])
        if not dests:
            violations.append(
                f"exactly-once: message {uid} sent by worker {send['pid']} "
                f"but never delivered"
            )
        elif set(dests) != {send["dest"]}:
            violations.append(
                f"exactly-once: message {uid} addressed to {send['dest']} "
                f"but delivered to {sorted(set(dests))}"
            )
    for uid in sorted(set(delivered_to) - set(sends)):
        violations.append(f"exactly-once: message {uid} delivered but never sent")

    # -- superstep agreement -------------------------------------------
    # Supervisor `commit s` must be causally after `barrier s` from every
    # worker that participated in round s; commits must advance in order.
    barrier_lc: dict[tuple[int, int], int] = {}
    participants: set[int] = set()
    for e in events:
        if e["ev"] == "barrier" and e["pid"] >= 0:
            barrier_lc.setdefault((e["pid"], e["s"]), e["lc"])
            participants.add(e["pid"])
    last_commit = -1  # commits must start at round 0 and advance by one
    for e in events:
        if e["ev"] != "commit" or e["pid"] >= 0:
            continue
        s = e["s"]
        if s != last_commit + 1:
            violations.append(
                f"superstep-agreement: supervisor committed round {s} after "
                f"round {last_commit} (non-consecutive)"
            )
        last_commit = s
        for pid in sorted(participants):
            lc = barrier_lc.get((pid, s))
            if lc is None:
                violations.append(
                    f"superstep-agreement: round {s} committed but worker "
                    f"{pid} never logged its barrier"
                )
            elif lc >= e["lc"]:
                violations.append(
                    f"superstep-agreement: round {s} commit (lc={e['lc']}) "
                    f"not causally after worker {pid}'s barrier (lc={lc})"
                )

    # -- monotone Lamport clocks ---------------------------------------
    per_writer: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
    for e in events:
        per_writer[(e["pid"], e["inc"])].append((e["n"], e["lc"]))
    for (pid, inc), seq in sorted(per_writer.items()):
        seq.sort()
        for (n_a, lc_a), (n_b, lc_b) in zip(seq, seq[1:]):
            if lc_b <= lc_a:
                violations.append(
                    f"monotone-clock: process {pid} inc {inc} logged "
                    f"lc={lc_b} (line {n_b}) after lc={lc_a} (line {n_a})"
                )
                break
    return violations


def replay_to_tracer(events: list[dict], tracer: Tracer | None = None) -> Tracer:
    """Render a merged log through the standard observability tracer.

    One tid per logical process (supervisor on tid 0, worker ``pid`` on
    ``pid + 1``), a span per executed superstep, instants for the rest.
    Time axis = Lamport stamps (1 tick = 1 "µs" in the Chrome export).
    """
    tracer = tracer if tracer is not None else Tracer()
    open_steps: dict[tuple[int, int], tuple[int, int]] = {}
    for e in events:
        pid, inc, lc, ev = e["pid"], e["inc"], e["lc"], e["ev"]
        tid = 0 if pid < 0 else pid + 1
        if ev == "step":
            open_steps[(pid, inc)] = (e["s"], lc)
        elif ev == "barrier" and pid >= 0:
            opened = open_steps.pop((pid, inc), None)
            if opened is not None:
                s, start = opened
                tracer.span(
                    "dist", f"superstep {s}", start, lc, tid=tid, cat="dist",
                    args={"pid": pid, "inc": inc, "s": s},
                )
        elif ev in ("send", "deliver"):
            tracer.instant("dist", f"{ev} {e['uid']}", lc, tid=tid, args={
                k: e[k] for k in ("uid", "src", "dest", "s") if k in e
            })
        elif ev in ("commit", "spawn", "restart", "worker_dead", "wire_fault",
                    "kill_self", "done", "shutdown"):
            args = {k: v for k, v in e.items()
                    if k not in ("pid", "inc", "lc", "ev", "n")}
            tracer.instant("dist", ev, lc, tid=tid, args=args or None)
    # A crash can leave a step open; close it at its own start so the
    # truncated superstep is still visible in the timeline.
    for (pid, inc), (s, start) in sorted(open_steps.items()):
        tracer.span("dist", f"superstep {s} (cut)", start, start + 1,
                    tid=pid + 1, cat="dist", args={"pid": pid, "inc": inc})
    return tracer


def to_logp_result(events: list[dict], p: int) -> LogPResult:
    """Project the merged log onto a LogP execution for the simulator-
    grade invariant checker.

    Mapping: every logged event at Lamport stamp ``lc`` happens at step
    ``lc * G`` (G=2, o=1) — distinct local events are >= G apart, so the
    gap rules hold; ``L`` is set to the largest observed send-to-deliver
    stretch (at least G+1), so the latency rule bounds the run's *actual*
    worst case.  Messages are numbered by first-send order; deliveries
    use effective deliveries only (max incarnation per pid), matching
    :func:`check_merged`.  The result carries a real
    :class:`~repro.logp.trace.Trace` and empty stall/fault ledgers, so
    :func:`repro.faults.invariants.check_execution` runs unmodified.
    """
    send_lc: dict[str, int] = {}
    deliver: dict[str, tuple[int, int, int]] = {}  # uid -> (pid, inc, lc)
    send_meta: dict[str, dict] = {}
    for e in events:
        if e["ev"] == "send" and e["uid"] not in send_lc:
            send_lc[e["uid"]] = e["lc"]
            send_meta[e["uid"]] = e
        elif e["ev"] == "deliver":
            prev = deliver.get(e["uid"])
            if prev is None or e["inc"] >= prev[1]:
                deliver[e["uid"]] = (e["pid"], e["inc"], e["lc"])

    max_stretch = _G
    for uid, lc_send in send_lc.items():
        if uid in deliver:
            max_stretch = max(max_stretch, (deliver[uid][2] - lc_send) * _G)
    params = LogPParams(p=p, L=max(max_stretch, _G), o=_O, G=_G)

    trace = Trace(params)
    uid_int = {uid: i for i, uid in enumerate(sorted(send_lc, key=send_lc.get))}
    max_lc = 0
    for uid, lc in sorted(send_lc.items(), key=lambda kv: kv[1]):
        e = send_meta[uid]
        trace.submissions.append((lc * _G, e["pid"], uid_int[uid]))
        max_lc = max(max_lc, lc)
    for uid, (pid, _inc, lc) in sorted(deliver.items(), key=lambda kv: kv[1][2]):
        if uid not in uid_int:
            continue
        trace.windows.append((uid_int[uid], pid, lc * _G, lc * _G))
        trace.deliveries.append((lc * _G, pid, uid_int[uid]))
        trace.acquisitions.append((lc * _G, lc * _G, pid, uid_int[uid]))
        max_lc = max(max_lc, lc)
    trace.deliveries.sort()

    return LogPResult(
        params=params,
        results=[None] * p,
        makespan=(max_lc + 1) * _G,
        stalls=[],
        buffer_highwater=[0] * p,
        total_messages=len(uid_int),
        trace=trace,
    )


def analyze_run(log_dir: str | Path, p: int, *, strict: bool = False) -> dict:
    """One-call audit of a finished run's log directory.

    Merges the logs, runs :func:`check_merged`, projects through
    :func:`to_logp_result` into
    :func:`repro.faults.invariants.check_execution`, and builds the
    replay tracer.  Returns a report dict; with ``strict=True`` raises
    :class:`~repro.errors.InvariantViolationError` on any violation.
    """
    from repro.faults.invariants import check_execution

    events, meta = merge_logs(log_dir)
    protocol = check_merged(events)
    p_seen = {e["pid"] for e in events if e["pid"] >= 0}
    p_eff = max(p, max(p_seen) + 1 if p_seen else 0)
    result = to_logp_result(events, p_eff)
    model = [str(v) for v in check_execution(result)]
    tracer = replay_to_tracer(events)
    report = {
        "events": len(events),
        "files": meta["files"],
        "torn": meta["torn"],
        "protocol_violations": protocol,
        "model_violations": model,
        "messages": result.total_messages,
        "clean": not (protocol or model),
    }
    if strict and not report["clean"]:
        raise InvariantViolationError(
            "distributed run failed post-hoc log audit:\n"
            + "\n".join(f"  - {v}" for v in protocol + model)
        )
    report["tracer"] = tracer
    report["result"] = result
    return report
