"""Keyed plan caches with hit/miss accounting.

The cross-simulations recompute the same pure *plans* over and over —
CB tree shapes, bitonic sorting schedules, optimal broadcast trees,
h-relation edge colorings, oblivious routes — once per processor per
superstep, although each is a pure function of its key.  A
:class:`PlanCache` memoizes such plans process-wide and counts hits and
misses so benchmarks can report how much recomputation the caches absorb.

Caches are bounded (FIFO eviction) and registered by name;
:func:`plan_cache_stats` snapshots all of them and
:func:`clear_plan_caches` resets them (tests use this to measure cold
behavior).
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["PlanCache", "plan_cache", "plan_cache_stats", "clear_plan_caches"]


class PlanCache:
    """A named, bounded, insertion-order-evicting memo table."""

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._table: dict[Any, Any] = {}

    def get(self, key: Any, factory: Callable[[], Any]) -> Any:
        """The cached plan for ``key``, computing it via ``factory()`` on
        the first request."""
        try:
            value = self._table[key]
        except KeyError:
            self.misses += 1
            value = factory()
            if len(self._table) >= self.maxsize:
                # FIFO eviction: drop the oldest insertion.
                self._table.pop(next(iter(self._table)))
            self._table[key] = value
            return value
        self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._table),
            "maxsize": self.maxsize,
        }


_REGISTRY: dict[str, PlanCache] = {}


def plan_cache(name: str, maxsize: int = 4096) -> PlanCache:
    """The process-wide cache registered under ``name`` (created on first
    use)."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = _REGISTRY[name] = PlanCache(name, maxsize=maxsize)
    return cache


def plan_cache_stats() -> dict[str, dict]:
    """Hit/miss/size snapshot of every registered cache."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


def clear_plan_caches() -> None:
    """Empty every registered cache and zero its counters."""
    for cache in _REGISTRY.values():
        cache.clear()
