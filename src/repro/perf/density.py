"""Live event-density estimation for the adaptive kernel.

The adaptive kernel's whole job is a regime call: *sparse* executions
(few events per clock tick) want the skip-ahead indexed queue, *dense*
executions (nearly every tick carries events) want batched scanning —
the per-tick scan the event kernel was built to avoid becomes optimal
again once there is nothing to skip, and a vectorized scan beats both.
:class:`DensityEstimator` makes that call online, from the stream of
density samples the kernel already produces for free:

* the **event queue** samples ``batch_size / gap`` — events delivered
  per clock unit crossed reaching the batch's timestamp (a saturated
  clock has gap 1 and density >= 1);
* the **packet router** samples ``active / created`` — the occupancy of
  the edge (lookahead) window, i.e. the fraction of known links holding
  traffic this step.

Samples feed an exponentially-weighted moving average, and the mode
flips with **hysteresis**: the EWMA must rise above ``enter`` to go
dense and fall below ``exit`` to go back, so a workload hovering at the
threshold cannot thrash between kernels (each flip re-tunes the hot
loop).  The estimator is pure bookkeeping — it never touches event
order, so kernel equivalence is untouched by construction (the
golden-trace and density-sweep suites pin this).
"""

from __future__ import annotations

__all__ = ["DensityEstimator"]


class DensityEstimator:
    """EWMA density tracker with hysteresis over a dense/sparse mode bit.

    Parameters
    ----------
    enter:
        EWMA level at (or above) which the estimator switches to dense
        mode.
    exit:
        EWMA level at (or below) which it switches back to sparse mode.
        Must be strictly below ``enter`` (the hysteresis band).
    alpha:
        EWMA smoothing factor in ``(0, 1]``; higher reacts faster.  The
        default 0.5 reaches a new regime's level in ~3 samples while
        still ignoring single-batch spikes.
    """

    __slots__ = ("enter", "exit", "alpha", "dense", "value", "samples", "switches")

    def __init__(
        self, *, enter: float = 1.0, exit: float = 0.5, alpha: float = 0.5
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if exit >= enter:
            raise ValueError(
                f"hysteresis band requires exit < enter, got "
                f"exit={exit} >= enter={enter}"
            )
        self.enter = enter
        self.exit = exit
        self.alpha = alpha
        #: Current mode bit; every run starts sparse (skip-ahead).
        self.dense = False
        #: Current EWMA of the density samples.
        self.value = 0.0
        #: Number of samples observed.
        self.samples = 0
        #: Number of dense<->sparse transitions so far.
        self.switches = 0

    def observe(self, sample: float) -> bool:
        """Fold one density sample in; returns the (possibly new) mode."""
        self.samples += 1
        if self.samples == 1:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        if self.dense:
            if self.value <= self.exit:
                self.dense = False
                self.switches += 1
        elif self.value >= self.enter:
            self.dense = True
            self.switches += 1
        return self.dense

    def publish(self, counters) -> None:
        """Copy the estimator's totals onto a result's
        :class:`~repro.perf.counters.KernelCounters`."""
        counters.mode_switches = self.switches
        counters.density_samples = self.samples
        counters.density = self.value
