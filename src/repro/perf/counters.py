"""Lightweight instrumentation counters for the simulation kernels.

Every engine (LogP event loop, BSP superstep loop, packet router) exposes
a :class:`KernelCounters` on its result object so experiments and the
``bench_kernel`` regression gate can report events/sec and quantify how
much work the event-driven kernels avoid relative to per-tick scanning.

The four fields have one engine-specific reading each — see
``docs/PERF.md`` for the exact table — but the common shape is:

* ``events``  — units of real work processed (machine events, program
  instructions, transmission attempts),
* ``batches`` — scheduling rounds (distinct event timestamps, supersteps,
  router steps),
* ``ticks_skipped`` — work a per-tick kernel would have done that the
  event-driven kernel skipped (empty clock ticks, idle-edge scans,
  simulated clock units crossed in one jump),
* ``queue_highwater`` — peak size of the kernel's pending-work structure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Work accounting for one kernel run (all counts start at zero)."""

    #: Name of the kernel that produced the run ("event", "tick", ...).
    kernel: str = "event"
    #: Units of real work processed.
    events: int = 0
    #: Scheduling rounds (distinct timestamps / supersteps / router steps).
    batches: int = 0
    #: Per-tick work avoided by skip-ahead / active-set tracking.
    ticks_skipped: int = 0
    #: Peak size of the pending-work structure.
    queue_highwater: int = 0
    #: Adaptive kernel only — dense<->sparse mode transitions.
    mode_switches: int = 0
    #: Adaptive kernel only — scheduling rounds spent in dense mode
    #: (sparse residency is ``batches - dense_batches``).
    dense_batches: int = 0
    #: Adaptive kernel only — density samples folded into the estimator.
    density_samples: int = 0
    #: Adaptive kernel only — final EWMA density estimate.
    density: float = 0.0

    @property
    def events_per_batch(self) -> float:
        """Mean amount of real work per scheduling round."""
        return self.events / self.batches if self.batches else 0.0

    @property
    def sparse_batches(self) -> int:
        """Adaptive kernel only — scheduling rounds spent in sparse mode."""
        return self.batches - self.dense_batches

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization (benchmarks, goldens).

        The adaptive-mode fields only appear for ``kernel="adaptive"``,
        keeping the event/tick/superstep serializations byte-stable.
        """
        doc = {
            "kernel": self.kernel,
            "events": self.events,
            "batches": self.batches,
            "ticks_skipped": self.ticks_skipped,
            "queue_highwater": self.queue_highwater,
        }
        if self.kernel == "adaptive":
            doc.update(
                mode_switches=self.mode_switches,
                dense_batches=self.dense_batches,
                sparse_batches=self.sparse_batches,
                density_samples=self.density_samples,
                density=round(self.density, 6),
            )
        return doc
