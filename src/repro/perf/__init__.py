"""Event-driven kernel substrate: queues, counters, and plan caches.

See ``docs/PERF.md`` for the design, the equivalence argument between
the ``"event"`` and ``"tick"`` kernels, and how ``bench_kernel`` gates
regressions on the numbers these counters produce.
"""

from repro.perf.counters import KernelCounters
from repro.perf.density import DensityEstimator
from repro.perf.event_queue import (
    KERNELS,
    AdaptiveEventQueue,
    IndexedEventQueue,
    TickScanQueue,
    make_event_queue,
)
from repro.perf.memo import (
    PlanCache,
    clear_plan_caches,
    plan_cache,
    plan_cache_stats,
)

__all__ = [
    "KernelCounters",
    "DensityEstimator",
    "IndexedEventQueue",
    "TickScanQueue",
    "AdaptiveEventQueue",
    "KERNELS",
    "make_event_queue",
    "PlanCache",
    "plan_cache",
    "plan_cache_stats",
    "clear_plan_caches",
]
