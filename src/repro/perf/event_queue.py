"""Pluggable event queues for the discrete-event machine kernels.

Both queues order events by ``(time, kind, seq)`` where ``seq`` is a
global push counter — exactly the order the machines have always used —
so any two queues drive *bit-identical* executions.  They differ only in
how the next event is located:

* :class:`IndexedEventQueue` — the production kernel.  Events are bucketed
  per timestamp with a min-heap over bucket times, so the kernel *skips
  ahead* to the next actionable time and drains each timestamp as one
  sorted batch.  Cost: ``O(E log T_distinct)`` for ``E`` events.

* :class:`TickScanQueue` — the per-tick scanning reference kernel.  It
  advances the clock one tick at a time and, per tick, scans every
  processor's pending-event list for work due now — the classic simulator
  loop whose ``O(T * (p + in_flight))`` cost the event-driven kernel
  exists to avoid.  It is kept as the equivalence oracle for the golden
  trace suite and as the measured baseline of ``bench_kernel``.

* :class:`AdaptiveEventQueue` — the density-aware kernel.  Same bucket
  structure as :class:`IndexedEventQueue`, but a
  :class:`~repro.perf.density.DensityEstimator` watches events-per-tick
  and, in *dense* regimes (nearly every tick populated), probes the
  ``t + 1`` bucket directly instead of going through the min-heap —
  consecutive timestamps are located in O(1) and the heap entries are
  reclaimed lazily.  In sparse regimes it behaves exactly like the
  indexed queue.  Mode residency, switch counts, and density samples
  are reported on its counters; event order is identical in both modes
  by construction.

Ordering contract (shared by both implementations):

* pushes during the drain of time ``t``'s batch may target ``t`` itself
  (e.g. a zero-overhead submission); they are inserted into the still
  undrained remainder in ``(kind, seq)`` position, matching what a heap
  would do;
* pushes into the past are only legal while the queue is *empty* (the
  machine's quiescence release re-seeds lingering processors at their own,
  possibly older, clocks); the queue then rewinds.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any

from repro.perf.counters import KernelCounters
from repro.perf.density import DensityEstimator

__all__ = [
    "IndexedEventQueue",
    "TickScanQueue",
    "AdaptiveEventQueue",
    "KERNELS",
    "make_event_queue",
]

#: Known kernel names: the two PR-2 kernels in (new, reference) order,
#: plus the density-aware adaptive kernel.  Suites parameterized over
#: this tuple (golden traces, ordering contract) cover all three.
KERNELS = ("event", "tick", "adaptive")


class IndexedEventQueue:
    """Timestamp-indexed queue with skip-ahead and per-timestamp batches."""

    def __init__(self, p: int = 0) -> None:
        self.counters = KernelCounters(kernel="event")
        self._seq = 0
        self._size = 0
        self._buckets: dict[int, list[tuple[int, int, int, Any]]] = {}
        self._times: list[int] = []  # min-heap; one live entry per bucket
        self._cur: list[tuple[int, int, int, Any]] = []
        self._cur_i = 0
        self._cur_time: int | None = None
        self._prev_time: int | None = None

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        self._seq += 1
        item = (kind, self._seq, pid, data)
        if self._cur_time is not None and time <= self._cur_time:
            if self._cur_i < len(self._cur):
                # Mid-batch push: only the current timestamp is admissible.
                if time < self._cur_time:
                    raise ValueError(
                        f"push into the past: t={time} while draining "
                        f"t={self._cur_time}"
                    )
                insort(self._cur, item, lo=self._cur_i)
                self._size += 1
                self.counters.queue_highwater = max(
                    self.counters.queue_highwater, self._size
                )
                return
            # Batch drained: a push at or before the current time re-seeds
            # the queue (quiescence release); rewind and bucket normally.
            self._cur_time = None
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = []
            heapq.heappush(self._times, time)
        bucket.append(item)
        self._size += 1
        self.counters.queue_highwater = max(self.counters.queue_highwater, self._size)

    def pop(self) -> tuple[int, int, int, Any] | None:
        """Next event as ``(time, kind, pid, data)``, or ``None``."""
        if self._cur_i >= len(self._cur):
            if not self._times:
                return None
            t = heapq.heappop(self._times)
            batch = self._buckets.pop(t)
            batch.sort()
            self._cur = batch
            self._cur_i = 0
            self._cur_time = t
            self.counters.batches += 1
            prev = self._prev_time if self._prev_time is not None else -1
            self.counters.ticks_skipped += max(0, t - prev - 1)
            self._prev_time = t
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._cur_time, kind, pid, data)  # type: ignore[return-value]

    def pop_batch(self) -> list[tuple[int, int, int, Any]] | None:
        """Pop the next event *and* the undrained remainder of its
        timestamp batch, as ``[(time, kind, pid, data), ...]`` in pop
        order — the engine's batch-delivery hook.  Events pushed at the
        same timestamp *after* this call re-seed the queue and pop next,
        exactly where one-at-a-time popping would have placed them."""
        first = self.pop()
        if first is None:
            return None
        time = first[0]
        events = [first]
        rest = len(self._cur) - self._cur_i
        if rest:
            for kind, _seq, pid, data in self._cur[self._cur_i :]:
                events.append((time, kind, pid, data))
            self._cur_i = len(self._cur)
            self._size -= rest
            self.counters.events += rest
        return events

    def front_snapshot(self, n: int = 8) -> list[dict]:
        """The next (up to) ``n`` pending events, in processing order —
        the ``DeadlockError`` diagnostics' view of what the kernel would
        do next."""
        out: list[dict] = []
        for kind, _seq, pid, _data in self._cur[self._cur_i :]:
            if len(out) >= n:
                return out
            out.append({"time": self._cur_time, "kind": kind, "pid": pid})
        for t in sorted(self._buckets):
            for kind, _seq, pid, _data in sorted(self._buckets[t]):
                if len(out) >= n:
                    return out
                out.append({"time": t, "kind": kind, "pid": pid})
        return out


class TickScanQueue:
    """Per-tick scanning reference kernel (the pre-event-queue semantics).

    Keeps one pending-event list per processor and, at every clock tick,
    scans all ``p`` lists for events due at that tick.  Never skips a
    tick: ``counters.batches`` counts every tick visited and
    ``counters.ticks_skipped`` stays 0 by construction.
    """

    def __init__(self, p: int) -> None:
        self.counters = KernelCounters(kernel="tick")
        self._p = p
        self._seq = 0
        self._size = 0
        self._pending: list[list[tuple[int, int, int, Any]]] = [
            [] for _ in range(max(1, p))
        ]
        self._now = -1
        self._cur: list[tuple[int, int, int, Any]] = []
        self._cur_i = 0

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        self._seq += 1
        if self._cur_i < len(self._cur):
            if time < self._now:
                raise ValueError(
                    f"push into the past: t={time} while scanning t={self._now}"
                )
            if time == self._now:
                insort(self._cur, (kind, self._seq, pid, data), lo=self._cur_i)
                self._size += 1
                self.counters.queue_highwater = max(
                    self.counters.queue_highwater, self._size
                )
                return
        elif time <= self._now:
            # Quiescence release may re-seed behind the scan point.
            self._now = time - 1
        slot = pid if 0 <= pid < len(self._pending) else 0
        self._pending[slot].append((time, kind, self._seq, data))
        self._size += 1
        self.counters.queue_highwater = max(self.counters.queue_highwater, self._size)

    def pop(self) -> tuple[int, int, int, Any] | None:
        if self._cur_i >= len(self._cur):
            if not self._size:
                return None
            while True:
                self._now += 1
                self.counters.batches += 1
                due: list[tuple[int, int, int, Any]] = []
                # The per-tick scanning loop: visit every processor's
                # pending list at every single tick.
                for pid, events in enumerate(self._pending):
                    if not events:
                        continue
                    keep = []
                    for time, kind, seq, data in events:
                        if time == self._now:
                            due.append((kind, seq, pid, data))
                        else:
                            keep.append((time, kind, seq, data))
                    self._pending[pid] = keep
                if due:
                    due.sort()
                    self._cur = due
                    self._cur_i = 0
                    break
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._now, kind, pid, data)

    # Same contract as IndexedEventQueue.pop_batch: pop one event plus
    # the undrained remainder of its tick.
    pop_batch = IndexedEventQueue.pop_batch

    def front_snapshot(self, n: int = 8) -> list[dict]:
        out: list[dict] = []
        for kind, _seq, pid, _data in self._cur[self._cur_i :]:
            out.append({"time": self._now, "kind": kind, "pid": pid})
        rest = [
            (time, kind, seq, pid)
            for pid, events in enumerate(self._pending)
            for time, kind, seq, _data in events
        ]
        rest.sort()
        out.extend({"time": t, "kind": k, "pid": pid} for t, k, _s, pid in rest)
        return out[:n]


class AdaptiveEventQueue(IndexedEventQueue):
    """Density-aware queue: skip-ahead when sparse, O(1) next-tick
    probing when dense.

    Shares :class:`IndexedEventQueue`'s bucket-per-timestamp layout and
    therefore its exact event ordering; only *how the next populated
    timestamp is located* adapts.  Each drained batch contributes one
    density sample — ``batch_size / clock_gap``, events per clock unit
    crossed — to a :class:`~repro.perf.density.DensityEstimator`.  Once
    the EWMA crosses the dense threshold, the queue first probes the
    ``prev_time + 1`` bucket directly: in a saturated execution that hit
    rate approaches 100% and the min-heap sits idle (its entries are
    discarded lazily when the heap is next consulted).  When density
    falls back through the exit threshold, popping reverts to pure
    skip-ahead.

    The one ordering hazard is the quiescence rewind: a push at or
    before an already-drained time may create a bucket *behind*
    ``prev_time + 1``, so the probe is suspended until the next
    heap-sourced pop re-establishes the global minimum.
    """

    def __init__(self, p: int = 0) -> None:
        super().__init__(p)
        self.counters = KernelCounters(kernel="adaptive")
        self._est = DensityEstimator(enter=1.0, exit=0.5, alpha=0.5)
        self._probe_ok = True

    @property
    def estimator(self) -> DensityEstimator:
        """The live density estimator (read-only introspection)."""
        return self._est

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        if (
            self._cur_time is not None
            and time <= self._cur_time
            and self._cur_i >= len(self._cur)
        ):
            # Quiescence rewind: the new bucket may predate prev+1, so
            # the dense probe is unsafe until the heap re-establishes
            # the true minimum time.
            self._probe_ok = False
        super().push(time, kind, pid, data)

    def _next_time(self) -> int | None:
        """The earliest populated timestamp, or ``None`` when empty."""
        if not self._buckets:
            return None
        if self._est.dense and self._probe_ok and self._prev_time is not None:
            t = self._prev_time + 1
            if t in self._buckets:
                # Dense fast path: consecutive timestamp found without
                # touching the heap; its heap entry goes stale and is
                # reclaimed lazily below.
                return t
        while True:
            t = heapq.heappop(self._times)
            if t in self._buckets:
                self._probe_ok = True
                return t
            # Stale entry for a bucket the dense probe already drained.

    def pop(self) -> tuple[int, int, int, Any] | None:
        if self._cur_i >= len(self._cur):
            t = self._next_time()
            if t is None:
                return None
            batch = self._buckets.pop(t)
            batch.sort()
            self._cur = batch
            self._cur_i = 0
            self._cur_time = t
            c = self.counters
            c.batches += 1
            prev = self._prev_time if self._prev_time is not None else -1
            gap = t - prev
            c.ticks_skipped += max(0, gap - 1)
            self._prev_time = t
            est = self._est
            if est.observe(len(batch) / max(1, gap)):
                c.dense_batches += 1
            c.mode_switches = est.switches
            c.density_samples = est.samples
            c.density = est.value
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._cur_time, kind, pid, data)  # type: ignore[return-value]


def make_event_queue(kernel: str, p: int):
    """Instantiate the named kernel's queue for a ``p``-processor machine."""
    if kernel == "event":
        return IndexedEventQueue(p)
    if kernel == "tick":
        return TickScanQueue(p)
    if kernel == "adaptive":
        return AdaptiveEventQueue(p)
    raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
