"""Pluggable event queues for the discrete-event machine kernels.

Both queues order events by ``(time, kind, seq)`` where ``seq`` is a
global push counter — exactly the order the machines have always used —
so any two queues drive *bit-identical* executions.  They differ only in
how the next event is located:

* :class:`IndexedEventQueue` — the production kernel.  Events are bucketed
  per timestamp with a min-heap over bucket times, so the kernel *skips
  ahead* to the next actionable time and drains each timestamp as one
  sorted batch.  Cost: ``O(E log T_distinct)`` for ``E`` events.

* :class:`TickScanQueue` — the per-tick scanning reference kernel.  It
  advances the clock one tick at a time and, per tick, scans every
  processor's pending-event list for work due now — the classic simulator
  loop whose ``O(T * (p + in_flight))`` cost the event-driven kernel
  exists to avoid.  It is kept as the equivalence oracle for the golden
  trace suite and as the measured baseline of ``bench_kernel``.

* :class:`AdaptiveEventQueue` — the density-aware kernel.  Same bucket
  structure as :class:`IndexedEventQueue`, but a
  :class:`~repro.perf.density.DensityEstimator` watches events-per-tick
  and, in *dense* regimes (nearly every tick populated), probes the
  ``t + 1`` bucket directly instead of going through the min-heap —
  consecutive timestamps are located in O(1) and the heap entries are
  reclaimed lazily.  In sparse regimes it behaves exactly like the
  indexed queue.  Mode residency, switch counts, and density samples
  are reported on its counters; event order is identical in both modes
  by construction.

Ordering contract (shared by both implementations):

* pushes during the drain of time ``t``'s batch may target ``t`` itself
  (e.g. a zero-overhead submission); they are inserted into the still
  undrained remainder in ``(kind, seq)`` position, matching what a heap
  would do;
* pushes into the past are only legal while the queue is *empty* (the
  machine's quiescence release re-seeds lingering processors at their own,
  possibly older, clocks); the queue then rewinds.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any

from repro.perf.counters import KernelCounters
from repro.perf.density import DensityEstimator

__all__ = [
    "IndexedEventQueue",
    "TickScanQueue",
    "AdaptiveEventQueue",
    "KERNELS",
    "make_event_queue",
]

#: Known kernel names: the two PR-2 kernels in (new, reference) order,
#: plus the density-aware adaptive kernel.  Suites parameterized over
#: this tuple (golden traces, ordering contract) cover all three.
KERNELS = ("event", "tick", "adaptive")


class IndexedEventQueue:
    """Timestamp-indexed queue with skip-ahead and per-timestamp batches."""

    def __init__(self, p: int = 0) -> None:
        self.counters = KernelCounters(kernel="event")
        self._seq = 0
        self._size = 0
        self._buckets: dict[int, list[tuple[int, int, int, Any]]] = {}
        self._times: list[int] = []  # min-heap; one live entry per bucket
        self._cur: list[tuple[int, int, int, Any]] = []
        self._cur_i = 0
        self._cur_time: int | None = None
        self._prev_time: int | None = None

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        self._seq += 1
        item = (kind, self._seq, pid, data)
        if self._cur_time is not None and time <= self._cur_time:
            if self._cur_i < len(self._cur):
                # Mid-batch push: only the current timestamp is admissible.
                if time < self._cur_time:
                    raise ValueError(
                        f"push into the past: t={time} while draining "
                        f"t={self._cur_time}"
                    )
                insort(self._cur, item, lo=self._cur_i)
                self._size += 1
                self.counters.queue_highwater = max(
                    self.counters.queue_highwater, self._size
                )
                return
            # Batch drained: a push at or before the current time re-seeds
            # the queue (quiescence release); rewind and bucket normally.
            self._cur_time = None
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = []
            heapq.heappush(self._times, time)
        bucket.append(item)
        self._size += 1
        self.counters.queue_highwater = max(self.counters.queue_highwater, self._size)

    def sync_counters(self) -> None:
        """Bring lazily-maintained counter fields up to date.  A no-op
        here; the adaptive queue overrides it (its density totals are
        synced at read points rather than per batch).  Drivers call it
        before handing counters to a result."""

    def pop(self) -> tuple[int, int, int, Any] | None:
        """Next event as ``(time, kind, pid, data)``, or ``None``."""
        if self._cur_i >= len(self._cur):
            if not self._times:
                return None
            t = heapq.heappop(self._times)
            batch = self._buckets.pop(t)
            batch.sort()
            self._cur = batch
            self._cur_i = 0
            self._cur_time = t
            self.counters.batches += 1
            prev = self._prev_time if self._prev_time is not None else -1
            self.counters.ticks_skipped += max(0, t - prev - 1)
            self._prev_time = t
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._cur_time, kind, pid, data)  # type: ignore[return-value]

    def pop_batch(self) -> list[tuple[int, int, int, Any]] | None:
        """Pop the next event *and* the undrained remainder of its
        timestamp batch, as ``[(time, kind, pid, data), ...]`` in pop
        order — the engine's batch-delivery hook.  Events pushed at the
        same timestamp *after* this call re-seed the queue and pop next,
        exactly where one-at-a-time popping would have placed them."""
        first = self.pop()
        if first is None:
            return None
        time = first[0]
        events = [first]
        rest = len(self._cur) - self._cur_i
        if rest:
            for kind, _seq, pid, data in self._cur[self._cur_i :]:
                events.append((time, kind, pid, data))
            self._cur_i = len(self._cur)
            self._size -= rest
            self.counters.events += rest
        return events

    def front_snapshot(self, n: int = 8) -> list[dict]:
        """The next (up to) ``n`` pending events, in processing order —
        the ``DeadlockError`` diagnostics' view of what the kernel would
        do next."""
        out: list[dict] = []
        for kind, _seq, pid, _data in self._cur[self._cur_i :]:
            if len(out) >= n:
                return out
            out.append({"time": self._cur_time, "kind": kind, "pid": pid})
        for t in sorted(self._buckets):
            for kind, _seq, pid, _data in sorted(self._buckets[t]):
                if len(out) >= n:
                    return out
                out.append({"time": t, "kind": kind, "pid": pid})
        return out


class TickScanQueue:
    """Per-tick scanning reference kernel (the pre-event-queue semantics).

    Keeps one pending-event list per processor and, at every clock tick,
    scans all ``p`` lists for events due at that tick.  Never skips a
    tick: ``counters.batches`` counts every tick visited and
    ``counters.ticks_skipped`` stays 0 by construction.
    """

    def __init__(self, p: int) -> None:
        self.counters = KernelCounters(kernel="tick")
        self._p = p
        self._seq = 0
        self._size = 0
        self._pending: list[list[tuple[int, int, int, Any]]] = [
            [] for _ in range(max(1, p))
        ]
        self._now = -1
        self._cur: list[tuple[int, int, int, Any]] = []
        self._cur_i = 0

    def __len__(self) -> int:
        return self._size

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        self._seq += 1
        if self._cur_i < len(self._cur):
            if time < self._now:
                raise ValueError(
                    f"push into the past: t={time} while scanning t={self._now}"
                )
            if time == self._now:
                insort(self._cur, (kind, self._seq, pid, data), lo=self._cur_i)
                self._size += 1
                self.counters.queue_highwater = max(
                    self.counters.queue_highwater, self._size
                )
                return
        elif time <= self._now:
            # Quiescence release may re-seed behind the scan point.
            self._now = time - 1
        slot = pid if 0 <= pid < len(self._pending) else 0
        self._pending[slot].append((time, kind, self._seq, data))
        self._size += 1
        self.counters.queue_highwater = max(self.counters.queue_highwater, self._size)

    def pop(self) -> tuple[int, int, int, Any] | None:
        if self._cur_i >= len(self._cur):
            if not self._size:
                return None
            while True:
                self._now += 1
                self.counters.batches += 1
                due: list[tuple[int, int, int, Any]] = []
                # The per-tick scanning loop: visit every processor's
                # pending list at every single tick.
                for pid, events in enumerate(self._pending):
                    if not events:
                        continue
                    keep = []
                    for time, kind, seq, data in events:
                        if time == self._now:
                            due.append((kind, seq, pid, data))
                        else:
                            keep.append((time, kind, seq, data))
                    self._pending[pid] = keep
                if due:
                    due.sort()
                    self._cur = due
                    self._cur_i = 0
                    break
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._now, kind, pid, data)

    # Same contracts as IndexedEventQueue: pop one event plus the
    # undrained remainder of its tick; counter sync is a no-op.
    pop_batch = IndexedEventQueue.pop_batch
    sync_counters = IndexedEventQueue.sync_counters

    def front_snapshot(self, n: int = 8) -> list[dict]:
        out: list[dict] = []
        for kind, _seq, pid, _data in self._cur[self._cur_i :]:
            out.append({"time": self._now, "kind": kind, "pid": pid})
        rest = [
            (time, kind, seq, pid)
            for pid, events in enumerate(self._pending)
            for time, kind, seq, _data in events
        ]
        rest.sort()
        out.extend({"time": t, "kind": k, "pid": pid} for t, k, _s, pid in rest)
        return out[:n]


class AdaptiveEventQueue(IndexedEventQueue):
    """Density-aware queue: skip-ahead when sparse, O(1) next-tick
    probing when dense.

    Shares :class:`IndexedEventQueue`'s bucket-per-timestamp layout and
    therefore its exact event ordering; only *how the next populated
    timestamp is located* adapts.  Each drained batch contributes one
    density sample — ``batch_size / clock_gap``, events per clock unit
    crossed — to a :class:`~repro.perf.density.DensityEstimator`, whose
    EWMA, mode residency, and switch counts feed the kernel counters.

    The ``prev_time + 1`` probe is gated on a one-batch *streak*
    predictor: it fires exactly when the previous clock gap was 1, i.e.
    inside an observed run of consecutive populated ticks.  In a
    saturated execution the hit rate approaches 100% and the min-heap
    sits idle (its entries are discarded lazily when the heap is next
    consulted); the probe pays at most one missed lookup per run when
    the streak ends.  Earlier revisions gated the probe on the density
    EWMA itself, but events-per-clock-unit is the wrong predictor for
    probe success — a bursty schedule (large batches separated by idle
    slots, e.g. h-relations riding pinned ``G``-spaced slots) reads as
    dense while consecutive timestamps are rarely populated, driving
    the miss rate beyond 50%.  The streak gate is both a sharper
    predictor and cheaper than consulting the estimator.

    The one ordering hazard is the quiescence rewind: a push at or
    before an already-drained time may create a bucket *behind*
    ``prev_time + 1``, so the probe is suspended until the next
    heap-sourced pop re-establishes the global minimum.

    **Sampling hibernation.**  Per-batch density sampling is the
    adaptive queue's only fixed tax over the indexed queue (measured:
    with sampling removed the two replay identical op traces in
    identical time).  In a deeply sparse steady state the samples are
    also *useless*: a singleton batch with a clock gap ``>= 2``
    contributes a sample ``<= 0.5`` — at or below the exit threshold
    and strictly below the enter threshold — so by convexity of the
    EWMA no run of such samples can ever flip the mode.  The queue
    therefore stops sampling (hibernates) when a fold leaves the
    estimator sparse with its value at or below the exit threshold, and
    skips exactly those provably mode-preserving batches; the first
    batch that is *not* of that shape (``gap == 1`` or two-plus
    events) is sampled again and re-arms continuous sampling.  Mode
    trajectory and switch counts are unaffected; ``density_samples``
    counts sampled batches and may fall below ``batches`` (it still
    covers at least the first fold window, and every batch outside
    deep-sparse hibernation).
    """

    def __init__(self, p: int = 0) -> None:
        super().__init__(p)
        self.counters = KernelCounters(kernel="adaptive")
        # Hysteresis tuning (mode reporting): entering dense mode needs
        # the EWMA above 1.25 — strictly more than one event per tick
        # on average — so sparse schedules hovering near saturation do
        # not thrash the mode counters; once dense, only a fall below
        # 0.5 reverts.  A genuinely saturated schedule (>= 2 events per
        # tick) still flips dense within a couple of batches.
        self._est = DensityEstimator(enter=1.25, exit=0.5, alpha=0.45)
        self._stale = 0  # heap entries whose bucket the probe drained
        # The probe gate: True iff the last observed clock gap was
        # exactly 1 (see the class docstring for why this beats gating
        # on the density EWMA).  The quiescence rewind clears it — the
        # re-seeded bucket may predate ``prev + 1``, and only a
        # heap-sourced pop re-establishes the true minimum; a rewound
        # pop's gap is never 1, so the streak cannot re-arm early.
        self._streak = False
        # Density samples awaiting their EWMA fold.  Folding per batch
        # is the adaptive queue's one fixed tax over the indexed queue;
        # buffering and folding in a tight loop (every 16 batches, and
        # at every counter read point) cuts it well below the streak
        # probe's savings.  The fold order is unchanged, so the
        # estimator trajectory — and every counter derived from it — is
        # bit-identical at all observation points; nothing on the pop
        # path reads the estimator, so the lag is invisible.
        self._samples_buf: list[float] = []
        # Sampling hibernation (see the class docstring): False while
        # the estimator sits in a deep-sparse steady state and batches
        # of the provably mode-preserving shape are skipped unsampled.
        self._sampling = True
        # Skipped-batch count awaiting its fold into counters.batches.
        self._unsampled = 0

    @property
    def estimator(self) -> DensityEstimator:
        """The live density estimator (read-only introspection)."""
        self.sync_counters()
        return self._est

    def sync_counters(self) -> None:
        """Fold any buffered density samples and copy the estimator's
        totals onto the counters.  Called at every quiescence point
        (``pop`` returning ``None``, drive-loop exit), on estimator
        introspection, and from ``front_snapshot`` — i.e. before any
        code path that reads the counters — rather than on every batch,
        which is measurable on sparse schedules."""
        buf = self._samples_buf
        if buf:
            self._fold(buf)
        c = self.counters
        if self._unsampled:
            c.batches += self._unsampled
            self._unsampled = 0
        est = self._est
        c.mode_switches = est.switches
        c.density_samples = est.samples
        c.density = est.value

    def _fold(self, buf: list[float]) -> None:
        """Run the buffered samples through the estimator's EWMA —
        locals in a tight loop, identical arithmetic to
        :meth:`DensityEstimator.observe` one call at a time."""
        est = self._est
        value = est.value
        k = est.samples
        dense = est.dense
        alpha = est.alpha
        enter = est.enter
        exit_ = est.exit
        switches = est.switches
        dense_batches = 0
        for sample in buf:
            k += 1
            if k == 1:
                value = float(sample)
            else:
                value += alpha * (sample - value)
            if dense:
                if value <= exit_:
                    dense = False
                    switches += 1
                else:
                    dense_batches += 1
            elif value >= enter:
                dense = True
                switches += 1
                dense_batches += 1
        # Batch count rides the same amortization: every drained batch
        # contributes exactly one sample, so ``len(buf)`` *is* the batch
        # count of this window, and no hot-path read of
        # ``counters.batches`` exists (the drive loop checks ``events``;
        # every other reader goes through a sync point first).
        self.counters.batches += len(buf)
        buf.clear()
        est.value = value
        est.samples = k
        est.dense = dense
        est.switches = switches
        self.counters.dense_batches += dense_batches
        # Hibernation decision rides the fold boundary: deep-sparse
        # steady state (sparse mode, EWMA at or below the exit
        # threshold) stops per-batch sampling until a non-skippable
        # batch re-arms it (see the class docstring).
        if dense or value > exit_:
            self._sampling = True
        else:
            self._sampling = False

    def front_snapshot(self, n: int = 8) -> list[dict]:
        self.sync_counters()
        return super().front_snapshot(n)

    def push(self, time: int, kind: int, pid: int, data: Any = None) -> None:
        # Body mirrors IndexedEventQueue.push (push is the hottest
        # entry point; a super() delegation costs a second call per
        # event) with one addition: the quiescence-rewind case clears
        # the probe streak, since the new bucket may predate prev+1
        # and only a heap-sourced pop re-establishes the true minimum
        # time.
        self._seq += 1
        item = (kind, self._seq, pid, data)
        if self._cur_time is not None and time <= self._cur_time:
            if self._cur_i < len(self._cur):
                if time < self._cur_time:
                    raise ValueError(
                        f"push into the past: t={time} while draining "
                        f"t={self._cur_time}"
                    )
                insort(self._cur, item, lo=self._cur_i)
                self._size += 1
                self.counters.queue_highwater = max(
                    self.counters.queue_highwater, self._size
                )
                return
            self._streak = False
            self._cur_time = None
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = []
            heapq.heappush(self._times, time)
        bucket.append(item)
        self._size += 1
        self.counters.queue_highwater = max(self.counters.queue_highwater, self._size)

    def pop(self) -> tuple[int, int, int, Any] | None:
        if self._cur_i >= len(self._cur):
            buckets = self._buckets
            if not buckets:
                self.sync_counters()
                return None
            batch = None
            prev = self._prev_time
            if self._streak:
                # Streak fast path: mid-run of consecutive populated
                # ticks, pop the next timestamp's bucket directly
                # (membership test and removal in one dict operation)
                # without touching the heap; the heap entry goes stale
                # and is reclaimed lazily when the heap is next
                # consulted.
                t = prev + 1
                batch = buckets.pop(t, None)
                if batch is not None:
                    self._stale += 1
            if batch is None:
                if self._stale:
                    while True:
                        t = heapq.heappop(self._times)
                        if t in buckets:
                            break
                        # Stale entry for a probe-drained bucket.
                        self._stale -= 1
                else:
                    # Sparse fast path: no probe-drained buckets
                    # outstanding, so the heap minimum is live by
                    # construction — no membership check needed.
                    t = heapq.heappop(self._times)
                batch = buckets.pop(t)
            n = len(batch)
            if n > 1:
                batch.sort()
            self._cur = batch
            self._cur_i = 0
            self._cur_time = t
            gap = t - prev if prev is not None else t + 1
            if gap > 1:
                self.counters.ticks_skipped += gap - 1
            streak = gap == 1
            self._streak = streak
            self._prev_time = t
            if self._sampling:
                # One density sample per batch, folded lazily (see
                # _fold); ``counters.batches`` advances inside the
                # fold too.
                buf = self._samples_buf
                buf.append(n / gap if gap > 0 else float(n))
                if len(buf) >= 16:
                    self._fold(buf)
            elif streak or n > 1:
                # Hibernation ends: this batch is not of the provably
                # mode-preserving singleton/gap>=2 shape, so sample it
                # and resume continuous sampling.
                self._sampling = True
                self._samples_buf.append(n / gap if gap > 0 else float(n))
            else:
                # Deep-sparse hibernation: the skipped sample could not
                # have changed the mode; only the batch count is owed.
                self._unsampled += 1
        kind, _seq, pid, data = self._cur[self._cur_i]
        self._cur_i += 1
        self._size -= 1
        self.counters.events += 1
        return (self._cur_time, kind, pid, data)  # type: ignore[return-value]


def make_event_queue(kernel: str, p: int):
    """Instantiate the named kernel's queue for a ``p``-processor machine."""
    if kernel == "event":
        return IndexedEventQueue(p)
    if kernel == "tick":
        return TickScanQueue(p)
    if kernel == "adaptive":
        return AdaptiveEventQueue(p)
    raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
