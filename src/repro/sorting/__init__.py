"""Sorting machinery for the Section 4.2 routing protocol.

The paper sorts messages by destination with an AKS network (small ``r``)
or Cubesort (large ``r``); our executable substitutes are Batcher's
bitonic network and Leighton's Columnsort respectively (see DESIGN.md for
why the substitutions preserve the experiments' shape).  All schemes are
expressed as *schedules* of partner exchanges so they can run both as
plain functions (for tests) and as LogP programs (for the protocol).
"""

from repro.sorting.bitonic import bitonic_schedule, odd_even_transposition_schedule
from repro.sorting.columnsort import columnsort, columnsort_valid
from repro.sorting.local import counting_sort, local_sort_cost, radix_sort
from repro.sorting.merge_split import merge_split, run_schedule_locally

__all__ = [
    "bitonic_schedule",
    "odd_even_transposition_schedule",
    "columnsort",
    "columnsort_valid",
    "counting_sort",
    "radix_sort",
    "local_sort_cost",
    "merge_split",
    "run_schedule_locally",
]
