"""Leighton's Columnsort — the executable stand-in for Cubesort.

Sorts ``r * s`` keys arranged as an ``r x s`` matrix (one column of ``r``
keys per processor, column-major order) in **8 steps**: four column
sorts interleaved with two fixed permutations (transpose/untranspose) and
a half-column shift/unshift.  Valid whenever ``r >= 2 (s - 1)^2``.

This is the same regime in which the paper invokes Cubesort — ``r = p^eps``
messages per processor, where Cubesort's round count collapses to a
constant and the sort costs ``O(Tseq(r) + G r + L)`` on LogP.  Columnsort
achieves that bound with 8 fixed rounds, each consisting of a local sort
plus an input-independent ``r``-relation (routable as ``r`` pre-scheduled
1-relations, paper Section 4.2).

The shift steps use the standard virtual-padding treatment: column 0 is
conceptually prefixed with ``r/2`` copies of ``-inf`` and an overflow
column (held by the last processor) suffixed with ``+inf``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RoutingError

__all__ = ["columnsort", "columnsort_valid", "transpose_dest", "untranspose_dest"]


def columnsort_valid(r: int, s: int) -> bool:
    """Leighton's validity condition ``r >= 2 (s - 1)^2`` (any r when s <= 1)."""
    if r < 1 or s < 1:
        return False
    return s == 1 or r >= 2 * (s - 1) * (s - 1)


def transpose_dest(x: int, r: int, s: int) -> int:
    """Step-2 permutation: entries are picked up in column-major order and
    set down in row-major order — the element with column-major rank ``x``
    lands at *row-major* position ``x``, i.e. at cell ``(x // s, x % s)``."""
    i, j = divmod(x, s)
    return j * r + i


def untranspose_dest(x: int, r: int, s: int) -> int:
    """Step-4 permutation (inverse of :func:`transpose_dest`): picked up in
    row-major order, set down in column-major order."""
    j, i = divmod(x, r)
    return i * s + j


def columnsort(
    blocks: list[list],
    *,
    key: Callable[[Any], Any] | None = None,
    check: bool = True,
) -> list[list]:
    """Sort the concatenation of ``blocks`` (column-major) via Columnsort.

    ``blocks[j]`` is processor ``j``'s column of ``r`` keys; returns new
    blocks whose concatenation is globally sorted.  Raises
    :class:`~repro.errors.RoutingError` if ``r < 2 (s-1)^2`` and ``check``.
    """
    get = key if key is not None else (lambda x: x)
    s = len(blocks)
    if s == 0:
        return []
    r = len(blocks[0])
    if any(len(b) != r for b in blocks):
        raise RoutingError("columnsort requires equal-size blocks")
    if s == 1:
        return [sorted(blocks[0], key=get)]
    if check and not columnsort_valid(r, s):
        raise RoutingError(
            f"columnsort requires r >= 2(s-1)^2; got r={r}, s={s} "
            f"(needs r >= {2 * (s - 1) ** 2})"
        )

    cols = [sorted(b, key=get) for b in blocks]  # step 1

    cols = _permute(cols, r, s, transpose_dest)  # step 2
    cols = [sorted(c, key=get) for c in cols]  # step 3
    cols = _permute(cols, r, s, untranspose_dest)  # step 4
    cols = [sorted(c, key=get) for c in cols]  # step 5

    # step 6: shift down by floor(r/2) into s+1 virtual columns
    half = r // 2
    shifted: list[list] = [[] for _ in range(s + 1)]
    for j in range(s):
        for i, v in enumerate(cols[j]):
            g = j * r + i + half
            shifted[g // r].append(v)
    # step 7: sort shifted columns (virtual -inf/+inf padding sorts to the
    # outside and is represented simply by the shorter end columns)
    shifted = [sorted(c, key=get) for c in shifted]
    # step 8: unshift
    out: list[list] = [[None] * r for _ in range(s)]
    for jj in range(s + 1):
        for idx, v in enumerate(shifted[jj]):
            if jj == 0:
                g = idx  # real elements of column 0 sit above the -inf pad
            else:
                g = jj * r + idx - half
            out[g // r][g % r] = v
    return out


def _permute(cols: list[list], r: int, s: int, dest) -> list[list]:
    """Apply an index permutation to column-major blocks."""
    out: list[list] = [[None] * r for _ in range(s)]
    for j in range(s):
        for i, v in enumerate(cols[j]):
            y = dest(j * r + i, r, s)
            out[y // r][y % r] = v
    return out
