"""The merge-split step and a local (non-simulated) schedule runner.

With ``r`` keys per processor, every compare-exchange of a sorting
network becomes a *merge-split* (paper Section 4.2, citing Knuth): the
two processors merge their sorted blocks and the "low" side keeps the
smaller ``r`` keys, the "high" side the larger ``r``.  Running a network
schedule with merge-split on locally-sorted blocks sorts the whole
``r * p``-key sequence.

:func:`run_schedule_locally` executes a schedule without the LogP
machine — it is the reference implementation the simulated version is
tested against, and the tool the property tests use to validate the
schedules themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["merge_split", "run_schedule_locally"]


def merge_split(
    mine: list,
    theirs: list,
    keep_low: bool,
    *,
    key: Callable[[Any], Any] | None = None,
) -> list:
    """Merge two sorted blocks and keep the low or high ``len(mine)`` keys.

    Both inputs must be sorted by ``key``; the result is sorted.  Blocks
    may have unequal lengths — the result always has ``len(mine)`` items,
    so the network's per-processor block size is preserved.
    """
    get = key if key is not None else (lambda x: x)
    n = len(mine)
    merged: list = []
    i = j = 0
    if keep_low:
        while len(merged) < n:
            if i < len(mine) and (j >= len(theirs) or get(mine[i]) <= get(theirs[j])):
                merged.append(mine[i])
                i += 1
            else:
                merged.append(theirs[j])
                j += 1
        return merged
    # keep high: merge from the tails
    i, j = len(mine) - 1, len(theirs) - 1
    while len(merged) < n:
        if i >= 0 and (j < 0 or get(mine[i]) >= get(theirs[j])):
            merged.append(mine[i])
            i -= 1
        else:
            merged.append(theirs[j])
            j -= 1
    merged.reverse()
    return merged


def run_schedule_locally(
    schedule: Sequence[Sequence],
    blocks: list[list],
    *,
    key: Callable[[Any], Any] | None = None,
) -> list[list]:
    """Run a compare-exchange schedule on in-memory blocks.

    ``blocks[i]`` is processor ``i``'s block (sorted in place first).
    Returns the blocks after all rounds; concatenating them yields the
    globally sorted sequence for any valid sorting schedule.
    """
    get = key if key is not None else (lambda x: x)
    out = [sorted(b, key=get) for b in blocks]
    p = len(out)
    for rnd in schedule:
        if len(rnd) != p:
            raise ValueError(f"round has {len(rnd)} entries, expected {p}")
        nxt = list(out)
        for pid in range(p):
            action = rnd[pid]
            if action is None:
                continue
            partner, keep_low = action
            if rnd[partner] is None or rnd[partner][0] != pid:
                raise ValueError(
                    f"round pairs {pid}->{partner} but not the converse"
                )
            nxt[pid] = merge_split(out[pid], out[partner], keep_low, key=get)
        out = nxt
    return out
