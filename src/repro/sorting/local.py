"""Local (single-processor) sorts for keys in a bounded range.

The Section 4.2 protocol sorts message keys in the range ``[0, p]``
(destination ``p`` marks dummies), so the paper charges
``Tseq_sort(r) = r * min{log r, ceil(log p / log r)}`` using Radixsort.
We implement counting sort and LSD radix sort and expose
:func:`local_sort_cost` so LogP programs can charge the model cost for
the work they do natively in Python.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.models.cost import t_seq_sort

__all__ = ["counting_sort", "radix_sort", "local_sort_cost"]


def counting_sort(
    keys: Sequence[int], key_range: int, *, key: Callable[[Any], int] | None = None
) -> list:
    """Stable counting sort of items with integer keys in ``[0, key_range)``.

    ``key`` extracts the integer key from each item (identity by default).
    """
    get = key if key is not None else (lambda x: x)
    counts = [0] * key_range
    for item in keys:
        k = get(item)
        if not 0 <= k < key_range:
            raise ValueError(f"key {k} outside [0, {key_range})")
        counts[k] += 1
    starts = [0] * key_range
    total = 0
    for k in range(key_range):
        starts[k] = total
        total += counts[k]
    out: list = [None] * len(keys)
    for item in keys:
        k = get(item)
        out[starts[k]] = item
        starts[k] += 1
    return out


def radix_sort(
    keys: Sequence[int],
    key_range: int,
    *,
    base: int = 256,
    key: Callable[[Any], int] | None = None,
) -> list:
    """LSD radix sort of items with integer keys in ``[0, key_range)``.

    Runs ``ceil(log_base(key_range))`` stable counting passes; this is the
    algorithm whose cost the paper models as ``Tseq_sort``.
    """
    get = key if key is not None else (lambda x: x)
    items = list(keys)
    if key_range <= 1 or len(items) <= 1:
        return items
    digit_weight = 1
    while digit_weight < key_range:
        weight = digit_weight
        items = counting_sort(
            items, base, key=lambda item: (get(item) // weight) % base
        )
        digit_weight *= base
    return items


def local_sort_cost(r: int, p: int) -> int:
    """Model cost of locally sorting ``r`` keys in ``[0, p]``
    (:func:`repro.models.cost.t_seq_sort`)."""
    return t_seq_sort(r, p)
