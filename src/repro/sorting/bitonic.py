"""Compare-exchange sorting-network schedules.

A *schedule* is a list of rounds; round ``t`` assigns to each processor
``i`` either ``None`` (idle this round) or a pair ``(partner, keep_low)``:
``i`` exchanges its (sorted) block with ``partner`` and keeps the low or
high half of the merge.  Schedules are oblivious — they depend only on
``p`` — which is exactly what lets the LogP implementation route each
round as a pre-decomposed sequence of 1-relations (paper Section 4.2).

Two networks are provided:

* :func:`bitonic_schedule` — Batcher's bitonic sorter,
  ``O(log^2 p)`` rounds, requires ``p`` to be a power of two.  This is the
  practical stand-in for the paper's AKS network (same role: an
  ``r``-per-processor merge-split sorter with polylogarithmic rounds).
* :func:`odd_even_transposition_schedule` — ``p`` rounds, any ``p``;
  used as the fallback when ``p`` is not a power of two.

Both satisfy the 0/1-principle, which the property tests exercise.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.perf.memo import plan_cache
from repro.util.intmath import is_power_of_two

__all__ = ["bitonic_schedule", "odd_even_transposition_schedule", "schedule_depth"]

Round = list  # list[Optional[tuple[int, bool]]], indexed by pid


def bitonic_schedule(p: int) -> list[Round]:
    """Batcher's bitonic sorting network on ``p`` processors.

    Returns ``log2(p) * (log2(p) + 1) / 2`` rounds.  In each round every
    processor is paired with ``pid XOR j``; the pair's sort direction is
    ascending iff ``pid AND k == 0`` where ``k`` is the current stage size.
    """
    if p < 1:
        raise RoutingError(f"bitonic_schedule requires p >= 1, got {p}")
    if not is_power_of_two(p):
        raise RoutingError(
            f"bitonic_schedule requires a power-of-two p, got {p}; "
            f"use odd_even_transposition_schedule for general p"
        )
    rounds: list[Round] = []
    k = 2
    while k <= p:
        j = k // 2
        while j >= 1:
            rnd: Round = [None] * p
            for pid in range(p):
                partner = pid ^ j
                ascending = (pid & k) == 0
                # In an ascending pair the lower index keeps the low half.
                keep_low = (pid < partner) == ascending
                rnd[pid] = (partner, keep_low)
            rounds.append(rnd)
            j //= 2
        k *= 2
    return rounds


def odd_even_transposition_schedule(p: int) -> list[Round]:
    """Odd-even transposition sort: ``p`` rounds of neighbor exchanges.

    Works for any ``p``; round ``t`` pairs indices ``(2i + t%2, 2i + t%2 + 1)``.
    """
    if p < 1:
        raise RoutingError(f"odd_even_transposition_schedule requires p >= 1, got {p}")
    rounds: list[Round] = []
    for t in range(p):
        rnd: Round = [None] * p
        start = t % 2
        for low in range(start, p - 1, 2):
            high = low + 1
            rnd[low] = (high, True)
            rnd[high] = (low, False)
        rounds.append(rnd)
    return rounds


def schedule_depth(schedule: list[Round]) -> int:
    """Number of rounds in a schedule."""
    return len(schedule)


_SCHEDULE_CACHE = plan_cache("sorting-schedule")


def sorting_schedule(p: int) -> list[Round]:
    """The schedule the routing protocol uses: bitonic when ``p`` is a
    power of two, odd-even transposition otherwise.

    The schedule is a pure function of ``p`` but is re-derived once per
    processor per routed superstep, so it is memoized process-wide;
    callers must treat the returned rounds as read-only.
    """

    def build() -> list[Round]:
        if is_power_of_two(p):
            return bitonic_schedule(p)
        return odd_even_transposition_schedule(p)

    return _SCHEDULE_CACHE.get(p, build)
