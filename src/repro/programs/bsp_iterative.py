"""Iterative numeric BSP kernels with closed-form cost ledgers.

The scalability literature around BSP-style master-worker models
(Sokolinsky's BSF model, arXiv:1710.10490; Ezhova & Sokolinsky,
arXiv:1710.10835) studies kernels whose per-iteration cost is exactly
``w(n)/p + communication(p)`` — so the total cost as a function of ``p``
has an analytic *scalability peak* ``p* = sqrt(w / comm')`` where adding
processors starts to hurt.  These two kernels are written so every
superstep's ``(w, h)`` is a closed form of ``(n, p, iters)``:
:mod:`repro.workloads.numeric` predicts their full cost ledgers exactly
and checks the measured peak against the analytic one.

* :func:`bsp_jacobi_program` — 1-D Jacobi smoothing with halo exchange
  (``h = 2`` per iteration) and a final flat residual all-reduce.
* :func:`bsp_gradient_program` — steepest descent on a diagonal
  quadratic in master-worker (BSF) shape: every iteration is one fan-in
  of partial dot products and one fan-out of the step size
  (``h = p - 1`` both ways).

Both are deterministic in ``(n, p, seed)`` — reduction order is pinned
to pid order — so the workload registry validates their outputs against
an exact local re-computation.
"""

from __future__ import annotations

from repro.bsp.program import BSPContext, Compute, Send, Sync
from repro.util.rng import make_rng

__all__ = [
    "bsp_jacobi_program",
    "bsp_gradient_program",
    "jacobi_reference",
    "gradient_reference",
]


def _jacobi_slices(n: int, p: int, seed: int):
    """Per-processor (x, b) slices, drawn exactly as the program draws."""
    xs, bs = [], []
    rows = n // p
    for pid in range(p):
        rng = make_rng(seed * 52361 + pid)
        xs.append([float(v) for v in rng.random(rows)])
        bs.append([float(v) for v in rng.random(rows)])
    return xs, bs


def bsp_jacobi_program(n: int, iters: int, seed: int = 0):
    """1-D Jacobi relaxation ``x_i <- (x_{i-1} + x_{i+1} + b_i) / 3`` on
    ``n`` unknowns (zero boundaries), block rows, ``iters`` sweeps.

    Every iteration is one superstep: exchange the two boundary words
    with the neighbours (``h = 2``), then update the local block
    (``w = n/p``).  A final flat all-reduce of the squared residual adds
    two ``h = p - 1`` supersteps.  Returns ``{"x": slice, "residual":
    total}`` per processor.
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        rows = n // p
        if rows * p != n:
            raise ValueError(f"n={n} must be divisible by p={p}")
        rng = make_rng(seed * 52361 + ctx.pid)
        x = [float(v) for v in rng.random(rows)]
        b = [float(v) for v in rng.random(rows)]
        for _it in range(iters):
            if ctx.pid > 0:
                yield Send(ctx.pid - 1, ("R", x[0]), tag=60)
            if ctx.pid < p - 1:
                yield Send(ctx.pid + 1, ("L", x[-1]), tag=60)
            yield Sync()
            left = right = 0.0
            for m in ctx.recv_all(60):
                side, v = m.payload
                if side == "L":
                    left = v
                else:
                    right = v
            x = [
                ((x[i - 1] if i else left) + (x[i + 1] if i < rows - 1 else right) + b[i])
                / 3.0
                for i in range(rows)
            ]
            yield Compute(rows)
        local = sum((xi - bi) ** 2 for xi, bi in zip(x, b))
        yield Compute(rows)
        if ctx.pid != 0:
            yield Send(0, local, tag=61)
            yield Sync()
            yield Sync()
            total = ctx.recv_all(62)[0].payload
        else:
            yield Sync()
            total = local + sum(ctx.recv_payloads(61))
            yield Compute(p)
            for dest in range(1, p):
                yield Send(dest, total, tag=62)
            yield Sync()
        return {"x": x, "residual": total}

    return prog


def jacobi_reference(n: int, p: int, iters: int, seed: int = 0) -> list[dict]:
    """Exact expected per-processor outputs of :func:`bsp_jacobi_program`
    (same draws, same float-operation order, pid-ordered reduction)."""
    rows = n // p
    xs, bs = _jacobi_slices(n, p, seed)
    for _it in range(iters):
        new = []
        for pid in range(p):
            x, b = xs[pid], bs[pid]
            left = xs[pid - 1][-1] if pid else 0.0
            right = xs[pid + 1][0] if pid < p - 1 else 0.0
            new.append(
                [
                    ((x[i - 1] if i else left) + (x[i + 1] if i < rows - 1 else right) + b[i])
                    / 3.0
                    for i in range(rows)
                ]
            )
        xs = new
    locals_ = [
        sum((xi - bi) ** 2 for xi, bi in zip(xs[pid], bs[pid])) for pid in range(p)
    ]
    total = locals_[0] + sum(locals_[1:])
    return [{"x": xs[pid], "residual": total} for pid in range(p)]


def _gradient_slices(n: int, p: int, seed: int):
    rows = n // p
    ds, cs = [], []
    for pid in range(p):
        rng = make_rng(seed * 71993 + pid)
        ds.append([1.0 + float(v) for v in rng.random(rows)])
        cs.append([float(v) for v in rng.random(rows)])
    return ds, cs


def bsp_gradient_program(n: int, iters: int, seed: int = 0):
    """Steepest descent on ``f(x) = 1/2 x'Dx - c'x`` (D diagonal, SPD) in
    master-worker shape: per iteration, workers compute local gradients
    and the two partial dot products for the exact line search
    (``w = 3 n/p``), fan them in to processor 0 (``h = p - 1``), the
    master combines and fans the step size back out (``h = p - 1``),
    everyone applies the step (``w = n/p``).  Returns each processor's
    final ``x`` slice.
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        rows = n // p
        if rows * p != n:
            raise ValueError(f"n={n} must be divisible by p={p}")
        rng = make_rng(seed * 71993 + ctx.pid)
        d = [1.0 + float(v) for v in rng.random(rows)]
        c = [float(v) for v in rng.random(rows)]
        x = [0.0] * rows
        for _it in range(iters):
            grad = [di * xi - ci for di, xi, ci in zip(d, x, c)]
            gg = sum(gi * gi for gi in grad)
            gdg = sum(gi * gi * di for gi, di in zip(grad, d))
            yield Compute(3 * rows)
            if ctx.pid != 0:
                yield Send(0, (gg, gdg), tag=63)
                yield Sync()
                yield Sync()
                alpha = ctx.recv_all(64)[0].payload
            else:
                yield Sync()
                for pg, pd in ctx.recv_payloads(63):
                    gg += pg
                    gdg += pd
                alpha = gg / gdg if gdg else 0.0
                yield Compute(p)
                for dest in range(1, p):
                    yield Send(dest, alpha, tag=64)
                yield Sync()
            x = [xi - alpha * gi for xi, gi in zip(x, grad)]
            yield Compute(rows)
        return x

    return prog


def gradient_reference(n: int, p: int, iters: int, seed: int = 0) -> list[list[float]]:
    """Exact expected per-processor outputs of :func:`bsp_gradient_program`."""
    ds, cs = _gradient_slices(n, p, seed)
    rows = n // p
    xs = [[0.0] * rows for _ in range(p)]
    for _it in range(iters):
        grads = [
            [di * xi - ci for di, xi, ci in zip(ds[pid], xs[pid], cs[pid])]
            for pid in range(p)
        ]
        partials = [
            (
                sum(gi * gi for gi in grads[pid]),
                sum(gi * gi * di for gi, di in zip(grads[pid], ds[pid])),
            )
            for pid in range(p)
        ]
        gg, gdg = partials[0]
        for pg, pd in partials[1:]:
            gg += pg
            gdg += pd
        alpha = gg / gdg if gdg else 0.0
        xs = [
            [xi - alpha * gi for xi, gi in zip(xs[pid], grads[pid])] for pid in range(p)
        ]
    return xs
