"""Classic stall-free LogP kernels.

Each factory returns a LogP program (a generator function over a
:class:`~repro.logp.instructions.LogPContext`).  All kernels are
stall-free by construction — per destination, traffic is paced at one
submission per ``G`` or bounded by the capacity — and they exercise the
different instruction mixes the Theorem 1 simulation must handle:
blocking receives (ring), fan-out trees (broadcast), fan-in (sum) and
paced all-to-all traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.logp.collectives import (
    binary_tree_reduce,
    binomial_broadcast,
    recv_n_tagged,
)
from repro.logp.instructions import Compute, LogPContext, Recv, Send

__all__ = [
    "logp_ring_program",
    "logp_broadcast_program",
    "logp_sum_program",
    "logp_alltoall_program",
]


def logp_ring_program(rounds: int = 1, compute_per_hop: int = 0):
    """Token rotation: each processor passes a value around the ring
    ``rounds`` times; returns the value that ends up at each processor
    (its own value after full rotations)."""

    def prog(ctx: LogPContext):
        p = ctx.p
        value = ctx.pid
        if p == 1:
            return value
        right = (ctx.pid + 1) % p
        # Tokens carry their hop index: LogP promises nothing about
        # delivery order, so hop k+1 can overtake hop k on the same link.
        arrived: dict[int, Any] = {}
        for hop in range(rounds * p):
            yield Send(right, (hop, value), tag=7)
            if compute_per_hop:
                yield Compute(compute_per_hop)
            while hop not in arrived:
                msg = yield Recv()
                arrived[msg.payload[0]] = msg.payload[1]
            value = arrived.pop(hop)
        return value

    return prog


def logp_broadcast_program(value: Any = "tok", root: int = 0):
    """Binomial-tree broadcast from ``root``; every processor returns the
    broadcast value."""

    def prog(ctx: LogPContext):
        got = yield from binomial_broadcast(
            ctx, value if ctx.pid == root else None, root=root
        )
        return got

    return prog


def logp_sum_program(values: Sequence[int] | None = None):
    """Global summation to processor 0 then broadcast of the total;
    every processor returns the sum (cf. Karp et al.'s optimal summation)."""

    def prog(ctx: LogPContext):
        x = values[ctx.pid] if values is not None else ctx.pid
        total = yield from binary_tree_reduce(ctx, x, lambda a, b: a + b)
        total = yield from binomial_broadcast(ctx, total, root=0, tag=909)
        return total

    return prog


def logp_alltoall_program(payload: Callable[[int, int], Any] | None = None):
    """Total exchange: processor ``i`` sends ``payload(i, j)`` to every
    ``j``; returns the list of received payloads indexed by source.

    Sends are staggered (processor ``i`` starts with destination
    ``i + 1``) so every destination sees one submission per ``G`` — the
    standard stall-free all-to-all schedule.
    """
    make = payload if payload is not None else (lambda i, j: (i, j))

    def prog(ctx: LogPContext):
        p = ctx.p
        if p == 1:
            return []
        for k in range(1, p):
            dest = (ctx.pid + k) % p
            yield Send(dest, make(ctx.pid, dest), tag=11)
        out: list[Any] = [None] * p
        msgs = yield from recv_n_tagged(ctx, 11, p - 1)
        for m in msgs:
            out[m.src] = m.payload
        return out

    return prog
