"""BSP sorting-regime programs (Gerbessiotis & Siniolakis, arXiv:1408.6729).

Three sorters over the same key distribution, written so their ledgers
are *word-accurate*: every exchanged key is its own message, so a
superstep's ``h`` is the number of words moved — the quantity the
regime analysis compares.  (The original
:func:`~repro.programs.bsp_examples.bsp_sample_sort_program` sends whole
buckets as single messages; it stays untouched for the golden traces,
and :func:`bsp_sample_sort_unit_program` here is its word-accurate
twin, drawing the identical keys.)

The regime story the three cover:

* **sample sort** — O(1) supersteps, but pays a ``p^2``-word sample
  gather and a ``(p-1)^2``-word splitter scatter; wins at large ``n/p``.
* **bitonic merge-split** — ``log2(p) (log2(p)+1)/2`` rounds, each an
  exact ``r``-relation; no ``p^2`` term, so it wins at small ``n/p``
  where the sample overhead dominates.
* **Columnsort** — 4 fixed ``~r``-relations, valid only once
  ``r >= 2 (p-1)^2``; asymptotically between the two.

:func:`repro.workloads.sorting.sorting_regime_study` sweeps these over
``n/p`` and reports the sample-sort/bitonic cost crossover.
"""

from __future__ import annotations

from repro.bsp.program import BSPContext, Compute, Send, Sync
from repro.sorting.bitonic import bitonic_schedule
from repro.sorting.columnsort import columnsort_valid, transpose_dest, untranspose_dest
from repro.sorting.merge_split import merge_split
from repro.util.rng import make_rng

__all__ = [
    "bsp_bitonic_sort_program",
    "bsp_columnsort_program",
    "bsp_sample_sort_unit_program",
    "sorted_input_keys",
]


def _sort_cost(k: int) -> int:
    """The ``k log k`` charge every local sort in this module uses."""
    return k * max(1, k.bit_length())


def sorted_input_keys(p: int, keys_per_proc: int, key_range: int, seed: int) -> list[int]:
    """The globally sorted reference output all three sorters must
    produce: processor ``i`` draws with the sample-sort seed formula."""
    keys: list[int] = []
    for pid in range(p):
        rng = make_rng(seed * 99991 + pid)
        keys.extend(int(k) for k in rng.integers(0, key_range, size=keys_per_proc))
    return sorted(keys)


def bsp_bitonic_sort_program(keys_per_proc: int, key_range: int = 1 << 16, seed: int = 0):
    """Bitonic merge-split sort: ``log2(p)(log2(p)+1)/2`` compare-exchange
    rounds, each moving exactly ``r = keys_per_proc`` words per processor.

    Requires a power-of-two ``p``.  Processor ``i`` returns the ``i``-th
    sorted block; the concatenation over processors is sorted.
    """
    r = keys_per_proc

    def prog(ctx: BSPContext):
        p = ctx.p
        rng = make_rng(seed * 99991 + ctx.pid)
        block = sorted(int(k) for k in rng.integers(0, key_range, size=r))
        yield Compute(_sort_cost(r))
        if p == 1:
            return block
        for rnd in bitonic_schedule(p):
            partner, keep_low = rnd[ctx.pid]
            for k in block:
                yield Send(partner, k, tag=70)
            yield Sync()
            theirs = sorted(ctx.recv_payloads(70))
            block = merge_split(block, theirs, keep_low)
            yield Compute(2 * r)
        return block

    return prog


def bsp_columnsort_program(keys_per_proc: int, key_range: int = 1 << 16, seed: int = 0):
    """Leighton's Columnsort: 4 permutation supersteps around local sorts.

    Processor ``j`` holds column ``j`` (``r`` keys, column-major).  Valid
    only when ``r >= 2 (p-1)^2``; the factory raises early otherwise so
    sweeps can skip invalid grid points loudly.  The shift steps (6-8)
    keep the overflow column on processor ``p - 1``, mirroring
    :func:`repro.sorting.columnsort.columnsort` cell for cell.
    """
    r = keys_per_proc

    def prog(ctx: BSPContext):
        p = ctx.p
        if not columnsort_valid(r, p):
            raise ValueError(
                f"columnsort requires keys_per_proc >= 2(p-1)^2; got r={r}, "
                f"p={p} (needs r >= {2 * (p - 1) ** 2})"
            )
        pid = ctx.pid
        rng = make_rng(seed * 99991 + pid)
        block = sorted(int(k) for k in rng.integers(0, key_range, size=r))
        yield Compute(_sort_cost(r))
        if p == 1:
            return block

        def route(dest_of):
            """One permutation superstep: key with in-column index ``i``
            has column-major rank ``pid*r + i``; ship it to the owner of
            its destination rank (self-destined keys stay local)."""
            kept = []
            for i, k in enumerate(block):
                dest = dest_of(pid * r + i) // r
                if dest == pid:
                    kept.append(k)
                else:
                    yield Send(dest, k, tag=71)
            yield Sync()
            return kept + ctx.recv_payloads(71)

        # steps 2-3: transpose, sort
        block = yield from route(lambda x: transpose_dest(x, r, p))
        block.sort()
        yield Compute(_sort_cost(r))
        # steps 4-5: untranspose, sort
        block = yield from route(lambda x: untranspose_dest(x, r, p))
        block.sort()
        yield Compute(_sort_cost(r))

        # step 6: shift down by half into p+1 virtual columns; the
        # overflow column p lives on processor p-1.
        half = r // 2
        mine: list[tuple[int, int]] = []  # (shifted column, key)
        for i, k in enumerate(block):
            col = (pid * r + i + half) // r
            dest = min(col, p - 1)
            if dest == pid:
                mine.append((col, k))
            else:
                yield Send(dest, (col, k), tag=72)
        yield Sync()
        mine.extend(m.payload for m in ctx.recv_all(72))
        # step 7: sort each shifted column I hold (virtual +-inf pads sort
        # to the outside and are simply absent).
        cols: dict[int, list[int]] = {}
        for col, k in mine:
            cols.setdefault(col, []).append(k)
        for col in cols:
            cols[col].sort()
        yield Compute(_sort_cost(max((len(c) for c in cols.values()), default=1)))
        # step 8: unshift — mirror the reference implementation's index
        # arithmetic exactly (column 0's keys sit above the -inf pad).
        final = []
        for col, keys in cols.items():
            for idx, k in enumerate(keys):
                g = idx if col == 0 else col * r + idx - half
                dest = g // r
                if dest == pid:
                    final.append(k)
                else:
                    yield Send(dest, k, tag=73)
        yield Sync()
        final.extend(ctx.recv_payloads(73))
        final.sort()
        yield Compute(_sort_cost(r))
        return final

    return prog


def bsp_sample_sort_unit_program(
    keys_per_proc: int, key_range: int = 1 << 16, seed: int = 0
):
    """Word-accurate direct sample sort: same four supersteps and the
    same drawn keys as :func:`~repro.programs.bsp_examples.
    bsp_sample_sort_program`, but samples, splitters, and exchanged keys
    travel one word per message so the ledger's ``h`` counts words — the
    ``p^2``-word sample gather the regime study charges for.
    """
    r = keys_per_proc

    def prog(ctx: BSPContext):
        p = ctx.p
        rng = make_rng(seed * 99991 + ctx.pid)
        keys = sorted(int(k) for k in rng.integers(0, key_range, size=r))
        yield Compute(_sort_cost(r))
        if p == 1:
            return keys

        # Step 2: regular samples -> processor 0, one word per message.
        step = max(1, r // p)
        samples = keys[::step][:p]
        for s in samples:
            yield Send(0, s, tag=80)
        yield Sync()
        if ctx.pid == 0:
            pool = sorted(ctx.recv_payloads(80))
            yield Compute(_sort_cost(len(pool)))
            stride = max(1, len(pool) // p)
            splitters = pool[stride::stride][: p - 1]
            for dest in range(1, p):
                for s in splitters:
                    yield Send(dest, s, tag=81)
            yield Sync()
        else:
            yield Sync()
            splitters = sorted(ctx.recv_payloads(81))

        # Step 3: partition and exchange, one key per message.
        import bisect

        buckets: list[list[int]] = [[] for _ in range(p)]
        for k in keys:
            buckets[bisect.bisect_right(splitters, k)].append(k)
        yield Compute(r)
        for dest in range(p):
            if dest != ctx.pid:
                for k in buckets[dest]:
                    yield Send(dest, k, tag=82)
        yield Sync()
        mine = list(buckets[ctx.pid])
        mine.extend(ctx.recv_payloads(82))
        mine.sort()
        yield Compute(_sort_cost(len(mine)))
        return mine

    return prog
