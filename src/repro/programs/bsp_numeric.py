"""Direct BSP numeric kernels (in the style of the paper's ref. [4],
Gerbessiotis & Valiant's "Direct bulk-synchronous parallel algorithms").

Two classics whose communication patterns stress different h-relation
shapes:

* :func:`bsp_fft_program` — the radix-2 FFT with cyclic-to-block
  remapping: ``log p`` butterfly stages run locally after a single
  all-to-all style exchange; h-relations are perfectly balanced.
* :func:`bsp_matmul_program` — 2-D (SUMMA-flavoured) blocked matrix
  multiply on a ``q x q`` processor grid: per step, row/column broadcasts
  of blocks, i.e. h-relations of degree ``q - 1`` with large payloads.

Both verify against numpy in the tests and run through the Theorem 2
simulation unchanged.
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.bsp.collectives import bsp_alltoall
from repro.bsp.program import BSPContext, Compute, Send, Sync
from repro.util.intmath import ilog2, is_power_of_two
from repro.util.rng import make_rng

__all__ = ["bsp_fft_program", "bsp_matmul_program"]


def _local_fft(values: list[complex]) -> list[complex]:
    """Iterative radix-2 Cooley-Tukey on a power-of-two-sized list."""
    n = len(values)
    if n == 1:
        return list(values)
    # bit-reversal permutation
    bits = ilog2(n)
    out = [0j] * n
    for i, v in enumerate(values):
        out[int(format(i, f"0{bits}b")[::-1], 2)] = v
    size = 2
    while size <= n:
        half = size // 2
        step = cmath.exp(-2j * cmath.pi / size)
        for start in range(0, n, size):
            w = 1.0 + 0j
            for k in range(half):
                a = out[start + k]
                b = out[start + k + half] * w
                out[start + k] = a + b
                out[start + k + half] = a - b
                w *= step
        size *= 2
    return out


def bsp_fft_program(points_per_proc: int, seed: int = 0):
    """Distributed radix-2 FFT of ``n = p * points_per_proc`` points.

    Block layout in, block layout out (standard order).  Strategy (the
    classic two-superstep BSP FFT for ``points_per_proc >= p``):

    1. each processor FFTs its local block? — no: we use the transpose
       method: view the data as an ``n1 x n2`` matrix (``n1 = p`` rows
       distributed one per processor is too small), concretely:
       ``n = n1 * n2`` with ``n1 = p``, ``n2 = points_per_proc``;
       processor ``i`` holds row ``i`` (n2 points, block layout).

       a. FFT each row locally (length n2);
       b. multiply twiddles ``exp(-2pi i jk / n)``;
       c. global transpose (an all-to-all with ``n2/p``-point packets);
       d. FFT each (now local) column chunk of length n1... for row
          distribution the transposed rows have length ``n1 = p`` per
          ``n2/p`` groups — handled by grouping.

    Requires ``points_per_proc`` divisible by ``p``.  Each processor
    returns its slice of the DFT in the decomposition's natural
    (transposed) order; the driver function :func:`fft_reference_order`
    documents the mapping used by the tests.
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        n2 = points_per_proc
        n1 = p
        n = n1 * n2
        if not is_power_of_two(n1) or not is_power_of_two(n2):
            raise ValueError("n1 and n2 must be powers of two")
        if n2 % p != 0:
            raise ValueError(f"points_per_proc={n2} must be divisible by p={p}")
        rng = make_rng(seed * 31337 + ctx.pid)
        re = rng.random(n2)
        im = rng.random(n2)
        row = [complex(a, b) for a, b in zip(re, im)]

        # (a) row FFT: processor i holds row i of the n1 x n2 matrix.
        row = _local_fft(row)
        yield Compute(n2 * max(1, ilog2(n2)))
        # (b) twiddles: entry (i, k) *= exp(-2pi i * i*k / n)
        i = ctx.pid
        row = [v * cmath.exp(-2j * cmath.pi * i * k / n) for k, v in enumerate(row)]
        yield Compute(n2)
        # (c) transpose: processor j must receive entries k with
        # k % ... — distribute columns cyclically: column k -> processor
        # k % p? Use block-of-columns: processor j gets columns
        # [j*n2/p, (j+1)*n2/p).
        cols_per = n2 // p
        packets = [
            [(i, k, row[k]) for k in range(j * cols_per, (j + 1) * cols_per)]
            for j in range(p)
        ]
        mine = yield from bsp_alltoall(ctx, packets)
        # (d) column FFTs: I now hold columns [pid*cols_per, ...) fully
        # (all n1 row entries each); FFT each column (length n1).
        columns: dict[int, list[complex]] = {}
        for packet in mine:
            for (src_row, k, v) in packet:
                columns.setdefault(k, [0j] * n1)[src_row] = v
        out: list[tuple[int, list[complex]]] = []
        for k in sorted(columns):
            col = _local_fft(columns[k])
            out.append((k, col))
        yield Compute(cols_per * n1 * max(1, ilog2(n1)))
        return out

    return prog


def fft_reference_order(results: list, n1: int, n2: int) -> list[complex]:
    """Reassemble the distributed FFT output into standard DFT order.

    With the row-column decomposition, ``X[q * n1 + s] = out_col[q][s]``
    ... concretely: the DFT coefficient with index ``t = k * n1 + s``
    (for column ``k``, in-column index ``s``) equals entry ``s`` of the
    FFT of column ``k``.
    """
    X = [0j] * (n1 * n2)
    for per_proc in results:
        for k, col in per_proc:
            for s, v in enumerate(col):
                X[s * n2 + k] = v
    return X


def bsp_matmul_program(n: int, seed: int = 0):
    """Blocked 2-D matrix multiply (SUMMA) on a ``q x q`` processor grid.

    ``p`` must be a perfect square ``q^2`` and ``n`` divisible by ``q``.
    Processor ``(r, c)`` owns block ``A[r,c]`` and ``B[r,c]`` and
    computes ``C[r,c] = sum_k A[r,k] B[k,c]`` via ``q`` steps: in step
    ``k``, the owners of ``A[r,k]`` broadcast along rows and the owners
    of ``B[k,c]`` along columns (h-relations of degree ``q - 1``).
    Returns each processor's ``C`` block as a nested list.
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        q = int(round(p**0.5))
        if q * q != p:
            raise ValueError(f"p={p} must be a perfect square")
        if n % q != 0:
            raise ValueError(f"n={n} must be divisible by q={q}")
        nb = n // q
        r, c = divmod(ctx.pid, q)
        rng = make_rng(seed * 613 + ctx.pid)
        A = rng.random((nb, nb))
        B = rng.random((nb, nb))
        C = np.zeros((nb, nb))

        for k in range(q):
            # Row broadcast of A[r, k] by its owner; column broadcast of
            # B[k, c] by its owner.  (Flat broadcasts: h = q - 1.)
            if c == k:
                for cc in range(q):
                    if cc != c:
                        yield Send(r * q + cc, A.tolist(), tag=90)
            if r == k:
                for rr in range(q):
                    if rr != r:
                        yield Send(rr * q + c, B.tolist(), tag=91)
            yield Sync()
            a_blk = A if c == k else np.array(ctx.recv_all(90)[0].payload)
            b_blk = B if r == k else np.array(ctx.recv_all(91)[0].payload)
            C += a_blk @ b_blk
            yield Compute(nb * nb * nb)
        return C.tolist()

    return prog
