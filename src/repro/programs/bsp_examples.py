"""Classic BSP kernels.

These are the workloads driven through the Theorem 2 simulation
(BSP-on-LogP).  ``bsp_radix_sort_program`` is the paper's own cautionary
example (Section 6: the straightforward parallel Radixsort "involves
relations that may violate the capacity constraint" under LogP — which is
precisely why simulating it via the Section 4.2 protocol is interesting).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bsp.collectives import bsp_allreduce, bsp_alltoall, bsp_prefix
from repro.bsp.program import BSPContext, Compute, Send, Sync
from repro.util.rng import make_rng

__all__ = [
    "bsp_prefix_program",
    "bsp_radix_sort_program",
    "bsp_sample_sort_program",
    "bsp_matvec_program",
]


def bsp_prefix_program(values: Sequence[int] | None = None):
    """Inclusive prefix sums across processors; processor ``i`` returns
    the sum of values ``0..i``."""

    def prog(ctx: BSPContext):
        x = values[ctx.pid] if values is not None else ctx.pid + 1
        acc = yield from bsp_prefix(ctx, x)
        return acc

    return prog


def bsp_radix_sort_program(keys_per_proc: int, key_bits: int, seed: int = 0):
    """Parallel LSD radix sort of ``p * keys_per_proc`` integers.

    Each digit pass: local counting, global prefix over bucket counts
    (one allreduce per bucket batch, as in the textbook BSP algorithm),
    then an all-to-all redistribution whose degree varies with the data —
    the irregular h-relations that make this kernel the paper's example
    of capacity-constraint trouble under LogP.

    Each processor returns its final sorted slice; the concatenation over
    processors is the globally sorted sequence.
    """
    RADIX_BITS = 4
    radix = 1 << RADIX_BITS

    def prog(ctx: BSPContext):
        p = ctx.p
        rng = make_rng((seed * 1_000_003 + ctx.pid))
        keys = [int(k) for k in rng.integers(0, 1 << key_bits, size=keys_per_proc)]

        shift = 0
        while shift < key_bits:
            # Local histogram of this digit.
            counts = [0] * radix
            for k in keys:
                counts[(k >> shift) & (radix - 1)] += 1
            yield Compute(len(keys))
            # Global placement: for bucket b, keys go after all keys of
            # smaller buckets plus same-bucket keys of smaller processors.
            prefix_counts = yield from bsp_prefix(
                ctx, np.array(counts), lambda a, b: a + b, op_cost=radix
            )
            totals = yield from bsp_allreduce(
                ctx, np.array(counts), lambda a, b: a + b, op_cost=radix
            )
            bucket_base = [0] * radix
            acc = 0
            for b in range(radix):
                bucket_base[b] = acc
                acc += int(totals[b])
            # start index for my keys of bucket b:
            start = [
                bucket_base[b] + int(prefix_counts[b]) - counts[b] for b in range(radix)
            ]
            yield Compute(radix)
            # Scatter keys to their global positions (block distribution);
            # keys staying on this processor move locally.
            mine: list[tuple[int, int]] = []
            offsets = list(start)
            for k in sorted(keys, key=lambda k: (k >> shift) & (radix - 1)):
                b = (k >> shift) & (radix - 1)
                pos = offsets[b]
                offsets[b] += 1
                dest = min(pos // keys_per_proc, p - 1)
                if dest == ctx.pid:
                    mine.append((pos, k))
                else:
                    yield Send(dest, (pos, k), tag=50)
            yield Compute(len(keys))
            yield Sync()
            for msg in ctx.recv_all(50):
                mine.append(msg.payload)
            mine.sort()
            keys = [k for _pos, k in mine]
            shift += RADIX_BITS
        return keys

    return prog


def bsp_sample_sort_program(keys_per_proc: int, key_range: int = 1 << 16, seed: int = 0):
    """Sample sort in the *direct BSP* style of Gerbessiotis & Valiant
    (the paper's reference [4]): a constant number of supersteps, each a
    large h-relation.

    1. local sort; pick ``p`` regular samples per processor;
    2. gather all ``p^2`` samples at processor 0, pick ``p - 1``
       splitters, broadcast them (one superstep each);
    3. partition local keys by splitter and exchange (the data-dependent
       h-relation — with random input it is ``Theta(n/p)``-balanced
       w.h.p., which is what makes the algorithm a showcase for BSP's
       arbitrary-h-relation primitive);
    4. local merge.  Processor ``i`` returns the ``i``-th sorted bucket;
       the concatenation over processors is the sorted sequence.
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        rng = make_rng(seed * 99991 + ctx.pid)
        keys = sorted(int(k) for k in rng.integers(0, key_range, size=keys_per_proc))
        yield Compute(keys_per_proc * max(1, keys_per_proc.bit_length()))

        if p == 1:
            return keys

        # Step 2: regular samples -> processor 0.
        step = max(1, keys_per_proc // p)
        samples = keys[::step][:p]
        yield Send(0, samples, tag=80)
        yield Sync()
        if ctx.pid == 0:
            pool = sorted(s for m in ctx.recv_all(80) for s in m.payload)
            yield Compute(len(pool) * max(1, len(pool).bit_length()))
            stride = max(1, len(pool) // p)
            splitters = pool[stride::stride][: p - 1]
            for dest in range(1, p):
                yield Send(dest, splitters, tag=81)
            yield Sync()
        else:
            yield Sync()
            [msg] = ctx.recv_all(81)
            splitters = msg.payload

        # Step 3: partition and exchange.
        import bisect

        buckets: list[list[int]] = [[] for _ in range(p)]
        for k in keys:
            buckets[bisect.bisect_right(splitters, k)].append(k)
        yield Compute(keys_per_proc)
        for dest in range(p):
            if dest != ctx.pid and buckets[dest]:
                yield Send(dest, buckets[dest], tag=82)
        yield Sync()
        mine = list(buckets[ctx.pid])
        for m in ctx.recv_all(82):
            mine.extend(m.payload)
        mine.sort()
        yield Compute(len(mine) * max(1, len(mine).bit_length()))
        return mine

    return prog


def bsp_matvec_program(n: int, seed: int = 0):
    """Dense matrix-vector product ``y = A x`` with row-block distribution.

    Each processor owns ``n/p`` rows of A and the matching slice of x;
    one all-gather of x (an all-to-all of slices) then a local product.
    Returns each processor's slice of ``y`` (as a list of floats).
    """

    def prog(ctx: BSPContext):
        p = ctx.p
        rows = n // p
        if rows * p != n:
            raise ValueError(f"n={n} must be divisible by p={p}")
        rng = make_rng(seed * 7919 + ctx.pid)
        a_block = rng.random((rows, n))
        x_slice = rng.random(rows)
        slices = yield from bsp_alltoall(ctx, [x_slice] * p)
        x = np.concatenate(slices)
        yield Compute(rows * n)
        y = a_block @ x
        return [float(v) for v in y]

    return prog
