"""Ready-made example programs for both machine models.

These are the workloads the cross-simulation experiments run: classic
LogP kernels (ring rotation, broadcast, summation, all-to-all) and BSP
kernels (prefix sums, parallel radix sort, dense matrix-vector).
"""

from repro.programs.logp_examples import (
    logp_alltoall_program,
    logp_broadcast_program,
    logp_ring_program,
    logp_sum_program,
)
from repro.programs.bsp_examples import (
    bsp_matvec_program,
    bsp_prefix_program,
    bsp_radix_sort_program,
    bsp_sample_sort_program,
)
from repro.programs.bsp_numeric import bsp_fft_program, bsp_matmul_program

__all__ = [
    "logp_ring_program",
    "logp_broadcast_program",
    "logp_sum_program",
    "logp_alltoall_program",
    "bsp_prefix_program",
    "bsp_radix_sort_program",
    "bsp_sample_sort_program",
    "bsp_matvec_program",
    "bsp_fft_program",
    "bsp_matmul_program",
]
