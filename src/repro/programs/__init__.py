"""Ready-made example programs for both machine models.

These are the workloads the cross-simulation experiments run: classic
LogP kernels (ring rotation, broadcast, summation, all-to-all) and BSP
kernels (prefix sums, parallel radix sort, dense matrix-vector).
"""

from repro.programs.logp_examples import (
    logp_alltoall_program,
    logp_broadcast_program,
    logp_ring_program,
    logp_sum_program,
)
from repro.programs.bsp_examples import (
    bsp_matvec_program,
    bsp_prefix_program,
    bsp_radix_sort_program,
    bsp_sample_sort_program,
)
from repro.programs.bsp_numeric import bsp_fft_program, bsp_matmul_program
from repro.programs.bsp_sorting import (
    bsp_bitonic_sort_program,
    bsp_columnsort_program,
    bsp_sample_sort_unit_program,
    sorted_input_keys,
)
from repro.programs.bsp_iterative import (
    bsp_gradient_program,
    bsp_jacobi_program,
    gradient_reference,
    jacobi_reference,
)

__all__ = [
    "logp_ring_program",
    "logp_broadcast_program",
    "logp_sum_program",
    "logp_alltoall_program",
    "bsp_prefix_program",
    "bsp_radix_sort_program",
    "bsp_sample_sort_program",
    "bsp_matvec_program",
    "bsp_fft_program",
    "bsp_matmul_program",
    "bsp_bitonic_sort_program",
    "bsp_columnsort_program",
    "bsp_sample_sort_unit_program",
    "sorted_input_keys",
    "bsp_jacobi_program",
    "bsp_gradient_program",
    "jacobi_reference",
    "gradient_reference",
]
