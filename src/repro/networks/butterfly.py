"""The butterfly network.

Table 1 places processors at *every* node of the ``(k+1) 2^k``-node
butterfly (that is how its ``gamma = Theta(log p)`` arises: the bisection
is ``Theta(2^k) = Theta(p / log p)``).  Node ``(l, r)`` for level
``l in [0, k]`` and row ``r in [0, 2^k)``; straight edges connect
``(l, r)-(l+1, r)`` and cross edges ``(l, r)-(l+1, r XOR 2^l)``.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import is_power_of_two, ilog2

__all__ = ["Butterfly"]


class Butterfly(Topology):
    """Butterfly with ``rows = 2^k`` rows and ``k + 1`` levels."""

    def __init__(self, rows: int) -> None:
        if not is_power_of_two(rows) or rows < 2:
            raise TopologyError(f"butterfly requires rows = 2^k >= 2, got {rows}")
        self.rows = rows
        self.k = ilog2(rows)
        n = (self.k + 1) * rows
        super().__init__(n)
        self.name = "butterfly"
        for l in range(self.k):
            for r in range(rows):
                self.add_edge(self.node(l, r), self.node(l + 1, r))
                self.add_edge(self.node(l, r), self.node(l + 1, r ^ (1 << l)))

    def node(self, level: int, row: int) -> int:
        return level * self.rows + row

    def level_row(self, node: int) -> tuple[int, int]:
        return divmod(node, self.rows)

    def route(self, u: int, v: int) -> list[int]:
        """Ascend to level 0, descend correcting all row bits (bit ``l``
        is correctable only on a level-``l`` cross edge), then ascend to
        the target level in the target row."""
        lu, ru = self.level_row(u)
        lv, rv = self.level_row(v)
        path = [u]
        # ascend to level 0 in row ru
        for l in range(lu - 1, -1, -1):
            path.append(self.node(l, ru))
        # descend to level k, correcting bits toward rv
        row = ru
        for l in range(self.k):
            if (row ^ rv) & (1 << l):
                row ^= 1 << l
            path.append(self.node(l + 1, row))
        # ascend to level lv in row rv
        for l in range(self.k - 1, lv - 1, -1):
            path.append(self.node(l, rv))
        # collapse consecutive duplicates (u may already sit mid-path)
        out = [path[0]]
        for nd in path[1:]:
            if nd != out[-1]:
                out.append(nd)
        return out
