"""Network-backed BSP: charge supersteps with *measured* routing costs.

Section 5 argues that point-to-point networks support the BSP
abstraction with parameters ``g* = Theta(gamma(p))``, ``l* =
Theta(delta(p))``.  This module closes the loop executably: it runs a
BSP program normally (BSP semantics are network-independent — the §2.1
portability property), then re-prices every superstep with

* the *actual* time the packet simulator needs to route that superstep's
  message set on a given topology, plus
* a barrier charge of one tree ascent + descent (``2 x diameter``).

Comparing the network-backed cost against the abstract machine's
``w + g* h + l*`` quantifies how well the bridging model's two
parameters predict a real network — the model's raison d'être.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bsp.machine import BSPMachine, BSPResult
from repro.bsp.program import BSPProgram
from repro.engine.result import MachineResult
from repro.errors import TopologyError
from repro.models.params import BSPParams
from repro.networks.routing_sim import RoutingConfig, build_paths, route_packets
from repro.networks.topology import Topology

__all__ = [
    "NetworkBackedRun",
    "run_on_network",
    "SuperstepComm",
    "NetworkDelivery",
]


@dataclass(frozen=True)
class SuperstepComm:
    """One superstep's communication, priced on the network."""

    index: int
    w: int
    h: int
    route_time: int
    barrier_time: int

    @property
    def cost(self) -> int:
        return self.w + self.route_time + self.barrier_time


@dataclass
class NetworkBackedRun(MachineResult):
    """A BSP execution priced on a concrete topology."""

    row_fields = ("topology_name", "p", "network_cost", "total_route_time")

    topology_name: str
    p: int
    bsp: BSPResult
    supersteps: list[SuperstepComm] = field(default_factory=list)

    @property
    def results(self):
        return self.bsp.results

    @property
    def network_cost(self) -> int:
        """Total cost with measured routing + barrier charges."""
        return sum(s.cost for s in self.supersteps)

    def abstract_cost(self, params: BSPParams) -> int:
        """Cost of the same execution on the abstract machine
        ``w + g h + l`` — for fidelity ratios against ``network_cost``."""
        return sum(
            params.superstep_cost(s.w, s.h) for s in self.supersteps
        )

    @property
    def total_route_time(self) -> int:
        return sum(s.route_time for s in self.supersteps)


class NetworkDelivery:
    """A LogP :class:`~repro.logp.scheduler.DeliveryScheduler` whose
    delays come from *traversing the actual topology*.

    Each accepted message is routed hop by hop along the topology's
    oblivious path; every directed edge carries one message per step, so
    the scheduler keeps a reservation table (edge -> next free step) that
    persists across messages — an online store-and-forward co-simulation
    of the network underneath the LogP machine.

    The LogP model *requires* delivery within ``L``; if the network needs
    longer, the machine clamps the delay to ``L`` and this scheduler
    counts the violation (:attr:`violations`).  A topology genuinely
    supports ``(L, G)`` for a traffic class iff such runs stay
    violation-free — the executable form of Section 5's "any machine that
    supports ..." statements.

    With an enabled :class:`~repro.obs.Observation` (``obs=``) the
    scheduler additionally counts per-link occupancy and — when tracing
    — records each store-and-forward hop (in the host LogP clock); call
    :meth:`publish` once the machine run finished.  The recording never
    affects the proposed delays.
    """

    def __init__(self, topo: Topology, *, start_time: int = 0, obs=None) -> None:
        self.topo = topo
        self._edge_free: dict[tuple[int, int], int] = {}
        self.violations = 0
        self.delays: list[int] = []
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.occupancy: dict[tuple[int, int], int] = {}
        #: (depart_step, u, v, msg_uid) per hop, recorded only when tracing.
        self.hops: list[tuple[int, int, int, int]] = []
        self._record_hops = self._obs is not None and self._obs.tracing

    def propose_delay(self, msg, accept_time: int, L: int) -> int:
        path = self.topo.route(self.topo.hosts[msg.src], self.topo.hosts[msg.dest])
        t = accept_time
        observe = self._obs is not None
        for u, v in zip(path, path[1:]):
            depart = max(t, self._edge_free.get((u, v), 0))
            self._edge_free[(u, v)] = depart + 1
            t = depart + 1
            if observe:
                self.occupancy[(u, v)] = self.occupancy.get((u, v), 0) + 1
                if self._record_hops:
                    self.hops.append((depart, u, v, msg.uid))
        delay = max(1, t - accept_time)
        self.delays.append(delay)
        if delay > L:
            self.violations += 1
        return delay  # the engine clamps to [1, L]

    def publish(self, layer: str = "network") -> None:
        """Publish the co-simulation's record into the attached
        observation (no-op without one)."""
        if self._obs is not None:
            self._obs.observe_network_delivery(self, layer=layer)

    @property
    def max_delay(self) -> int:
        return max(self.delays, default=0)


def run_on_network(
    topo: Topology,
    program: BSPProgram | Sequence[BSPProgram],
    *,
    config: RoutingConfig = RoutingConfig(),
    seed: int = 0,
    barrier_factor: int = 2,
    obs=None,
) -> NetworkBackedRun:
    """Execute ``program`` with BSP semantics and network-measured costs.

    The program runs on a machine with ``p`` = the topology's processor
    count; each superstep's message multiset is source-routed on the
    packet simulator (Valiant per ``config``) and its completion time
    becomes the superstep's communication charge.  The barrier costs
    ``barrier_factor * diameter`` (tree up + down).

    With an enabled :class:`~repro.obs.Observation` (``obs=``), the
    per-superstep router runs publish link-occupancy metrics (spans
    suppressed — each router invocation has its own time base) and the
    re-priced superstep decomposition is published on the measured
    clock.
    """
    p = topo.p
    if obs is not None and not obs.enabled:
        obs = None
    # Semantics first: parameters don't affect results (§2.1), so run on
    # a unit machine while recording the communication structure.
    machine = BSPMachine(
        BSPParams(p=p, g=1, l=0),
        record_messages=True,
        layer="guest BSP on host network",
    )
    bsp = machine.run(program)
    if bsp.message_log is None:
        raise TopologyError("internal: message recording disabled")

    barrier = barrier_factor * topo.diameter(
        sample=None if topo.num_nodes <= 1024 else topo.hosts[:: max(1, p // 16)]
    )
    route_obs = obs.metrics_only() if obs is not None else None
    supersteps: list[SuperstepComm] = []
    for rec, msgs in zip(bsp.ledger, bsp.message_log):
        if msgs:
            paths = build_paths(
                topo, msgs, valiant=config.valiant, seed=seed + rec.index
            )
            route_time = route_packets(topo, paths, config, obs=route_obs).time
        else:
            route_time = 0
        supersteps.append(
            SuperstepComm(
                index=rec.index,
                w=rec.w,
                h=rec.h,
                route_time=route_time,
                barrier_time=barrier,
            )
        )
    run = NetworkBackedRun(
        topology_name=topo.name, p=p, bsp=bsp, supersteps=supersteps
    )
    if obs is not None:
        obs.observe_network_run(run)
    return run
