"""Cube-connected cycles.

``k * 2^k`` nodes: each corner ``x`` of the k-cube is a cycle of ``k``
nodes ``(x, 0) .. (x, k-1)``; cycle edges plus one cube edge per node
(``(x, i) - (x XOR 2^i, i)``).  Constant degree 3; Table 1 gives
``gamma = delta = Theta(log p)``.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import is_power_of_two, ilog2

__all__ = ["CubeConnectedCycles"]


class CubeConnectedCycles(Topology):
    """CCC on ``corners = 2^k`` corners (``k >= 2``), all nodes hosts."""

    def __init__(self, corners: int) -> None:
        if not is_power_of_two(corners) or corners < 4:
            raise TopologyError(f"CCC requires corners = 2^k >= 4, got {corners}")
        self.corners = corners
        self.k = ilog2(corners)
        super().__init__(self.k * corners)
        self.name = "ccc"
        k = self.k
        for x in range(corners):
            for i in range(k):
                self.add_edge(self.node(x, i), self.node(x, (i + 1) % k))
                self.add_edge(self.node(x, i), self.node(x ^ (1 << i), i))

    def node(self, corner: int, pos: int) -> int:
        return corner * self.k + pos

    def corner_pos(self, node: int) -> tuple[int, int]:
        return divmod(node, self.k)

    def route(self, u: int, v: int) -> list[int]:
        """Emulated e-cube: walk the cycle once; at position ``i`` take
        the cube edge when bit ``i`` differs; finish by walking the cycle
        to the target position."""
        k = self.k
        (cx, ci) = self.corner_pos(u)
        (tx, tj) = self.corner_pos(v)
        path = [u]
        corner, pos = cx, ci
        # One full sweep of positions starting at ci, flipping needed bits.
        for step in range(k):
            i = (ci + step) % k
            if pos != i:  # move one step along the cycle
                pos = i
                path.append(self.node(corner, pos))
            if (corner ^ tx) & (1 << i):
                corner ^= 1 << i
                path.append(self.node(corner, pos))
        # Walk the cycle to the target position (shorter direction).
        while pos != tj:
            fwd = (tj - pos) % k
            back = (pos - tj) % k
            pos = (pos + 1) % k if fwd <= back else (pos - 1) % k
            path.append(self.node(corner, pos))
        return path
