"""d-dimensional arrays (meshes) with dimension-order routing.

Table 1 row "d-dim Array": ``gamma(p) = Theta(p^{1/d})`` and
``delta(p) = Theta(p^{1/d})`` for constant ``d``.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import digits_mixed_radix, from_digits_mixed_radix

__all__ = ["ArrayND"]


class ArrayND(Topology):
    """A ``sides[0] x sides[1] x ... `` array; every node is a host.

    ``torus=True`` adds wraparound edges (the Table 1 bounds are the same
    up to constants; the mesh is the default as in the cited routing
    results [34]).
    """

    def __init__(self, sides: tuple[int, ...], *, torus: bool = False) -> None:
        if not sides or any(s < 1 for s in sides):
            raise TopologyError(f"invalid array sides {sides}")
        self.sides = tuple(int(s) for s in sides)
        self.torus = torus
        n = 1
        for s in self.sides:
            n *= s
        super().__init__(n)
        self.name = f"{len(self.sides)}-dim array"
        for node in range(n):
            coords = list(digits_mixed_radix(node, self.sides))
            for dim, side in enumerate(self.sides):
                if side == 1:
                    continue
                if coords[dim] + 1 < side:
                    coords[dim] += 1
                    self.add_edge(node, from_digits_mixed_radix(tuple(coords), self.sides))
                    coords[dim] -= 1
                elif torus and side > 2:
                    coords[dim] = 0
                    self.add_edge(node, from_digits_mixed_radix(tuple(coords), self.sides))
                    coords[dim] = side - 1

    @classmethod
    def square(cls, side: int, d: int = 2, **kw) -> "ArrayND":
        """The ``side^d``-node array with equal sides."""
        return cls((side,) * d, **kw)

    def route(self, u: int, v: int) -> list[int]:
        """Dimension-order (e-cube-style) routing: correct coordinate 0
        first, then coordinate 1, etc., stepping one hop at a time."""
        path = [u]
        coords = list(digits_mixed_radix(u, self.sides))
        target = digits_mixed_radix(v, self.sides)
        for dim, side in enumerate(self.sides):
            while coords[dim] != target[dim]:
                delta = target[dim] - coords[dim]
                if self.torus and side > 2 and abs(delta) > side // 2:
                    step = -1 if delta > 0 else 1
                else:
                    step = 1 if delta > 0 else -1
                coords[dim] = (coords[dim] + step) % side
                path.append(from_digits_mixed_radix(tuple(coords), self.sides))
        return path
