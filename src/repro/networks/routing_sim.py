"""Synchronous store-and-forward packet routing on a topology.

The simulator moves packets along precomputed (source-routed) paths:

* per step, each *directed edge* transmits at most one packet;
* **multi-port** nodes may use all their incident edges in one step;
  **single-port** nodes transmit on at most one outgoing edge per step
  (the Table 1 distinction between the two hypercube rows);
* queues are per outgoing edge, FIFO by default, optionally
  farthest-to-go-first (a classical greedy priority for meshes);
* a packet arriving at its destination node is absorbed.

Paths come from each topology's deterministic oblivious route, optionally
via a Valiant random intermediate host ("two-phase" routing — the
standard way to make the deterministic routes h-relation-worst-case
proof; used by the Table 1 experiment on the hypercube-like networks).

The routing time of a balanced h-relation then behaves as
``T(h) ~= gamma(p) * h + delta(p)``, and the experiment extracts
``(gamma, delta)`` by an affine fit over ``h``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.core import counters_for
from repro.engine.result import MachineResult
from repro.errors import RoutingError
from repro.models.params import _bind_fields, resolve_aliases
from repro.networks.topology import Topology
from repro.perf.counters import KernelCounters
from repro.perf.density import DensityEstimator
from repro.perf.event_queue import KERNELS
from repro.routing.workloads import balanced_h_relation
from repro.util.rng import make_rng

__all__ = ["RoutingConfig", "RoutingOutcome", "route_packets", "route_h_relation"]


@dataclass(frozen=True, init=False)
class RoutingConfig:
    """Simulator knobs.

    ``single_port``: one outgoing transmission per node per step.
    ``priority``: ``"fifo"`` or ``"farthest"`` (most remaining hops first).
    ``valiant``: route via a uniformly random intermediate host.
    ``max_steps``: safety valve.
    ``link_fault_rate``: probability in ``[0, 1)`` that any single
    transmission attempt fails (the packet stays queued and is retried on
    a later step — a lossy link with link-level retransmission).  Faults
    are drawn from a stream seeded by ``seed``, so a fixed seed
    reproduces the exact same fault pattern.  (``fault_seed=`` is the
    deprecated spelling — the unified keyword vocabulary uses one
    ``seed`` everywhere; see docs/ARCHITECTURE.md.)
    ``kernel``: ``"event"`` visits only edges/nodes with queued packets
    each step (active-set scheduling); ``"tick"`` is the reference scan
    over every edge ever created; ``"adaptive"`` measures live link
    occupancy per step and switches (with hysteresis) between the
    event kernel's active-set scheduling and a numpy-vectorized dense
    scanner that moves every transmitting packet in one array pass —
    the multiport/FIFO hot path (under ``single_port`` or
    ``priority="farthest"`` it falls back to the event path, relabelled).
    All kernels execute bit-identically — same transmission order, same
    fault-stream draws — the kernel only changes how the next actionable
    work is *found and dispatched*.
    """

    single_port: bool = False
    priority: str = "fifo"
    valiant: bool = False
    max_steps: int = 1_000_000
    link_fault_rate: float = 0.0
    seed: int = 0
    kernel: str = "event"

    _SPEC = (
        ("single_port", False),
        ("priority", "fifo"),
        ("valiant", False),
        ("max_steps", 1_000_000),
        ("link_fault_rate", 0.0),
        ("seed", 0),
        ("kernel", "event"),
    )

    def __init__(self, *args, **kwargs) -> None:
        kwargs = resolve_aliases(
            "RoutingConfig",
            kwargs,
            aliases={},
            deprecated={"fault_seed": "seed"},
        )
        _bind_fields(self, self._SPEC, args, kwargs)
        self.__post_init__()

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_fault_rate < 1.0:
            raise RoutingError(
                f"link_fault_rate must be in [0, 1), got {self.link_fault_rate}"
                " (at 1.0 no packet ever advances)"
            )
        if self.kernel not in KERNELS:
            raise RoutingError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )

    @property
    def fault_seed(self) -> int:
        """Deprecated read alias for :attr:`seed`."""
        return self.seed


@dataclass
class RoutingOutcome(MachineResult):
    """Result of routing one packet set.

    ``retransmissions`` counts transmission attempts that a faulty link
    swallowed (always 0 when ``link_fault_rate == 0``).

    ``kernel`` accounts for the simulator's own work: ``events`` counts
    transmission attempts, ``batches`` synchronous steps driven,
    ``ticks_skipped`` the idle edge (or node, under single-port) scans
    the event kernel avoided relative to a full per-step scan, and
    ``queue_highwater`` the peak edge-queue length (== ``max_queue``).
    """

    time: int
    packets: int
    total_hops: int
    max_queue: int
    retransmissions: int = 0
    kernel: KernelCounters = field(default_factory=KernelCounters)

    row_fields = (
        "time",
        "packets",
        "total_hops",
        "max_queue",
        "retransmissions",
        "avg_path",
    )

    @property
    def avg_path(self) -> float:
        return self.total_hops / self.packets if self.packets else 0.0


def route_packets(
    topo: Topology,
    paths: list[list[int]],
    config: RoutingConfig = RoutingConfig(),
    *,
    obs=None,
    layer: str = "network",
) -> RoutingOutcome:
    """Simulate the synchronous delivery of packets along ``paths``.

    Each path is a node sequence (from the packet's source node to its
    destination node).  Returns timing statistics; raises
    :class:`~repro.errors.RoutingError` if ``max_steps`` is exceeded.

    ``obs`` (an enabled :class:`~repro.obs.Observation`) additionally
    collects per-link occupancy counts and — when tracing — one span per
    successful hop; the recording is purely additive and never alters
    transmission order (the golden-trace suite pins this).
    """
    if config.priority not in ("fifo", "farthest"):
        raise RoutingError(f"unknown priority {config.priority!r}")
    if obs is not None and not obs.enabled:
        obs = None
    if config.kernel == "tick":
        outcome, occupancy, hops = _route_packets_tick(paths, config, obs)
    elif config.kernel == "adaptive":
        outcome, occupancy, hops = _route_packets_adaptive(paths, config, obs)
    else:
        outcome, occupancy, hops = _route_packets_event(paths, config, obs)
    if obs is not None:
        obs.observe_routing(outcome, occupancy, hops, layer=layer)
    return outcome


def _route_packets_event(
    paths: list[list[int]], config: RoutingConfig, obs=None
):
    """Active-set kernel: per step, visit only edges that hold packets.

    Equivalence with the tick scan: edges are numbered in creation order,
    and each step iterates the *sorted* set of non-empty edge numbers —
    exactly the sequence the reference scan produces by walking every
    edge and skipping empty queues.  Under single-port the same holds for
    nodes, with the per-node rotation untouched.  Transmission order and
    fault-stream draws are therefore identical by construction.
    """
    pos = [0] * len(paths)
    total_hops = 0
    counters = counters_for("event")
    # Observation recording (inactive: everything below is None-guarded).
    occupancy: dict[tuple[int, int], int] | None = {} if obs is not None else None
    hops: list[tuple[int, int, int, int]] | None = (
        [] if (obs is not None and obs.tracing) else None
    )
    # Edge state, indexed by creation sequence number.
    eseq: dict[tuple[int, int], int] = {}
    equeues: list[deque[int]] = []
    edge_of: list[tuple[int, int]] = []
    edge_node: list[int] = []
    active: set[int] = set()  # seqs of non-empty edge queues
    # Node state (single-port arbitration), indexed by creation order.
    node_idx: dict[int, int] = {}
    node_edges: list[list[int]] = []  # per node: its edge seqs, in creation order
    node_pending: list[int] = []  # per node: packets queued on its out-edges
    active_nodes: set[int] = set()
    max_queue = 0
    sp = config.single_port  # node bookkeeping only matters under single-port

    def enqueue(pkt: int) -> bool:
        """Queue packet ``pkt`` on its next edge; False if already home."""
        nonlocal max_queue
        path = paths[pkt]
        i = pos[pkt]
        if i + 1 >= len(path):
            return False
        edge = (path[i], path[i + 1])
        s = eseq.get(edge)
        if s is None:
            s = eseq[edge] = len(equeues)
            equeues.append(deque())
            edge_of.append(edge)
            if sp:
                ni = node_idx.get(edge[0])
                if ni is None:
                    ni = node_idx[edge[0]] = len(node_edges)
                    node_edges.append([])
                    node_pending.append(0)
                node_edges[ni].append(s)
                edge_node.append(ni)
        q = equeues[s]
        q.append(pkt)
        if len(q) > max_queue:
            max_queue = len(q)
        if sp:
            ni = edge_node[s]
            node_pending[ni] += 1
            active_nodes.add(ni)
        else:
            active.add(s)
        return True

    def note_pop(s: int) -> None:
        """Deactivate drained edges/nodes after a successful transmission."""
        if sp:
            ni = edge_node[s]
            node_pending[ni] -= 1
            if not node_pending[ni]:
                active_nodes.discard(ni)
        elif not equeues[s]:
            active.discard(s)

    live = 0
    for pkt, path in enumerate(paths):
        total_hops += len(path) - 1
        if enqueue(pkt):
            live += 1

    farthest = config.priority == "farthest"
    fault_rate = config.link_fault_rate
    fault_rng = make_rng(config.seed) if fault_rate > 0 else None
    retransmissions = 0

    def link_ok() -> bool:
        return fault_rng is None or fault_rng.random() >= fault_rate

    def note_obs(s: int, pkt: int, time: int) -> None:
        edge = edge_of[s]
        occupancy[edge] = occupancy.get(edge, 0) + 1
        if hops is not None:
            hops.append((time, pkt, edge[0], edge[1]))

    time = 0
    while live:
        time += 1
        if time > config.max_steps:
            raise RoutingError(f"routing exceeded max_steps={config.max_steps}")
        counters.batches += 1
        moved: list[int] = []
        attempted = 0
        if config.single_port:
            order = sorted(active_nodes)
            counters.ticks_skipped += len(node_edges) - len(order)
            for ni in order:
                edges = node_edges[ni]
                n_e = len(edges)
                for off in range(n_e):
                    s = edges[(time + off) % n_e]
                    q = equeues[s]
                    if q:
                        attempted += 1
                        if link_ok():
                            pkt = _pop(q, paths, pos, farthest)
                            moved.append(pkt)
                            note_pop(s)
                            if occupancy is not None:
                                note_obs(s, pkt, time)
                        else:
                            retransmissions += 1
                        break
        else:
            n_edges = len(equeues)
            if len(active) == n_edges:
                order = range(n_edges)  # everything active: no sort needed
            else:
                order = sorted(active)
                counters.ticks_skipped += n_edges - len(active)
            for s in order:
                q = equeues[s]
                attempted += 1
                if link_ok():
                    pkt = _pop(q, paths, pos, farthest)
                    moved.append(pkt)
                    note_pop(s)
                    if occupancy is not None:
                        note_obs(s, pkt, time)
                else:
                    retransmissions += 1
        if not attempted:
            raise RoutingError("routing deadlock: live packets but no moves")
        counters.events += attempted
        for pkt in moved:
            pos[pkt] += 1
            if not enqueue(pkt):
                live -= 1

    counters.queue_highwater = max_queue
    outcome = RoutingOutcome(
        time=time,
        packets=len(paths),
        total_hops=total_hops,
        max_queue=max_queue,
        retransmissions=retransmissions,
        kernel=counters,
    )
    return outcome, occupancy, hops


def _route_packets_tick(
    paths: list[list[int]], config: RoutingConfig, obs=None
):
    """Reference kernel: scan every created edge (or node) each step."""
    # Packet state: index into its path (position of current node).
    pos = [0] * len(paths)
    total_hops = 0
    counters = counters_for("tick")
    occupancy: dict[tuple[int, int], int] | None = {} if obs is not None else None
    hops: list[tuple[int, int, int, int]] | None = (
        [] if (obs is not None and obs.tracing) else None
    )
    queues: dict[tuple[int, int], deque[int]] = {}
    node_out: dict[int, list[tuple[int, int]]] = {}

    def enqueue(pkt: int) -> bool:
        """Queue packet ``pkt`` on its next edge; False if already home."""
        path = paths[pkt]
        i = pos[pkt]
        if i + 1 >= len(path):
            return False
        edge = (path[i], path[i + 1])
        q = queues.get(edge)
        if q is None:
            q = queues[edge] = deque()
            node_out.setdefault(edge[0], []).append(edge)
        q.append(pkt)
        return True

    live = 0
    for pkt, path in enumerate(paths):
        total_hops += len(path) - 1
        if enqueue(pkt):
            live += 1
    max_queue = max((len(q) for q in queues.values()), default=0)

    farthest = config.priority == "farthest"
    fault_rate = config.link_fault_rate
    fault_rng = make_rng(config.seed) if fault_rate > 0 else None
    retransmissions = 0

    def link_ok() -> bool:
        return fault_rng is None or fault_rng.random() >= fault_rate

    def note_obs(edge: tuple[int, int], pkt: int, time: int) -> None:
        occupancy[edge] = occupancy.get(edge, 0) + 1
        if hops is not None:
            hops.append((time, pkt, edge[0], edge[1]))

    time = 0
    while live:
        time += 1
        if time > config.max_steps:
            raise RoutingError(f"routing exceeded max_steps={config.max_steps}")
        counters.batches += 1
        moved: list[int] = []
        attempted = 0
        if config.single_port:
            # Each node transmits on one outgoing edge this step; rotate
            # fairly over its edges by time to avoid starvation.  A faulty
            # link still consumes the node's port for the step.
            for node, edges in node_out.items():
                n_e = len(edges)
                for off in range(n_e):
                    edge = edges[(time + off) % n_e]
                    q = queues.get(edge)
                    if q:
                        attempted += 1
                        if link_ok():
                            pkt = _pop(q, paths, pos, farthest)
                            moved.append(pkt)
                            if occupancy is not None:
                                note_obs(edge, pkt, time)
                        else:
                            retransmissions += 1
                        break
        else:
            for edge, q in queues.items():
                if q:
                    attempted += 1
                    if link_ok():
                        pkt = _pop(q, paths, pos, farthest)
                        moved.append(pkt)
                        if occupancy is not None:
                            note_obs(edge, pkt, time)
                    else:
                        retransmissions += 1
        if not attempted:
            raise RoutingError("routing deadlock: live packets but no moves")
        counters.events += attempted
        for pkt in moved:
            pos[pkt] += 1
            if not enqueue(pkt):
                live -= 1
        if queues:
            max_queue = max(max_queue, max(len(q) for q in queues.values()))

    counters.queue_highwater = max_queue
    outcome = RoutingOutcome(
        time=time,
        packets=len(paths),
        total_hops=total_hops,
        max_queue=max_queue,
        retransmissions=retransmissions,
        kernel=counters,
    )
    return outcome, occupancy, hops


def _route_packets_adaptive(
    paths: list[list[int]], config: RoutingConfig, obs=None
):
    """Adaptive kernel: density-switched active-set / vectorized scan.

    Link state lives in numpy arrays: paths are flattened into
    ``flat_nodes`` with per-packet ``(path_off, path_len, pos)``, and each
    edge queue is an intrusive linked list over packets (``qhead[e]``,
    ``qtail[e]``, ``qnext[pkt]``, ``qlen[e]``) — every packet sits in at
    most one queue, so one ``qnext`` array suffices.  Each step measures
    occupancy (``active edges / created edges``); a
    :class:`~repro.perf.density.DensityEstimator` picks the mode with
    hysteresis:

    * **sparse** — a Python loop over the active edges (the event
      kernel's schedule, on array state);
    * **dense** — one array pass: batched fault draws, gathered FIFO
      pops, vectorized arrival detection, and grouped stable-sort
      appends.

    Bit-identity with the scalar kernels holds because (a) the active
    set is iterated in sorted edge-creation order in both modes — the
    same sequence the reference scan produces, (b) a batched
    ``rng.random(n)`` draws the exact scalar fault stream (numpy's
    Generator fills arrays with sequential draws), (c) FIFO append order
    is preserved by the stable sort, and (d) new edges are numbered in
    first-use order within each batch.  Only the multiport/FIFO path is
    vectorized: ``single_port`` or ``priority="farthest"`` delegates to
    the event kernel (relabelled, so results still say "adaptive").
    """
    if config.single_port or config.priority != "fifo":
        outcome, occupancy, hops = _route_packets_event(paths, config, obs)
        outcome.kernel.kernel = "adaptive"
        return outcome, occupancy, hops

    n_pkts = len(paths)
    counters = counters_for("adaptive")
    occupancy: dict[tuple[int, int], int] | None = {} if obs is not None else None
    hops: list[tuple[int, int, int, int]] | None = (
        [] if (obs is not None and obs.tracing) else None
    )

    path_len = np.array([len(p) for p in paths], dtype=np.int64)
    total_hops = int((path_len - 1).sum()) if n_pkts else 0
    path_off = np.zeros(n_pkts, dtype=np.int64)
    if n_pkts > 1:
        np.cumsum(path_len[:-1], out=path_off[1:])
    flat: list[int] = []
    for p in paths:
        flat.extend(p)
    flat_nodes = np.array(flat, dtype=np.int64)

    # Candidate edge space: every hop any path can take, as a packed key
    # u*K + v.  Hop positions are all flat indices except each path's
    # last node (which starts no hop).
    K = int(flat_nodes.max()) + 1 if flat_nodes.size else 1
    is_hop = np.ones(flat_nodes.size, dtype=bool)
    last_idx = path_off + path_len - 1
    is_hop[last_idx[path_len > 0]] = False
    hop_keys = flat_nodes[:-1] * K + flat_nodes[1:] if flat_nodes.size else flat_nodes
    # One unique pass yields both the key table and the per-hop compact
    # index; flat_ckeys is only meaningful at hop positions.
    cand_keys, inv = np.unique(hop_keys[is_hop[:-1]], return_inverse=True)
    n_cand = int(cand_keys.size)
    flat_ckeys = np.zeros(flat_nodes.size, dtype=np.int64)
    flat_ckeys[np.flatnonzero(is_hop[:-1])] = inv

    # Edge state, indexed by creation-order edge id (eid).
    eid_of_ckey = np.full(n_cand, -1, dtype=np.int64)
    key_of_eid = np.zeros(n_cand, dtype=np.int64)
    qhead = np.zeros(n_cand, dtype=np.int64)
    qtail = np.zeros(n_cand, dtype=np.int64)
    qlen = np.zeros(n_cand, dtype=np.int64)
    qnext = np.zeros(n_pkts, dtype=np.int64)
    occ_counts = np.zeros(n_cand, dtype=np.int64) if occupancy is not None else None
    pos = np.zeros(n_pkts, dtype=np.int64)
    n_edges = 0
    max_queue = 0

    def append(movers: np.ndarray) -> None:
        """FIFO-append ``movers`` (in order) onto their current-hop edges."""
        nonlocal n_edges, max_queue
        if not movers.size:
            return
        ckeys = flat_ckeys[path_off[movers] + pos[movers]]
        eids = eid_of_ckey[ckeys]
        new = eids < 0
        if new.any():
            # Number fresh edges in first-use order — the scalar kernels'
            # creation-order numbering.
            uck, first = np.unique(ckeys[new], return_index=True)
            order = np.argsort(first, kind="stable")
            ids = np.arange(n_edges, n_edges + uck.size, dtype=np.int64)
            eid_of_ckey[uck[order]] = ids
            key_of_eid[ids] = cand_keys[uck[order]]
            n_edges += int(uck.size)
            eids = eid_of_ckey[ckeys]
        # Group by eid; the stable sort keeps mover order within groups.
        srt = np.argsort(eids, kind="stable")
        spkts = movers[srt]
        seids = eids[srt]
        same = seids[1:] == seids[:-1]
        # Chain consecutive same-edge movers, then splice each group.
        qnext[spkts[:-1][same]] = spkts[1:][same]
        starts = np.flatnonzero(np.concatenate(([True], ~same)))
        stops = np.flatnonzero(np.concatenate((~same, [True])))
        ueids = seids[starts]
        firsts = spkts[starts]
        was_empty = qlen[ueids] == 0
        qhead[ueids[was_empty]] = firsts[was_empty]
        grew = ~was_empty
        qnext[qtail[ueids[grew]]] = firsts[grew]
        qtail[ueids] = spkts[stops]
        qlen[ueids] += stops - starts + 1
        peak = int(qlen[ueids].max())
        if peak > max_queue:
            max_queue = peak

    live = 0
    if n_pkts:
        movers0 = np.flatnonzero(path_len >= 2)
        live = int(movers0.size)
        append(movers0)

    fault_rate = config.link_fault_rate
    fault_rng = make_rng(config.seed) if fault_rate > 0 else None
    retransmissions = 0
    est = DensityEstimator(enter=0.5, exit=0.25, alpha=0.5)

    time = 0
    while live:
        time += 1
        if time > config.max_steps:
            raise RoutingError(f"routing exceeded max_steps={config.max_steps}")
        counters.batches += 1
        actives = np.flatnonzero(qlen[:n_edges] > 0)
        n_active = int(actives.size)
        counters.ticks_skipped += n_edges - n_active
        dense = est.observe(n_active / n_edges) if n_edges else False
        if not n_active:
            raise RoutingError("routing deadlock: live packets but no moves")
        counters.events += n_active
        if dense:
            counters.dense_batches += 1
            if fault_rng is not None:
                ok = fault_rng.random(n_active) >= fault_rate
                retransmissions += n_active - int(ok.sum())
                edges = actives[ok]
            else:
                edges = actives
            pkts = qhead[edges]
            qhead[edges] = qnext[pkts]
            qlen[edges] -= 1
            if occ_counts is not None:
                occ_counts[edges] += 1
                if hops is not None:
                    us, vs = np.divmod(key_of_eid[edges], K)
                    for pkt, u, v in zip(pkts.tolist(), us.tolist(), vs.tolist()):
                        hops.append((time, pkt, u, v))
            pos[pkts] += 1
            arrived = pos[pkts] + 1 >= path_len[pkts]
            live -= int(arrived.sum())
            append(pkts[~arrived])
        else:
            moved: list[int] = []
            for e in actives.tolist():
                if fault_rng is not None and fault_rng.random() < fault_rate:
                    retransmissions += 1
                    continue
                pkt = int(qhead[e])
                qhead[e] = qnext[pkt]
                qlen[e] -= 1
                moved.append(pkt)
                if occ_counts is not None:
                    occ_counts[e] += 1
                    if hops is not None:
                        key = int(key_of_eid[e])
                        hops.append((time, pkt, key // K, key % K))
            movers: list[int] = []
            for pkt in moved:
                pos[pkt] += 1
                if pos[pkt] + 1 >= path_len[pkt]:
                    live -= 1
                else:
                    movers.append(pkt)
            append(np.asarray(movers, dtype=np.int64))

    counters.queue_highwater = max_queue
    est.publish(counters)
    if occupancy is not None:
        for eid in range(n_edges):
            c = int(occ_counts[eid])
            if c:
                key = int(key_of_eid[eid])
                occupancy[(key // K, key % K)] = c
    outcome = RoutingOutcome(
        time=time,
        packets=n_pkts,
        total_hops=total_hops,
        max_queue=max_queue,
        retransmissions=retransmissions,
        kernel=counters,
    )
    return outcome, occupancy, hops


def _pop(q: deque, paths: list[list[int]], pos: list[int], farthest: bool) -> int:
    if not farthest or len(q) == 1:
        return q.popleft()
    best_i = 0
    best_rem = -1
    for i, pkt in enumerate(q):
        rem = len(paths[pkt]) - 1 - pos[pkt]
        if rem > best_rem:
            best_rem = rem
            best_i = i
    pkt = q[best_i]
    del q[best_i]
    return pkt


def build_paths(
    topo: Topology,
    pairs: list[tuple[int, int]],
    *,
    valiant: bool = False,
    seed: int | np.random.Generator = 0,
) -> list[list[int]]:
    """Source-route each ``(src_host, dst_host)`` pair, optionally through
    a uniformly random intermediate host (Valiant's two-phase trick)."""
    rng = make_rng(seed)
    paths: list[list[int]] = []
    hosts = topo.hosts
    for src, dst in pairs:
        u, v = hosts[src], hosts[dst]
        if valiant and u != v:
            w = hosts[int(rng.integers(0, len(hosts)))]
            first = topo.route_cached(u, w)
            second = topo.route_cached(w, v)
            paths.append(first + second[1:])
        else:
            # Copy: the simulator's packets may share endpoint pairs, and
            # cached paths are shared read-only structure.
            paths.append(list(topo.route_cached(u, v)))
    return paths


def route_h_relation(
    topo: Topology,
    h: int,
    *,
    seed: int = 0,
    config: RoutingConfig = RoutingConfig(),
    obs=None,
    layer: str = "network",
) -> RoutingOutcome:
    """Generate a balanced h-relation on the topology's hosts and route it."""
    pairs = balanced_h_relation(topo.p, h, seed=seed)
    paths = build_paths(topo, pairs, valiant=config.valiant, seed=seed + 1)
    return route_packets(topo, paths, config, obs=obs, layer=layer)
