"""The shuffle-exchange graph.

``2^k`` nodes; *exchange* edges ``x - (x XOR 1)`` and *shuffle* edges
``x - rot_left(x)`` (undirected, as usual for the routing results Table 1
cites).  Constant degree; ``gamma = delta = Theta(log p)``.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import is_power_of_two, ilog2

__all__ = ["ShuffleExchange"]


class ShuffleExchange(Topology):
    """Shuffle-exchange on ``p = 2^k`` nodes (``k >= 1``), all hosts."""

    def __init__(self, p: int) -> None:
        if not is_power_of_two(p) or p < 2:
            raise TopologyError(f"shuffle-exchange requires p = 2^k >= 2, got {p}")
        super().__init__(p)
        self.k = ilog2(p)
        self.name = "shuffle-exchange"
        for x in range(p):
            self.add_edge(x, x ^ 1)
            self.add_edge(x, self.shuffle(x))

    def shuffle(self, x: int) -> int:
        """Cyclic left rotation of the k-bit word ``x``."""
        k = self.k
        return ((x << 1) | (x >> (k - 1))) & ((1 << k) - 1)

    def route(self, u: int, v: int) -> list[int]:
        """The classical k-round schedule: in round ``i`` shuffle, then
        exchange if the now-lowest bit disagrees with the corresponding
        bit of the destination."""
        k = self.k
        path = [u]
        cur = u
        if u == v:
            return path
        for i in range(k):
            nxt = self.shuffle(cur)
            if nxt != cur:
                cur = nxt
                path.append(cur)
            # The LSB fixed in round i undergoes k-1-i further rotations
            # and ends at position k-1-i, so it must equal that bit of v.
            want = (v >> (k - 1 - i)) & 1
            if (cur & 1) != want:
                cur ^= 1
                path.append(cur)
        if cur != v:
            raise AssertionError(f"shuffle-exchange routing failed: {u}->{v}, got {cur}")
        return path
