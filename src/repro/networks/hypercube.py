"""The binary hypercube with e-cube routing.

Table 1 distinguishes the *multi-port* hypercube (a node may use all
``log p`` links in one step: ``gamma = Theta(1)``) from the *single-port*
one (one link per node per step: ``gamma = Theta(log p)``); both have
``delta = Theta(log p)``.  The port discipline is a property of the
packet simulator (:class:`~repro.networks.routing_sim.RoutingConfig`),
not of the graph, so a single topology class serves both rows.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import ilog2, is_power_of_two

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """The ``2^k``-node hypercube; every node is a host."""

    def __init__(self, p: int) -> None:
        if not is_power_of_two(p):
            raise TopologyError(f"hypercube requires a power-of-two size, got {p}")
        super().__init__(p)
        self.k = ilog2(p)
        self.name = "hypercube"
        for u in range(p):
            for bit in range(self.k):
                self.add_edge(u, u ^ (1 << bit))

    def route(self, u: int, v: int) -> list[int]:
        """E-cube routing: correct differing bits from LSB to MSB."""
        path = [u]
        cur = u
        diff = u ^ v
        bit = 0
        while diff:
            if diff & 1:
                cur ^= 1 << bit
                path.append(cur)
            diff >>= 1
            bit += 1
        return path
