"""Point-to-point processor networks (paper Section 5, Table 1).

Each topology provides its node set, which nodes carry processors
("hosts" — in some networks, e.g. the mesh of trees, internal nodes are
pure routers), and a structured *oblivious route* between any two nodes.
:mod:`repro.networks.routing_sim` moves packets synchronously
(store-and-forward, one packet per directed edge per step, single- or
multi-port nodes) so the experiments can measure the routing time of
h-relations and extract empirical bandwidth/latency parameters
(gamma(p), delta(p)) to compare against Table 1.
"""

from repro.networks.array_nd import ArrayND
from repro.networks.butterfly import Butterfly
from repro.networks.ccc import CubeConnectedCycles
from repro.networks.hypercube import Hypercube
from repro.networks.mesh_of_trees import MeshOfTrees
from repro.networks.shuffle_exchange import ShuffleExchange
from repro.networks.routing_sim import RoutingConfig, RoutingOutcome, route_h_relation
from repro.networks.topology import Topology

__all__ = [
    "Topology",
    "ArrayND",
    "Hypercube",
    "Butterfly",
    "CubeConnectedCycles",
    "ShuffleExchange",
    "MeshOfTrees",
    "RoutingConfig",
    "RoutingOutcome",
    "route_h_relation",
]
