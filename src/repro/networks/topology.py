"""Topology base class.

A topology is an undirected graph plus (a) a designated subset of *host*
nodes that carry processors and (b) a deterministic oblivious route
between any pair of nodes.  Everything the packet simulator and the
Table 1 experiment need is expressed against this interface.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.errors import TopologyError

__all__ = ["Topology"]


class Topology:
    """Base class; subclasses populate adjacency and implement routing.

    Attributes
    ----------
    name:
        Human-readable identifier (matches the Table 1 row names).
    adj:
        ``adj[u]`` lists the neighbors of node ``u`` (undirected graph;
        every listed pair is usable in both directions by the router).
    hosts:
        Node indices carrying processors, in processor-rank order.
    """

    name: str = "abstract"

    def __init__(self, num_nodes: int, hosts: Sequence[int] | None = None) -> None:
        if num_nodes < 1:
            raise TopologyError(f"need at least one node, got {num_nodes}")
        self.num_nodes = num_nodes
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]
        self._edge_set: set[tuple[int, int]] = set()
        self.hosts: list[int] = list(hosts) if hosts is not None else list(range(num_nodes))
        self._route_cache: dict[tuple[int, int], list[int]] = {}

    # -- construction helpers ------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}`` (idempotent; no self-loops)."""
        if u == v:
            return
        key = (min(u, v), max(u, v))
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.adj[u].append(v)
        self.adj[v].append(u)

    # -- interface -----------------------------------------------------------

    @property
    def p(self) -> int:
        """Number of processors (hosts)."""
        return len(self.hosts)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def route(self, u: int, v: int) -> list[int]:
        """Deterministic oblivious path from node ``u`` to node ``v``
        (inclusive of both endpoints).  Subclasses override."""
        raise NotImplementedError

    def route_cached(self, u: int, v: int) -> list[int]:
        """Like :meth:`route`, but memoized per instance.

        Routes are oblivious — a pure function of ``(u, v)`` — yet an
        h-relation asks for the same endpoint pairs over and over (and a
        Valiant pass routinely revisits intermediate hosts).  Callers
        must not mutate the returned path.
        """
        path = self._route_cache.get((u, v))
        if path is None:
            path = self._route_cache[(u, v)] = self.route(u, v)
        return path

    # -- generic graph utilities ----------------------------------------------

    def check_route(self, path: list[int], u: int, v: int) -> None:
        """Raise :class:`~repro.errors.TopologyError` unless ``path`` is a
        valid walk from ``u`` to ``v`` along existing edges."""
        if not path or path[0] != u or path[-1] != v:
            raise TopologyError(f"route {u}->{v} has bad endpoints: {path[:4]}...")
        for a, b in zip(path, path[1:]):
            key = (min(a, b), max(a, b))
            if key not in self._edge_set:
                raise TopologyError(f"route {u}->{v} uses non-edge ({a}, {b})")

    def bfs_distances(self, source: int) -> list[int]:
        """Hop distances from ``source`` (-1 for unreachable)."""
        dist = [-1] * self.num_nodes
        dist[source] = 0
        q = deque([source])
        while q:
            u = q.popleft()
            for w in self.adj[u]:
                if dist[w] < 0:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return dist

    def diameter(self, sample: Iterable[int] | None = None) -> int:
        """Exact diameter when ``sample`` is None (BFS from every node);
        otherwise the max eccentricity over the sampled sources."""
        sources = list(sample) if sample is not None else range(self.num_nodes)
        best = 0
        for s in sources:
            dist = self.bfs_distances(s)
            if min(dist) < 0:
                raise TopologyError(f"{self.name}: graph is disconnected")
            best = max(best, max(dist))
        return best

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, p={self.p}, "
            f"edges={self.num_edges})"
        )
