"""Extracting empirical (gamma, delta) from routing measurements — the
machinery behind the Table 1 experiment.

``T(h) ~= gamma * h + delta`` for balanced h-relations; we measure
``T(h)`` over an ``h`` sweep (several seeds each), fit the affine model,
and compare the fitted slope/intercept against the Table 1 asymptotics
(:data:`repro.models.cost.TABLE1`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.cost import TABLE1
from repro.networks.routing_sim import RoutingConfig, route_h_relation
from repro.networks.topology import Topology
from repro.util.stats import AffineFit, affine_fit

__all__ = ["NetworkParams", "measure_network_params", "make_topology", "TOPOLOGY_BUILDERS"]


@dataclass(frozen=True)
class NetworkParams:
    """Empirical bandwidth/latency of one topology instance."""

    name: str
    p: int
    gamma: float
    delta: float
    r2: float
    diameter: int

    def theory(self, d: int = 2) -> tuple[float, float]:
        """Table 1's (gamma, delta) for this topology at this ``p``."""
        costs = TABLE1[self.name]
        return costs.gamma(self.p, d), costs.delta(self.p, d)


def measure_network_params(
    topo: Topology,
    *,
    table_name: str,
    hs: tuple[int, ...] = (1, 2, 4, 8, 16),
    seeds: tuple[int, ...] = (0, 1, 2),
    config: RoutingConfig = RoutingConfig(),
    exact_diameter: bool = True,
    obs=None,
) -> NetworkParams:
    """Fit ``T(h) = gamma h + delta`` on the measured routing times.

    ``obs`` (an enabled :class:`~repro.obs.Observation`) collects the
    individual routing runs' metrics under ``layer=table_name`` (spans
    suppressed — each run has its own time base)."""
    route_obs = obs.metrics_only() if (obs is not None and obs.enabled) else None
    xs: list[float] = []
    ys: list[float] = []
    for h in hs:
        for seed in seeds:
            out = route_h_relation(
                topo, h, seed=seed, config=config, obs=route_obs, layer=table_name
            )
            xs.append(float(h))
            ys.append(float(out.time))
    fit: AffineFit = affine_fit(xs, ys)
    diam = (
        topo.diameter()
        if exact_diameter and topo.num_nodes <= 2048
        else topo.diameter(sample=topo.hosts[:: max(1, len(topo.hosts) // 16)])
    )
    return NetworkParams(
        name=table_name,
        p=topo.p,
        gamma=max(fit.slope, 0.0),
        delta=max(fit.intercept, 0.0),
        r2=fit.r2,
        diameter=diam,
    )


def make_topology(name: str, p: int):
    """Build a Table 1 topology instance with (approximately) ``p``
    processors, together with the routing configuration that realizes the
    table's assumptions for that row.

    Returns ``(topology, config)``.  ``p`` must be a power of two for the
    non-array networks (sizes are rounded to the structure's natural
    grid for arrays / butterflies / CCC / mesh-of-trees).
    """
    builder = TOPOLOGY_BUILDERS.get(name)
    if builder is None:
        raise KeyError(f"unknown topology {name!r}; choose from {sorted(TOPOLOGY_BUILDERS)}")
    return builder(p)


def _build_array(p: int):
    from repro.networks.array_nd import ArrayND

    side = max(2, int(round(np.sqrt(p))))
    return ArrayND((side, side)), RoutingConfig(priority="farthest")


def _build_hypercube_multi(p: int):
    from repro.networks.hypercube import Hypercube

    return Hypercube(p), RoutingConfig(valiant=True)


def _build_hypercube_single(p: int):
    from repro.networks.hypercube import Hypercube

    return Hypercube(p), RoutingConfig(single_port=True, valiant=True)


def _build_butterfly(p: int):
    from repro.networks.butterfly import Butterfly

    # p processors spread over (k+1) levels of 2^k rows: pick the largest
    # 2^k with (k+1) 2^k <= p, then report the actual processor count.
    rows = 2
    while (rows.bit_length() + 1) * rows * 2 <= p:
        rows *= 2
    return Butterfly(rows), RoutingConfig(valiant=True)


def _build_ccc(p: int):
    from repro.networks.ccc import CubeConnectedCycles

    corners = 4
    while corners.bit_length() * corners * 2 <= p:
        corners *= 2
    return CubeConnectedCycles(corners), RoutingConfig(valiant=True)


def _build_shuffle_exchange(p: int):
    from repro.networks.shuffle_exchange import ShuffleExchange

    return ShuffleExchange(p), RoutingConfig(valiant=True)


def _build_mesh_of_trees(p: int):
    from repro.networks.mesh_of_trees import MeshOfTrees

    n = max(2, int(round(np.sqrt(p))))
    # round n to a power of two
    n = 1 << (n - 1).bit_length()
    return MeshOfTrees(n), RoutingConfig()


TOPOLOGY_BUILDERS = {
    "d-dim array": _build_array,
    "hypercube (multi-port)": _build_hypercube_multi,
    "hypercube (single-port)": _build_hypercube_single,
    "butterfly": _build_butterfly,
    "ccc": _build_ccc,
    "shuffle-exchange": _build_shuffle_exchange,
    "mesh-of-trees": _build_mesh_of_trees,
}
