"""The 2-dimensional mesh of trees (Table 1's "Pruned Butterfly /
Mesh-of-Trees" row: ``gamma = Theta(sqrt p)``, ``delta = Theta(log p)``).

An ``n x n`` grid of leaf cells (the ``p = n^2`` processors), plus a
complete binary tree over every row and every column whose internal
nodes are pure routers.  Routing ``(i, j) -> (i', j')`` goes through row
tree ``i`` (leaf ``(i, j)`` to leaf ``(i, j')`` via their LCA) and then
column tree ``j'`` (leaf ``(i, j')`` to ``(i', j')``), i.e. at most
``4 log n`` hops.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.networks.topology import Topology
from repro.util.intmath import is_power_of_two, ilog2

__all__ = ["MeshOfTrees"]


class MeshOfTrees(Topology):
    """Mesh of trees over an ``n x n`` grid, ``n = 2^k``.

    Node layout: leaves ``0 .. n^2-1`` (leaf ``(i, j)`` is ``i*n + j``),
    then for each row ``i`` the ``n - 1`` internal nodes of its tree,
    then for each column ``j`` likewise.  Internal tree nodes are heap
    indexed: internal node ``t in [1, n)`` of a tree has children
    ``2t`` and ``2t + 1`` (indices ``>= n`` denote leaves ``idx - n``).
    """

    def __init__(self, n: int) -> None:
        if not is_power_of_two(n) or n < 2:
            raise TopologyError(f"mesh of trees requires n = 2^k >= 2, got {n}")
        self.n = n
        self.k = ilog2(n)
        leaves = n * n
        internal_per_tree = n - 1
        total = leaves + 2 * n * internal_per_tree
        super().__init__(total, hosts=list(range(leaves)))
        self.name = "mesh-of-trees"
        self._row_base = leaves
        self._col_base = leaves + n * internal_per_tree
        for i in range(n):
            for t in range(1, n):
                node = self._row_internal(i, t)
                for child in (2 * t, 2 * t + 1):
                    self.add_edge(node, self._row_child(i, child))
        for j in range(n):
            for t in range(1, n):
                node = self._col_internal(j, t)
                for child in (2 * t, 2 * t + 1):
                    self.add_edge(node, self._col_child(j, child))

    # heap-node helpers: index t in [1, 2n); t >= n is leaf t - n
    def _row_internal(self, row: int, t: int) -> int:
        return self._row_base + row * (self.n - 1) + (t - 1)

    def _row_child(self, row: int, t: int) -> int:
        if t >= self.n:
            return row * self.n + (t - self.n)  # leaf (row, t - n)
        return self._row_internal(row, t)

    def _col_internal(self, col: int, t: int) -> int:
        return self._col_base + col * (self.n - 1) + (t - 1)

    def _col_child(self, col: int, t: int) -> int:
        if t >= self.n:
            return (t - self.n) * self.n + col  # leaf (t - n, col)
        return self._col_internal(col, t)

    @staticmethod
    def _tree_path(a: int, b: int, n: int) -> list[int]:
        """Heap-index path from leaf slot ``a`` to leaf slot ``b`` via
        their LCA (slots in ``[0, n)``, heap leaf index = slot + n)."""
        x, y = a + n, b + n
        up_x: list[int] = [x]
        up_y: list[int] = [y]
        while x != y:
            if x >= y:
                x //= 2
                up_x.append(x)
            else:
                y //= 2
                up_y.append(y)
        return up_x + up_y[-2::-1]

    def route(self, u: int, v: int) -> list[int]:
        n = self.n
        iu, ju = divmod(u, n) if u < n * n else (None, None)
        iv, jv = divmod(v, n) if v < n * n else (None, None)
        if iu is None or iv is None:
            raise TopologyError("mesh-of-trees routes host (leaf) pairs only")
        path = [u]
        # Row tree iu: (iu, ju) -> (iu, jv)
        if ju != jv:
            heap = self._tree_path(ju, jv, n)
            for t in heap[1:]:
                path.append(self._row_child(iu, t) if t < n else iu * n + (t - n))
        # Column tree jv: (iu, jv) -> (iv, jv)
        if iu != iv:
            heap = self._tree_path(iu, iv, n)
            for t in heap[1:]:
                path.append(self._col_child(jv, t) if t < n else (t - n) * n + jv)
        return path
