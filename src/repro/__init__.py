"""repro — an executable reproduction of *BSP vs LogP* (Bilardi, Herley,
Pietracaprina, Pucci, Spirakis; SPAA 1996 / Algorithmica 1999).

The package provides:

* :mod:`repro.bsp` — a BSP virtual machine (supersteps, ``w + g h + l``);
* :mod:`repro.logp` — an event-accurate LogP machine (``L, o, G, P``,
  capacity constraint, the paper's formalized stalling rule);
* :mod:`repro.core` — the paper's cross-simulations: Theorem 1
  (LogP on BSP), Combine-and-Broadcast, the deterministic and randomized
  h-relation routing protocols, Theorems 2/3 (BSP on LogP), the stalling
  experiments, and the Section 5 network-support analysis;
* :mod:`repro.networks` — the Table 1 topologies and a synchronous
  store-and-forward packet-routing simulator;
* :mod:`repro.sorting`, :mod:`repro.routing` — the sorting networks and
  h-relation machinery the protocols are built from;
* :mod:`repro.models` — machine parameters and every closed-form cost
  expression in the paper;
* :mod:`repro.programs` — ready-made example programs for both models;
* :mod:`repro.engine` — the shared simulation engine: one drive loop,
  the ``MachineResult``/``TraceEvent`` result vocabulary, and the
  :class:`~repro.engine.stack.Stack` layer-composition API
  (``Stack(prog).on_logp(P).on_network(topo).run()``).

Quickstart::

    from repro import BSPParams, LogPParams, BSPMachine, LogPMachine
    from repro.core import simulate_logp_on_bsp, simulate_bsp_on_logp

See ``examples/quickstart.py`` for a guided tour.
"""

from repro.models.message import Message
from repro.models.params import BSPParams, LogPParams
from repro.bsp.machine import BSPMachine, BSPResult
from repro.logp.machine import LogPMachine, LogPResult
from repro.engine import MachineResult, Stack, TraceEvent

__version__ = "1.0.0"

__all__ = [
    "Message",
    "BSPParams",
    "LogPParams",
    "BSPMachine",
    "BSPResult",
    "LogPMachine",
    "LogPResult",
    "MachineResult",
    "Stack",
    "TraceEvent",
    "__version__",
]
