"""repro — an executable reproduction of *BSP vs LogP* (Bilardi, Herley,
Pietracaprina, Pucci, Spirakis; SPAA 1996 / Algorithmica 1999).

The canonical entry point is the :class:`Stack` API — compose the
paper's layers by name and run the chain::

    from repro import Stack, BSPParams, LogPParams

    Stack(prog).on_bsp(BSPParams(p=8, g=2, l=16)).run()    # native BSP
    Stack(prog).on_logp(LogPParams(p=8, L=8, o=1, G=2)).run()  # Thm 2/3
    Stack(prog, model="logp", params=P).on_bsp().run()     # Theorem 1
    Stack(prog).on_logp(P).on_network(topo).run()          # three layers

Every run returns a :class:`MachineResult` subclass (shared ``as_row``
/ ``trace_events`` vocabulary); pass ``obs=Observation(...)`` to any
``run()`` to collect metrics, layer-labelled traces (Chrome/Perfetto
JSON), and predicted-vs-observed cost residuals
(:class:`CostModelCheck`) — see ``docs/OBSERVABILITY.md``.

The package layout underneath:

* :mod:`repro.bsp` — a BSP virtual machine (supersteps, ``w + g h + l``);
* :mod:`repro.logp` — an event-accurate LogP machine (``L, o, G, P``,
  capacity constraint, the paper's formalized stalling rule);
* :mod:`repro.core` — the paper's cross-simulations: Theorem 1
  (LogP on BSP), Combine-and-Broadcast, the deterministic and randomized
  h-relation routing protocols, Theorems 2/3 (BSP on LogP), the stalling
  experiments, and the Section 5 network-support analysis;
* :mod:`repro.networks` — the Table 1 topologies and a synchronous
  store-and-forward packet-routing simulator;
* :mod:`repro.sorting`, :mod:`repro.routing` — the sorting networks and
  h-relation machinery the protocols are built from;
* :mod:`repro.models` — machine parameters and every closed-form cost
  expression in the paper;
* :mod:`repro.faults` — deterministic fault injection + resilience;
* :mod:`repro.programs` — ready-made example programs for both models;
* :mod:`repro.engine` — the shared simulation engine: one drive loop,
  the result vocabulary, and the Stack adapters;
* :mod:`repro.obs` — the observability layer (metrics, tracer, cost
  checks);
* :mod:`repro.campaign` — parallel, resumable, cache-backed experiment
  sweeps (:class:`CampaignSpec` + :func:`run_campaign`), plus the public
  target registry (:func:`register_target`); see ``docs/CAMPAIGN.md``;
* :mod:`repro.service` — simulation-as-a-service: an asyncio front-end
  (:class:`SimulationService`) that resolves :class:`RunRequest`
  documents against the sharded campaign cache — hits served from disk,
  identical in-flight requests deduped, misses batched into the
  work-stealing pool; see ``docs/SERVICE.md``;
* :mod:`repro.dist` — a fault-tolerant *real-process* backend: each
  LogP processor is an OS process over TCP, supervised with heartbeats,
  checkpointed restarts, seq/ack retransmission, and Lamport-stamped
  event logs (``Stack(name).on_dist(p)``); see ``docs/DIST.md``;
* :mod:`repro.workloads` — the first-class workload library: a
  declarative registry (:class:`Workload`) bundling program factory,
  parameter space, analytic cost model, and reference validation, with
  :func:`run_workload` driving points end-to-end through the request
  path; see ``docs/WORKLOADS.md``.

See ``examples/quickstart.py`` for a guided tour.
"""

from repro.campaign import CampaignReport, CampaignSpec, register_target, run_campaign
from repro.dist import DistParams, DistResult, run_dist
from repro.models.message import Message
from repro.models.params import BSPParams, LogPParams
from repro.bsp.machine import BSPMachine, BSPResult
from repro.logp.machine import LogPMachine, LogPResult
from repro.engine import MachineResult, Stack, TraceEvent
from repro.engine.request import RunRequest
from repro.service import ServiceConfig, SimulationService
from repro.faults import FaultPlan, FaultLog, CRASHED
from repro.networks.routing_sim import RoutingConfig
from repro.networks.topology import Topology
from repro.obs import (
    CostCheckReport,
    CostModelCheck,
    MetricsRegistry,
    Observation,
    Tracer,
)
from repro.workloads import Workload, WorkloadRun, iter_workloads, run_workload

__version__ = "1.1.0"

__all__ = [
    # Stack-first public API
    "Stack",
    "MachineResult",
    "TraceEvent",
    # model parameters
    "BSPParams",
    "LogPParams",
    "RoutingConfig",
    "Topology",
    "Message",
    # machines and their results (for native single-layer runs)
    "BSPMachine",
    "BSPResult",
    "LogPMachine",
    "LogPResult",
    # fault injection
    "FaultPlan",
    "FaultLog",
    "CRASHED",
    # campaign sweeps
    "CampaignSpec",
    "CampaignReport",
    "run_campaign",
    "register_target",
    # simulation-as-a-service
    "RunRequest",
    "SimulationService",
    "ServiceConfig",
    # real-process distributed backend
    "DistParams",
    "DistResult",
    "run_dist",
    # workload library
    "Workload",
    "WorkloadRun",
    "run_workload",
    "iter_workloads",
    # observability
    "Observation",
    "MetricsRegistry",
    "Tracer",
    "CostModelCheck",
    "CostCheckReport",
    "__version__",
]
