"""Running independent BSP programs on disjoint processor groups.

Paper §2.1: "A drawback of the model is that all synchronizations are
essentially global so that, for instance, two programs cannot run
independently on two disjoint sets of processors.  This is an obstacle
for multiuser modes of operation."

:func:`combine_partitions` is the BSP counterpart of
:mod:`repro.logp.partition`: results are still isolated (messages cannot
cross groups), but the *cost* is not — every superstep's barrier spans
the whole machine, so each group pays ``l`` per superstep of the
*slowest* group and the combined cost is not the max of the standalone
costs.  The partitioning experiment quantifies exactly this asymmetry
between the two models.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bsp.program import BSPContext, BSPProgram, Send, Sync
from repro.errors import ProgramError
from repro.models.message import Message

__all__ = ["combine_partitions"]


def combine_partitions(
    groups: Sequence[Sequence[int]],
    programs: Sequence[BSPProgram],
    p: int,
) -> list:
    """Build per-processor global BSP programs from per-group programs.

    Same contract as the LogP version; the global barrier remains shared
    (that is the point being measured).
    """
    owner: dict[int, tuple[int, Sequence[int]]] = {}
    for gi, group in enumerate(groups):
        for pid in group:
            if pid in owner or not 0 <= pid < p:
                raise ProgramError(f"groups must be disjoint subsets of range({p})")
            owner[pid] = (gi, group)
    if len(groups) != len(programs):
        raise ProgramError("need exactly one program per group")

    def make(pid: int):
        if pid not in owner:
            def idle(ctx):
                return None
                yield  # pragma: no cover

            return idle
        gi, group = owner[pid]
        to_global = list(group)
        to_local = {g: i for i, g in enumerate(group)}

        def prog(ctx: BSPContext):
            view = BSPContext(to_local[ctx.pid], len(group))
            gen = programs[gi](view)
            result: Any = None
            try:
                instr = next(gen)
                while True:
                    if isinstance(instr, Send):
                        if not 0 <= instr.dest < view.p:
                            raise ProgramError(
                                f"group-local destination {instr.dest} out of "
                                f"range (group size {view.p})"
                            )
                        yield Send(to_global[instr.dest], instr.payload, tag=instr.tag)
                    elif isinstance(instr, Sync):
                        yield Sync()
                        view._begin_superstep(
                            ctx.superstep,
                            [
                                Message(
                                    src=to_local[m.src],
                                    dest=view.pid,
                                    payload=m.payload,
                                    tag=m.tag,
                                )
                                for m in ctx.recv_all()
                            ],
                        )
                    else:
                        yield instr
                    instr = next(gen)
            except StopIteration as stop:
                result = stop.value
            return result

        return prog

    return [make(pid) for pid in range(p)]
