"""The BSP superstep engine.

Runs one generator per processor, collecting instructions until every live
processor has ended its local phase, then performs the communication phase
and charges ``w + g*h + l`` (paper eq. (1)) where

* ``w`` is the maximum number of local operations of any processor,
* ``h`` is the maximum over processors of max(#sent, #received) — the
  degree of the superstep's h-relation.

An important and easily-missed detail of the paper's definition is honored
here: *input pools are discarded at each superstep boundary*.  Messages not
extracted in the superstep following their delivery are lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from repro.errors import ProgramError, SimulationLimitError
from repro.models.message import Message
from repro.models.params import BSPParams
from repro.bsp.program import BSPContext, BSPProgram, Compute, Send, Sync

__all__ = ["BSPMachine", "BSPResult", "SuperstepRecord"]


@dataclass(frozen=True)
class SuperstepRecord:
    """Cost-ledger row for one superstep."""

    index: int
    w: int
    h_send: int
    h_recv: int
    cost: int

    @property
    def h(self) -> int:
        """Degree of the superstep's h-relation: max(h_send, h_recv)."""
        return max(self.h_send, self.h_recv)


@dataclass
class BSPResult:
    """Outcome of a BSP run: per-processor results and the cost ledger.

    ``message_log`` (only populated when the machine was built with
    ``record_messages=True``) holds, per superstep, the list of
    ``(src, dest)`` pairs routed in that superstep's communication phase,
    in the order the senders issued them — the advance knowledge the
    "known h-relations" routing modes of Section 4.3 assume.
    """

    params: BSPParams
    results: list[Any]
    ledger: list[SuperstepRecord] = field(default_factory=list)
    message_log: list[list[tuple[int, int]]] | None = None

    @property
    def total_cost(self) -> int:
        """Sum of superstep costs — the BSP running time of the program."""
        return sum(rec.cost for rec in self.ledger)

    @property
    def num_supersteps(self) -> int:
        return len(self.ledger)

    @property
    def total_messages(self) -> int:
        """Total messages transferred over the whole run (all processors)."""
        return sum(rec.h_send for rec in self.ledger)  # upper envelope only

    def __repr__(self) -> str:
        return (
            f"BSPResult(p={self.params.p}, supersteps={self.num_supersteps}, "
            f"total_cost={self.total_cost})"
        )


class BSPMachine:
    """A ``p``-processor BSP machine with parameters ``(g, l)``.

    Parameters
    ----------
    params:
        The machine's :class:`~repro.models.params.BSPParams`.
    max_supersteps:
        Safety valve against non-terminating programs.

    Example
    -------
    >>> from repro.models.params import BSPParams
    >>> from repro.bsp import BSPMachine, Compute, Send, Sync
    >>> def prog(ctx):
    ...     yield Send((ctx.pid + 1) % ctx.p, ctx.pid)
    ...     yield Sync()
    ...     [msg] = ctx.inbox
    ...     return msg.payload
    >>> machine = BSPMachine(BSPParams(p=4, g=2, l=10))
    >>> out = machine.run(prog)
    >>> out.results
    [3, 0, 1, 2]
    >>> out.total_cost  # one superstep: w=0, h=1 -> g*1 + l
    12
    """

    #: Cost conventions for the h-relation term.  The paper (and this
    #: library's default) uses ``max(h_send, h_recv)``; the literature on
    #: BSP variants (cf. the paper's ref. [12]) also considers the sum of
    #: the two and the send-only degree — exposed for ablation studies.
    H_CONVENTIONS = {
        "max": lambda h_send, h_recv: max(h_send, h_recv),
        "sum": lambda h_send, h_recv: h_send + h_recv,
        "send-only": lambda h_send, h_recv: h_send,
    }

    def __init__(
        self,
        params: BSPParams,
        *,
        max_supersteps: int = 1_000_000,
        record_messages: bool = False,
        h_convention: str = "max",
    ) -> None:
        self.params = params
        self.max_supersteps = max_supersteps
        self.record_messages = record_messages
        if h_convention not in self.H_CONVENTIONS:
            raise ProgramError(
                f"unknown h_convention {h_convention!r}; "
                f"choose from {sorted(self.H_CONVENTIONS)}"
            )
        self.h_convention = h_convention
        self._h_fn = self.H_CONVENTIONS[h_convention]

    def run(self, program: BSPProgram | Sequence[BSPProgram]) -> BSPResult:
        """Run ``program`` on every processor (or one program per processor
        if a sequence of length ``p`` is given) to completion."""
        p = self.params.p
        programs: list[BSPProgram]
        if callable(program):
            programs = [program] * p
        else:
            programs = list(program)
            if len(programs) != p:
                raise ProgramError(
                    f"need exactly p={p} programs, got {len(programs)}"
                )

        contexts = [BSPContext(pid, p) for pid in range(p)]
        gens: list[Generator | None] = []
        results: list[Any] = [None] * p
        for pid in range(p):
            gen = programs[pid](contexts[pid])
            if not isinstance(gen, Generator):
                raise ProgramError(
                    f"BSP program for processor {pid} is not a generator "
                    f"function (did you forget to yield?)"
                )
            gens.append(gen)

        ledger: list[SuperstepRecord] = []
        message_log: list[list[tuple[int, int]]] | None = (
            [] if self.record_messages else None
        )
        pending: list[list[Message]] = [[] for _ in range(p)]  # next inboxes
        superstep = 0
        while any(g is not None for g in gens):
            if superstep >= self.max_supersteps:
                raise SimulationLimitError(
                    f"exceeded max_supersteps={self.max_supersteps}"
                )
            # Communication phase of the *previous* superstep delivered
            # `pending`; hand fresh inboxes to all processors (discarding
            # whatever they left unread, per the paper's pool semantics).
            for pid in range(p):
                contexts[pid]._begin_superstep(superstep, pending[pid])
            pending = [[] for _ in range(p)]

            w = [0] * p
            sent = [0] * p
            recvd = [0] * p
            step_sends: list[tuple[int, int]] | None = (
                [] if message_log is not None else None
            )
            any_alive = False
            for pid in range(p):
                gen = gens[pid]
                if gen is None:
                    continue
                any_alive = True
                self._run_local_phase(
                    pid, gen, gens, results, w, sent, recvd, pending, step_sends
                )

            if not any_alive:
                break
            w_max = max(w)
            h_send = max(sent)
            h_recv = max(recvd)
            if (
                w_max == 0
                and h_send == 0
                and h_recv == 0
                and all(g is None for g in gens)
            ):
                # Final drain: every processor returned without doing any
                # work — there is no superstep to charge for.
                break
            cost = self.params.superstep_cost(w_max, self._h_fn(h_send, h_recv))
            ledger.append(
                SuperstepRecord(
                    index=superstep, w=w_max, h_send=h_send, h_recv=h_recv, cost=cost
                )
            )
            if message_log is not None:
                message_log.append(step_sends if step_sends is not None else [])
            superstep += 1

        return BSPResult(
            params=self.params, results=results, ledger=ledger, message_log=message_log
        )

    def _run_local_phase(
        self,
        pid: int,
        gen: Generator,
        gens: list[Generator | None],
        results: list[Any],
        w: list[int],
        sent: list[int],
        recvd: list[int],
        pending: list[list[Message]],
        step_sends: list[tuple[int, int]] | None = None,
    ) -> None:
        """Drive one processor's generator until Sync or completion."""
        p = self.params.p
        while True:
            try:
                instr = next(gen)
            except StopIteration as stop:
                gens[pid] = None
                results[pid] = stop.value
                return
            if isinstance(instr, Sync):
                return
            if isinstance(instr, Compute):
                w[pid] += instr.ops
            elif isinstance(instr, Send):
                if not 0 <= instr.dest < p:
                    raise ProgramError(
                        f"processor {pid} sent to invalid destination "
                        f"{instr.dest} (p={p})"
                    )
                pending[instr.dest].append(
                    Message(src=pid, dest=instr.dest, payload=instr.payload, tag=instr.tag)
                )
                sent[pid] += 1
                recvd[instr.dest] += 1
                if step_sends is not None:
                    step_sends.append((pid, instr.dest))
            else:
                raise ProgramError(
                    f"processor {pid} yielded {instr!r}, which is not a BSP "
                    f"instruction"
                )
