"""The BSP superstep engine.

Runs one generator per processor, collecting instructions until every live
processor has ended its local phase, then performs the communication phase
and charges ``w + g*h + l`` (paper eq. (1)) where

* ``w`` is the maximum number of local operations of any processor,
* ``h`` is the maximum over processors of max(#sent, #received) — the
  degree of the superstep's h-relation.

An important and easily-missed detail of the paper's definition is honored
here: *input pools are discarded at each superstep boundary*.  Messages not
extracted in the superstep following their delivery are lost.

**Checkpoint-and-retry resilience** (``faults=``): the superstep barrier
doubles as a checkpoint.  When a :class:`~repro.faults.plan.FaultPlan`
makes the exchange lossy (message drops, transient crash of a processor's
sends for one superstep), the machine detects the shortfall at the
barrier — every processor knows how many messages it was owed, exactly the
information the CB combine already aggregates — and re-runs the exchange
for the missing messages only, charging ``g*h_k + l`` per recovery round
``k``.  Because local state was checkpointed at the barrier, no
computation is redone; results are bit-identical to the fault-free run
and only the cost ledger (``retries`` / ``retry_cost`` per superstep)
shows the substrate misbehaved.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from repro.engine.core import coerce_programs, counters_for, spawn_generator
from repro.engine.result import MachineResult, TraceEvent
from repro.errors import ProgramError, ProtocolError, SimulationLimitError
from repro.faults.plan import ActiveFaults, FaultLog, FaultPlan
from repro.models.message import Message
from repro.models.params import BSPParams
from repro.perf.counters import KernelCounters
from repro.bsp.program import BSPContext, BSPProgram, Compute, Send, Sync

__all__ = ["BSPMachine", "BSPResult", "SuperstepRecord"]


@dataclass(frozen=True)
class SuperstepRecord:
    """Cost-ledger row for one superstep.

    ``cost`` is the full charge including recovery; on a lossy substrate
    ``retries`` counts the extra exchange rounds and ``retry_cost`` their
    ``sum(g*h_k + l)`` share of ``cost`` (both 0 on a clean run).
    """

    index: int
    w: int
    h_send: int
    h_recv: int
    cost: int
    retries: int = 0
    retry_cost: int = 0

    @property
    def h(self) -> int:
        """Degree of the superstep's h-relation: max(h_send, h_recv)."""
        return max(self.h_send, self.h_recv)


@dataclass
class BSPResult(MachineResult):
    """Outcome of a BSP run: per-processor results and the cost ledger.

    ``message_log`` (only populated when the machine was built with
    ``record_messages=True``) holds, per superstep, the list of
    ``(src, dest)`` pairs routed in that superstep's communication phase,
    in the order the senders issued them — the advance knowledge the
    "known h-relations" routing modes of Section 4.3 assume.
    """

    params: BSPParams
    results: list[Any]
    ledger: list[SuperstepRecord] = field(default_factory=list)
    message_log: list[list[tuple[int, int]]] | None = None
    #: Injected-fault ledger when the machine ran with a FaultPlan.
    fault_log: "FaultLog | None" = None
    #: Work accounting: ``events`` counts program instructions executed,
    #: ``batches`` supersteps driven, ``ticks_skipped`` the simulated
    #: clock units crossed in one ``w + g*h + l`` jump (what a per-tick
    #: clock would have scanned), ``queue_highwater`` the peak number of
    #: messages pending across one exchange.
    kernel: KernelCounters = field(default_factory=lambda: counters_for("superstep"))

    row_fields = (
        "total_cost",
        "num_supersteps",
        "total_messages",
        "total_retries",
        "total_retry_cost",
    )

    def trace_events(self) -> list[TraceEvent]:
        """The cost ledger in the shared cross-layer vocabulary: one
        ``"superstep"`` event per barrier, timed at the running total
        cost (the BSP simulated clock)."""
        events: list[TraceEvent] = []
        clock = 0
        for rec in self.ledger:
            clock += rec.cost
            events.append(
                TraceEvent(
                    "superstep",
                    clock,
                    -1,
                    {
                        "index": rec.index,
                        "w": rec.w,
                        "h": rec.h,
                        "cost": rec.cost,
                        "retries": rec.retries,
                    },
                )
            )
        return events

    @property
    def total_cost(self) -> int:
        """Sum of superstep costs — the BSP running time of the program."""
        return sum(rec.cost for rec in self.ledger)

    @property
    def num_supersteps(self) -> int:
        return len(self.ledger)

    @property
    def total_messages(self) -> int:
        """Total messages transferred over the whole run (all processors)."""
        return sum(rec.h_send for rec in self.ledger)  # upper envelope only

    @property
    def total_retries(self) -> int:
        """Extra exchange rounds spent recovering lost messages."""
        return sum(rec.retries for rec in self.ledger)

    @property
    def total_retry_cost(self) -> int:
        """Share of :attr:`total_cost` paid to the recovery rounds."""
        return sum(rec.retry_cost for rec in self.ledger)

    def __repr__(self) -> str:
        return (
            f"BSPResult(p={self.params.p}, supersteps={self.num_supersteps}, "
            f"total_cost={self.total_cost})"
        )


class BSPMachine:
    """A ``p``-processor BSP machine with parameters ``(g, l)``.

    Parameters
    ----------
    params:
        The machine's :class:`~repro.models.params.BSPParams`.
    max_supersteps:
        Safety valve against non-terminating programs.
    faults:
        A :class:`~repro.faults.plan.FaultPlan` making the communication
        phase lossy (``drop_rate`` drops each message of each exchange
        attempt independently; ``crash[pid] = s`` loses all of ``pid``'s
        superstep-``s`` sends on the first attempt).  The barrier's
        checkpoint-and-retry recovery re-exchanges lost messages, so
        results are identical to the clean run; the cost ledger carries
        the recovery charge.  Seeded and fully deterministic.
    max_comm_retries:
        Recovery-round budget per superstep before the machine gives up
        with :class:`~repro.errors.ProtocolError`.
    layer:
        Name of this machine's position in a simulation stack (e.g.
        ``"guest LogP on host BSP"``); limit diagnostics are prefixed
        with it so errors from nested engines identify their owner.
    obs:
        Optional :class:`~repro.obs.Observation`.  The run's cost ledger
        (per-superstep ``w``/``h``/cost decomposition, retries, kernel
        work, faults) is published under this machine's ``layer`` label
        once at the end of the run — BSP needs no inline hooks because
        the ledger already is the full observable record.

    Example
    -------
    >>> from repro.models.params import BSPParams
    >>> from repro.bsp import BSPMachine, Compute, Send, Sync
    >>> def prog(ctx):
    ...     yield Send((ctx.pid + 1) % ctx.p, ctx.pid)
    ...     yield Sync()
    ...     [msg] = ctx.inbox
    ...     return msg.payload
    >>> machine = BSPMachine(BSPParams(p=4, g=2, l=10))
    >>> out = machine.run(prog)
    >>> out.results
    [3, 0, 1, 2]
    >>> out.total_cost  # one superstep: w=0, h=1 -> g*1 + l
    12
    """

    #: Cost conventions for the h-relation term.  The paper (and this
    #: library's default) uses ``max(h_send, h_recv)``; the literature on
    #: BSP variants (cf. the paper's ref. [12]) also considers the sum of
    #: the two and the send-only degree — exposed for ablation studies.
    H_CONVENTIONS = {
        "max": lambda h_send, h_recv: max(h_send, h_recv),
        "sum": lambda h_send, h_recv: h_send + h_recv,
        "send-only": lambda h_send, h_recv: h_send,
    }

    def __init__(
        self,
        params: BSPParams,
        *,
        max_supersteps: int = 1_000_000,
        record_messages: bool = False,
        h_convention: str = "max",
        faults: FaultPlan | None = None,
        max_comm_retries: int = 64,
        layer: str = "BSP",
        obs: Any | None = None,
    ) -> None:
        self.params = params
        self.max_supersteps = max_supersteps
        self.record_messages = record_messages
        self.layer = layer
        self.obs = obs if (obs is not None and obs.enabled) else None
        if h_convention not in self.H_CONVENTIONS:
            raise ProgramError(
                f"unknown h_convention {h_convention!r}; "
                f"choose from {sorted(self.H_CONVENTIONS)}"
            )
        self.h_convention = h_convention
        self._h_fn = self.H_CONVENTIONS[h_convention]
        if max_comm_retries < 1:
            raise ProgramError(
                f"max_comm_retries must be >= 1, got {max_comm_retries}"
            )
        self.faults = faults
        self.max_comm_retries = max_comm_retries

    def run(self, program: BSPProgram | Sequence[BSPProgram]) -> BSPResult:
        """Run ``program`` on every processor (or one program per processor
        if a sequence of length ``p`` is given) to completion."""
        p = self.params.p
        programs = coerce_programs(program, p)

        contexts = [BSPContext(pid, p) for pid in range(p)]
        gens: list[Generator | None] = []
        results: list[Any] = [None] * p
        for pid in range(p):
            gens.append(spawn_generator(programs[pid], contexts[pid], pid, model="BSP"))

        active = self.faults.activate() if self.faults is not None else None

        ledger: list[SuperstepRecord] = []
        message_log: list[list[tuple[int, int]]] | None = (
            [] if self.record_messages else None
        )
        counters = counters_for("superstep")
        pending: list[list[Message]] = [[] for _ in range(p)]  # next inboxes
        superstep = 0
        # Active-set scheduling: only processors whose generator is still
        # running are driven; finished ones drop out of the scan instead
        # of being re-checked every superstep.
        live = list(range(p))
        while live:
            if superstep >= self.max_supersteps:
                raise SimulationLimitError(
                    f"[{self.layer}] exceeded max_supersteps={self.max_supersteps}"
                )
            # Communication phase of the *previous* superstep delivered
            # `pending`; hand fresh inboxes to the live processors
            # (discarding whatever they left unread, per the paper's pool
            # semantics — messages to finished processors are dropped with
            # their pool).
            for pid in live:
                contexts[pid]._begin_superstep(superstep, pending[pid])
            pending = [[] for _ in range(p)]

            w = [0] * p
            sent = [0] * p
            recvd = [0] * p
            step_sends: list[tuple[int, int]] | None = (
                [] if message_log is not None else None
            )
            for pid in live:
                counters.events += self._run_local_phase(
                    pid, gens[pid], gens, results, w, sent, recvd, pending, step_sends
                )
            counters.batches += 1
            live = [pid for pid in live if gens[pid] is not None]

            w_max = max(w)
            h_send = max(sent)
            h_recv = max(recvd)
            if w_max == 0 and h_send == 0 and h_recv == 0 and not live:
                # Final drain: every processor returned without doing any
                # work — there is no superstep to charge for.
                break
            cost = self.params.superstep_cost(w_max, self._h_fn(h_send, h_recv))
            retries = retry_cost = 0
            if active is not None:
                retries, retry_cost = self._lossy_exchange(pending, superstep, active)
                cost += retry_cost
            ledger.append(
                SuperstepRecord(
                    index=superstep,
                    w=w_max,
                    h_send=h_send,
                    h_recv=h_recv,
                    cost=cost,
                    retries=retries,
                    retry_cost=retry_cost,
                )
            )
            # The barrier advances the simulated clock by the full charge
            # in one jump — a per-tick clock would have scanned every unit.
            counters.ticks_skipped += max(0, cost - 1)
            counters.queue_highwater = max(counters.queue_highwater, sum(sent))
            if message_log is not None:
                message_log.append(step_sends if step_sends is not None else [])
            superstep += 1

        result = BSPResult(
            params=self.params,
            results=results,
            ledger=ledger,
            message_log=message_log,
            fault_log=active.log if active is not None else None,
            kernel=counters,
        )
        if self.obs is not None:
            self.obs.observe_bsp(result, layer=self.layer)
        return result

    def _lossy_exchange(
        self,
        pending: list[list[Message]],
        superstep: int,
        active: ActiveFaults,
    ) -> tuple[int, int]:
        """Charge the checkpoint-and-retry recovery of this superstep's
        exchange under ``active``'s fault plan.

        Every delivery attempt rolls each still-undelivered message
        independently (transiently-crashed senders lose all of attempt 0);
        each round with losses costs an extra ``g*h_k + l`` where ``h_k``
        is the degree of the lost sub-h-relation.  Recovery always
        completes — the barrier knows the exact shortfall, and retries
        draw fresh fates — so the inboxes end up exactly as on a clean
        run; only ``(retries, retry_cost)`` is returned.
        """
        undelivered = [msg for inbox in pending for msg in inbox]
        attempt = 0
        retry_cost = 0
        while undelivered:
            if attempt > self.max_comm_retries:
                raise ProtocolError(
                    f"superstep {superstep}: {len(undelivered)} message(s) "
                    f"still undelivered after max_comm_retries="
                    f"{self.max_comm_retries} recovery rounds "
                    f"(fault log: {active.log.summary()})"
                )
            lost = [
                msg
                for msg in undelivered
                if active.bsp_lost(msg.src, msg.dest, superstep, attempt)
            ]
            if lost:
                active.log.bsp_lost.append((superstep, len(lost)))
                sent = Counter(msg.src for msg in lost)
                recvd = Counter(msg.dest for msg in lost)
                h_k = self._h_fn(max(sent.values()), max(recvd.values()))
                retry_cost += self.params.superstep_cost(0, h_k)
            undelivered = lost
            attempt += 1
        return max(attempt - 1, 0), retry_cost

    def _run_local_phase(
        self,
        pid: int,
        gen: Generator,
        gens: list[Generator | None],
        results: list[Any],
        w: list[int],
        sent: list[int],
        recvd: list[int],
        pending: list[list[Message]],
        step_sends: list[tuple[int, int]] | None = None,
    ) -> int:
        """Drive one processor's generator until Sync or completion.

        Returns the number of instructions executed, for the kernel's
        work counter.
        """
        p = self.params.p
        executed = 0
        while True:
            try:
                instr = next(gen)
            except StopIteration as stop:
                gens[pid] = None
                results[pid] = stop.value
                return executed
            executed += 1
            if isinstance(instr, Sync):
                return executed
            if isinstance(instr, Compute):
                w[pid] += instr.ops
            elif isinstance(instr, Send):
                if not 0 <= instr.dest < p:
                    raise ProgramError(
                        f"processor {pid} sent to invalid destination "
                        f"{instr.dest} (p={p})"
                    )
                pending[instr.dest].append(
                    Message(src=pid, dest=instr.dest, payload=instr.payload, tag=instr.tag)
                )
                sent[pid] += 1
                recvd[instr.dest] += 1
                if step_sends is not None:
                    step_sends.append((pid, instr.dest))
            else:
                raise ProgramError(
                    f"processor {pid} yielded {instr!r}, which is not a BSP "
                    f"instruction"
                )
