"""Reusable BSP collective operations as ``yield from``-able sub-programs.

Each collective is a generator helper invoked from inside a BSP program:

    value = yield from bsp_allreduce(ctx, x, op=operator.add)

Two styles are provided where relevant:

* *flat* — one superstep, ``h = Theta(p)`` (cheap when ``g`` is small),
* *tree* — ``Theta(log p)`` supersteps with ``h = O(k)`` each (cheap when
  ``l`` is small relative to ``g * p``).

These are used by the example programs, by the tests, and by the
Section 3 stalling-simulation machinery (which needs BSP sorting/prefix).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, Sequence, TypeVar

from repro.bsp.program import BSPContext, Compute, Send, Sync

__all__ = [
    "bsp_broadcast",
    "bsp_reduce",
    "bsp_allreduce",
    "bsp_prefix",
    "bsp_alltoall",
    "bsp_gather",
    "bsp_barrier_only",
]

T = TypeVar("T")

#: Tag namespace reserved for collective traffic.
COLLECTIVE_TAG = 1 << 20


def bsp_barrier_only(ctx: BSPContext) -> Generator:
    """Consume one superstep without communicating (pure barrier)."""
    yield Sync()


def bsp_broadcast(
    ctx: BSPContext, value: T | None, root: int = 0, *, tree_arity: int = 0
) -> Generator[Any, None, T]:
    """Broadcast ``value`` from ``root`` to all processors.

    ``tree_arity == 0`` selects the flat single-superstep broadcast
    (``h = p - 1``); ``tree_arity >= 2`` selects a k-ary tree broadcast
    with ``ceil(log_k p)`` supersteps and ``h <= k`` each.
    Returns the broadcast value on every processor.
    """
    p = ctx.p
    if p == 1:
        return value  # type: ignore[return-value]
    # Relabel so the root is rank 0 in the tree.
    rank = (ctx.pid - root) % p

    if tree_arity == 0:
        if ctx.pid == root:
            for dest in range(p):
                if dest != root:
                    yield Send(dest, value, tag=COLLECTIVE_TAG)
            yield Sync()
            return value  # type: ignore[return-value]
        yield Sync()
        msgs = ctx.recv_all(COLLECTIVE_TAG)
        return msgs[0].payload

    k = tree_arity
    if k < 2:
        raise ValueError(f"tree_arity must be 0 or >= 2, got {k}")
    # Round r: ranks [0, k^r) forward to their children k^r*q + rank ... in
    # the standard k-ary scatter pattern: child ranks = rank + covered*j.
    covered = 1
    have = ctx.pid == root
    got: Any = value if have else None
    while covered < p:
        if have:
            for j in range(1, k + 1):
                child = rank + covered * j
                if child < min(covered * (k + 1), p):
                    yield Send((child + root) % p, got, tag=COLLECTIVE_TAG)
        yield Sync()
        if not have:
            msgs = ctx.recv_all(COLLECTIVE_TAG)
            if msgs:
                got = msgs[0].payload
                have = True
        covered = min(covered * (k + 1), p)
    return got


def bsp_gather(
    ctx: BSPContext, value: T, root: int = 0
) -> Generator[Any, None, list[T] | None]:
    """Gather one value per processor at ``root`` (flat, one superstep).

    Returns the list indexed by pid at the root, ``None`` elsewhere.
    """
    if ctx.pid != root:
        yield Send(root, (ctx.pid, value), tag=COLLECTIVE_TAG)
        yield Sync()
        return None
    yield Sync()
    out: list[Any] = [None] * ctx.p
    out[root] = value
    for msg in ctx.recv_all(COLLECTIVE_TAG):
        pid, v = msg.payload
        out[pid] = v
    return out


def bsp_reduce(
    ctx: BSPContext,
    value: T,
    op: Callable[[T, T], T] = operator.add,
    root: int = 0,
    *,
    tree_arity: int = 2,
    op_cost: int = 1,
) -> Generator[Any, None, T | None]:
    """Reduce with associative ``op`` to ``root`` via a k-ary tree.

    Charges ``op_cost`` local operations per combine.  Returns the
    reduction at the root, ``None`` elsewhere.
    """
    p = ctx.p
    if p == 1:
        return value
    k = tree_arity
    if k < 2:
        raise ValueError(f"tree_arity must be >= 2, got {k}")
    rank = (ctx.pid - root) % p
    acc = value
    # Fold ranks bottom-up in groups of k: in round r, ranks that are
    # multiples of k^(r+1) receive from up to k-1... use simple k-grouping:
    stride = 1
    while stride < p:
        group = k * stride
        if rank % group == 0:
            # receive from rank + stride*j for j in 1..k-1 (that exist)
            yield Sync()
            payloads = ctx.recv_payloads(COLLECTIVE_TAG)
            for v in payloads:
                acc = op(acc, v)
            if payloads and op_cost:
                yield Compute(op_cost * len(payloads))
        elif rank % group % stride == 0 and rank % group != 0:
            parent_rank = rank - (rank % group)
            yield Send((parent_rank + root) % p, acc, tag=COLLECTIVE_TAG)
            yield Sync()
        else:
            yield Sync()
        stride = group
    # Non-participants past their send round still need to stay in lockstep:
    # the loop above already advances every processor the same number of
    # supersteps, because `stride` is updated uniformly.
    return acc if ctx.pid == root else None


def bsp_allreduce(
    ctx: BSPContext,
    value: T,
    op: Callable[[T, T], T] = operator.add,
    *,
    tree_arity: int = 2,
    op_cost: int = 1,
) -> Generator[Any, None, T]:
    """Reduce then broadcast; returns the global reduction everywhere."""
    reduced = yield from bsp_reduce(
        ctx, value, op, root=0, tree_arity=tree_arity, op_cost=op_cost
    )
    out = yield from bsp_broadcast(ctx, reduced, root=0, tree_arity=tree_arity)
    return out


def bsp_prefix(
    ctx: BSPContext,
    value: T,
    op: Callable[[T, T], T] = operator.add,
    *,
    op_cost: int = 1,
) -> Generator[Any, None, T]:
    """Inclusive prefix (scan): processor ``i`` gets ``op`` over values of
    processors ``0..i``.  Logarithmic rounds (Hillis–Steele), ``h = 1``
    per superstep."""
    p = ctx.p
    acc = value
    dist = 1
    while dist < p:
        if ctx.pid + dist < p:
            yield Send(ctx.pid + dist, acc, tag=COLLECTIVE_TAG)
        yield Sync()
        payloads = ctx.recv_payloads(COLLECTIVE_TAG)
        if payloads:
            acc = op(payloads[0], acc)
            if op_cost:
                yield Compute(op_cost)
        dist *= 2
    return acc


def bsp_alltoall(
    ctx: BSPContext, values: Sequence[T]
) -> Generator[Any, None, list[T]]:
    """Total exchange: ``values[j]`` goes to processor ``j``.

    One superstep with ``h = p - 1`` (own value short-circuits locally).
    Returns the list indexed by source pid.
    """
    p = ctx.p
    if len(values) != p:
        raise ValueError(f"alltoall needs exactly p={p} values, got {len(values)}")
    for dest in range(p):
        if dest != ctx.pid:
            yield Send(dest, (ctx.pid, values[dest]), tag=COLLECTIVE_TAG)
    yield Sync()
    out: list[Any] = [None] * p
    out[ctx.pid] = values[ctx.pid]
    for msg in ctx.recv_all(COLLECTIVE_TAG):
        src, v = msg.payload
        out[src] = v
    return out
