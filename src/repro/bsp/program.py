"""BSP program API: instructions and the per-processor context.

A BSP program is a generator function ``prog(ctx)`` run once per processor.
During a superstep's *local computation phase* the generator may:

* read the messages delivered at the start of the superstep via
  ``ctx.inbox`` / ``ctx.recv_all()`` (extractions from the input pool),
* ``yield Compute(n)`` to account for ``n`` local operations,
* ``yield Send(dest, payload)`` to insert a message into the output pool,
* ``yield Sync()`` to end its local phase.

After every processor has yielded ``Sync()`` (or finished), the machine
performs the communication phase and the barrier, charges ``w + g*h + l``,
and resumes the generators with fresh inboxes.  Input pools are *discarded*
at each superstep boundary, exactly as prescribed by the paper: a message
not extracted during the superstep after its delivery is gone.

The generator's ``return`` value becomes the processor's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.errors import ProgramError
from repro.models.message import Message

__all__ = ["Compute", "Send", "Sync", "BSPContext", "BSPProgram", "Instruction"]


@dataclass(frozen=True)
class Compute:
    """Account for ``ops`` local operations in the current superstep."""

    ops: int

    def __post_init__(self) -> None:
        if self.ops < 0:
            raise ProgramError(f"Compute requires ops >= 0, got {self.ops}")


@dataclass(frozen=True)
class Send:
    """Insert one message into the output pool.

    The message is transferred during the communication phase at the end
    of the current superstep and becomes readable by ``dest`` at the start
    of the next superstep.
    """

    dest: int
    payload: Any = None
    tag: int = 0


@dataclass(frozen=True)
class Sync:
    """End the local computation phase of the current superstep."""


Instruction = Compute | Send | Sync
BSPProgram = Callable[["BSPContext"], Generator[Instruction, None, Any]]


class BSPContext:
    """Per-processor view of the machine, passed to the program generator.

    Attributes
    ----------
    pid:
        This processor's index in ``[0, p)``.
    p:
        Number of processors.
    superstep:
        Index of the current superstep (0-based), maintained by the machine.
    """

    __slots__ = ("pid", "p", "superstep", "_inbox")

    def __init__(self, pid: int, p: int) -> None:
        self.pid = pid
        self.p = p
        self.superstep = 0
        self._inbox: list[Message] = []

    @property
    def inbox(self) -> list[Message]:
        """Messages delivered at the start of the current superstep.

        The list is private to this processor; programs may consume it
        destructively.  It is replaced (previous contents discarded) at
        every superstep boundary.
        """
        return self._inbox

    def recv_all(self, tag: int | None = None) -> list[Message]:
        """Extract and return all inbox messages (optionally only ``tag``).

        Extracted messages are removed from the inbox.
        """
        if tag is None:
            out, self._inbox = self._inbox, []
            return out
        out = [m for m in self._inbox if m.tag == tag]
        self._inbox = [m for m in self._inbox if m.tag != tag]
        return out

    def recv_payloads(self, tag: int | None = None) -> list[Any]:
        """Like :meth:`recv_all` but returns only the payloads."""
        return [m.payload for m in self.recv_all(tag)]

    # -- machine-side hooks -------------------------------------------------

    def _begin_superstep(self, index: int, delivered: list[Message]) -> None:
        """Replace the input pool (discarding leftovers) for superstep
        ``index``.  Called by the machine only."""
        self.superstep = index
        self._inbox = delivered
