"""The BSP virtual machine (paper Section 2.1).

Programs are per-processor generator coroutines that yield instructions
(:class:`~repro.bsp.program.Compute`, :class:`~repro.bsp.program.Send`,
:class:`~repro.bsp.program.Sync`); :class:`~repro.bsp.machine.BSPMachine`
runs them superstep by superstep and charges ``w + g*h + l`` per superstep.
"""

from repro.bsp.machine import BSPMachine, BSPResult, SuperstepRecord
from repro.bsp.program import BSPContext, Compute, Send, Sync

__all__ = [
    "BSPMachine",
    "BSPResult",
    "SuperstepRecord",
    "BSPContext",
    "Compute",
    "Send",
    "Sync",
]
