"""Decomposing h-relations into partial permutations (Hall's theorem).

The paper (Section 4.2): "By Hall's Theorem, any h-relation can be
decomposed into disjoint 1-relations and, therefore, be routed off-line in
optimal ``2o + G(h-1) + L`` time in LogP."

Constructively, an h-relation is a bipartite multigraph (senders x
receivers) of maximum degree ``h``; König's edge-coloring theorem colors
it with exactly ``h`` colors, each color class being a partial permutation
(a 1-relation).  We implement the classical alternating-path (Kempe
chain) algorithm: ``O(E * (V + E))`` worst case, exact, and independent of
degree regularity.

This module powers (a) the off-line routing baseline, (b) the
input-independent ``r``-relation exchanges inside the sorting phases, and
(c) the network-level h-relation router used for Table 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.errors import RoutingError

__all__ = ["relation_degree", "decompose_h_relation", "verify_decomposition"]

Edge = tuple[int, int]  # (src, dest)


def relation_degree(pairs: Sequence[Edge]) -> int:
    """The degree ``h`` of a relation: max messages sent or received by
    any single processor (0 for an empty relation)."""
    out: dict[int, int] = defaultdict(int)
    inn: dict[int, int] = defaultdict(int)
    for s, d in pairs:
        out[s] += 1
        inn[d] += 1
    best = 0
    if out:
        best = max(best, max(out.values()))
    if inn:
        best = max(best, max(inn.values()))
    return best


def decompose_h_relation(pairs: Sequence[Edge]) -> list[list[int]]:
    """Color the relation's edges with exactly ``h`` colors.

    Returns a list of ``h`` color classes, each a list of *indices into
    ``pairs``*, such that within a class every sender and every receiver
    appears at most once (a partial permutation), and every edge appears
    in exactly one class.

    Implementation: bipartite edge coloring by alternating paths.  For
    each edge ``(u, v)`` pick a color ``a`` free at ``u`` and ``b`` free
    at ``v``; if they differ, flip the ``b/a``-alternating chain starting
    from ``v`` so that ``a`` becomes free at ``v`` too.
    """
    h = relation_degree(pairs)
    if h == 0:
        return []
    # Color tables: color -> matched partner, kept per side.
    # send_color[u][c] = edge index using color c at sender u (or absent)
    send_color: dict[int, dict[int, int]] = defaultdict(dict)
    recv_color: dict[int, dict[int, int]] = defaultdict(dict)
    color_of: list[int] = [-1] * len(pairs)

    def free_color(table: dict[int, int]) -> int:
        for c in range(h):
            if c not in table:
                return c
        raise RoutingError("no free color — degree bookkeeping broken")

    for idx, (u, v) in enumerate(pairs):
        a = free_color(send_color[u])
        b = free_color(recv_color[v])
        if a != b:
            # Flip the maximal (a, b)-alternating chain starting at v on
            # the receiver side.  The chain is a simple path (each node has
            # at most one edge of each color) and cannot reach u: senders
            # on the chain are entered via a-colored edges, and a is free
            # at u.  After the flip, a is free at v and still free at u.
            chain: list[int] = []
            node, side_is_recv, want = v, True, a
            while True:
                table = recv_color[node] if side_is_recv else send_color[node]
                e = table.get(want)
                if e is None:
                    break
                chain.append(e)
                eu, ev = pairs[e]
                node = eu if side_is_recv else ev
                side_is_recv = not side_is_recv
                want = b if want == a else a
            for e in chain:  # unregister old colors first (avoid clobbering)
                eu, ev = pairs[e]
                c_old = color_of[e]
                del send_color[eu][c_old]
                del recv_color[ev][c_old]
                color_of[e] = b if c_old == a else a
            for e in chain:
                eu, ev = pairs[e]
                c = color_of[e]
                send_color[eu][c] = e
                recv_color[ev][c] = e
        send_color[u][a] = idx
        recv_color[v][a] = idx
        color_of[idx] = a

    classes: list[list[int]] = [[] for _ in range(h)]
    for idx, c in enumerate(color_of):
        classes[c].append(idx)
    return classes


def verify_decomposition(pairs: Sequence[Edge], classes: Iterable[Iterable[int]]) -> None:
    """Raise :class:`~repro.errors.RoutingError` unless ``classes`` is a
    valid decomposition of ``pairs`` into partial permutations."""
    seen: set[int] = set()
    for k, cls in enumerate(classes):
        senders: set[int] = set()
        receivers: set[int] = set()
        for idx in cls:
            if idx in seen:
                raise RoutingError(f"edge {idx} appears in more than one class")
            seen.add(idx)
            s, d = pairs[idx]
            if s in senders:
                raise RoutingError(f"class {k}: sender {s} repeated")
            if d in receivers:
                raise RoutingError(f"class {k}: receiver {d} repeated")
            senders.add(s)
            receivers.add(d)
    if len(seen) != len(pairs):
        raise RoutingError(
            f"decomposition covers {len(seen)} of {len(pairs)} edges"
        )
