"""Workload generators: the h-relations the experiments route.

All generators return a list of ``(src, dest)`` pairs (``src != dest``
unless noted) and take explicit seeds.  The benches sweep these through
the LogP protocols (Theorems 2/3), the BSP machine, and the network
simulator (Table 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import RoutingError
from repro.util.rng import make_rng

__all__ = [
    "random_permutation",
    "balanced_h_relation",
    "random_destinations",
    "cyclic_shift",
    "block_transpose",
    "hotspot_relation",
]

Edge = tuple[int, int]


def random_permutation(p: int, seed: int | np.random.Generator = 0) -> list[Edge]:
    """A uniformly random (full) permutation: every processor sends one
    message and receives one (a 1-relation); fixed points are allowed and
    simply mean a self-addressed... no — fixed points are re-drawn, since
    neither machine model sends a message from a processor to itself."""
    rng = make_rng(seed)
    if p < 2:
        return []
    while True:
        perm = rng.permutation(p)
        if not np.any(perm == np.arange(p)):
            return [(i, int(perm[i])) for i in range(p)]


def balanced_h_relation(p: int, h: int, seed: int | np.random.Generator = 0) -> list[Edge]:
    """An exact h-relation: the union of ``h`` random derangement-free
    permutations, so every processor sends exactly ``h`` messages and
    receives exactly ``h``.  This is the canonical workload for the
    Theorem 2/3 and Table 1 sweeps."""
    if h < 0:
        raise RoutingError(f"h must be >= 0, got {h}")
    rng = make_rng(seed)
    pairs: list[Edge] = []
    for _ in range(h):
        pairs.extend(random_permutation(p, rng))
    return pairs


def random_destinations(p: int, per_proc: int, seed: int | np.random.Generator = 0) -> list[Edge]:
    """Each processor sends ``per_proc`` messages to independent uniform
    destinations.  Send degree is exactly ``per_proc``; receive degree is
    binomial and may exceed it — the workload the randomized protocol's
    analysis actually contends with, and a natural stalling stressor."""
    rng = make_rng(seed)
    pairs: list[Edge] = []
    for src in range(p):
        for _ in range(per_proc):
            dest = int(rng.integers(0, p - 1))
            if dest >= src:
                dest += 1  # uniform over the p-1 non-self destinations
            pairs.append((src, dest))
    return pairs


def cyclic_shift(p: int, h: int = 1, offset: int = 1) -> list[Edge]:
    """Deterministic h-relation: each processor sends ``h`` messages to
    ``(pid + offset) % p`` ... one per offset ``offset, offset+1, ...``."""
    pairs: list[Edge] = []
    for k in range(h):
        d = (offset + k) % p
        if d == 0:
            d = 1 if p > 1 else 0
        for src in range(p):
            pairs.append((src, (src + d) % p))
    return pairs


def block_transpose(p: int, h: int) -> list[Edge]:
    """The all-to-all personalized pattern restricted to degree ``h``:
    processor ``i`` sends one message to each of the next ``h`` processors
    ``i+1 .. i+h`` (mod p).  Models matrix-transpose communication."""
    if h >= p:
        raise RoutingError(f"block_transpose needs h < p, got h={h}, p={p}")
    return [(i, (i + k) % p) for i in range(p) for k in range(1, h + 1)]


def hotspot_relation(p: int, senders: int, dest: int = 0) -> list[Edge]:
    """``senders`` processors each send one message to the single
    destination ``dest`` — the hot-spot workload of the stalling
    experiments (Section 2.2)."""
    if senders >= p:
        raise RoutingError(f"hotspot needs senders < p, got {senders}, p={p}")
    out: list[Edge] = []
    src = 0
    while len(out) < senders:
        if src != dest:
            out.append((src, dest))
        src += 1
    return out
