"""The Theorem 3 batch plan (paper Section 4.3).

The randomized protocol groups each processor's messages into ``R``
batches by independent uniform draws, then runs ``R`` rounds of
``2 (L + o)`` steps, transmitting up to ``ceil(L/G)`` messages of the
round's batch (one submission every ``G`` steps), followed by a cleanup
phase for whatever remains.  This module builds the *plan* (pure data);
:mod:`repro.core.rand_routing` executes it on the LogP machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.cost import theorem3_beta_hat, theorem3_num_batches
from repro.models.params import LogPParams
from repro.util.rng import make_rng

__all__ = ["BatchPlan", "make_batch_plan"]


@dataclass(frozen=True)
class BatchPlan:
    """Per-processor batching of outgoing messages.

    ``batches[i][r]`` lists the indices (into processor ``i``'s outgoing
    message list) assigned to round ``r``; ``leftovers[i]`` the indices
    whose batch overflowed the per-round budget ``ceil(L/G)`` and must be
    sent in the cleanup phase.
    """

    R: int
    round_length: int
    batches: list[list[list[int]]]
    leftovers: list[list[int]]

    @property
    def clean(self) -> bool:
        """True when no processor overflows any round (the w.h.p. event of
        Theorem 3: all messages go out in the round phase)."""
        return all(not left for left in self.leftovers)


def make_batch_plan(
    out_counts: list[int],
    h: int,
    params: LogPParams,
    *,
    seed: int | np.random.Generator = 0,
    c1: float = 1.0,
    c2: float = 1.0,
    R: int | None = None,
) -> BatchPlan:
    """Assign each processor's ``out_counts[i]`` messages to batches.

    ``h`` must be known in advance by all processors (the theorem's
    hypothesis).  ``R`` defaults to the paper's
    ``(1 + beta_hat) h / ceil(L/G)`` with ``beta_hat`` derived from the
    confidence constants ``c1, c2``; callers may override ``R`` to explore
    the trade-off (smaller R = faster but stall-prone).
    """
    rng = make_rng(seed)
    if R is None:
        R = theorem3_num_batches(h, params, theorem3_beta_hat(c1, c2))
    cap = params.capacity
    batches: list[list[list[int]]] = []
    leftovers: list[list[int]] = []
    for count in out_counts:
        draws = rng.integers(0, R, size=count) if count else np.empty(0, dtype=int)
        rounds: list[list[int]] = [[] for _ in range(R)]
        left: list[int] = []
        for idx, b in enumerate(draws):
            bucket = rounds[int(b)]
            if len(bucket) < cap:
                bucket.append(idx)
            else:
                left.append(idx)
        batches.append(rounds)
        leftovers.append(left)
    return BatchPlan(
        R=R,
        round_length=2 * (params.L + params.o),
        batches=batches,
        leftovers=leftovers,
    )
