"""h-relation machinery: workloads, exact decomposition, randomized plans.

An *h-relation* is a set of messages in which every processor sends at
most ``h`` and receives at most ``h`` (paper Section 2.1).  This package
provides workload generators for the experiments, the Hall/König
decomposition into partial permutations that underpins off-line routing
(paper Section 4.2), and the batch plan of the Theorem 3 randomized
protocol.
"""

from repro.routing.hall import decompose_h_relation, relation_degree, verify_decomposition
from repro.routing.workloads import (
    balanced_h_relation,
    cyclic_shift,
    hotspot_relation,
    random_destinations,
    random_permutation,
)

__all__ = [
    "decompose_h_relation",
    "relation_degree",
    "verify_decomposition",
    "balanced_h_relation",
    "cyclic_shift",
    "hotspot_relation",
    "random_destinations",
    "random_permutation",
]
