"""Declarative simulation stacks: compose the paper's layers by name.

The paper's whole argument is architectural: a routed network *hosts* a
LogP abstraction, which *hosts* (and is hosted by) BSP, with Theorems
1-3 bounding the cost of each hop.  Before this module, each hop was a
bespoke entry point (``simulate_logp_on_bsp``, ``simulate_bsp_on_logp``,
``run_on_network``) with its own adapter plumbing, and the three-layer
composition existed only as a ``machine_kwargs`` trick.  :class:`Stack`
makes the composition first-class::

    Stack(bsp_prog).on_logp(params).run()                  # Theorem 2/3
    Stack(logp_prog, model="logp", params=P).on_bsp().run()  # Theorem 1
    Stack(bsp_prog).on_network(topo).run()                 # Section 5
    Stack(bsp_prog).on_logp(params).on_network(topo).run() # all three layers

A stack is immutable: each ``on_*`` call returns a new stack with one
more host layer.  ``run()`` looks the full chain — ``(guest_model,
*host_kinds)`` — up in the adapter registry and delegates to the same
engine-backed simulators the legacy entry points use, so stacked runs
reproduce them bit-identically (the stack equivalence tests assert
this).  Unsupported chains fail loudly with the list of supported ones.

Machines are imported lazily inside the adapters so this module can be
re-exported from :mod:`repro.engine` without an import cycle (the
machines themselves import :mod:`repro.engine.core`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ProgramError
from repro.models.params import BSPParams, LogPParams

__all__ = ["Stack", "StackLayer", "SUPPORTED_CHAINS"]


@dataclass(frozen=True)
class StackLayer:
    """One host layer of a stack: its kind plus adapter options."""

    kind: str  # "bsp" | "logp" | "network"
    spec: Any = None  # model params (bsp/logp) or a Topology (network)
    options: tuple[tuple[str, Any], ...] = ()

    def opts(self) -> dict:
        return dict(self.options)


@dataclass(frozen=True)
class Stack:
    """A guest program plus the tower of hosts that will simulate it.

    Parameters
    ----------
    program:
        The guest program(s), in the guest model's coroutine dialect
        (single callable or exactly-``p`` sequence, as everywhere else).
    model:
        The guest model: ``"bsp"`` (default) or ``"logp"``.
    params:
        The guest model's parameters, where the guest carries its own
        (a LogP guest needs :class:`LogPParams`; a BSP guest's machine
        parameters are determined by its host, so it passes ``None``).
    """

    program: Callable | Sequence[Callable]
    model: str = "bsp"
    params: Any = None
    layers: tuple[StackLayer, ...] = field(default=())
    #: The RunRequest this stack was built from (None for hand-built
    #: stacks); carried for ``to_request`` round-trips, excluded from
    #: equality so a request-built stack equals its hand-built twin.
    request: Any = field(default=None, compare=False, repr=False)

    # -- the request schema --------------------------------------------

    @classmethod
    def from_request(cls, request) -> "Stack":
        """Build the stack a :class:`~repro.engine.request.RunRequest`
        (or its dict form) names — the one schema-driven construction
        path the CLI, campaign targets, and service share."""
        from repro.engine.request import build_stack

        return build_stack(request)

    def to_request(self):
        """The request this stack was built from.

        ``Stack.from_request(req).to_request() == req`` round-trips; a
        hand-built stack has no serializable request form (its programs
        are live callables), so this raises with the construction hint.
        """
        if self.request is None:
            raise ProgramError(
                "this stack was not built from a RunRequest; construct it "
                "with Stack.from_request(RunRequest(chain=..., ...)) to get "
                "a serializable round-trip"
            )
        return self.request

    # -- composition ---------------------------------------------------

    def _push(self, layer: StackLayer) -> "Stack":
        return Stack(
            program=self.program,
            model=self.model,
            params=self.params,
            layers=self.layers + (layer,),
        )

    def on_bsp(self, params: BSPParams | None = None, **options: Any) -> "Stack":
        """Host the current stack on a BSP machine (Theorem 1 direction
        for a LogP guest).  Pass ``p=<bsp_p>`` for the footnote-1
        work-preserving variant on fewer processors."""
        return self._push(StackLayer("bsp", params, tuple(sorted(options.items()))))

    def on_logp(self, params: LogPParams, **options: Any) -> "Stack":
        """Host the current stack on a LogP machine (Theorem 2/3
        direction for a BSP guest).  Options are forwarded to
        :func:`~repro.core.bsp_on_logp.simulate_bsp_on_logp`
        (``routing=``, ``seed=``, ``faults=``, ...)."""
        return self._push(StackLayer("logp", params, tuple(sorted(options.items()))))

    def on_network(self, topology: Any, **options: Any) -> "Stack":
        """Host the current stack on a routed point-to-point network
        (Section 5).  Under a LogP layer this swaps the host machine's
        delivery scheduler for hop-by-hop routing on ``topology``."""
        return self._push(
            StackLayer("network", topology, tuple(sorted(options.items())))
        )

    def on_dist(self, p: int, **options: Any) -> "Stack":
        """Host the stack on ``p`` real OS processes over TCP sockets
        (:mod:`repro.dist`) — the terminal backend where failures are
        SIGKILLs and latency is wall-clock.

        The guest ``program`` must be a *name* from
        :data:`repro.dist.programs.DIST_PROGRAMS` (the checkpointable
        superstep dialect; coroutine programs cannot survive a restart).
        Options are forwarded to :func:`repro.dist.supervisor.run_dist`
        (``kwargs=``, ``faults=``, ``params=``, ``log_dir=``, ...).
        """
        return self._push(StackLayer("dist", p, tuple(sorted(options.items()))))

    # -- execution -----------------------------------------------------

    @property
    def chain(self) -> tuple[str, ...]:
        """The stack's shape, guest first: ``(model, *host_kinds)``."""
        return (self.model, *(layer.kind for layer in self.layers))

    def describe(self) -> str:
        """Human-readable stack shape, guest first: ``bsp -> logp -> network``."""
        return " -> ".join(self.chain)

    def run(self, **options: Any) -> Any:
        """Execute the stack and return the host adapter's report.

        Extra keyword arguments are merged over the layers' recorded
        options (outermost wins) and forwarded to the adapter.
        """
        chain = self.chain
        adapter = _ADAPTERS.get(chain)
        if adapter is None:
            supported = ", ".join(
                " -> ".join(c) for c in sorted(_ADAPTERS)
            )
            raise ProgramError(
                f"unsupported stack {self.describe()!r}; supported stacks: "
                f"{supported}"
            )
        merged: dict[str, Any] = {}
        for layer in self.layers:
            merged.update(layer.opts())
        merged.update(options)
        return adapter(self, merged)

    def _guest_logp_params(self) -> LogPParams:
        if not isinstance(self.params, LogPParams):
            raise ProgramError(
                f"stack {self.describe()!r} needs guest LogPParams: "
                f"Stack(program, model='logp', params=LogPParams(...))"
            )
        return self.params


# -- adapter registry ---------------------------------------------------
#
# Keyed by the full chain tuple.  Each adapter receives the stack and the
# merged option dict and delegates to the engine-backed simulators, so a
# stacked run and its legacy entry point are the same computation.
#
# ``kernel=`` is a first-class stack option: every adapter routes it to
# the component that owns an event queue — the host machine's
# ``kernel=`` argument (folded into ``machine_kwargs`` for the theorem
# simulators) or the router's ``RoutingConfig.kernel`` — so
# ``.on_logp(params, kernel="adaptive")`` selects the kernel no matter
# how deep the simulator plumbing sits.


def _fold_kernel_into_machine(opts: dict) -> None:
    """Move a stack-level ``kernel=`` option into ``machine_kwargs``,
    the argument the theorem simulators forward to their host machine."""
    kernel = opts.pop("kernel", None)
    if kernel is not None:
        machine_kwargs = dict(opts.get("machine_kwargs") or {})
        machine_kwargs.setdefault("kernel", kernel)
        opts["machine_kwargs"] = machine_kwargs


def _fold_kernel_into_config(opts: dict) -> None:
    """Move a stack-level ``kernel=`` option into the router's
    ``RoutingConfig`` (rebuilding it, since configs are frozen)."""
    from dataclasses import replace

    from repro.networks.routing_sim import RoutingConfig

    kernel = opts.pop("kernel", None)
    if kernel is not None:
        config = opts.get("config") or RoutingConfig()
        opts["config"] = replace(config, kernel=kernel)


def _run_bsp_native(stack: Stack, opts: dict) -> Any:
    from repro.bsp.machine import BSPMachine

    (layer,) = stack.layers
    if not isinstance(layer.spec, BSPParams):
        raise ProgramError("Stack(...).on_bsp(params) needs BSPParams to run natively")
    opts.setdefault("layer", "BSP")
    return BSPMachine(layer.spec, **opts).run(stack.program)


def _run_logp_native(stack: Stack, opts: dict) -> Any:
    from repro.logp.machine import LogPMachine

    (layer,) = stack.layers
    if not isinstance(layer.spec, LogPParams):
        raise ProgramError("Stack(...).on_logp(params) needs LogPParams to run natively")
    opts.setdefault("layer", "LogP")
    return LogPMachine(layer.spec, **opts).run(stack.program)


def _run_logp_on_bsp(stack: Stack, opts: dict) -> Any:
    from repro.core.logp_on_bsp import (
        simulate_logp_on_bsp,
        simulate_logp_on_bsp_workpreserving,
    )

    (layer,) = stack.layers
    if layer.spec is not None:
        opts.setdefault("bsp_params", layer.spec)
    _fold_kernel_into_machine(opts)
    guest = stack._guest_logp_params()
    bsp_p = opts.pop("p", None)
    if bsp_p is not None:
        return simulate_logp_on_bsp_workpreserving(
            guest, stack.program, bsp_p, **opts
        )
    return simulate_logp_on_bsp(guest, stack.program, **opts)


def _run_bsp_on_logp(stack: Stack, opts: dict) -> Any:
    from repro.core.bsp_on_logp import simulate_bsp_on_logp

    (layer,) = stack.layers
    if not isinstance(layer.spec, LogPParams):
        raise ProgramError("Stack(...).on_logp(params) needs host LogPParams")
    _fold_kernel_into_machine(opts)
    return simulate_bsp_on_logp(layer.spec, stack.program, **opts)


def _run_bsp_on_network(stack: Stack, opts: dict) -> Any:
    from repro.networks.backed import run_on_network

    (layer,) = stack.layers
    _fold_kernel_into_config(opts)
    return run_on_network(layer.spec, stack.program, **opts)


def _run_logp_on_network(stack: Stack, opts: dict) -> Any:
    from repro.logp.machine import LogPMachine
    from repro.networks.backed import NetworkDelivery

    (layer,) = stack.layers
    guest = stack._guest_logp_params()
    obs = opts.get("obs")
    opts.setdefault("layer", "LogP on host network")
    delivery = NetworkDelivery(layer.spec, obs=obs)
    result = LogPMachine(guest, delivery=delivery, **opts).run(stack.program)
    delivery.publish(layer="network")
    return result


def _run_bsp_on_logp_on_network(stack: Stack, opts: dict) -> Any:
    from repro.core.bsp_on_logp import simulate_bsp_on_logp
    from repro.networks.backed import NetworkDelivery

    logp_layer, net_layer = stack.layers
    if not isinstance(logp_layer.spec, LogPParams):
        raise ProgramError("Stack(...).on_logp(params) needs host LogPParams")
    _fold_kernel_into_machine(opts)
    machine_kwargs = dict(opts.pop("machine_kwargs", None) or {})
    delivery = machine_kwargs.get("delivery")
    if delivery is None:
        delivery = NetworkDelivery(net_layer.spec, obs=opts.get("obs"))
        machine_kwargs["delivery"] = delivery
    machine_kwargs.setdefault("layer", "guest BSP on host LogP on network")
    report = simulate_bsp_on_logp(
        logp_layer.spec, stack.program, machine_kwargs=machine_kwargs, **opts
    )
    if isinstance(delivery, NetworkDelivery):
        delivery.publish(layer="network")
    return report


def _run_bsp_on_dist(stack: Stack, opts: dict) -> Any:
    from repro.dist.supervisor import run_dist

    (layer,) = stack.layers
    if not isinstance(layer.spec, int) or isinstance(layer.spec, bool):
        raise ProgramError("Stack(...).on_dist(p) needs an integer worker count")
    if not isinstance(stack.program, str):
        raise ProgramError(
            "dist stacks take a registered program *name* "
            "(see repro.dist.programs.DIST_PROGRAMS), not a coroutine: "
            "real processes restart from checkpoints, which generator "
            "programs cannot provide"
        )
    obs = opts.pop("obs", None)
    plan = opts.pop("faults", None) or opts.pop("plan", None)
    opts.pop("plan", None)
    result = run_dist(stack.program, layer.spec, plan=plan, **opts)
    if obs is not None:
        obs.observe_dist(result)
    return result


_ADAPTERS: dict[tuple[str, ...], Callable[[Stack, dict], Any]] = {
    ("bsp", "bsp"): _run_bsp_native,
    ("logp", "logp"): _run_logp_native,
    ("logp", "bsp"): _run_logp_on_bsp,
    ("bsp", "logp"): _run_bsp_on_logp,
    ("bsp", "network"): _run_bsp_on_network,
    ("logp", "network"): _run_logp_on_network,
    ("bsp", "logp", "network"): _run_bsp_on_logp_on_network,
    ("bsp", "dist"): _run_bsp_on_dist,
}

#: Public view of the chains the registry supports.
SUPPORTED_CHAINS: tuple[tuple[str, ...], ...] = tuple(sorted(_ADAPTERS))
